#!/usr/bin/env bash
# Run the bench_micro Google Benchmark harness and emit a JSON baseline
# for the perf trajectory (committed at the repo root / uploaded as a
# CI artifact from PR 3 onward).
#
#   tools/run_bench.sh [build-dir] [output.json | PR-number]
#
# The second argument is either an output path (anything containing a
# '/' or ending in .json) or a bare PR number N, which resolves to
# <build-dir>/BENCH_N.json. Defaults: build directory `build`, PR
# number ${BENCH_PR:-10} (the current perf-trajectory point).
# Pass BENCH_FILTER to restrict which benchmarks run, e.g.
#   BENCH_FILTER='bm_explore_prunable|bm_eval' tools/run_bench.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
BENCH_PR="${BENCH_PR:-10}"
SPEC="${2:-${BENCH_PR}}"
if [[ "${SPEC}" == */* || "${SPEC}" == *.json ]]; then
    OUT="${SPEC}"
else
    OUT="${BUILD_DIR}/BENCH_${SPEC}.json"
fi
FILTER="${BENCH_FILTER:-}"

if [[ ! -d "${BUILD_DIR}" ]]; then
    echo "error: build directory '${BUILD_DIR}' not found (run cmake -B ${BUILD_DIR} -S . first)" >&2
    exit 1
fi
if ! cmake --build "${BUILD_DIR}" --target bench_micro -j; then
    echo "error: bench_micro did not build — is Google Benchmark (libbenchmark-dev) installed?" >&2
    exit 1
fi

BENCH="${BUILD_DIR}/bench/bench_micro"
ARGS=(--benchmark_out="${OUT}" --benchmark_out_format=json)
if [[ -n "${FILTER}" ]]; then
    ARGS+=(--benchmark_filter="${FILTER}")
fi
"${BENCH}" "${ARGS[@]}"
echo "wrote ${OUT}"
