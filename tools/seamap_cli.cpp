// seamap command-line tool: generate, inspect, optimize and
// fault-inject task-graph workloads from the shell, using the text
// .tg format of taskgraph/serialization.h and the seamap public API
// (seamap/seamap.h) for everything downstream of the graph.
//
//   seamap_cli generate <tgff|fft|gauss|pipeline|mpeg2|fig8> [options] -o out.tg
//   seamap_cli info     <graph.tg> [--json]
//   seamap_cli optimize <graph.tg> --cores N --deadline S [--strategy NAME] [--json] [...]
//   seamap_cli inject   <graph.tg> --cores N --deadline S [--json] [...]
//   seamap_cli version
//
// Run any subcommand with --help (or none) for its options. All
// randomness is seeded (--seed); identical invocations produce
// identical outputs — `optimize --json` is byte-identical for every
// --threads value.
#include "seamap/seamap.h"

#include "sched/gantt.h"
#include "sim/campaign.h"
#include "sim/campaign_checkpoint.h"
#include "sim/fault_injection.h"
#include "taskgraph/dot.h"
#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"
#include "taskgraph/serialization.h"
#include "taskgraph/standard_graphs.h"
#include "tgff/random_graph.h"
#include "util/strings.h"
#include "util/table.h"

#include <algorithm>
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

using namespace seamap;

namespace {

// Exit codes (a wire contract; see README "Crash safety & resume"):
//   0  success
//   1  completed, but no feasible design exists
//   2  failure (usage, parse, io, corrupt/mismatched checkpoint, ...)
//   3  interrupted by SIGINT/SIGTERM; any --checkpoint snapshot is
//      saved and the run can continue with --resume
constexpr int k_exit_no_design = 1;
constexpr int k_exit_failure = 2;
constexpr int k_exit_interrupted = 3;

/// The process-wide stop flag, flipped by SIGINT/SIGTERM. request_stop
/// is one relaxed atomic store — async-signal-safe.
CancellationToken g_cancel;

extern "C" void handle_stop_signal(int) { g_cancel.request_stop(); }

void install_signal_handlers() {
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
}

/// Minimal --flag/--key value argument parser.
class ArgList {
public:
    ArgList(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
    }

    /// Positional arguments (not starting with --).
    std::vector<std::string> positionals() const {
        std::vector<std::string> out;
        for (std::size_t i = 0; i < args_.size(); ++i) {
            if (args_[i].rfind("--", 0) == 0 || args_[i] == "-o") {
                if (!is_boolean_flag(args_[i])) ++i; // skip the option's value
                continue;
            }
            out.push_back(args_[i]);
        }
        return out;
    }

    std::optional<std::string> value(const std::string& key) const {
        for (std::size_t i = 0; i + 1 < args_.size(); ++i)
            if (args_[i] == key) return args_[i + 1];
        return std::nullopt;
    }

    bool flag(const std::string& key) const {
        for (const auto& arg : args_)
            if (arg == key) return true;
        return false;
    }

    std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
        const auto v = value(key);
        return v ? parse_u64(*v) : fallback;
    }

    double real(const std::string& key, double fallback) const {
        const auto v = value(key);
        return v ? parse_double(*v) : fallback;
    }

private:
    /// Options that never take a value, so a following positional is
    /// not swallowed when flags precede it.
    static bool is_boolean_flag(const std::string& arg) {
        return arg == "--all-cores" || arg == "--gantt" || arg == "--help" ||
               arg == "--json" || arg == "--no-prune" || arg == "--resume";
    }

    std::vector<std::string> args_;
};

void print_usage(std::ostream& out) {
    out <<
        "seamap_cli — soft error-aware MPSoC design optimization\n"
        "\n"
        "subcommands:\n"
        "  generate <kind> -o out.tg [--seed S] [--tasks N] [--batches B]\n"
        "           kinds: tgff (random, paper distributions; --tasks),\n"
        "                  fft (--log2 K), gauss (--n N), pipeline (--stages S --width W),\n"
        "                  mpeg2 (paper Fig. 2), fig8 (paper worked example),\n"
        "                  scale (giant-instance --scale family: pipelined tgff,\n"
        "                         --tasks 1000 --cores 16 name the instance)\n"
        "  info <graph.tg> [--json]\n"
        "           structural summary: tasks, edges, costs, registers, critical path\n"
        "  optimize <graph.tg> --cores N [--deadline SECONDS] [--levels 2|3|4]\n"
        "           [--strategy " << join(search_strategy_names(), "|") << "]\n"
        "           [--iterations I] [--seed S] [--threads W] [--all-cores]\n"
        "           [--no-prune] [--multi-start K] [--json] [--dot out.dot] [--gantt]\n"
        "           [--checkpoint FILE [--resume] [--checkpoint-every N]\n"
        "            [--checkpoint-interval SECONDS]]\n"
        "           full Fig. 4 DSE (bound-driven branch and bound; --no-prune\n"
        "           forces the exhaustive sweep, same best/front either way);\n"
        "           prints the chosen design and the Pareto front\n"
        "  inject <graph.tg> --cores N [--deadline SECONDS] [--levels 2|3|4]\n"
        "           [--strategy NAME] [--iterations I] [--trials T] [--seed S]\n"
        "           [--threads W] [--no-prune] [--multi-start K] [--json]\n"
        "           optimize, then run a Poisson SEU fault-injection campaign\n"
        "  campaign <graph.tg> --cores N [--deadline SECONDS] [--levels 2|3|4]\n"
        "           [--strategy NAME] [--iterations I] [--trials T] [--shard-size B]\n"
        "           [--seed S] [--threads W] [--policy full|busy|task]\n"
        "           [--weight-register X] [--weight-pipeline X] [--weight-memory X]\n"
        "           [--pipeline-bits B] [--json]\n"
        "           [--checkpoint FILE [--resume] [--checkpoint-every N]\n"
        "            [--checkpoint-interval SECONDS]]\n"
        "           optimize, then run the sharded fault-injection campaign with\n"
        "           differentiated fault sites (register file / pipeline / memory)\n"
        "           and per-task/per-core/per-site attribution; results are\n"
        "           byte-identical for every --threads and --shard-size\n"
        "  version | --version\n"
        "           print the library version\n"
        "  help | --help\n"
        "           show this message\n"
        "\n"
        "crash safety: --checkpoint FILE snapshots progress (atomically,\n"
        "with a rotated .prev fallback); Ctrl-C/SIGTERM stops gracefully\n"
        "with exit code 3, and --resume continues from the snapshot —\n"
        "final results are byte-identical to the uninterrupted run.\n"
        "exit codes: 0 ok, 1 no feasible design, 2 failure, 3 interrupted.\n";
}

/// For invocation errors: usage goes to stderr, exit status is 2.
/// (`help`/`--help` print the same text to stdout and exit 0.)
int usage_error() {
    print_usage(std::cerr);
    return k_exit_failure;
}

/// The --checkpoint option family, shared by optimize and campaign.
struct CheckpointArgs {
    std::optional<std::string> path;
    bool resume = false;
    std::uint64_t every = 8;  ///< flush after this many new records/shards
    double interval = 5.0;    ///< and at least this often (seconds)
};

CheckpointArgs checkpoint_args(const ArgList& args) {
    CheckpointArgs out;
    out.path = args.value("--checkpoint");
    out.resume = args.flag("--resume");
    out.every = args.u64("--checkpoint-every", out.every);
    out.interval = args.real("--checkpoint-interval", out.interval);
    if (!out.path && out.resume)
        throw Error(ErrorCategory::usage, "--resume requires --checkpoint <file>");
    return out;
}

/// Report a graceful SIGINT/SIGTERM stop. Under --json the machine
/// surface is the same {"error": ...} object every failure uses, with
/// the stable code "canceled".
int interrupted_exit(const ArgList& args, const std::optional<std::string>& saved_to) {
    Error error = saved_to ? Error(ErrorCategory::canceled,
                                   "interrupted; checkpoint saved, rerun with --resume "
                                   "to continue",
                                   *saved_to)
                           : Error(ErrorCategory::canceled,
                                   "interrupted; no --checkpoint given, progress lost");
    if (args.flag("--json")) {
        JsonValue out = JsonValue::object();
        out["error"] = to_json(error);
        std::cout << out.dump(2) << '\n';
    }
    std::cerr << "error: " << error.what() << '\n';
    return k_exit_interrupted;
}

/// Per-subcommand note channel for resume messaging (stderr, so JSON
/// stdout stays pure).
void note(const std::string& text) { std::cerr << "note: " << text << '\n'; }

SimExposurePolicy parse_sim_policy(const std::string& text) {
    if (text == "full") return SimExposurePolicy::full_duration;
    if (text == "busy") return SimExposurePolicy::busy_only;
    if (text == "task") return SimExposurePolicy::running_task;
    throw std::invalid_argument("--policy must be full, busy or task");
}

VoltageScalingTable table_for(std::uint64_t levels) {
    switch (levels) {
    case 2: return VoltageScalingTable::arm7_two_level();
    case 3: return VoltageScalingTable::arm7_three_level();
    case 4: return VoltageScalingTable::arm7_four_level();
    default: throw std::invalid_argument("--levels must be 2, 3 or 4");
    }
}

/// Deadline default: 1.3x the two-core nominal lower bound (the
/// repository's sweep normalization) when the user gives none.
double default_deadline(const TaskGraph& graph) {
    const MpsocArchitecture two(2, VoltageScalingTable::arm7_three_level());
    return 1.3 * tm_lower_bound_seconds(graph, two, {1, 1});
}

/// The shared front half of optimize/inject: problem from the CLI
/// arguments, validated at build().
Problem problem_from(const ArgList& args, const std::string& graph_path) {
    const TaskGraph graph = load_task_graph(graph_path);
    const double deadline = args.real("--deadline", default_deadline(graph));
    return ProblemBuilder()
        .graph(graph)
        .architecture(args.u64("--cores", 4), table_for(args.u64("--levels", 3)))
        .deadline_seconds(deadline)
        .build();
}

int cmd_generate(const ArgList& args) {
    const auto positional = args.positionals();
    if (positional.empty()) {
        std::cerr << "generate: missing kind\n";
        return usage_error();
    }
    const auto out_path = args.value("-o").has_value() ? args.value("-o") : args.value("--out");
    if (!out_path) {
        std::cerr << "generate: missing -o <file>\n";
        return 2;
    }
    const std::string& kind = positional[0];
    const std::uint64_t seed = args.u64("--seed", 1);
    std::optional<TaskGraph> graph;
    if (kind == "tgff") {
        TgffParams params;
        params.task_count = args.u64("--tasks", 20);
        params.batch_count = args.u64("--batches", 1);
        graph = generate_tgff_graph(params, seed);
    } else if (kind == "fft") {
        StandardGraphParams params;
        params.batch_count = args.u64("--batches", 1);
        graph = fft_task_graph(static_cast<std::uint32_t>(args.u64("--log2", 4)), params);
    } else if (kind == "gauss") {
        StandardGraphParams params;
        params.batch_count = args.u64("--batches", 1);
        graph = gaussian_elimination_task_graph(
            static_cast<std::uint32_t>(args.u64("--n", 8)), params);
    } else if (kind == "pipeline") {
        StandardGraphParams params;
        params.batch_count = args.u64("--batches", 50);
        graph = pipeline_task_graph(static_cast<std::uint32_t>(args.u64("--stages", 6)),
                                    static_cast<std::uint32_t>(args.u64("--width", 3)), params);
    } else if (kind == "scale") {
        // The giant-instance family of api/scenarios.h scale_problem():
        // a pipelined TGFF graph (batch 256 so the throughput term
        // dominates T_M) sized for 10^3..10^4 tasks. --cores only names
        // the instance here; pass the same value to `optimize --cores`.
        TgffParams params;
        params.task_count = args.u64("--tasks", 1000);
        params.batch_count = args.u64("--batches", 256);
        params.name = "scale_" + std::to_string(params.task_count) + "t" +
                      std::to_string(args.u64("--cores", 16)) + "c";
        graph = generate_tgff_graph(params, seed);
    } else if (kind == "mpeg2") {
        graph = mpeg2_decoder_graph();
    } else if (kind == "fig8") {
        graph = fig8_example_graph();
    } else {
        std::cerr << "generate: unknown kind '" << kind << "'\n";
        return 2;
    }
    save_task_graph(*out_path, *graph);
    std::cout << "wrote " << graph->name() << " (" << graph->task_count() << " tasks, "
              << graph->edge_count() << " edges) to " << *out_path << '\n';
    return 0;
}

int cmd_info(const ArgList& args) {
    const auto positional = args.positionals();
    if (positional.empty()) {
        std::cerr << "info: missing graph file\n";
        return 2;
    }
    const TaskGraph graph = load_task_graph(positional[0]);
    std::vector<TaskId> all(graph.task_count());
    for (TaskId t = 0; t < graph.task_count(); ++t) all[t] = t;
    if (args.flag("--json")) {
        JsonValue out = JsonValue::object();
        out["seamap_version"] = k_version_string;
        out["name"] = graph.name();
        out["tasks"] = static_cast<std::uint64_t>(graph.task_count());
        out["edges"] = static_cast<std::uint64_t>(graph.edge_count());
        out["batches"] = graph.batch_count();
        out["exec_cycles"] = graph.total_exec_cycles();
        out["comm_cycles"] = graph.total_comm_cycles();
        out["critical_path_cycles"] = graph.critical_path_cycles(true);
        out["register_banks"] = static_cast<std::uint64_t>(graph.register_file().size());
        out["register_bits"] = graph.register_file().total_bits();
        out["register_union_bits"] = graph.union_register_bits(all);
        out["sources"] = static_cast<std::uint64_t>(graph.source_tasks().size());
        out["sinks"] = static_cast<std::uint64_t>(graph.sink_tasks().size());
        std::cout << out.dump(2) << '\n';
        return 0;
    }
    std::cout << "graph    : " << graph.name() << '\n';
    std::cout << "tasks    : " << graph.task_count() << '\n';
    std::cout << "edges    : " << graph.edge_count() << '\n';
    std::cout << "batches  : " << graph.batch_count() << '\n';
    std::cout << "exec     : " << fmt_grouped(graph.total_exec_cycles()) << " cycles\n";
    std::cout << "comm     : " << fmt_grouped(graph.total_comm_cycles()) << " cycles\n";
    std::cout << "crit.path: " << fmt_grouped(graph.critical_path_cycles(true))
              << " cycles (with communication)\n";
    std::cout << "registers: " << graph.register_file().size() << " banks, "
              << fmt_grouped(graph.register_file().total_bits()) << " bits\n";
    std::cout << "reg.union: " << fmt_grouped(graph.union_register_bits(all))
              << " bits (single-core floor)\n";
    std::cout << "sources  : " << graph.source_tasks().size()
              << ", sinks: " << graph.sink_tasks().size() << '\n';
    return 0;
}

int cmd_optimize(const ArgList& args) {
    const auto positional = args.positionals();
    if (positional.empty()) {
        std::cerr << "optimize: missing graph file\n";
        return 2;
    }
    const Problem problem = problem_from(args, positional[0]);
    const TaskGraph& graph = problem.graph();
    const MpsocArchitecture& arch = problem.architecture();
    const std::size_t cores = arch.core_count();

    ExploreOptions options;
    options.strategy = args.value("--strategy").value_or("optimized");
    options.dse.search.max_iterations = args.u64("--iterations", 6'000);
    options.dse.search.seed = args.u64("--seed", 1);
    options.dse.search.require_all_cores = args.flag("--all-cores");
    options.dse.num_threads = args.u64("--threads", 1);
    options.dse.prune = !args.flag("--no-prune");
    options.dse.multi_start = args.u64("--multi-start", 1);

    const CheckpointArgs ckpt = checkpoint_args(args);
    std::optional<DseCheckpointer> checkpointer;
    if (ckpt.path) {
        checkpointer.emplace(*ckpt.path, explore_state_hash(problem, options));
        checkpointer->set_cadence(ckpt.every, ckpt.interval);
        if (ckpt.resume) {
            const auto info = checkpointer->load(graph.task_count(), cores);
            if (!info) {
                note("no checkpoint at " + *ckpt.path + "; starting fresh");
            } else {
                if (info->from_fallback)
                    note("primary checkpoint was corrupt; resumed from " + *ckpt.path +
                         ".prev");
                note("resuming: " + std::to_string(info->slots_decided) +
                     " scaling slots already decided");
            }
        }
    }
    const DseResult result = explore(problem, options, nullptr, &g_cancel,
                                     checkpointer ? &*checkpointer : nullptr);
    if (g_cancel.cancel_requested()) return interrupted_exit(args, ckpt.path);

    // --dot is a file side-effect, so it composes with --json (the
    // confirmation goes to stderr to keep stdout pure JSON); --gantt is
    // human-readable stdout and cannot.
    auto write_dot_file = [&](const std::string& path, const DsePoint& best,
                              std::ostream& log) -> bool {
        std::ofstream dot(path);
        if (!dot) {
            std::cerr << "cannot write " << path << '\n';
            return false;
        }
        std::vector<std::uint32_t> core_of(graph.task_count());
        for (TaskId t = 0; t < graph.task_count(); ++t) core_of[t] = best.mapping.core_of(t);
        write_dot_mapped(dot, graph, core_of);
        log << "mapped graph written to " << path << '\n';
        return true;
    };

    if (args.flag("--json")) {
        if (args.flag("--gantt")) std::cerr << "--gantt is ignored with --json\n";
        std::cout << optimize_report_json(problem, options.strategy, result).dump(2) << '\n';
        if (const auto dot_path = args.value("--dot"); dot_path && result.best)
            if (!write_dot_file(*dot_path, *result.best, std::cerr)) return 1;
        return result.best ? 0 : 1;
    }

    std::cout << "deadline " << fmt_double(problem.deadline_seconds(), 3)
              << " s | strategy " << options.strategy << " | scalings searched "
              << result.scalings_searched << "/" << result.scalings_enumerated << " ("
              << result.scalings_skipped_infeasible << " skipped, "
              << result.scalings_pruned << " pruned)\n";
    if (!result.best) {
        std::cerr << "no feasible design — loosen --deadline or add cores\n";
        return 1;
    }
    const DsePoint& best = *result.best;
    TableWriter design({"core", "level", "f (MHz)", "Vdd (V)", "tasks"});
    for (CoreId c = 0; c < cores; ++c) {
        std::vector<std::string> names;
        for (TaskId t : best.mapping.tasks_on(c)) names.push_back(graph.task(t).name);
        design.add_row({std::to_string(c), std::to_string(best.levels[c]),
                        fmt_double(arch.scaling_table().frequency_mhz(best.levels[c]), 1),
                        fmt_double(arch.scaling_table().vdd(best.levels[c]), 2),
                        join(names, " ")});
    }
    design.print_text(std::cout);
    std::cout << "P = " << fmt_double(best.metrics.power_mw, 2)
              << " mW | Gamma = " << fmt_sci(best.metrics.gamma, 3)
              << " | T_M = " << fmt_double(best.metrics.tm_seconds, 3) << " s | R = "
              << fmt_double(static_cast<double>(best.metrics.register_bits) / 1000.0, 1)
              << " kbit\n";

    std::cout << "\nPareto front (P mW, Gamma):";
    for (const DsePoint& point : result.pareto_front)
        std::cout << "  (" << fmt_double(point.metrics.power_mw, 2) << ", "
                  << fmt_sci(point.metrics.gamma, 2) << ")";
    std::cout << '\n';

    if (args.flag("--gantt")) {
        const Schedule schedule =
            ListScheduler{}.schedule(graph, best.mapping, arch, best.levels);
        write_gantt(std::cout, graph, schedule);
    }
    if (const auto dot_path = args.value("--dot"))
        if (!write_dot_file(*dot_path, best, std::cout)) return 1;
    return 0;
}

int cmd_inject(const ArgList& args) {
    const auto positional = args.positionals();
    if (positional.empty()) {
        std::cerr << "inject: missing graph file\n";
        return 2;
    }
    const Problem problem = problem_from(args, positional[0]);
    const std::uint64_t trials = args.u64("--trials", 200);
    const std::uint64_t seed = args.u64("--seed", 1);

    ExploreOptions options;
    options.strategy = args.value("--strategy").value_or("optimized");
    options.dse.search.max_iterations = args.u64("--iterations", 4'000);
    options.dse.search.seed = seed;
    options.dse.num_threads = args.u64("--threads", 1);
    options.dse.prune = !args.flag("--no-prune");
    options.dse.multi_start = args.u64("--multi-start", 1);
    const DseResult result = explore(problem, options);
    // One JSON shape for both outcomes: design null (and no "seu"
    // block) when nothing feasible exists, so consumers parse a stable
    // schema either way.
    auto inject_report_header = [&] {
        JsonValue out = JsonValue::object();
        out["seamap_version"] = k_version_string;
        out["strategy"] = options.strategy;
        out["trials"] = trials;
        out["seed"] = seed;
        out["design"] = result.best ? to_json(*result.best) : JsonValue();
        return out;
    };
    if (!result.best) {
        if (args.flag("--json"))
            std::cout << inject_report_header().dump(2) << '\n';
        else
            std::cerr << "no feasible design to inject into\n";
        return 1;
    }
    const DsePoint& best = *result.best;
    const Schedule schedule = ListScheduler{}.schedule(problem.graph(), best.mapping,
                                                       problem.architecture(), best.levels);
    const FaultInjector injector(problem.ser_model(), SimExposurePolicy::full_duration);
    const auto campaign =
        injector.run_campaign(problem.graph(), best.mapping, problem.architecture(),
                              best.levels, schedule, trials, seed);
    if (args.flag("--json")) {
        JsonValue out = inject_report_header();
        JsonValue measured = JsonValue::object();
        measured["analytic_gamma"] = campaign.analytic_gamma;
        measured["mean"] = campaign.seu_stats.mean();
        measured["ci95_halfwidth"] = campaign.seu_stats.ci95_halfwidth();
        measured["stdev"] = campaign.seu_stats.stdev();
        measured["min"] = campaign.seu_stats.min();
        measured["max"] = campaign.seu_stats.max();
        out["seu"] = std::move(measured);
        std::cout << out.dump(2) << '\n';
        return 0;
    }
    std::cout << "design   : P " << fmt_double(best.metrics.power_mw, 2) << " mW, T_M "
              << fmt_double(best.metrics.tm_seconds, 3) << " s\n";
    std::cout << "analytic : " << fmt_sci(campaign.analytic_gamma, 4) << " SEUs (eq. 3)\n";
    std::cout << "measured : " << fmt_sci(campaign.seu_stats.mean(), 4) << " +/- "
              << fmt_sci(campaign.seu_stats.ci95_halfwidth(), 2) << " over " << trials
              << " trials\n";
    std::cout << "spread   : stdev " << fmt_sci(campaign.seu_stats.stdev(), 3) << ", min "
              << campaign.seu_stats.min() << ", max " << campaign.seu_stats.max() << '\n';
    return 0;
}

int cmd_campaign(const ArgList& args) {
    const auto positional = args.positionals();
    if (positional.empty()) {
        std::cerr << "campaign: missing graph file\n";
        return 2;
    }
    const Problem problem = problem_from(args, positional[0]);
    const std::uint64_t seed = args.u64("--seed", 1);

    ExploreOptions options;
    options.strategy = args.value("--strategy").value_or("optimized");
    options.dse.search.max_iterations = args.u64("--iterations", 4'000);
    options.dse.search.seed = seed;
    options.dse.num_threads = args.u64("--threads", 1);
    options.dse.prune = !args.flag("--no-prune");
    options.dse.multi_start = args.u64("--multi-start", 1);

    // Two snapshots ride one --checkpoint stem: <FILE>.dse for the
    // exploration (a completed snapshot doubles as a memoized explore on
    // resume) and <FILE>.sim for the campaign's shard partials.
    const CheckpointArgs ckpt = checkpoint_args(args);
    std::optional<DseCheckpointer> dse_ckpt;
    if (ckpt.path) {
        dse_ckpt.emplace(*ckpt.path + ".dse", explore_state_hash(problem, options));
        dse_ckpt->set_cadence(ckpt.every, ckpt.interval);
        if (ckpt.resume) {
            const auto info = dse_ckpt->load(problem.graph().task_count(),
                                             problem.architecture().core_count());
            if (info && info->slots_decided > 0)
                note("resuming exploration: " + std::to_string(info->slots_decided) +
                     " scaling slots already decided");
        }
    }
    const DseResult result =
        explore(problem, options, nullptr, &g_cancel, dse_ckpt ? &*dse_ckpt : nullptr);
    if (g_cancel.cancel_requested())
        return interrupted_exit(
            args, ckpt.path ? std::optional<std::string>(*ckpt.path + ".dse") : std::nullopt);

    if (!result.best) {
        if (args.flag("--json"))
            std::cout << campaign_report_json(problem, options.strategy, nullptr, nullptr)
                             .dump(2)
                      << '\n';
        else
            std::cerr << "no feasible design to run the campaign on\n";
        return 1;
    }
    const DsePoint& best = *result.best;
    const TaskGraph& graph = problem.graph();
    const MpsocArchitecture& arch = problem.architecture();
    const Schedule schedule =
        ListScheduler{}.schedule(graph, best.mapping, arch, best.levels);

    CampaignConfig config;
    config.trials = args.u64("--trials", 20'000);
    config.shard_size = args.u64("--shard-size", 1024);
    config.num_threads = args.u64("--threads", 1);
    config.seed = seed;
    config.policy = parse_sim_policy(args.value("--policy").value_or("full"));
    config.weights.register_file =
        args.real("--weight-register", config.weights.register_file);
    config.weights.pipeline = args.real("--weight-pipeline", config.weights.pipeline);
    config.weights.memory = args.real("--weight-memory", config.weights.memory);
    config.pipeline_bits = args.real("--pipeline-bits", config.pipeline_bits);
    const CampaignEngine engine(problem.ser_model(), config);

    std::optional<CampaignCheckpointer> sim_ckpt;
    if (ckpt.path) {
        sim_ckpt.emplace(*ckpt.path + ".sim",
                         campaign_state_hash(graph, best.mapping, arch, best.levels,
                                             schedule, problem.ser_model(), config));
        sim_ckpt->set_cadence(ckpt.every, ckpt.interval);
        if (ckpt.resume) {
            const auto info = sim_ckpt->load();
            if (info && info->shards_completed > 0)
                note("resuming campaign: " + std::to_string(info->shards_completed) + "/" +
                     std::to_string(info->shard_count) + " shards already measured");
        }
    }
    const CampaignReport report = engine.run(graph, best.mapping, arch, best.levels,
                                             schedule, &g_cancel,
                                             sim_ckpt ? &*sim_ckpt : nullptr);
    if (g_cancel.cancel_requested() && report.shards_completed < report.shards)
        return interrupted_exit(
            args, ckpt.path ? std::optional<std::string>(*ckpt.path + ".sim") : std::nullopt);

    if (args.flag("--json")) {
        std::cout << campaign_report_json(problem, options.strategy, &best, &report).dump(2)
                  << '\n';
        return 0;
    }
    std::cout << "design   : P " << fmt_double(best.metrics.power_mw, 2) << " mW, T_M "
              << fmt_double(best.metrics.tm_seconds, 3) << " s\n";
    std::cout << "campaign : " << report.trials << " trials in " << report.shards
              << " shards of " << report.shard_size << " (seed " << report.seed << ")\n";
    std::cout << "analytic : " << fmt_sci(report.analytic_gamma, 4)
              << " weighted SEUs over all sites\n";
    std::cout << "measured : " << fmt_sci(report.total_stats.mean(), 4) << " +/- "
              << fmt_sci(report.total_stats.ci95_halfwidth(), 2) << " (95% CI)\n\n";

    TableWriter sites({"site", "analytic", "mean", "stdev", "95% CI", "hits"});
    for (std::size_t s = 0; s < k_fault_site_count; ++s) {
        const FaultSite site = static_cast<FaultSite>(s);
        const SiteReport& site_report = report.site(site);
        sites.add_row({std::string(fault_site_name(site)),
                       fmt_sci(site_report.analytic_gamma, 3),
                       fmt_sci(site_report.stats.mean(), 3),
                       fmt_sci(site_report.stats.stdev(), 2),
                       fmt_sci(site_report.stats.ci95_halfwidth(), 2),
                       fmt_grouped(site_report.stats.sum())});
    }
    sites.print_text(std::cout);

    std::cout << "\nper-core hits:";
    for (std::size_t c = 0; c < report.hits_per_core.size(); ++c)
        std::cout << "  core" << c << "=" << report.hits_per_core[c];
    std::cout << "\nmost vulnerable tasks (pipeline+memory hits):\n";
    std::vector<TaskId> order(graph.task_count());
    for (TaskId t = 0; t < order.size(); ++t) order[t] = t;
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
        if (report.hits_per_task[a] != report.hits_per_task[b])
            return report.hits_per_task[a] > report.hits_per_task[b];
        return a < b;
    });
    TableWriter tasks({"task", "core", "hits"});
    for (std::size_t i = 0; i < std::min<std::size_t>(8, order.size()); ++i) {
        const TaskId t = order[i];
        tasks.add_row({graph.task(t).name, std::to_string(best.mapping.core_of(t)),
                       fmt_grouped(report.hits_per_task[t])});
    }
    tasks.print_text(std::cout);
    return 0;
}

} // namespace

namespace {

/// One failure surface for every thrown error: a single `error:` line
/// on stderr, a {"error": {"code", "message", ...}} object on stdout
/// under --json, exit code 2. Ad-hoc exceptions from lower layers are
/// folded into the same shape with a conservative category.
int report_failure(const ArgList& args, const Error& error) {
    if (args.flag("--json")) {
        JsonValue out = JsonValue::object();
        out["error"] = to_json(error);
        std::cout << out.dump(2) << '\n';
    }
    std::cerr << "error: " << error.what() << '\n';
    return k_exit_failure;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage_error();
    const std::string command = argv[1];
    const ArgList args(argc, argv, 2);
    install_signal_handlers();
    try {
        if (command == "version" || command == "--version") {
            std::cout << "seamap " << k_version_string << '\n';
            return 0;
        }
        if (command == "--help" || command == "-h" || command == "help" ||
            args.flag("--help") || args.flag("-h")) {
            print_usage(std::cout);
            return 0;
        }
        if (command == "generate") return cmd_generate(args);
        if (command == "info") return cmd_info(args);
        if (command == "optimize") return cmd_optimize(args);
        if (command == "inject") return cmd_inject(args);
        if (command == "campaign") return cmd_campaign(args);
        std::cerr << "unknown subcommand '" << command << "'\n";
        return usage_error();
    } catch (const Error& e) {
        return report_failure(args, e);
    } catch (const std::invalid_argument& e) {
        return report_failure(args, Error(ErrorCategory::invalid_argument, e.what()));
    } catch (const std::exception& e) {
        return report_failure(args, Error(ErrorCategory::internal, e.what()));
    }
}
