#!/usr/bin/env python3
"""Diff two bench_micro JSON outputs (Google Benchmark format).

    tools/diff_bench.py BASELINE.json CURRENT.json [--key REGEX]

Prints a table of real-time ratios (current / baseline) for every
benchmark present in both files, highlighting the key benchmarks the
perf trajectory tracks (end-to-end explore, evaluation hot paths) by
default. Informational only — exits 0 regardless of regressions, since
shared CI runners are too noisy to gate on; the table in the job log is
the artifact.
"""
import argparse
import json
import re
import sys

KEY_DEFAULT = r"bm_explore|bm_multi_start|bm_eval_full|bm_sa_neighborhood_step|bm_strategy_search"


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--key", default=KEY_DEFAULT,
                        help="regex naming the key benchmarks to mark (default: %(default)s)")
    args = parser.parse_args()

    try:
        baseline = load(args.baseline)
    except OSError as error:
        print(f"diff_bench: no baseline ({error}); nothing to diff", file=sys.stderr)
        return 0
    current = load(args.current)
    key = re.compile(args.key)

    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("diff_bench: no common benchmarks between the two files", file=sys.stderr)
        return 0

    unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

    def to_ns(bench):
        # real_time is expressed in the entry's own time_unit, which can
        # differ per benchmark and per file — normalize before comparing.
        return bench["real_time"] * unit_ns.get(bench.get("time_unit", "ns"), 1.0)

    def fmt(ns):
        for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
            if ns >= scale:
                return f"{ns / scale:10.1f}{unit}"
        return f"{ns:10.1f}ns"

    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'ratio':>7}")
    for name in shared:
        base_t = to_ns(baseline[name])
        cur_t = to_ns(current[name])
        ratio = cur_t / base_t if base_t else float("inf")
        mark = " *" if key.search(name) else ""
        print(f"{name:<{width}}  {fmt(base_t)}  {fmt(cur_t)}  {ratio:>6.2f}x{mark}")
    only_new = sorted(set(current) - set(baseline))
    if only_new:
        print(f"\nnew benchmarks (no baseline): {', '.join(only_new)}")
    print("\n(* = key perf-trajectory benchmark; ratio < 1 is faster than baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
