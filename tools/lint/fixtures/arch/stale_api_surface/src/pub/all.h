#pragma once

namespace fx {

inline int api_entry(int renamed_arg) {
    return renamed_arg;
}

} // namespace fx
