#pragma once

namespace fx {

struct ValueBox {
    int held = 0;
};

} // namespace fx
