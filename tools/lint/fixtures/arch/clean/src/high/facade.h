#pragma once

#include "low/value.h"

namespace fx {

inline int unwrap(const ValueBox& b) {
    return b.held;
}

} // namespace fx
