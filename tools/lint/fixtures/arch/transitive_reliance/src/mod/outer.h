#pragma once

#include "mod/middle.h"

namespace fx {

struct OuterShell {
    MiddleStage stage;
    DeepState snapshot;
};

} // namespace fx
