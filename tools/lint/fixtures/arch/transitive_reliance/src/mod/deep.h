#pragma once

namespace fx {

struct DeepState {
    int depth = 0;
};

} // namespace fx
