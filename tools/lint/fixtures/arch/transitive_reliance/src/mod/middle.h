#pragma once

#include "mod/deep.h"

namespace fx {

struct MiddleStage {
    DeepState inner;
};

} // namespace fx
