#ifndef FX_MOD_OLD_STYLE_H
#define FX_MOD_OLD_STYLE_H

namespace fx {

struct OldGuarded {
    int g = 0;
};

} // namespace fx

#endif
