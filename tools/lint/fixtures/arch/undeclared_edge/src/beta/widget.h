#pragma once

namespace fx {

struct WidgetFrame {
    int id = 0;
};

} // namespace fx
