#pragma once

#include "beta/widget.h"

namespace fx {

inline int ident(const WidgetFrame& w) {
    return w.id;
}

} // namespace fx
