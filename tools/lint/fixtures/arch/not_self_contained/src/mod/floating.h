#pragma once

namespace fx {

inline int probe(const LonelyType& t) {
    return t.x;
}

} // namespace fx
