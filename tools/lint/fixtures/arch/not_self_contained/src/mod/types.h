#pragma once

namespace fx {

struct LonelyType {
    int x = 0;
};

} // namespace fx
