#pragma once

namespace fx {

struct HelperGadget {
    int n = 0;
};

} // namespace fx
