#include "mod/helper.h"

namespace fx {

int answer() {
    return 42;
}

} // namespace fx
