#pragma once

#include "mod/ping.h"

namespace fx {

struct PongSide {
    PingSide* other = nullptr;
};

} // namespace fx
