#pragma once

#include "mod/pong.h"

namespace fx {

struct PingSide {
    PongSide* other = nullptr;
};

} // namespace fx
