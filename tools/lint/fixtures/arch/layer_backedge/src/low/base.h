#pragma once

#include "high/top.h"

namespace fx {

inline int peek(const TopThing& t) {
    return t.v;
}

} // namespace fx
