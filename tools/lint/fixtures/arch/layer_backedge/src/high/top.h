#pragma once

namespace fx {

struct TopThing {
    int v = 0;
};

} // namespace fx
