#pragma once

// arch-check: allow(unused-include)

namespace fx {

struct SloppyThing {
    int z = 0;
};

} // namespace fx
