// Negative fixture: suppressions that do not carry their weight — an
// allow() without a reason, and a push-allow that is never popped.
// Both must be rejected as bad-suppression (and the reasonless allow
// must NOT silence the float-eq finding on its line).
// seamap-lint-fixture: expect bad-suppression float-eq

namespace seamap_fixture {

// seamap-lint: push-allow(hot-path-alloc) -- opened but never closed

bool reasonless(double x) {
    return x == 0.25; // seamap-lint: allow(float-eq)
}

} // namespace seamap_fixture
