// Negative fixture: ambient randomness in search code. Every form the
// rule bans appears once; the linter must flag this file with `rng`
// (and nothing else).
// seamap-lint-fixture: expect rng

#include <cstdlib>
#include <random>

namespace seamap_fixture {

int ambient_seed() {
    std::random_device device; // hardware entropy: not reproducible
    std::mt19937_64 engine(device());
    std::srand(42);
    return static_cast<int>(engine()) + std::rand();
}

} // namespace seamap_fixture
