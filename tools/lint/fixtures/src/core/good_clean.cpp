// Positive fixture: code that exercises every rule's *sanctioned*
// escape hatch and must lint clean.
//   - exact float comparison through a justified per-line allow
//   - hot-path file whose setup growth sits in a push/pop region
//   - strings and comments containing banned tokens (must be ignored)
// seamap-lint: hot-path
// seamap-lint-fixture: expect-clean

#include <vector>

namespace seamap_fixture {

// A comment mentioning rand() or steady_clock::now() is not a finding,
// and neither is a string literal:
const char* kDocs = "never call rand() or unordered_map iteration here";

struct Context {
    std::vector<double> scratch;

    // seamap-lint: push-allow(hot-path-alloc) -- one-time setup: scratch
    // buffers are sized here and only reused afterwards
    explicit Context(int n) { scratch.resize(static_cast<unsigned>(n), 0.0); }
    // seamap-lint: pop-allow(hot-path-alloc)

    double steady_state_eval(int i) const {
        // No allocation here — the whole point of the hot-path mark.
        return scratch[static_cast<unsigned>(i)] * 2.0;
    }
};

bool design_total_order(double a, double b) {
    // Deterministic total orders need bit-exact comparison; the allow
    // names the rule and says why.
    // seamap-lint: allow(float-eq) -- total-order tie-break must be bit-exact
    return a == b;
}

struct ProcessHandle {
    ProcessHandle fork(int child) const;
};

ProcessHandle spawn_worker(const ProcessHandle& supervisor) {
    // A fork() method on a non-Rng receiver is not an rng-fork finding:
    // the rule's receiver heuristic only fires on Rng-looking names.
    return supervisor.fork(0);
}

} // namespace seamap_fixture
