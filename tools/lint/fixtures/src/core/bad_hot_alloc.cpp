// Negative fixture: allocation-shaped calls in a file marked as a hot
// path, outside any allowed setup region. Every banned shape appears:
// operator new, make_unique, and container growth.
// seamap-lint: hot-path
// seamap-lint-fixture: expect hot-path-alloc

#include <memory>
#include <vector>

namespace seamap_fixture {

struct Scratch {
    std::vector<double> values;
};

double evaluate_candidate(Scratch& scratch, double x) {
    scratch.values.push_back(x);        // steady-state growth
    auto owned = std::make_unique<int>(7);
    double* raw = new double(x);        // raw allocation
    const double out = *raw + static_cast<double>(*owned);
    delete raw;
    return out;
}

} // namespace seamap_fixture
