// Negative fixture: wall-clock reads inside search/eval code. Timing
// may flow only through the sanctioned cancellation utilities, never
// be sampled ad hoc — a clock read inside a search loop makes results
// depend on machine load.
// seamap-lint-fixture: expect time

#include <chrono>
#include <ctime>

namespace seamap_fixture {

double search_step_budget() {
    const auto started = std::chrono::steady_clock::now();
    std::time_t wall = std::time(nullptr);
    return static_cast<double>(started.time_since_epoch().count()) +
           static_cast<double>(wall);
}

} // namespace seamap_fixture
