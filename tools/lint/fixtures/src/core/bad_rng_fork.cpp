// Negative fixture: deprecated Rng::fork() call. Both receiver shapes
// appear (value dot-call and pointer arrow-call), and a fork_at() call
// sits between them to prove the rule does not misfire on the
// sanctioned replacement.
// seamap-lint-fixture: expect rng-fork

namespace seamap_fixture {

struct Rng {
    Rng fork(unsigned long long id);
    Rng fork_at(unsigned long long id) const;
};

void drive(Rng& parent, Rng* shared) {
    auto child = parent.fork(0); // deprecated: draw-position-coupled
    auto stable = parent.fork_at(1); // fine: order-invariant
    auto other = shared->fork(2); // deprecated through a pointer too
    (void)child;
    (void)stable;
    (void)other;
}

} // namespace seamap_fixture
