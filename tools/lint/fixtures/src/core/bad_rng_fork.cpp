// Negative fixture: deprecated Rng::fork() call. Both receiver shapes
// appear (value dot-call and pointer arrow-call), plus an inline
// temporary, and a fork_at() call sits between them to prove the rule
// does not misfire on the sanctioned replacement.
// seamap-lint-fixture: expect rng-fork

namespace seamap_fixture {

struct Rng {
    Rng(unsigned long long seed);
    Rng fork(unsigned long long id);
    Rng fork_at(unsigned long long id) const;
};

void drive(Rng& parent_rng, Rng* shard_rng) {
    auto child = parent_rng.fork(0); // deprecated: draw-position-coupled
    auto stable = parent_rng.fork_at(1); // fine: order-invariant
    auto other = shard_rng->fork(2); // deprecated through a pointer too
    auto inline_child = Rng(7).fork(3); // deprecated on a temporary too
    (void)child;
    (void)stable;
    (void)other;
    (void)inline_child;
}

} // namespace seamap_fixture
