// Negative fixture: raw floating-point equality. Both operand shapes
// the analyzer understands appear: a float literal and a double-typed
// member field.
// seamap-lint-fixture: expect float-eq

namespace seamap_fixture {

struct Metrics {
    double power_mw = 0.0;
    double gamma = 0.0;
};

bool same_design(const Metrics& a, const Metrics& b) {
    if (a.power_mw == b.power_mw) return true; // raw field comparison
    double budget = 1.5;
    return budget != 1.5; // raw literal comparison
}

} // namespace seamap_fixture
