// Negative fixture: an order-unstable container in a JSON-producing
// path (src/api/). Hash iteration order would feed straight into the
// report, breaking byte-identical output across standard libraries.
// seamap-lint-fixture: expect unordered-iter

#include <string>
#include <unordered_map>

namespace seamap_fixture {

std::string metrics_json(const std::unordered_map<std::string, double>& metrics) {
    std::string out = "{";
    for (const auto& [key, value] : metrics) { // hash order leaks into the report
        out += "\"" + key + "\":" + std::to_string(value) + ",";
    }
    out += "}";
    return out;
}

} // namespace seamap_fixture
