#!/usr/bin/env python3
"""arch_check — the repo's architecture conformance analyzer.

Where seamap_lint.py (PR 6) enforces line-level determinism invariants,
this tool enforces the *architecture-level* ones: the acyclic module
layering that lets every PR refactor freely, include hygiene, header
self-containment, and a committed snapshot of the public API surface.
It extracts the full `#include` graph of the tree and checks:

  layer               Every cross-module include must be an edge the
                      checked-in layer DAG (tools/lint/layers.toml)
                      declares. A back-edge (one that inverts declared
                      layering) or an undeclared edge is a finding,
                      with the offending declared chain printed.
  cycle               No include cycles among project files, at file
                      granularity (module cycles are already impossible
                      when every edge is declared and the declared DAG
                      is acyclic — which is itself validated).
  unused-include      IWYU-lite: a quoted include whose header
                      contributes no symbol the including file
                      references is dead weight and a hidden layering
                      liability. Symbols are regex-harvested per header
                      (declaration scope only) by the same stripping
                      scanner seamap_lint uses (tools/lint/scanlib.py).
                      `// arch-check: export` on an include line marks
                      a deliberate re-export (umbrella headers): the
                      include is exempt and its symbols count as
                      provided by the including header.
  transitive-include  A public header that references a symbol whose
                      home header it only receives *transitively* will
                      break when an unrelated include chain is cleaned
                      up. Headers must include what they use directly.
  self-contained      A header that references a symbol whose home
                      header it does not include at all (not even
                      transitively) only compiles by courtesy of its
                      includers. This is the static half of the
                      `header_selfcheck` build target, which compiles a
                      one-line TU per public header as proof.
  header-guard        Tree standard is `#pragma once`; a header without
                      it (or carrying an `#ifndef` guard instead) is
                      flagged.
  api-surface         The normalized declaration surface of every
                      header reachable from the public umbrella
                      (src/seamap/seamap.h) is snapshotted into
                      tools/lint/api_surface.txt. Any drift — a
                      signature, enum, default argument, or inline body
                      in an installed header — fails until the snapshot
                      is deliberately regenerated with `--update`.
  bad-suppression     Malformed/unreasoned/unbalanced directives, as in
                      seamap_lint.

Suppressions use the shared reasoned-directive grammar of
tools/lint/scanlib.py with the `arch-check:` prefix:

  // arch-check: allow(rule[,rule]) -- reason
  // arch-check: push-allow(rule[,rule]) -- reason
  // arch-check: pop-allow(rule[,rule])
  // arch-check: export          (include re-export marker, see above)

Usage:
  arch_check.py [--root DIR] [--layers FILE]   analyze the configured tree
  arch_check.py --update                       regenerate api_surface.txt
  arch_check.py --self-test                    run the fixture suite
  arch_check.py --list-rules                   print rule ids

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Zero dependencies beyond python3 (tomllib when available, with a
fallback parser for the layers.toml subset), so it runs identically on
dev machines and CI.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from collections import deque

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from scanlib import Finding, Suppressions, collect_files, load_source  # noqa: E402

RULES = {
    "layer": "cross-module include not declared in the layer DAG (tools/lint/layers.toml)",
    "cycle": "include cycle among project files",
    "unused-include": "included header contributes no referenced symbol (IWYU-lite)",
    "transitive-include": "public header relies on a transitive include for a referenced symbol",
    "self-contained": "header references a symbol no include path provides (not self-contained)",
    "header-guard": "header guard inconsistent with the tree standard (#pragma once)",
    "api-surface": "public API surface drifted from the committed snapshot (regenerate with --update)",
    "bad-suppression": "malformed arch-check suppression (missing reason or unbalanced push/pop)",
}

DIRECTIVE_PREFIX = "arch-check"
MARKERS = ("export",)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(["<])([^">]+)[">]')
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b", re.MULTILINE)
IFNDEF_GUARD_RE = re.compile(
    r"^\s*#\s*ifndef\s+([A-Za-z_]\w*)\s*\n\s*#\s*define\s+\1\b", re.MULTILINE)
DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Za-z_]\w*)", re.MULTILINE)
IDENT_RE = re.compile(r"[A-Za-z_]\w*")

# Words never treated as cross-header symbol references by the
# transitive-include/self-contained rules: keywords, ubiquitous
# vocabulary-type member names, and fundamental types. The rules also
# ignore words shorter than 4 characters — single loop variables and
# terse locals are far too collision-prone for a regex symbol table.
STOPWORDS = frozenset("""
    alignas alignof auto bool break case catch char class concept const
    constexpr consteval constinit continue decltype default delete do
    double else enum explicit export extern false final float for friend
    goto if inline int long mutable namespace new noexcept nullptr
    operator override private protected public register requires return
    short signed sizeof static struct switch template this throw true try
    typedef typename union unsigned using virtual void volatile while
    begin end size data empty front back first second push_back clear
    reserve resize count find insert erase emplace_back value type name
    std size_t uint8_t uint16_t uint32_t uint64_t int8_t int16_t int32_t
    int64_t ptrdiff_t string string_view vector array span optional
    nullopt pair tuple move swap forward make_pair make_unique make_shared
    unique_ptr shared_ptr function
""".split())


# --------------------------------------------------------------------------
# layers.toml

class ConfigError(Exception):
    pass


def _parse_toml_fallback(text: str) -> dict:
    """Minimal parser for the layers.toml subset ([section], key = [..]
    / "*" / "string" lists of strings), for pythons without tomllib."""
    doc = {}
    section = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip()
            doc[section] = {}
            continue
        if "=" not in line or section is None:
            raise ConfigError("layers.toml: cannot parse line %r" % raw)
        key, _, value = line.partition("=")
        key, value = key.strip().strip('"'), value.strip()
        if value.startswith("["):
            items = re.findall(r'"([^"]*)"', value)
            doc[section][key] = list(items)
        elif value.startswith('"'):
            doc[section][key] = value.strip('"')
        else:
            raise ConfigError("layers.toml: unsupported value %r" % value)
    return doc


def load_layers_config(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    try:
        import tomllib
        doc = tomllib.loads(text)
    except ModuleNotFoundError:
        doc = _parse_toml_fallback(text)
    if "layers" not in doc or not isinstance(doc["layers"], dict):
        raise ConfigError("layers.toml: missing [layers] table")
    config = {
        "layers": doc["layers"],
        "roots": doc.get("scan", {}).get("roots", ["src"]),
        "exclude": doc.get("scan", {}).get("exclude", []),
        "umbrella": doc.get("api_surface", {}).get("umbrella"),
        "snapshot": doc.get("api_surface", {}).get("snapshot"),
    }
    for module, deps in config["layers"].items():
        if deps == "*":
            continue
        if not isinstance(deps, list) or not all(isinstance(d, str) for d in deps):
            raise ConfigError("layers.toml: deps of %r must be a list or \"*\"" % module)
    return config


def declared_cycle(layers: dict):
    """Return one cycle (list of modules) in the declared DAG, or None.
    Harness modules ("*") are sinks of the check: they may depend on
    anything, but nothing may depend on them unless declared."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {m: WHITE for m in layers}
    stack = []

    def dfs(m):
        color[m] = GRAY
        stack.append(m)
        deps = layers[m]
        for d in ([] if deps == "*" else deps):
            if d not in layers:
                continue  # reported separately as a config error
            if color[d] == GRAY:
                return stack[stack.index(d):] + [d]
            if color[d] == WHITE:
                cycle = dfs(d)
                if cycle:
                    return cycle
        stack.pop()
        color[m] = BLACK
        return None

    for m in sorted(layers):
        if color[m] == WHITE:
            cycle = dfs(m)
            if cycle:
                return cycle
    return None


def declared_path(layers: dict, src: str, dst: str):
    """Shortest declared dependency path src -> ... -> dst, or None."""
    if src not in layers:
        return None
    parent = {src: None}
    queue = deque([src])
    while queue:
        m = queue.popleft()
        if m == dst:
            path = []
            while m is not None:
                path.append(m)
                m = parent[m]
            return list(reversed(path))
        deps = layers.get(m, [])
        for d in ([] if deps == "*" else deps):
            if d not in parent:
                parent[d] = m
                queue.append(d)
    return None


# --------------------------------------------------------------------------
# Symbol harvesting (declaration scope only)

_TYPE_HEAD_RE = re.compile(
    r"\b(?:class|struct|union|enum)\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)")
_TRAILING_IDENT = re.compile(r"([A-Za-z_]\w*)\s*$")


def _strip_template_lists(text: str) -> str:
    prev = None
    while prev != text:
        prev = text
        text = re.sub(r"<[^<>]*>", "", text)
    return text


def _harvest_stmt(stmt: str, symbols: set):
    stmt = _strip_template_lists(stmt.strip())
    if not stmt:
        return
    if stmt.startswith("friend "):
        return
    if stmt.startswith("using "):
        m = re.match(r"using\s+([A-Za-z_]\w*)\s*=", stmt)
        if m:
            symbols.add(m.group(1))
            return
        m = _TRAILING_IDENT.search(stmt)
        if m:
            symbols.add(m.group(1))
        return
    if stmt.startswith("typedef"):
        m = _TRAILING_IDENT.search(stmt)
        if m:
            symbols.add(m.group(1))
        return
    m = _TYPE_HEAD_RE.search(stmt)
    if m:  # forward declaration / head without body
        symbols.add(m.group(1))
        return
    paren = stmt.find("(")
    if paren >= 0:  # function declaration: name is just before the '('
        m = _TRAILING_IDENT.search(stmt[:paren])
        if m and m.group(1) != "operator":
            symbols.add(m.group(1))
        return
    target = re.sub(r"\[[^\]]*\]\s*$", "", stmt.partition("=")[0])
    m = _TRAILING_IDENT.search(target)  # variable / constant declaration
    if m and m.group(1) not in ("public", "private", "protected"):
        symbols.add(m.group(1))


def _classify_brace(head: str) -> str:
    head = _strip_template_lists(head)
    if re.search(r"\bnamespace\b", head) and "(" not in head:
        return "ns"
    if re.search(r"\benum\b", head) and "(" not in head:
        return "enum"
    if re.search(r"\b(?:class|struct|union)\b", head) and "(" not in head \
            and "=" not in head:
        return "type"
    return "body"


def harvest_symbols(stripped_text: str) -> set:
    """Names a header *provides*: macro defines plus every type, alias,
    enumerator, function, method and constant declared at namespace or
    class scope. Function bodies are opaque — locals never pollute the
    table. Deliberately over-approximates member names (a member hit
    counts the include as used); precision matters only for the
    cross-header reference rules, which additionally demand a unique
    owner."""
    symbols = set()
    for m in DEFINE_RE.finditer(stripped_text):
        symbols.add(m.group(1))
    code = re.sub(r"^\s*#[^\n]*", "", stripped_text, flags=re.MULTILINE)

    stack = []  # 'ns' | 'type' | 'enum' | 'body'
    stmt = []

    def decl_scope() -> bool:
        return all(kind != "body" for kind in stack)

    def flush_enum(chunk: str):
        m = re.match(r"\s*([A-Za-z_]\w*)", chunk)
        if m:
            symbols.add(m.group(1))

    for ch in code:
        if ch == "{":
            head = "".join(stmt)
            if decl_scope():
                kind = _classify_brace(head)
                if kind in ("type", "enum"):
                    m = _TYPE_HEAD_RE.search(_strip_template_lists(head))
                    if m:
                        symbols.add(m.group(1))
                elif kind == "body":
                    # Inline function/method definition at decl scope.
                    paren = head.find("(")
                    if paren >= 0:
                        m = _TRAILING_IDENT.search(_strip_template_lists(head[:paren]))
                        if m and m.group(1) != "operator":
                            symbols.add(m.group(1))
            else:
                kind = "body"
            stack.append(kind)
            stmt = []
        elif ch == "}":
            if stack and stack[-1] == "enum" and decl_scope():
                flush_enum("".join(stmt).partition("=")[0])
            if stack:
                stack.pop()
            stmt = []
        elif ch == ";":
            if decl_scope():
                if stack and stack[-1] == "enum":
                    pass  # scoped-enum underlying type, not an enumerator
                else:
                    _harvest_stmt("".join(stmt), symbols)
            stmt = []
        elif ch == "," and stack and stack[-1] == "enum" and decl_scope():
            flush_enum("".join(stmt).partition("=")[0])
            stmt = []
        else:
            stmt.append(ch)
    return symbols


# --------------------------------------------------------------------------
# Tree model


class File:
    def __init__(self, relpath, src, text_lines, raw_text):
        self.relpath = relpath
        self.src = src  # scanlib.SourceFile (comments+strings stripped)
        self.text_lines = text_lines  # comments stripped, strings intact
        self.raw_text = raw_text
        self.suppressions = Suppressions(src)
        # [(line_no, target_text, resolved_relpath_or_None, exported)]
        self.includes = []
        self.module = module_of(relpath)
        self.is_header = relpath.endswith((".h", ".hpp"))
        self.stripped_text = "\n".join(src.code_lines)
        self.provides = harvest_symbols(self.stripped_text) if self.is_header else set()
        nonincl = [l for l in src.code_lines if not INCLUDE_RE.match(l)]
        self.words = frozenset(IDENT_RE.findall("\n".join(nonincl)))


def module_of(relpath: str) -> str:
    parts = relpath.replace(os.sep, "/").split("/")
    if parts[0] == "src" and len(parts) > 2:
        return parts[1]
    return parts[0]


class Analysis:
    def __init__(self, root: str, config: dict, layers_relpath: str):
        self.root = root
        self.config = config
        self.layers_relpath = layers_relpath
        self.findings = []
        self.files = {}  # relpath -> File
        self._load_tree()
        self._resolve_includes()

    # -- loading ----------------------------------------------------------

    def _load_tree(self):
        exclude = tuple(e.rstrip("/") + "/" for e in self.config["exclude"])
        for rootdir in self.config["roots"]:
            full = os.path.join(self.root, rootdir)
            if not os.path.isdir(full):
                continue
            for path in collect_files(self.root, [rootdir]):
                relpath = os.path.relpath(path, self.root).replace(os.sep, "/")
                if relpath.startswith(exclude):
                    continue
                with open(path, "r", encoding="utf-8", errors="replace") as f:
                    raw = f.read()
                src = load_source(path, relpath, DIRECTIVE_PREFIX, RULES, MARKERS)
                text = load_source(path, relpath, DIRECTIVE_PREFIX, RULES, MARKERS,
                                   keep_strings=True)
                self.files[relpath] = File(relpath, src, text.code_lines, raw)

    def _resolve_includes(self):
        for f in self.files.values():
            exported_lines = set()
            for d in f.src.directives:
                if d.kind == "export":
                    line = d.line
                    if d.standalone:
                        line += 1
                        while line <= len(f.src.code_lines) and \
                                not f.src.code_lines[line - 1].strip():
                            line += 1
                    exported_lines.add(line)
            rootdir = f.relpath.split("/")[0]
            dirname = os.path.dirname(f.relpath)
            for idx, line in enumerate(f.text_lines):
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                quoted, target = m.group(1) == '"', m.group(2)
                resolved = None
                if quoted:
                    for candidate in ("src/" + target,
                                      rootdir + "/" + target,
                                      (dirname + "/" + target) if dirname else target):
                        candidate = os.path.normpath(candidate).replace(os.sep, "/")
                        if candidate in self.files:
                            resolved = candidate
                            break
                f.includes.append((idx + 1, target, resolved, (idx + 1) in exported_lines))

    # -- reporting --------------------------------------------------------

    def report(self, relpath: str, line: int, rule: str, message: str):
        f = self.files.get(relpath)
        if f is not None and f.suppressions.allowed(line, rule):
            return
        self.findings.append(Finding(relpath, line, rule, message))

    # -- rules ------------------------------------------------------------

    def run(self, check_surface=True):
        self._check_suppressions()
        self._check_layers()
        self._check_cycles()
        self._check_guards()
        self._check_iwyu()
        if check_surface:
            self._check_api_surface()
        self.findings.sort(key=lambda f: (f.relpath, f.line, f.rule))
        return self.findings

    def _check_suppressions(self):
        for f in self.files.values():
            for line, msg in f.suppressions.errors:
                self.findings.append(Finding(f.relpath, line, "bad-suppression", msg))

    def _check_layers(self):
        layers = self.config["layers"]
        cycle = declared_cycle(layers)
        if cycle:
            self.findings.append(Finding(
                self.layers_relpath, 1, "layer",
                "the declared layer graph is not a DAG: %s" % " -> ".join(cycle)))
            return
        known = set(layers)
        for dep_list in layers.values():
            if dep_list != "*":
                for d in dep_list:
                    if d not in known:
                        self.findings.append(Finding(
                            self.layers_relpath, 1, "layer",
                            "declared dependency on unknown module %r" % d))
        seen_undeclared_modules = set()
        for relpath in sorted(self.files):
            f = self.files[relpath]
            if f.module not in layers:
                if f.module not in seen_undeclared_modules:
                    seen_undeclared_modules.add(f.module)
                    self.report(relpath, 1, "layer",
                                "module %r (from %s) is not declared in %s"
                                % (f.module, relpath, self.layers_relpath))
                continue
            allowed = layers[f.module]
            for line, target, resolved, _exported in f.includes:
                if resolved is None:
                    continue
                dep = self.files[resolved].module
                if dep == f.module or allowed == "*" or dep in allowed:
                    continue
                back = declared_path(layers, dep, f.module)
                if back and len(back) > 1:
                    detail = ("back-edge: declared layering already orders %s"
                              % " -> ".join(back))
                else:
                    detail = ("undeclared edge %s -> %s; declare it in %s "
                              "or remove the dependency" %
                              (f.module, dep, self.layers_relpath))
                self.report(relpath, line, "layer",
                            "include of %r crosses %s -> %s which the layer DAG "
                            "does not allow (%s)" % (target, f.module, dep, detail))

    def _check_cycles(self):
        # Iterative DFS over the resolved include graph; every cycle is
        # reported once, anchored at its lexicographically smallest file.
        graph = {rel: sorted({r for (_l, _t, r, _e) in f.includes if r})
                 for rel, f in self.files.items()}
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {rel: WHITE for rel in graph}
        reported = set()
        for start in sorted(graph):
            if color[start] != WHITE:
                continue
            stack = [(start, iter(graph[start]))]
            color[start] = GRAY
            path = [start]
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == GRAY:
                        cycle = path[path.index(nxt):] + [nxt]
                        anchor = min(cycle[:-1])
                        key = frozenset(cycle[:-1])
                        if key not in reported:
                            reported.add(key)
                            at = cycle.index(anchor)
                            chain = cycle[at:-1] + cycle[:at] + [anchor]
                            line = next((l for (l, _t, r, _e) in
                                         self.files[anchor].includes
                                         if r == chain[1]), 1)
                            self.report(anchor, line, "cycle",
                                        "include cycle: %s" % " -> ".join(chain))
                    elif color[nxt] == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, iter(graph[nxt])))
                        path.append(nxt)
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
                    path.pop()

    def _check_guards(self):
        for relpath in sorted(self.files):
            f = self.files[relpath]
            if not f.is_header:
                continue
            if PRAGMA_ONCE_RE.search(f.raw_text):
                continue
            m = IFNDEF_GUARD_RE.search(f.raw_text)
            if m:
                line = f.raw_text[:m.start()].count("\n") + 1
                self.report(relpath, line, "header-guard",
                            "`#ifndef %s` include guard — the tree standard is "
                            "`#pragma once`" % m.group(1))
            else:
                self.report(relpath, 1, "header-guard",
                            "header has no include guard; add `#pragma once`")

    # IWYU-lite ----------------------------------------------------------

    def _effective_provides(self):
        """provides + symbols of exported includes, transitively."""
        memo = {}

        def effective(rel, trail):
            if rel in memo:
                return memo[rel]
            if rel in trail:
                return set()  # cycle: already a `cycle` finding
            out = set(self.files[rel].provides)
            for (_l, _t, resolved, exported) in self.files[rel].includes:
                if exported and resolved:
                    out |= effective(resolved, trail | {rel})
            memo[rel] = out
            return out

        for rel in self.files:
            effective(rel, frozenset())
        return memo

    def _closure(self, rel):
        """Transitive include closure (excluding rel itself), with
        parent pointers for chain reconstruction."""
        parent = {}
        queue = deque([rel])
        seen = {rel}
        while queue:
            cur = queue.popleft()
            for (_l, _t, resolved, _e) in self.files[cur].includes:
                if resolved and resolved not in seen:
                    seen.add(resolved)
                    parent[resolved] = cur
                    queue.append(resolved)
        return parent

    @staticmethod
    def _chain(parent, rel, target):
        chain = [target]
        while chain[-1] != rel:
            chain.append(parent[chain[-1]])
        return list(reversed(chain))

    def _check_iwyu(self):
        effective = self._effective_provides()

        # Unique-owner table for cross-header reference checks: a word
        # counts as a resolvable symbol only when exactly one header
        # declares it (collisions are too ambiguous for a regex
        # harvest) and it is long enough to be a deliberate name.
        owners = {}
        for rel, f in sorted(self.files.items()):
            if not f.is_header:
                continue
            for sym in f.provides:
                owners[sym] = rel if sym not in owners else None

        for relpath in sorted(self.files):
            f = self.files[relpath]
            stem = os.path.splitext(relpath)[0]

            direct = set()
            direct_syms = set()
            for (_line, _target, resolved, _exported) in f.includes:
                if resolved:
                    direct.add(resolved)
                    direct_syms |= effective[resolved]

            # unused-include: every quoted, resolved, non-exported
            # include must contribute at least one referenced symbol.
            for (line, target, resolved, exported) in f.includes:
                if resolved is None or exported:
                    continue
                if os.path.splitext(resolved)[0] == stem:
                    continue  # a .cpp's own header is its interface
                contributed = effective[resolved]
                if not contributed:
                    continue  # nothing harvestable — cannot judge
                if contributed & f.words:
                    continue
                self.report(relpath, line, "unused-include",
                            "include of %r is unused: none of its %d harvested "
                            "symbols are referenced here (IWYU-lite; mark "
                            "`// arch-check: export` if it is a deliberate "
                            "re-export)" % (target, len(contributed)))

            # transitive-include / self-contained: headers only.
            if not f.is_header:
                continue
            parent = self._closure(relpath)
            missing = {}  # owner -> (word, reachable)
            for word in sorted(f.words):
                # Only capitalized names (types, constants, macros) are
                # trusted as cross-header references: the tree's types
                # are UpperCamelCase while parameter/member names are
                # lower_snake, and the latter collide across headers far
                # too often for a regex symbol table.
                if len(word) < 4 or not word[0].isupper():
                    continue
                if word in STOPWORDS or word in f.provides:
                    continue
                owner = owners.get(word)
                if owner is None or owner == relpath:
                    continue
                if os.path.splitext(owner)[0] == stem:
                    continue  # partner header (x.h referencing x.cpp names)
                if word in direct_syms:
                    continue  # directly included (possibly via an export)
                if owner in missing:
                    continue
                missing[owner] = (word, owner in parent)
            for owner in sorted(missing):
                word, reachable = missing[owner]
                line = next((i + 1 for i, l in enumerate(f.src.code_lines)
                             if re.search(r"\b%s\b" % re.escape(word), l)), 1)
                if reachable:
                    chain = self._chain(parent, relpath, owner)
                    self.report(relpath, line, "transitive-include",
                                "references `%s` but its home header %s arrives "
                                "only transitively (%s); include it directly"
                                % (word, owner, " -> ".join(chain)))
                else:
                    self.report(relpath, line, "self-contained",
                                "references `%s` (declared in %s) but no include "
                                "path provides it — the header is not "
                                "self-contained" % (word, owner))

    # API surface --------------------------------------------------------

    def surface_lines(self):
        umbrella = self.config["umbrella"]
        if umbrella is None or umbrella not in self.files:
            return None
        closure = {umbrella} | set(self._closure(umbrella))
        out = [
            "# seamap public API surface — every header reachable from %s," % umbrella,
            "# comment-stripped and whitespace-normalized. Generated by",
            "# tools/lint/arch_check.py --update; CI fails on any drift.",
        ]
        for rel in sorted(closure):
            out.append("")
            out.append("== %s" % rel)
            for line in self.files[rel].text_lines:
                norm = " ".join(line.split())
                if norm:
                    out.append(norm)
        return out

    def _check_api_surface(self):
        snapshot = self.config["snapshot"]
        if snapshot is None:
            return
        expected = self.surface_lines()
        if expected is None:
            self.findings.append(Finding(
                self.layers_relpath, 1, "api-surface",
                "umbrella header %r not found in the scanned tree"
                % self.config["umbrella"]))
            return
        path = os.path.join(self.root, snapshot)
        if not os.path.isfile(path):
            self.findings.append(Finding(
                snapshot, 1, "api-surface",
                "snapshot missing — generate it with `arch_check.py --update`"))
            return
        with open(path, "r", encoding="utf-8") as fh:
            actual = fh.read().splitlines()
        if actual == expected:
            return
        line_no, detail = 1, "content differs"
        for i, (a, b) in enumerate(zip(actual, expected)):
            if a != b:
                line_no = i + 1
                detail = "first drift at line %d: snapshot has %r, tree has %r" % (
                    line_no, a, b)
                break
        else:
            line_no = min(len(actual), len(expected)) + 1
            detail = "snapshot has %d lines, tree produces %d" % (
                len(actual), len(expected))
        self.findings.append(Finding(
            snapshot, line_no, "api-surface",
            "public API surface drifted from the snapshot (%s); if the change "
            "is deliberate, regenerate with `arch_check.py --update` and "
            "review the snapshot diff" % detail))


# --------------------------------------------------------------------------
# Self-test: each fixture directory under tools/lint/fixtures/arch/ is a
# miniature tree with its own layers.toml and an EXPECT file naming the
# exact set of rules the analyzer must fire on it (or `clean`).


def run_case(case_root: str, update=False):
    layers_path = os.path.join(case_root, "layers.toml")
    config = load_layers_config(layers_path)
    analysis = Analysis(case_root, config, "layers.toml")
    if update:
        lines = analysis.surface_lines()
        if lines is None:
            print("arch_check: cannot update %r: umbrella %r not in tree"
                  % (config["snapshot"], config["umbrella"]), file=sys.stderr)
            return None
        path = os.path.join(case_root, config["snapshot"])
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        return analysis
    analysis.run()
    return analysis


def run_self_test(fixtures_root: str) -> int:
    if not os.path.isdir(fixtures_root):
        print("self-test: no fixtures under %s" % fixtures_root, file=sys.stderr)
        return 2
    cases = sorted(d for d in os.listdir(fixtures_root)
                   if os.path.isdir(os.path.join(fixtures_root, d)))
    if not cases:
        print("self-test: no fixture cases under %s" % fixtures_root, file=sys.stderr)
        return 2
    failures = []
    for case in cases:
        case_root = os.path.join(fixtures_root, case)
        expect_path = os.path.join(case_root, "EXPECT")
        if not os.path.isfile(expect_path):
            failures.append("%s: missing EXPECT file" % case)
            continue
        with open(expect_path, "r", encoding="utf-8") as fh:
            spec = [w for w in fh.read().split() if not w.startswith("#")]
        expected = set() if spec == ["clean"] else set(spec)
        unknown = expected - set(RULES)
        if unknown:
            failures.append("%s: unknown rule(s) in EXPECT: %s" % (case, sorted(unknown)))
            continue
        try:
            analysis = run_case(case_root)
        except (ConfigError, OSError) as e:
            failures.append("%s: analyzer error: %s" % (case, e))
            continue
        fired = {f.rule for f in analysis.findings}
        if fired != expected:
            lines = ["%s: expected rules %s, got %s" %
                     (case, sorted(expected) or "[clean]", sorted(fired) or "[clean]")]
            for f in analysis.findings:
                lines.append("    " + f.render())
            failures.append("\n".join(lines))
    if failures:
        for msg in failures:
            print("self-test FAIL: %s" % msg, file=sys.stderr)
        return 1
    print("self-test OK: %d fixture trees behaved as declared" % len(cases))
    return 0


# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="arch_check.py",
        description="architecture conformance analyzer (see module docstring)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/lint/)")
    parser.add_argument("--layers", default=None,
                        help="layer DAG declaration (default: tools/lint/layers.toml)")
    parser.add_argument("--update", action="store_true",
                        help="regenerate the api_surface.txt snapshot and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the analyzer over the fixture trees and verify "
                             "each fires exactly its declared rules")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in RULES.items():
            print("%-19s %s" % (rule, summary))
        return 0

    script_dir = os.path.dirname(os.path.abspath(__file__))
    if args.self_test:
        return run_self_test(os.path.join(script_dir, "fixtures", "arch"))

    root = os.path.abspath(args.root) if args.root \
        else os.path.dirname(os.path.dirname(script_dir))
    layers_path = os.path.abspath(args.layers) if args.layers \
        else os.path.join(script_dir, "layers.toml")
    layers_relpath = os.path.relpath(layers_path, root).replace(os.sep, "/")

    try:
        config = load_layers_config(layers_path)
    except (ConfigError, OSError) as e:
        print("arch_check: %s" % e, file=sys.stderr)
        return 2

    analysis = Analysis(root, config, layers_relpath)
    if args.update:
        lines = analysis.surface_lines()
        if lines is None or config["snapshot"] is None:
            print("arch_check: --update needs [api_surface] umbrella+snapshot in "
                  "layers.toml, with the umbrella present in the tree", file=sys.stderr)
            return 2
        path = os.path.join(root, config["snapshot"])
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        print("arch_check: wrote %s (%d lines)" % (config["snapshot"], len(lines)))
        return 0

    findings = analysis.run()
    for f in findings:
        print(f.render())
    if findings:
        print("arch_check: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
