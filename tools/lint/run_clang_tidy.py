#!/usr/bin/env python3
"""Repo-wide clang-tidy runner with a checked-in baseline.

Runs clang-tidy (configuration: the repo's .clang-tidy) over every
first-party translation unit in compile_commands.json, in parallel, and
fails on any finding that is not recorded in the baseline file. The
baseline exists so a finding class can be burned down incrementally
without letting NEW instances in: CI fails on new findings immediately,
and shrinking the baseline is always safe.

Usage:
    python3 tools/lint/run_clang_tidy.py [--build-dir build] \
        [--baseline tools/lint/clang_tidy_baseline.txt] [--jobs N] \
        [--update-baseline]

Exit codes: 0 clean (or baseline-covered), 1 new findings,
2 environment error (no clang-tidy, no compile_commands.json).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

# Findings look like: path:line:col: warning: message [check-name]
FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<message>.*?) \[(?P<check>[\w\-.,]+)\]$"
)

FIRST_PARTY = ("src/", "tests/", "tools/", "bench/", "examples/")


def first_party_sources(build_dir: str, root: str) -> list[str]:
    database = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(database):
        print(f"error: {database} not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        sys.exit(2)
    with open(database, encoding="utf-8") as handle:
        entries = json.load(handle)
    sources = []
    for entry in entries:
        path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(path, root)
        if rel.startswith(FIRST_PARTY) and path not in sources:
            sources.append(path)
    return sorted(sources)


def tidy_one(tidy: str, build_dir: str, source: str) -> str:
    result = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", source],
        capture_output=True, text=True, check=False)
    return result.stdout


def normalize(root: str, raw_findings: list[str]) -> list[str]:
    """`relpath:line: message [check]` — column dropped so minor edits
    on the same line do not churn the baseline."""
    out = []
    for line in raw_findings:
        match = FINDING_RE.match(line)
        if not match:
            continue
        rel = os.path.relpath(match.group("path"), root)
        if not rel.startswith(FIRST_PARTY):
            continue  # system/third-party header noise
        out.append(f"{rel}:{match.group('line')}: {match.group('message')} "
                   f"[{match.group('check')}]")
    return sorted(set(out))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline", default="tools/lint/clang_tidy_baseline.txt")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current findings")
    parser.add_argument("--clang-tidy", default=os.environ.get("CLANG_TIDY", "clang-tidy"))
    args = parser.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        print(f"error: {args.clang_tidy} not found on PATH", file=sys.stderr)
        return 2

    sources = first_party_sources(args.build_dir, root)
    print(f"clang-tidy over {len(sources)} translation units "
          f"({args.jobs} jobs)...")
    raw: list[str] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for output in pool.map(lambda s: tidy_one(tidy, args.build_dir, s), sources):
            raw.extend(output.splitlines())
    findings = normalize(root, raw)

    baseline_path = os.path.join(root, args.baseline)
    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write("# clang-tidy baseline: known findings being burned down.\n"
                         "# Regenerate with tools/lint/run_clang_tidy.py "
                         "--update-baseline.\n")
            for finding in findings:
                handle.write(finding + "\n")
        print(f"baseline updated: {len(findings)} finding(s)")
        return 0

    baseline: set[str] = set()
    if os.path.exists(baseline_path):
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = {line.rstrip("\n") for line in handle
                        if line.strip() and not line.startswith("#")}

    new = [f for f in findings if f not in baseline]
    fixed = sorted(baseline - set(findings))
    if fixed:
        print(f"note: {len(fixed)} baselined finding(s) no longer fire; "
              "shrink the baseline:")
        for finding in fixed[:10]:
            print(f"  {finding}")
    if new:
        print(f"FAIL: {len(new)} new clang-tidy finding(s):")
        for finding in new:
            print(f"  {finding}")
        return 1
    print(f"clang-tidy clean ({len(findings)} baselined, 0 new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
