"""scanlib — the shared source-scanning layer of the repo's linters.

tools/lint/seamap_lint.py (PR 6, line-level determinism invariants) and
tools/lint/arch_check.py (architecture conformance) both need the same
foundation: a comment/string-stripping scanner that keeps line numbers
accurate, the reasoned-directive suppression grammar, and deterministic
file collection. It lives here exactly once so the two tools can never
drift on what counts as code, what counts as a comment, or what a
well-formed suppression looks like.

Directive grammar (shared; each tool brings its own prefix, e.g.
`seamap-lint:` or `arch-check:`):

  // <prefix> allow(rule[,rule]) -- reason
      On the offending line, or alone on the line directly above it.
  // <prefix> push-allow(rule[,rule]) -- reason
  // <prefix> pop-allow(rule[,rule])
      Region form; must be balanced within the file.
  // <prefix> <marker>
      Tool-specific bare markers (seamap-lint: `hot-path`; arch-check:
      `export` on an include line). Passed in via `markers`.

A suppression without a `-- reason`, or an unbalanced push/pop, is a
finding in its own right (rule id: bad-suppression) in both tools.

Zero dependencies beyond the standard library, by design: every linter
built on this must run anywhere python3 runs.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

CXX_EXTENSIONS = (".cpp", ".h", ".hpp", ".cc", ".cxx")

ALLOW_RE = re.compile(r"^(allow|push-allow|pop-allow)\(([^)]*)\)\s*(?:--\s*(.*))?$")


@dataclass
class Directive:
    line: int  # 1-based
    kind: str  # allow | push-allow | pop-allow | bad | <tool marker>
    rules: tuple
    reason: str
    standalone: bool  # comment is the only thing on its line


@dataclass
class SourceFile:
    relpath: str
    code_lines: list  # comment/string-stripped, parallel to the original
    directives: list


def parse_directive(text: str, line_no: int, standalone: bool,
                    known_rules, markers=()) -> Directive:
    text = text.strip()
    if text in markers:
        return Directive(line_no, text, (), "", standalone)
    m = ALLOW_RE.match(text)
    if not m:
        return Directive(line_no, "bad", (), "unrecognized directive: %r" % text, standalone)
    kind, rule_list, reason = m.group(1), m.group(2), m.group(3) or ""
    rules = tuple(r.strip() for r in rule_list.split(",") if r.strip())
    if not rules or any(r not in known_rules for r in rules):
        return Directive(line_no, "bad", rules, "unknown rule in %r" % text, standalone)
    if kind in ("allow", "push-allow") and not reason.strip():
        return Directive(
            line_no, "bad", rules,
            "%s(%s) needs a `-- reason`" % (kind, ",".join(rules)), standalone)
    return Directive(line_no, kind, rules, reason.strip(), standalone)


def load_source(path: str, relpath: str, directive_prefix: str,
                known_rules, markers=(), keep_strings: bool = False) -> SourceFile:
    """Strip comments (and, unless `keep_strings`, the contents of
    string/char literals) while keeping line numbers, collecting
    `// <directive_prefix>: ...` directives from the comments as they
    are consumed. `keep_strings` is for consumers that need literal
    text — include targets, API-surface dumps — with comments gone."""
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()

    directive_re = re.compile(r"//\s*%s:\s*(.+?)\s*$" % re.escape(directive_prefix))

    code = []  # chars of the stripped copy
    directives = []
    i, n = 0, len(text)
    line_no = 1
    line_start_code = 0  # index into `code` where the current line began
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    comment_buf = []
    comment_standalone = False
    raw_delim = ""

    def line_is_blank_so_far() -> bool:
        return "".join(code[line_start_code:]).strip() == ""

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                comment_buf = []
                comment_standalone = line_is_blank_so_far()
                i += 2
                code.append("  ")
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                code.append("  ")
                continue
            if ch == '"':
                # Raw string literal R"delim( ... )delim".
                if i > 0 and text[i - 1] == "R":
                    m = re.match(r'"([^("]*)\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw_string"
                        i += 1
                        code.append('"')
                        continue
                state = "string"
                code.append('"')
                i += 1
                continue
            if ch == "'":
                # C++14 digit separator (4'000, 0xDEAD'BEEF), not a char
                # literal: hex digit on both sides. Char-literal prefixes
                # (L, u, U, u8) are never hex digits, so this is safe.
                hexdig = "0123456789abcdefABCDEF"
                if i > 0 and text[i - 1] in hexdig and nxt in hexdig:
                    code.append("'")
                    i += 1
                    continue
                state = "char"
                code.append("'")
                i += 1
                continue
            if ch == "\n":
                code.append("\n")
                line_no += 1
                line_start_code = len(code)
                i += 1
                continue
            code.append(ch)
            i += 1
        elif state == "line_comment":
            if ch == "\n":
                comment = "".join(comment_buf)
                dm = directive_re.search("//" + comment)
                if dm:
                    directives.append(parse_directive(
                        dm.group(1), line_no, comment_standalone, known_rules, markers))
                state = "code"
                code.append("\n")
                line_no += 1
                line_start_code = len(code)
                i += 1
            else:
                comment_buf.append(ch)
                i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                code.append("  ")
                i += 2
            else:
                code.append("\n" if ch == "\n" else " ")
                if ch == "\n":
                    line_no += 1
                    line_start_code = len(code)
                i += 1
        elif state == "string":
            if ch == "\\":
                code.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
            elif ch == '"':
                code.append('"')
                state = "code"
                i += 1
            else:
                code.append(ch if keep_strings and ch != "\n" else
                            ("\n" if ch == "\n" else " "))
                if ch == "\n":
                    line_no += 1
                    line_start_code = len(code)
                i += 1
        elif state == "char":
            if ch == "\\":
                code.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
            elif ch == "'":
                code.append("'")
                state = "code"
                i += 1
            else:
                code.append(ch if keep_strings else " ")
                i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                code.append(raw_delim if keep_strings else
                            " " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                state = "code"
            else:
                code.append(ch if keep_strings and ch != "\n" else
                            ("\n" if ch == "\n" else " "))
                if ch == "\n":
                    line_no += 1
                    line_start_code = len(code)
                i += 1
    if state == "line_comment":
        comment = "".join(comment_buf)
        dm = directive_re.search("//" + comment)
        if dm:
            directives.append(parse_directive(
                dm.group(1), line_no, comment_standalone, known_rules, markers))

    code_lines = "".join(code).split("\n")
    return SourceFile(relpath, code_lines, directives)


class Suppressions:
    """Resolves, per (line, rule), whether a finding is allowed, and
    reports malformed/unbalanced directives as bad-suppression findings."""

    def __init__(self, src: SourceFile):
        self.line_allows = {}  # line -> set(rules)
        self.region_allows = []  # (start_line, end_line_inclusive, set(rules))
        self.errors = []  # (line, message)
        open_regions = []  # (line, rules)

        def next_code_line(after: int) -> int:
            """First line after `after` with any stripped code on it, so
            a standalone allow comment may be followed by further prose
            comment lines before the code it targets."""
            line = after + 1
            while line <= len(src.code_lines) and not src.code_lines[line - 1].strip():
                line += 1
            return line

        for d in src.directives:
            if d.kind == "bad":
                self.errors.append((d.line, d.reason))
            elif d.kind == "allow":
                target = next_code_line(d.line) if d.standalone else d.line
                self.line_allows.setdefault(target, set()).update(d.rules)
            elif d.kind == "push-allow":
                open_regions.append((d.line, set(d.rules)))
            elif d.kind == "pop-allow":
                if not open_regions:
                    self.errors.append((d.line, "pop-allow without matching push-allow"))
                    continue
                start, rules = open_regions.pop()
                if set(d.rules) != rules:
                    self.errors.append(
                        (d.line, "pop-allow(%s) does not match push-allow(%s) at line %d"
                         % (",".join(sorted(d.rules)), ",".join(sorted(rules)), start)))
                self.region_allows.append((start, d.line, rules))
        for start, rules in open_regions:
            self.errors.append((start, "push-allow(%s) never popped" % ",".join(sorted(rules))))

    def allowed(self, line: int, rule: str) -> bool:
        if rule in self.line_allows.get(line, ()):
            return True
        return any(s <= line <= e and rule in rules
                   for (s, e, rules) in self.region_allows)


@dataclass
class Finding:
    relpath: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return "%s:%d: [%s] %s" % (self.relpath, self.line, self.rule, self.message)


def collect_files(root: str, paths: list, extensions=CXX_EXTENSIONS) -> list:
    """Expand files/directories into a deterministic (sorted) file list;
    directories that do not exist are an error, so a typoed path can
    never silently lint nothing."""
    out = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(extensions):
                        out.append(os.path.join(dirpath, name))
        elif os.path.isfile(full):
            out.append(full)
        else:
            raise FileNotFoundError(full)
    return out
