#!/usr/bin/env python3
"""Toolchain-free formatting hygiene check (and fixer).

clang-format (.clang-format) is the authoritative formatter, but it is
not installed everywhere this repo builds. This script enforces the
subset of formatting rules that never needs a C++ parser — so every
environment, including minimal containers, can run *a* format gate:

  - no trailing whitespace
  - no tab indentation (the tree is 4-space indented)
  - every file ends with exactly one newline
  - no CRLF line endings

Usage:
    python3 tools/lint/format_check.py [--fix] [paths...]

Default paths: src tests tools bench examples. Exit 0 clean, 1 dirty.
"""

from __future__ import annotations

import argparse
import os
import sys

EXTENSIONS = (".h", ".cpp", ".cmake", ".py", ".md", ".json", ".yml", ".txt")
DEFAULT_PATHS = ["src", "tests", "tools", "bench", "examples"]


def check_file(path: str, fix: bool) -> list[str]:
    with open(path, "rb") as handle:
        raw = handle.read()
    problems = []
    if b"\r" in raw:
        problems.append(f"{path}: CRLF line endings")
    text = raw.decode("utf-8", errors="replace").replace("\r\n", "\n").replace("\r", "\n")
    lines = text.split("\n")
    for number, line in enumerate(lines, start=1):
        if line != line.rstrip():
            problems.append(f"{path}:{number}: trailing whitespace")
        stripped = line[: len(line) - len(line.lstrip())]
        if "\t" in stripped and not path.endswith((".md", ".txt")):
            problems.append(f"{path}:{number}: tab indentation")
    if raw and not raw.endswith(b"\n"):
        problems.append(f"{path}: missing final newline")
    if raw.endswith(b"\n\n"):
        problems.append(f"{path}: multiple trailing newlines")
    if problems and fix:
        fixed_lines = [line.rstrip().replace("\t", "    ") if line != line.rstrip()
                       or "\t" in line[: len(line) - len(line.lstrip())] else line
                       for line in lines]
        fixed = "\n".join(fixed_lines).rstrip("\n") + "\n"
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(fixed)
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fix", action="store_true", help="rewrite offending files")
    parser.add_argument("paths", nargs="*", default=DEFAULT_PATHS)
    args = parser.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    problems: list[str] = []
    checked = 0
    for base in args.paths:
        base_path = os.path.join(root, base)
        if os.path.isfile(base_path):
            problems.extend(check_file(base_path, args.fix))
            checked += 1
            continue
        for directory, _, files in sorted(os.walk(base_path)):
            for name in sorted(files):
                if name.endswith(EXTENSIONS) or name == "CMakeLists.txt":
                    problems.extend(check_file(os.path.join(directory, name), args.fix))
                    checked += 1
    if problems:
        action = "fixed" if args.fix else "found"
        print(f"format_check: {len(problems)} problem(s) {action} in {checked} files:")
        for problem in problems:
            print(f"  {os.path.relpath(problem, root) if os.path.isabs(problem) else problem}")
        return 0 if args.fix else 1
    print(f"format_check: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
