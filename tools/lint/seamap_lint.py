#!/usr/bin/env python3
"""seamap_lint — the repo's determinism & hot-path invariant linter.

The project's standing guarantee is that every optimization is pinned
bit-identical across eval paths, prune on/off, and thread counts. The
properties that make that guarantee *possible* are static, so they are
enforced here, at analysis time, instead of living in reviewers' heads:

  rng            No ambient randomness. `rand()`, `srand()`,
                 `std::random_device`, and raw `<random>` engines are
                 banned outside src/util/rng.* — all stochastic code
                 takes an explicit 64-bit seed through seamap::Rng.
  rng-fork       No new `Rng::fork()` calls. fork() couples the child
                 stream to the parent's draw position, which broke the
                 sharded campaign's order-invariance once already; it
                 is [[deprecated]] in favour of fork_at() and allowed
                 only inside src/util/rng.* (and the rng unit tests,
                 which pin its historical streams). Heuristic: fires
                 only when the receiver looks like an Rng (identifier
                 containing "rng", or an inline Rng temporary) — an
                 unrelated fork() method on some other class is not a
                 finding, and a mis-flagged line can be justified with
                 `allow(rng-fork) -- reason`.
  unordered-iter No order-unstable containers in result- or
                 JSON-producing paths (src/api/, src/core/). Iterating
                 an unordered container feeds hash-order into results;
                 hash order is not part of the determinism contract.
  float-eq       No raw floating-point `==`/`!=` outside
                 src/util/float_compare.h. Exact comparisons that are
                 *deliberate* (determinism total orders, staircase
                 dedup) go through exactly_equal()/exactly_zero() so
                 the intent is visible and greppable.
  time           No wall-clock reads (`::now()`, `std::time`, `clock()`)
                 in search/eval code. Timing flows only through the
                 sanctioned deadline/cancellation utilities
                 (src/util/cancellation.*), which every stop condition
                 already shares.
  hot-path-alloc In files marked `// seamap-lint: hot-path`, no
                 allocation-shaped calls (new, make_unique/shared,
                 container growth) outside explicitly allowed setup
                 regions. This keeps the PR 3 "zero steady-state
                 allocation" property a build-time fact, not a hope.

Suppressions use the shared reasoned-directive grammar (see
tools/lint/scanlib.py, which owns the scanner and the grammar — the
architecture analyzer arch_check.py shares both):

  // seamap-lint: allow(rule[,rule]) -- reason
  // seamap-lint: push-allow(rule[,rule]) -- reason
  // seamap-lint: pop-allow(rule[,rule])
  // seamap-lint: hot-path

A suppression without a `-- reason`, or an unbalanced push/pop, is
itself an error (rule id: bad-suppression) — the suppression file/line
budget stays reviewable.

Usage:
  seamap_lint.py [--root DIR] [PATH...]   lint PATHs (default: src)
  seamap_lint.py --self-test              run the fixture suite
  seamap_lint.py --list-rules             print rule ids and summaries

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Implementation note: this is deliberately AST-lite (comment/string
stripping + operand extraction + a harvested symbol table of
double-typed fields), not libclang — it must run anywhere python3
runs, with zero dependencies, in well under a second for the whole
tree.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from scanlib import (Finding, SourceFile, Suppressions, collect_files,  # noqa: E402
                     load_source)

# --------------------------------------------------------------------------
# Rules

RULES = {
    "rng": "ambient randomness outside src/util/rng.* (use seamap::Rng with an explicit seed)",
    "rng-fork": "deprecated Rng::fork() call outside src/util/rng.* (use order-invariant fork_at())",
    "unordered-iter": "order-unstable container in a result/JSON-producing path (src/api/, src/core/)",
    "float-eq": "raw floating-point ==/!= (use util/float_compare.h: nearly_equal/exactly_equal/exactly_zero)",
    "time": "wall-clock read in search/eval code (timing only via util/cancellation.h)",
    "hot-path-alloc": "allocation in a `// seamap-lint: hot-path` file outside an allowed setup region",
    "bad-suppression": "malformed seamap-lint suppression (missing reason or unbalanced push/pop)",
}

DIRECTIVE_PREFIX = "seamap-lint"
MARKERS = ("hot-path",)

# Path scoping, relative to the lint root (forward slashes).
#   rng:            everywhere except src/util/rng.*
#   unordered-iter: src/api/**, src/core/**
#   time:           everywhere except src/util/cancellation.*
#   float-eq:       everywhere except src/util/float_compare.h
#   hot-path-alloc: files carrying the hot-path marker


def rule_applies(rule: str, relpath: str) -> bool:
    p = relpath.replace(os.sep, "/")
    if rule == "rng":
        return not p.startswith("src/util/rng.")
    if rule == "rng-fork":
        return not p.startswith("src/util/rng.")
    if rule == "unordered-iter":
        return p.startswith("src/api/") or p.startswith("src/core/")
    if rule == "time":
        return not p.startswith("src/util/cancellation.")
    if rule == "float-eq":
        return p != "src/util/float_compare.h"
    if rule == "hot-path-alloc":
        return True  # gated on the in-file marker instead of the path
    return True


RNG_RE = re.compile(
    r"\bsrand\s*\(|(?<![:\w])rand\s*\(|std::random_device\b|\brandom_device\b"
    r"|std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|ranlux\w+|knuth_b)\b"
)
UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")
# `rng.fork(...)` / `shard_rng->fork(...)` but never fork_at — the `(`
# in the pattern cannot match fork_at's `_`. The receiver must *look
# like* an Rng: an identifier containing "rng" (any case) or an inline
# `Rng(...)`/`Rng{...}` temporary. Unrelated fork() methods on other
# classes (process wrappers, checkpoint forks) are none of this rule's
# business. An Rng-typed receiver the heuristic misses should be
# renamed to say what it is; a true false positive can be justified
# inline with `// seamap-lint: allow(rng-fork) -- reason`.
RNG_FORK_RE = re.compile(
    r"(?:\b\w*[Rr][Nn][Gg]\w*|\bRng\s*(?:\([^()]*\)|\{[^{}]*\}))\s*(?:\.|->)\s*fork\s*\("
)
TIME_RE = re.compile(
    r"::now\s*\(|\bstd::time\s*\(|(?<![:\w])clock\s*\(\s*\)|\bgettimeofday\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)
ALLOC_RE = re.compile(
    r"(?<![:\w])new\b(?!\s*\()"  # `new T`, but not the rare `new (place) T` — placement new is also flagged below
    r"|(?<![:\w])new\s*\("
    r"|\bmake_unique\s*<|\bmake_shared\s*<"
    # `.assign(` is deliberately absent: Mapping::assign(task, core) is
    # the inner-loop mutation API and shares the name with the vector
    # growth call; real growth is still caught by resize/reserve/
    # push_back/insert here and by the runtime operator-new guard test.
    r"|\.\s*(?:push_back|emplace_back|emplace|resize|reserve|insert|append|push_front|emplace_front)\s*\("
    r"|\bstd::(?:vector|string|deque|list|map|set|unordered_\w+)\s*<[^;=]{0,120}>\s+\w+\s*[({]"
    r"|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("
)

FLOAT_LITERAL_RE = re.compile(
    r"\b\d+\.\d*(?:[eE][+-]?\d+)?[fFlL]?|(?<![\w.])\.\d+(?:[eE][+-]?\d+)?[fFlL]?|\b\d+[eE][+-]?\d+[fFlL]?"
)
# Declarations that make an identifier float-typed for this file:
#   double x; double x = ...; const double& x(...); float foo(...)
DECL_RE = re.compile(
    r"\b(?:double|float)\s*(?:const\b)?\s*[&*]?\s*([A-Za-z_]\w*)\s*[;=,)({\[]"
)
# Integer-typed declarations in the same file veto the global float-name
# table: `const std::uint64_t bits = ...` must not be treated as float
# just because some other file declares a `double bits`.
INT_DECL_RE = re.compile(
    r"\b(?:std::)?(?:u?int(?:8|16|32|64)?_t|size_t|ptrdiff_t|unsigned|short"
    r"|long|int|bool|char|TaskId|CoreId|RegisterId|ScalingLevel)\b"
    r"\s*(?:const\b)?\s*[&*]?\s*([A-Za-z_]\w*)\s*[;=,)({\[]"
)
TRAILING_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*(\(\s*\))?\s*$")

EQ_OP_RE = re.compile(r"==|!=")


def load(path: str, relpath: str) -> SourceFile:
    return load_source(path, relpath, DIRECTIVE_PREFIX, RULES, MARKERS)


# --------------------------------------------------------------------------
# float-eq operand analysis

_OPERAND_STOP = set(";{},?")


def _extract_left(line: str, pos: int) -> str:
    depth = 0
    j = pos - 1
    while j >= 0:
        c = line[j]
        if c in ")]":
            depth += 1
        elif c in "([":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0:
            if c in _OPERAND_STOP:
                break
            if c in "&|" and j > 0 and line[j - 1] == c:  # && ||
                break
            if c == "=" and j > 0 and line[j - 1] not in "<>=!":
                break
            if c in "<>!" and j + 1 < len(line) and line[j + 1] == "=":
                break
        j -= 1
    return line[j + 1:pos].strip()


def _extract_right(line: str, pos: int) -> str:
    depth = 0
    j = pos
    while j < len(line):
        c = line[j]
        if c in "([":
            depth += 1
        elif c in ")]":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0:
            if c in _OPERAND_STOP:
                break
            if c in "&|" and j + 1 < len(line) and line[j + 1] == c:
                break
        j += 1
    return line[pos:j].strip()


def operand_is_float(operand: str, float_names: set, int_names: set) -> bool:
    if not operand:
        return False
    if FLOAT_LITERAL_RE.search(operand):
        return True
    m = TRAILING_IDENT_RE.search(operand)
    if m and m.group(1) in float_names and m.group(1) not in int_names:
        return True
    return False


def harvest_float_names(root: str, paths: list) -> set:
    """Names of double/float fields, variables, parameters and 0-arg
    accessors declared anywhere in the linted tree. Single- and
    two-letter names are kept per-file only (too collision-prone
    globally) — harvest_file_float_names adds those."""
    names = set()
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        for m in DECL_RE.finditer(text):
            if len(m.group(1)) >= 3:
                names.add(m.group(1))
    return names


def harvest_file_float_names(src: SourceFile) -> set:
    names = set()
    for line in src.code_lines:
        for m in DECL_RE.finditer(line):
            names.add(m.group(1))
    return names


def harvest_file_int_names(src: SourceFile) -> set:
    """Names declared with an integer type in this file; they veto the
    cross-file float-name table but never a same-file double declaration."""
    names = set()
    for line in src.code_lines:
        for m in INT_DECL_RE.finditer(line):
            names.add(m.group(1))
    return names


# --------------------------------------------------------------------------
# Lint driver


def lint_file(path: str, relpath: str, global_float_names: set) -> list:
    src = load(path, relpath)
    sup = Suppressions(src)
    hot_path = any(d.kind == "hot-path" for d in src.directives)
    findings = [Finding(relpath, line, "bad-suppression", msg) for line, msg in sup.errors]
    file_float_names = harvest_file_float_names(src)
    float_names = global_float_names | file_float_names
    int_names = harvest_file_int_names(src) - file_float_names

    for idx, line in enumerate(src.code_lines):
        line_no = idx + 1

        def report(rule: str, message: str):
            if not rule_applies(rule, relpath):
                return
            if sup.allowed(line_no, rule):
                return
            findings.append(Finding(relpath, line_no, rule, message))

        if rule_applies("rng", relpath):
            m = RNG_RE.search(line)
            if m:
                report("rng", "`%s` — all randomness flows through seamap::Rng "
                              "with an explicit seed" % m.group(0).strip())
        if rule_applies("rng-fork", relpath):
            m = RNG_FORK_RE.search(line)
            if m:
                report("rng-fork",
                       "`%s)` — Rng::fork() is deprecated (child stream depends "
                       "on the parent's draw position); use fork_at(child_id)"
                       % m.group(0).strip())
        if rule_applies("unordered-iter", relpath):
            m = UNORDERED_RE.search(line)
            if m:
                report("unordered-iter",
                       "`%s` in a result-producing path — hash order is not "
                       "deterministic across libraries; use a sorted container "
                       "or sort before emitting" % m.group(0))
        if rule_applies("time", relpath):
            m = TIME_RE.search(line)
            if m:
                report("time", "`%s` — search/eval code takes time only through "
                               "CancellationToken/SearchBudget (util/cancellation.h)"
                       % m.group(0).strip())
        if hot_path:
            m = ALLOC_RE.search(line)
            if m:
                report("hot-path-alloc",
                       "`%s` in a hot-path file — steady-state evaluation must "
                       "not allocate; move growth to a setup region "
                       "(push-allow) or justify per line" % m.group(0).strip())
        if rule_applies("float-eq", relpath):
            for m in EQ_OP_RE.finditer(line):
                start = m.start()
                if start > 0 and line[start - 1] in "<>=!+-*/%&|^(":
                    continue
                if m.end() < len(line) and line[m.end()] == "=":
                    continue
                left = _extract_left(line, start)
                right = _extract_right(line, m.end())
                if operand_is_float(left, float_names, int_names) or \
                        operand_is_float(right, float_names, int_names):
                    report("float-eq",
                           "raw float `%s` on `%s` / `%s` — use nearly_equal() "
                           "for tolerant checks or exactly_equal()/exactly_zero() "
                           "(util/float_compare.h) when bit-exactness is the "
                           "point" % (m.group(0), left or "?", right or "?"))
    return findings


def run_lint(root: str, paths: list) -> list:
    files = collect_files(root, paths)
    global_float_names = harvest_float_names(root, files)
    findings = []
    for path in files:
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        findings.extend(lint_file(path, relpath, global_float_names))
    findings.sort(key=lambda f: (f.relpath, f.line, f.rule))
    return findings


# --------------------------------------------------------------------------
# Self-test over the checked-in fixtures. Every fixture declares its own
# expectation:   // seamap-lint-fixture: expect rule [rule...]
#            or  // seamap-lint-fixture: expect-clean
# and the suite fails if any fixture's *set of fired rules* differs.

FIXTURE_RE = re.compile(r"//\s*seamap-lint-fixture:\s*(.+?)\s*$", re.MULTILINE)


def run_self_test(fixtures_root: str) -> int:
    files = collect_files(fixtures_root, ["src"])
    if not files:
        print("self-test: no fixtures under %s" % fixtures_root, file=sys.stderr)
        return 2
    global_float_names = harvest_float_names(fixtures_root, files)
    failures = []
    checked = 0
    for path in files:
        relpath = os.path.relpath(path, fixtures_root).replace(os.sep, "/")
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        m = FIXTURE_RE.search(text)
        if not m:
            failures.append("%s: fixture lacks a `// seamap-lint-fixture: expect ...` line" % relpath)
            continue
        spec = m.group(1).split()
        if spec == ["expect-clean"]:
            expected = set()
        elif spec and spec[0] == "expect":
            expected = set(spec[1:])
            unknown = expected - set(RULES)
            if unknown:
                failures.append("%s: unknown rule(s) in expectation: %s" % (relpath, sorted(unknown)))
                continue
        else:
            failures.append("%s: bad fixture expectation %r" % (relpath, m.group(1)))
            continue
        fired = {f.rule for f in lint_file(path, relpath, global_float_names)}
        if fired != expected:
            failures.append("%s: expected rules %s, got %s" %
                            (relpath, sorted(expected) or "[clean]", sorted(fired) or "[clean]"))
        checked += 1
    if failures:
        for msg in failures:
            print("self-test FAIL: %s" % msg, file=sys.stderr)
        return 1
    print("self-test OK: %d fixtures behaved as declared" % checked)
    return 0


# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="seamap_lint.py",
        description="determinism & hot-path invariant linter (see module docstring)")
    parser.add_argument("--root", default=None,
                        help="repo root paths are resolved and reported against "
                             "(default: parent of tools/lint/)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the checked-in fixtures and verify each fires "
                             "exactly its declared rules")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories, relative to --root (default: src)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in RULES.items():
            print("%-15s %s" % (rule, summary))
        return 0

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root) if args.root else os.path.dirname(os.path.dirname(script_dir))

    if args.self_test:
        return run_self_test(os.path.join(script_dir, "fixtures"))

    paths = args.paths or ["src"]
    try:
        findings = run_lint(root, paths)
    except FileNotFoundError as e:
        print("seamap_lint: no such path: %s" % e, file=sys.stderr)
        return 2
    for f in findings:
        print(f.render())
    if findings:
        print("seamap_lint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
