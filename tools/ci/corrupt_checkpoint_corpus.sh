#!/usr/bin/env bash
# Corrupt-checkpoint corpus: damage a real snapshot in every way a
# crash or disk fault plausibly would (truncations at many offsets,
# single-byte flips, garbage, a kind swap) and prove seamap_cli
# rejects each one gracefully — exit code 0 (fallback recovered) or 2
# (structured rejection), never a crash, never a sanitizer abort.
#
# Usage: corrupt_checkpoint_corpus.sh <path-to-seamap_cli>
set -u

cli=${1:?usage: corrupt_checkpoint_corpus.sh <path-to-seamap_cli>}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

graph="$work/fig8.tg"
ckpt="$work/snap.ckpt"
pristine="$work/pristine.ckpt"

"$cli" generate fig8 -o "$graph" || exit 1
"$cli" optimize "$graph" --cores 2 --checkpoint "$ckpt" > /dev/null || exit 1
cp "$ckpt" "$pristine"
size=$(wc -c < "$pristine")

failures=0
cases=0

# One corpus entry: a damaged primary with no .prev fallback. The run
# must exit 0 or 2; on 2 the --json surface must carry the structured
# error object.
check_case() {
    local label=$1
    rm -f "$ckpt.prev" "$ckpt.tmp"
    cases=$((cases + 1))
    local out rc
    out=$("$cli" optimize "$graph" --cores 2 --checkpoint "$ckpt" --resume --json \
        2> "$work/stderr.txt")
    rc=$?
    if [ "$rc" -ne 0 ] && [ "$rc" -ne 2 ]; then
        echo "FAIL [$label]: exit code $rc (expected 0 or 2)"
        cat "$work/stderr.txt"
        failures=$((failures + 1))
        return
    fi
    if [ "$rc" -eq 2 ] && ! printf '%s' "$out" | grep -q '"error"'; then
        echo "FAIL [$label]: exit 2 without a structured {\"error\"} object"
        failures=$((failures + 1))
        return
    fi
    echo "ok   [$label]: exit $rc"
}

# Truncations: a torn write can stop anywhere.
for keep in 0 1 7 16 $((size / 4)) $((size / 2)) $((size - 1)); do
    head -c "$keep" "$pristine" > "$ckpt"
    check_case "truncate-to-$keep"
done

# Single-byte flips spread across the file: envelope, payload, checksum.
for offset in 0 5 $((size / 3)) $((size / 2)) $((size - 2)); do
    cp "$pristine" "$ckpt"
    printf 'Z' | dd of="$ckpt" bs=1 seek="$offset" conv=notrunc status=none
    check_case "flip-byte-$offset"
done

# Wholesale garbage, empty file, and binary noise.
printf 'this is not a checkpoint\n' > "$ckpt"
check_case "garbage-text"
: > "$ckpt"
check_case "empty-file"
head -c 256 /dev/urandom > "$ckpt"
check_case "binary-noise"

# Right envelope, wrong kind: a campaign snapshot fed to optimize.
sed 's/^kind dse$/kind campaign/' "$pristine" > "$ckpt"
check_case "kind-swap"

# Sanity: the pristine snapshot must still resume cleanly (exit 0).
cp "$pristine" "$ckpt"
rm -f "$ckpt.prev" "$ckpt.tmp"
if ! "$cli" optimize "$graph" --cores 2 --checkpoint "$ckpt" --resume > /dev/null; then
    echo "FAIL [pristine]: the undamaged snapshot no longer resumes"
    failures=$((failures + 1))
fi
cases=$((cases + 1))

echo "corrupt-checkpoint corpus: $((cases - failures))/$cases cases passed"
[ "$failures" -eq 0 ]
