#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace seamap {

JsonValue& JsonValue::operator[](std::string_view key) {
    Object* object = std::get_if<Object>(&value_);
    if (object == nullptr) throw std::logic_error("JsonValue: operator[] on a non-object");
    for (Member& member : *object)
        if (member.first == key) return member.second;
    object->emplace_back(std::string(key), JsonValue());
    return object->back().second;
}

void JsonValue::push_back(JsonValue element) {
    Array* array = std::get_if<Array>(&value_);
    if (array == nullptr) throw std::logic_error("JsonValue: push_back on a non-array");
    array->push_back(std::move(element));
}

std::size_t JsonValue::size() const {
    if (const Array* array = std::get_if<Array>(&value_)) return array->size();
    if (const Object* object = std::get_if<Object>(&value_)) return object->size();
    throw std::logic_error("JsonValue: size() on a scalar");
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string json_number(double value) {
    if (!std::isfinite(value)) return "null";
    char buffer[32];
    const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
    (void)ec; // 32 bytes always fit the shortest representation
    return std::string(buffer, end);
}

void JsonValue::write(std::string& out, int indent, int depth) const {
    const bool pretty = indent >= 0;
    const auto newline_pad = [&](int levels) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(levels), ' ');
    };
    if (std::holds_alternative<std::nullptr_t>(value_)) {
        out += "null";
    } else if (const bool* b = std::get_if<bool>(&value_)) {
        out += *b ? "true" : "false";
    } else if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) {
        out += std::to_string(*i);
    } else if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_)) {
        out += std::to_string(*u);
    } else if (const double* d = std::get_if<double>(&value_)) {
        out += json_number(*d);
    } else if (const std::string* s = std::get_if<std::string>(&value_)) {
        out += '"';
        out += json_escape(*s);
        out += '"';
    } else if (const Array* array = std::get_if<Array>(&value_)) {
        if (array->empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t idx = 0; idx < array->size(); ++idx) {
            if (idx > 0) out += ',';
            if (pretty) newline_pad(depth + 1);
            (*array)[idx].write(out, indent, depth + 1);
        }
        if (pretty) newline_pad(depth);
        out += ']';
    } else {
        const Object& object = std::get<Object>(value_);
        if (object.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t idx = 0; idx < object.size(); ++idx) {
            if (idx > 0) out += ',';
            if (pretty) newline_pad(depth + 1);
            out += '"';
            out += json_escape(object[idx].first);
            out += pretty ? "\": " : "\":";
            object[idx].second.write(out, indent, depth + 1);
        }
        if (pretty) newline_pad(depth);
        out += '}';
    }
}

std::string JsonValue::dump(int indent) const {
    std::string out;
    write(out, indent, 0);
    return out;
}

} // namespace seamap
