// Deterministic random number generation for all stochastic components
// (simulated annealing, TGFF graph synthesis, SEU fault injection).
//
// Every consumer takes an explicit 64-bit seed so experiment tables are
// reproducible bit-for-bit. `Rng::fork_at` derives statistically
// independent child streams (e.g. one per fault-injection trial)
// without the children sharing state with the parent and without
// depending on the parent's draw position.
#pragma once

#include <cstdint>
#include <random>

namespace seamap {

/// Seeded pseudo-random source wrapping std::mt19937_64 with the
/// distribution helpers this project needs.
class Rng {
public:
    /// Seeds are mixed through splitmix64 so that small consecutive
    /// seeds (0, 1, 2, ...) still produce decorrelated streams.
    explicit Rng(std::uint64_t seed);

    /// Next raw 64-bit draw.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi). Requires lo <= hi.
    double uniform(double lo, double hi);

    /// Uniform integer in the closed interval [lo, hi]. Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Exponentially distributed draw with the given mean (> 0).
    double exponential(double mean);

    /// Poisson draw with the given mean (>= 0). Means above ~2^31 are
    /// approximated by a rounded normal, which is exact to within the
    /// distribution's own sampling error at that scale.
    std::uint64_t poisson(double mean);

    /// Standard normal draw.
    double normal();

    /// Derive an independent child stream. Children created with
    /// different `child_id`s (or from different parents) do not overlap.
    ///
    /// DEPRECATED: fork() advances the parent engine, so the child
    /// produced for a given `child_id` depends on how many draws/forks
    /// preceded the call — a draw-position coupling that has bitten
    /// every sharded consumer. Superseded by fork_at(), which is
    /// order-invariant and const. Kept only so historical seeds keep
    /// reproducing; new code is rejected by seamap_lint (rng-fork).
    [[deprecated("use fork_at(): order-invariant, const, shard-safe")]] Rng
    fork(std::uint64_t child_id);

    /// Order-invariant fork: the child stream is a pure function of
    /// (seed(), child_id) — splitmix64 over seed ⊕ mixed child id — so
    /// it does not depend on the parent's draw position or on how many
    /// forks happened before, and the call is `const`. Children with
    /// different ids (or from parents with different seeds) are
    /// statistically independent. This is the fork the sharded
    /// fault-injection campaign uses: any shard schedule reproduces
    /// bit-identical per-trial streams.
    Rng fork_at(std::uint64_t child_id) const;

    /// The (pre-mix) seed this stream was created with.
    std::uint64_t seed() const { return seed_; }

private:
    std::uint64_t seed_;
    std::mt19937_64 engine_;
};

/// splitmix64 mixing function; used for seed derivation and exposed for
/// tests and for hashing small tuples into seeds.
std::uint64_t splitmix64(std::uint64_t x);

/// The rounded-normal mapping Rng::poisson uses above its 2^31
/// cutover: mean + sqrt(mean) * z, clamped at zero and rounded to the
/// nearest integer. Pure function, exposed so the clamp and rounding
/// behaviour are unit-testable without steering the engine onto a
/// 6-sigma draw.
std::uint64_t poisson_from_normal(double mean, double standard_normal);

} // namespace seamap
