// Column-aligned table rendering for benches and examples. Supports
// plain-text (aligned), CSV and GitHub-markdown output so bench
// binaries can print paper-style tables and machine-readable rows from
// the same data.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace seamap {

/// Numeric formatting helpers shared by table cells and log lines.
std::string fmt_double(double value, int precision = 2);
std::string fmt_sci(double value, int precision = 2);
std::string fmt_percent(double value, int precision = 1);
/// Groups digits: 1234567 -> "1,234,567".
std::string fmt_grouped(unsigned long long value);

/// Table builder: set headers once, append rows of the same width,
/// render in one of three formats.
class TableWriter {
public:
    explicit TableWriter(std::vector<std::string> headers);

    /// Append one row; must have exactly as many cells as headers.
    void add_row(std::vector<std::string> cells);

    std::size_t row_count() const { return rows_.size(); }
    std::size_t column_count() const { return headers_.size(); }

    /// Aligned plain-text rendering with a header underline.
    void print_text(std::ostream& os) const;
    /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
    void print_csv(std::ostream& os) const;
    /// GitHub-flavoured markdown.
    void print_markdown(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace seamap
