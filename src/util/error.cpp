#include "util/error.h"

namespace seamap {

namespace {

std::string what_text(const std::string& message, const std::string& context) {
    if (context.empty()) return message;
    return message + " (" + context + ")";
}

} // namespace

std::string_view error_code(ErrorCategory category) {
    switch (category) {
    case ErrorCategory::usage: return "usage";
    case ErrorCategory::invalid_argument: return "invalid_argument";
    case ErrorCategory::parse: return "parse_error";
    case ErrorCategory::io: return "io_error";
    case ErrorCategory::checkpoint_corrupt: return "checkpoint_corrupt";
    case ErrorCategory::checkpoint_mismatch: return "checkpoint_mismatch";
    case ErrorCategory::canceled: return "canceled";
    case ErrorCategory::internal: return "internal";
    }
    return "internal";
}

Error::Error(ErrorCategory category, std::string message)
    : Error(category, std::move(message), std::string()) {}

Error::Error(ErrorCategory category, std::string message, std::string context)
    : std::runtime_error(what_text(message, context)),
      category_(category),
      message_(std::move(message)),
      context_(std::move(context)) {}

} // namespace seamap
