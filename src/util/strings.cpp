#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace seamap {

std::vector<std::string> split(std::string_view text, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string_view trim(std::string_view text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0) out += sep;
        out += pieces[i];
    }
    return out;
}

unsigned long long parse_u64(std::string_view text) {
    const std::string_view t = trim(text);
    unsigned long long value = 0;
    const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
    if (ec != std::errc{} || ptr != t.data() + t.size())
        throw std::invalid_argument("parse_u64: not an unsigned integer: '" + std::string(text) + "'");
    return value;
}

double parse_double(std::string_view text) {
    const std::string t{trim(text)};
    if (t.empty()) throw std::invalid_argument("parse_double: empty input");
    std::size_t consumed = 0;
    double value = 0.0;
    try {
        value = std::stod(t, &consumed);
    } catch (const std::exception&) {
        throw std::invalid_argument("parse_double: not a number: '" + t + "'");
    }
    if (consumed != t.size())
        throw std::invalid_argument("parse_double: trailing junk in: '" + t + "'");
    return value;
}

} // namespace seamap
