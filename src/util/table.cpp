#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace seamap {

std::string fmt_double(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string fmt_sci(double value, int precision) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << value;
    return os.str();
}

std::string fmt_percent(double value, int precision) {
    std::ostringstream os;
    os << std::showpos << std::fixed << std::setprecision(precision) << value << "%";
    return os.str();
}

std::string fmt_grouped(unsigned long long value) {
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    std::size_t leading = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
    out.append(digits, 0, leading);
    for (std::size_t i = leading; i < digits.size(); i += 3) {
        out.push_back(',');
        out.append(digits, i, 3);
    }
    return out;
}

TableWriter::TableWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("TableWriter: need at least one column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size())
        throw std::invalid_argument("TableWriter::add_row: row width does not match header");
    rows_.push_back(std::move(cells));
}

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& headers,
                                       const std::vector<std::vector<std::string>>& rows) {
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
    for (const auto& row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    return widths;
}

std::string csv_escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') out += "\"\"";
        else out.push_back(ch);
    }
    out.push_back('"');
    return out;
}

} // namespace

void TableWriter::print_text(std::ostream& os) const {
    const auto widths = column_widths(headers_, rows_);
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
            if (c + 1 < row.size()) os << "  ";
        }
        os << '\n';
    };
    print_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c], '-');
        if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
    for (const auto& row : rows_) print_row(row);
}

void TableWriter::print_csv(std::ostream& os) const {
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << csv_escape(row[c]);
            if (c + 1 < row.size()) os << ',';
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
}

void TableWriter::print_markdown(std::ostream& os) const {
    auto print_row = [&](const std::vector<std::string>& row) {
        os << "| ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            os << (c + 1 < row.size() ? " | " : " |");
        }
        os << '\n';
    };
    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
    os << '\n';
    for (const auto& row : rows_) print_row(row);
}

} // namespace seamap
