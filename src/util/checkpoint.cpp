#include "util/checkpoint.h"

#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/version.h"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define SEAMAP_HAVE_FSYNC 1
#endif

namespace seamap {

namespace {

constexpr std::string_view k_magic = "seamap-checkpoint";

/// Checkpoints are resumable only within the library minor line: the
/// payload encodings are owned by code that may change between minors.
std::string compatible_version_prefix() {
    return std::to_string(k_version_major) + "." + std::to_string(k_version_minor) + ".";
}

std::string render(const CheckpointData& data) {
    std::string out;
    out += std::string(k_magic) + " " + std::to_string(k_checkpoint_format) + "\n";
    out += "library " + std::string(k_version_string) + "\n";
    out += "kind " + data.kind + "\n";
    out += "hash " + hex_of_u64(data.state_hash) + "\n";
    out += "lines " + std::to_string(data.lines.size()) + "\n";
    for (const std::string& line : data.lines) out += line + "\n";
    out += "checksum " + hex_of_u64(fnv1a64(out)) + "\n";
    return out;
}

/// Write `text` to `path` and flush it to stable storage before
/// returning. Throws Error(io) on any failure.
void write_file_synced(const std::string& path, const std::string& text) {
#if SEAMAP_HAVE_FSYNC
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw Error(ErrorCategory::io, "cannot open checkpoint for writing", path);
    std::size_t written = 0;
    while (written < text.size()) {
        const ::ssize_t n = ::write(fd, text.data() + written, text.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            throw Error(ErrorCategory::io, "checkpoint write failed", path);
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        throw Error(ErrorCategory::io, "checkpoint fsync failed", path);
    }
    if (::close(fd) != 0) throw Error(ErrorCategory::io, "checkpoint close failed", path);
#else
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) throw Error(ErrorCategory::io, "cannot open checkpoint for writing", path);
    os << text;
    os.flush();
    if (!os) throw Error(ErrorCategory::io, "checkpoint write failed", path);
#endif
}

/// Flush the directory entry of `path` so the rename itself is durable.
/// Best effort: some file systems refuse directory fsync.
void sync_parent_dir(const std::string& path) {
#if SEAMAP_HAVE_FSYNC
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return;
    ::fsync(fd);
    ::close(fd);
#else
    (void)path;
#endif
}

bool file_exists(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    return is.good();
}

/// Parse one snapshot file. Returns nullopt when the file does not
/// exist; throws Error(checkpoint_corrupt) for every structural or
/// checksum failure — the caller decides whether a fallback exists.
std::optional<CheckpointData> parse_file(const std::string& path, std::string* library_out) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return std::nullopt;
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();

    auto corrupt = [&](const std::string& why) -> Error {
        return Error(ErrorCategory::checkpoint_corrupt, "corrupt checkpoint: " + why, path);
    };

    // The checksum line is the last line of a well-formed file; verify
    // it over the exact byte prefix before trusting anything else.
    if (text.empty() || text.back() != '\n') throw corrupt("truncated file");
    const std::size_t last_start = text.find_last_of('\n', text.size() - 2);
    const std::size_t body_end = last_start == std::string::npos ? 0 : last_start + 1;
    const std::string_view last_line(text.data() + body_end, text.size() - body_end - 1);
    constexpr std::string_view k_checksum_key = "checksum ";
    if (last_line.substr(0, k_checksum_key.size()) != k_checksum_key)
        throw corrupt("missing trailing checksum");
    std::uint64_t stored = 0;
    try {
        stored = u64_of_hex(last_line.substr(k_checksum_key.size()));
    } catch (const Error&) {
        throw corrupt("unreadable checksum");
    }
    const std::uint64_t actual = fnv1a64(std::string_view(text.data(), body_end));
    if (stored != actual) throw corrupt("checksum mismatch");

    // Body: header lines then payload.
    std::istringstream body(text.substr(0, body_end));
    std::string line;
    auto next_line = [&](std::string_view what) -> std::string {
        if (!std::getline(body, line)) throw corrupt("missing " + std::string(what));
        return line;
    };
    auto keyed = [&](std::string_view key) -> std::string {
        const std::string l = next_line(key);
        const std::string prefix = std::string(key) + " ";
        if (l.substr(0, prefix.size()) != prefix)
            throw corrupt("expected '" + std::string(key) + "' line");
        return l.substr(prefix.size());
    };

    const std::string magic_line = next_line("magic");
    const std::string magic_prefix = std::string(k_magic) + " ";
    if (magic_line.substr(0, magic_prefix.size()) != magic_prefix)
        throw corrupt("bad magic");
    std::uint64_t format = 0;
    try {
        format = parse_u64(magic_line.substr(magic_prefix.size()));
    } catch (const std::exception&) {
        throw corrupt("bad format version");
    }
    if (format != k_checkpoint_format)
        throw Error(ErrorCategory::checkpoint_mismatch,
                    "checkpoint format " + std::to_string(format) +
                        " is not the supported format " + std::to_string(k_checkpoint_format),
                    path);

    CheckpointData data;
    const std::string library = keyed("library");
    if (library_out != nullptr) *library_out = library;
    data.kind = keyed("kind");
    try {
        data.state_hash = u64_of_hex(keyed("hash"));
    } catch (const Error&) {
        throw corrupt("unreadable state hash");
    }
    std::uint64_t count = 0;
    try {
        count = parse_u64(keyed("lines"));
    } catch (const std::exception&) {
        throw corrupt("bad line count");
    }
    for (std::uint64_t i = 0; i < count; ++i)
        data.lines.push_back(next_line("payload line"));
    if (std::getline(body, line)) throw corrupt("trailing data after payload");
    return data;
}

} // namespace

void save_checkpoint(const std::string& path, const CheckpointData& data) {
    const std::string tmp = path + ".tmp";
    write_file_synced(tmp, render(data));
    // Keep one previous good snapshot as the torn-write fallback. The
    // brief window where <path> is absent is covered by ".prev".
    if (file_exists(path)) {
        const std::string prev = path + ".prev";
        if (std::rename(path.c_str(), prev.c_str()) != 0)
            throw Error(ErrorCategory::io, "cannot rotate previous checkpoint", path);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw Error(ErrorCategory::io, "cannot publish checkpoint", path);
    sync_parent_dir(path);
}

std::optional<CheckpointLoad> load_checkpoint(const std::string& path,
                                              std::string_view expected_kind,
                                              std::uint64_t expected_hash) {
    const std::string prev = path + ".prev";
    std::optional<CheckpointData> data;
    std::string library;
    bool from_fallback = false;
    try {
        data = parse_file(path, &library);
    } catch (const Error& primary) {
        if (primary.category() != ErrorCategory::checkpoint_corrupt) throw;
        // Torn/corrupted primary: fall back to the rotated snapshot.
        try {
            data = parse_file(prev, &library);
        } catch (const Error&) {
            data.reset();
        }
        if (!data) throw; // both damaged: surface the primary diagnostic
        from_fallback = true;
    }
    if (!data) {
        // No primary file; a bare ".prev" (crash between the two
        // renames) is still a good snapshot.
        try {
            data = parse_file(prev, &library);
        } catch (const Error& fallback) {
            if (fallback.category() != ErrorCategory::checkpoint_corrupt) throw;
            throw Error(ErrorCategory::checkpoint_corrupt,
                        "corrupt checkpoint and no usable fallback", path);
        }
        if (!data) return std::nullopt;
        from_fallback = true;
    }

    if (data->kind != expected_kind)
        throw Error(ErrorCategory::checkpoint_mismatch,
                    "checkpoint kind '" + data->kind + "' does not match expected '" +
                        std::string(expected_kind) + "'",
                    path);
    const std::string prefix = compatible_version_prefix();
    if (library.substr(0, prefix.size()) != prefix)
        throw Error(ErrorCategory::checkpoint_mismatch,
                    "checkpoint written by library " + library +
                        " is not resumable by this " + std::string(k_version_string),
                    path);
    if (data->state_hash != expected_hash)
        throw Error(ErrorCategory::checkpoint_mismatch,
                    "checkpoint state hash " + hex_of_u64(data->state_hash) +
                        " does not match this run's " + hex_of_u64(expected_hash) +
                        " — different problem, parameters or strategy",
                    path);
    CheckpointLoad load;
    load.data = std::move(*data);
    load.from_fallback = from_fallback;
    return load;
}

void remove_checkpoint(const std::string& path) {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
    std::remove((path + ".tmp").c_str());
}

std::uint64_t fnv1a64(std::string_view bytes) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

void HashStream::mix(std::uint64_t x) { state_ = splitmix64(state_ ^ x); }

void HashStream::mix(std::string_view text) {
    mix(fnv1a64(text));
    mix(text.size());
}

void HashStream::mix_double(double x) { mix(std::bit_cast<std::uint64_t>(x)); }

std::string hex_of_double(double x) { return hex_of_u64(std::bit_cast<std::uint64_t>(x)); }

double double_of_hex(std::string_view hex) {
    return std::bit_cast<double>(u64_of_hex(hex));
}

std::string hex_of_u64(std::uint64_t x) {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (std::size_t i = 0; i < 16; ++i)
        out[15 - i] = digits[(x >> (4 * i)) & 0xfULL];
    return out;
}

std::uint64_t u64_of_hex(std::string_view hex) {
    if (hex.empty() || hex.size() > 16)
        throw Error(ErrorCategory::parse, "bad hex64 field: '" + std::string(hex) + "'");
    std::uint64_t value = 0;
    for (const char c : hex) {
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            throw Error(ErrorCategory::parse, "bad hex64 field: '" + std::string(hex) + "'");
    }
    return value;
}

} // namespace seamap
