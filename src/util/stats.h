// Small statistics toolkit used by fault-injection campaigns and
// benches: single-pass running moments (Welford), min/max tracking and
// normal-approximation confidence intervals.
#pragma once

#include <cstddef>
#include <span>

namespace seamap {

/// Accumulates count/mean/variance/min/max in one pass (Welford's
/// algorithm), numerically stable for long campaigns.
class RunningStats {
public:
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const;
    /// Unbiased sample variance; 0 for fewer than two samples.
    double variance() const;
    double stdev() const;
    double min() const;
    double max() const;
    /// Standard error of the mean; 0 for fewer than two samples.
    double stderr_mean() const;
    /// Half-width of the 95% normal-approximation confidence interval
    /// on the mean.
    double ci95_halfwidth() const;

    /// Merge another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other);

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Mean of a span; 0 for an empty span.
double mean_of(std::span<const double> xs);

/// Unbiased sample standard deviation of a span; 0 below two elements.
double stdev_of(std::span<const double> xs);

/// Relative change of `value` vs `baseline` in percent:
/// 100 * (value - baseline) / baseline. Requires baseline != 0.
double percent_change(double value, double baseline);

} // namespace seamap
