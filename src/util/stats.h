// Small statistics toolkit used by fault-injection campaigns and
// benches: single-pass running moments (Welford), min/max tracking and
// normal-approximation confidence intervals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace seamap {

/// Accumulates count/mean/variance/min/max in one pass (Welford's
/// algorithm), numerically stable for long campaigns.
class RunningStats {
public:
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const;
    /// Unbiased sample variance; 0 for fewer than two samples.
    double variance() const;
    double stdev() const;
    double min() const;
    double max() const;
    /// Standard error of the mean; 0 for fewer than two samples.
    double stderr_mean() const;
    /// Half-width of the 95% normal-approximation confidence interval
    /// on the mean.
    double ci95_halfwidth() const;

    /// Merge another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other);

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Serialized state of an ExactMoments accumulator: the 128-bit sums
/// split into hi/lo 64-bit halves so checkpoints can round-trip them
/// exactly. Produced by ExactMoments::state(), consumed by
/// ExactMoments::from_state().
struct ExactMomentsState {
    std::uint64_t count = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t sum_hi = 0;
    std::uint64_t sum_lo = 0;
    std::uint64_t sum_sq_hi = 0;
    std::uint64_t sum_sq_lo = 0;
};

/// Moment accumulator for unsigned-integer samples (per-trial SEU
/// counts) whose *state* is exact: count, sum and sum of squares are
/// 128-bit integers, so add() and merge() are associative and
/// commutative with no rounding. Any partition of a sample set into
/// shards, merged in any order, reproduces byte-identical state — and
/// the derived mean/stdev/CI are pure functions of that state, so a
/// sharded campaign's statistics are bit-identical for every thread
/// count and shard size. (RunningStats' Welford merge is deterministic
/// only for a fixed merge tree; this is the stronger guarantee the
/// campaign engine needs.) Exact while sums fit 128 bits: ~2^30 trials
/// of counts up to ~2^32 are far inside the envelope.
class ExactMoments {
public:
    void add(std::uint64_t x);

    /// Exact merge of another accumulator (integer additions only).
    void merge(const ExactMoments& other);

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
    /// Exact sum of the samples (fits uint64 in every supported regime).
    std::uint64_t sum() const { return static_cast<std::uint64_t>(sum_); }
    double mean() const;
    /// Unbiased sample variance; 0 for fewer than two samples.
    double variance() const;
    double stdev() const;
    /// Standard error of the mean; 0 for fewer than two samples.
    double stderr_mean() const;
    /// Half-width of the 95% normal-approximation confidence interval
    /// on the mean (same constant as RunningStats::ci95_halfwidth).
    double ci95_halfwidth() const;

    /// Exact snapshot of the accumulator for checkpoint payloads.
    ExactMomentsState state() const;
    /// Rebuild an accumulator from a snapshot (exact inverse of state()).
    static ExactMoments from_state(const ExactMomentsState& s);

private:
    std::uint64_t count_ = 0;
    unsigned __int128 sum_ = 0;
    unsigned __int128 sum_sq_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/// Mean of a span; 0 for an empty span.
double mean_of(std::span<const double> xs);

/// Unbiased sample standard deviation of a span; 0 below two elements.
double stdev_of(std::span<const double> xs);

/// Relative change of `value` vs `baseline` in percent:
/// 100 * (value - baseline) / baseline. Requires baseline != 0.
double percent_change(double value, double baseline);

} // namespace seamap
