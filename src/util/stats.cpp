#include "util/stats.h"

#include "util/float_compare.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace seamap {

void RunningStats::add(double x) {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stdev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double RunningStats::stderr_mean() const {
    if (count_ < 2) return 0.0;
    return stdev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ci95_halfwidth() const { return 1.959964 * stderr_mean(); }

void RunningStats::merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void ExactMoments::add(std::uint64_t x) {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    sum_sq_ += static_cast<unsigned __int128>(x) * x;
}

void ExactMoments::merge(const ExactMoments& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double ExactMoments::mean() const {
    if (count_ == 0) return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

double ExactMoments::variance() const {
    if (count_ < 2) return 0.0;
    // n * sum_sq - sum^2 is exact in 128-bit arithmetic for every
    // supported campaign size; the single division happens in double.
    const unsigned __int128 n = count_;
    const unsigned __int128 scaled_sq = n * sum_sq_;
    const unsigned __int128 sum_squared = sum_ * sum_;
    if (scaled_sq <= sum_squared) return 0.0; // constant samples
    const double numerator = static_cast<double>(scaled_sq - sum_squared);
    return numerator /
           (static_cast<double>(count_) * static_cast<double>(count_ - 1));
}

double ExactMoments::stdev() const { return std::sqrt(variance()); }

double ExactMoments::stderr_mean() const {
    if (count_ < 2) return 0.0;
    return stdev() / std::sqrt(static_cast<double>(count_));
}

double ExactMoments::ci95_halfwidth() const { return 1.959964 * stderr_mean(); }

namespace {

unsigned __int128 u128_of_halves(std::uint64_t hi, std::uint64_t lo) {
    return (static_cast<unsigned __int128>(hi) << 64) | lo;
}

} // namespace

ExactMomentsState ExactMoments::state() const {
    ExactMomentsState s;
    s.count = count_;
    s.min = min_;
    s.max = max_;
    s.sum_hi = static_cast<std::uint64_t>(sum_ >> 64);
    s.sum_lo = static_cast<std::uint64_t>(sum_);
    s.sum_sq_hi = static_cast<std::uint64_t>(sum_sq_ >> 64);
    s.sum_sq_lo = static_cast<std::uint64_t>(sum_sq_);
    return s;
}

ExactMoments ExactMoments::from_state(const ExactMomentsState& s) {
    ExactMoments m;
    m.count_ = s.count;
    m.min_ = s.min;
    m.max_ = s.max;
    m.sum_ = u128_of_halves(s.sum_hi, s.sum_lo);
    m.sum_sq_ = u128_of_halves(s.sum_sq_hi, s.sum_sq_lo);
    return m;
}

double mean_of(std::span<const double> xs) {
    RunningStats s;
    for (double x : xs) s.add(x);
    return s.mean();
}

double stdev_of(std::span<const double> xs) {
    RunningStats s;
    for (double x : xs) s.add(x);
    return s.stdev();
}

double percent_change(double value, double baseline) {
    if (exactly_zero(baseline))
        throw std::invalid_argument("percent_change: baseline must be nonzero");
    return 100.0 * (value - baseline) / baseline;
}

} // namespace seamap
