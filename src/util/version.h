// Library version. Bumped with every released change to the public API
// surface (seamap/seamap.h); `seamap_cli version` prints this. It lives
// in util/ (the bottom layer) so any module may stamp output with the
// version without depending upward; seamap/version.h re-exports it for
// installed-header consumers.
#pragma once

#include <string_view>

#define SEAMAP_VERSION_MAJOR 0
#define SEAMAP_VERSION_MINOR 2
#define SEAMAP_VERSION_PATCH 0
#define SEAMAP_VERSION_STRING "0.2.0"

namespace seamap {

inline constexpr std::string_view k_version_string = SEAMAP_VERSION_STRING;
inline constexpr int k_version_major = SEAMAP_VERSION_MAJOR;
inline constexpr int k_version_minor = SEAMAP_VERSION_MINOR;
inline constexpr int k_version_patch = SEAMAP_VERSION_PATCH;

/// The library version as "major.minor.patch".
constexpr std::string_view version_string() { return k_version_string; }

} // namespace seamap
