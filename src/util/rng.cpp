#include "util/rng.h"

#include "util/float_compare.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace seamap {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

std::uint64_t Rng::next_u64() { return engine_(); }

double Rng::uniform() {
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double Rng::exponential(double mean) {
    if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
}

std::uint64_t Rng::poisson(double mean) {
    if (mean < 0.0 || !std::isfinite(mean))
        throw std::invalid_argument("Rng::poisson: mean must be finite and >= 0");
    if (exactly_zero(mean)) return 0;
    // std::poisson_distribution<long long> is exact for any practical
    // mean, but becomes slow and numerically delicate at extreme means;
    // there a normal approximation is indistinguishable.
    constexpr double normal_cutover = static_cast<double>(1LL << 31);
    if (mean < normal_cutover) {
        std::poisson_distribution<long long> dist(mean);
        const long long draw = dist(engine_);
        return static_cast<std::uint64_t>(draw < 0 ? 0 : draw);
    }
    return poisson_from_normal(mean, normal());
}

std::uint64_t poisson_from_normal(double mean, double standard_normal) {
    const double draw = mean + std::sqrt(mean) * standard_normal;
    if (draw <= 0.0) return 0;
    return static_cast<std::uint64_t>(std::llround(draw));
}

double Rng::normal() {
    std::normal_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
}

Rng Rng::fork(std::uint64_t child_id) {
    // Mix the parent's current state with the child id; both inputs go
    // through splitmix64 inside the child's constructor.
    return Rng(splitmix64(engine_()) ^ splitmix64(child_id * 0xd1342543de82ef95ULL + 1));
}

Rng Rng::fork_at(std::uint64_t child_id) const {
    // Pure function of (seed_, child_id): splitmix64 over the seed,
    // xored with the Weyl-stepped mixed child id. The parent engine is
    // untouched, so fork_at(k) is the same stream no matter how many
    // draws or forks came before — the order-invariance the sharded
    // campaign merge discipline relies on. The extra Weyl constant
    // keeps fork_at(0) distinct from the parent's own stream and from
    // fork() children.
    return Rng(splitmix64(seed_) ^ splitmix64(child_id * 0xd1342543de82ef95ULL + 1));
}

} // namespace seamap
