// Minimal string helpers used by serializers and CLIs; kept tiny on
// purpose (SL-first: std::string/std::string_view do the heavy lifting).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace seamap {

/// Split on a delimiter character; consecutive delimiters yield empty
/// fields, like most CSV readers.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Parse a non-negative integer; throws std::invalid_argument on junk.
unsigned long long parse_u64(std::string_view text);

/// Parse a double; throws std::invalid_argument on junk.
double parse_double(std::string_view text);

} // namespace seamap
