// Minimal fixed-size worker pool for the embarrassingly parallel parts
// of the explorer (one independent mapping search per scaling
// combination). Jobs are plain std::function<void()>; idle workers pick
// the lowest-priority-value job first (FIFO among equal priorities, and
// plain submit() enqueues at the default priority), which is how the
// branch-and-bound explorer runs scaling searches best-first by power
// bound. Completion order is still whatever the workers make of it, so
// callers that need deterministic output must write results into
// pre-assigned slots and merge them in a fixed order afterwards (see
// DesignSpaceExplorer::explore).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace seamap {

class ThreadPool {
public:
    /// Spawns `thread_count` workers (clamped to >= 1).
    explicit ThreadPool(std::size_t thread_count);

    /// Drains the queue, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t thread_count() const { return workers_.size(); }

    /// Priority of jobs submitted without an explicit one.
    static constexpr std::uint64_t k_default_priority = std::uint64_t(1) << 63;

    /// Enqueue one job at the default priority. Throws if called after
    /// the destructor started.
    void submit(std::function<void()> job);

    /// Enqueue one job with an explicit priority; idle workers run the
    /// smallest priority value first, FIFO among equal values. A job
    /// already running is never preempted.
    void submit(std::uint64_t priority, std::function<void()> job);

    /// Enqueue a job and get its result (or exception) back through a
    /// future. A task that throws surfaces the exception via
    /// future::get() — it is consumed there, so it neither reaches
    /// wait_idle() nor kills the worker thread that ran the task.
    template <typename F>
    auto submit_task(F&& task) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto packaged =
            std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
        std::future<Result> future = packaged->get_future();
        submit([packaged] { (*packaged)(); });
        return future;
    }

    /// Block until every submitted job has finished. If any job threw,
    /// rethrows the first captured exception (the rest are dropped).
    void wait_idle();

    /// std::thread::hardware_concurrency() with a floor of 1.
    static std::size_t hardware_threads();

    /// The project-wide "0 means auto" rule, resolved in exactly one
    /// place: 0 clamps to hardware_threads(), anything else passes
    /// through. Used by parallel_for_index and DseParams::num_threads.
    static std::size_t resolve_thread_count(std::size_t configured);

private:
    /// Heap entry: ordered by (priority, submission sequence) so equal
    /// priorities run FIFO.
    struct QueuedJob {
        std::uint64_t priority = k_default_priority;
        std::uint64_t sequence = 0;
        std::function<void()> job;

        bool operator<(const QueuedJob& other) const {
            // std::push_heap builds a max-heap; invert for min-first.
            if (priority != other.priority) return priority > other.priority;
            return sequence > other.sequence;
        }
    };

    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_idle_;
    std::vector<QueuedJob> queue_; ///< binary heap via std::push_heap/pop_heap
    std::uint64_t next_sequence_ = 0;
    std::vector<std::thread> workers_;
    std::exception_ptr first_error_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

/// Run f(i) for every i in [0, count). `threads` follows the "0 means
/// auto" rule (ThreadPool::resolve_thread_count); with one thread the
/// calls run inline on the caller's thread, otherwise a temporary pool
/// of min(threads, count) workers pulls indices from a shared counter.
/// f must be safe to call concurrently for distinct indices; the first
/// exception thrown by any call is rethrown on the caller's thread.
void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& f);

} // namespace seamap
