// Minimal JSON document builder + writer for machine-readable tool
// output (`seamap_cli ... --json`). Deliberately write-only: the
// project never parses JSON, so there is no parser to keep honest.
//
// Output is deterministic byte-for-byte: objects preserve insertion
// order, doubles are rendered with std::to_chars shortest round-trip
// formatting, and integers stay integers (no 1e+06 for counters). That
// determinism is what lets `optimize --json` be golden-tested and
// compared bit-identically across thread counts.
//
// The `to_json` overloads for the result types (DsePoint, DseResult,
// DesignMetrics) live with the public API in api/json.h — they need the
// core types, which sit above this utility layer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace seamap {

/// One JSON value: null, bool, integer, double, string, array or
/// (insertion-ordered) object.
class JsonValue {
public:
    using Array = std::vector<JsonValue>;
    using Member = std::pair<std::string, JsonValue>;
    using Object = std::vector<Member>;

    JsonValue() : value_(nullptr) {}
    JsonValue(std::nullptr_t) : value_(nullptr) {}
    JsonValue(bool value) : value_(value) {}
    JsonValue(int value) : value_(static_cast<std::int64_t>(value)) {}
    JsonValue(std::int64_t value) : value_(value) {}
    JsonValue(std::uint64_t value) : value_(value) {}
    JsonValue(double value) : value_(value) {}
    JsonValue(const char* value) : value_(std::string(value)) {}
    JsonValue(std::string_view value) : value_(std::string(value)) {}
    JsonValue(std::string value) : value_(std::move(value)) {}

    static JsonValue object() { return JsonValue(Object{}); }
    static JsonValue array() { return JsonValue(Array{}); }

    bool is_object() const { return std::holds_alternative<Object>(value_); }
    bool is_array() const { return std::holds_alternative<Array>(value_); }

    /// Object member access: returns the member named `key`, inserting a
    /// null member at the end if absent. Throws std::logic_error when
    /// called on a non-object.
    JsonValue& operator[](std::string_view key);

    /// Array append. Throws std::logic_error when called on a non-array.
    void push_back(JsonValue element);

    std::size_t size() const;

    /// Render. `indent` < 0 gives the compact single-line form;
    /// `indent` >= 0 pretty-prints with that many spaces per level.
    std::string dump(int indent = -1) const;

private:
    explicit JsonValue(Array value) : value_(std::move(value)) {}
    explicit JsonValue(Object value) : value_(std::move(value)) {}

    void write(std::string& out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double, std::string,
                 Array, Object>
        value_;
};

/// JSON string escaping (quotes, backslash, control characters); the
/// result excludes the surrounding quotes.
std::string json_escape(std::string_view text);

/// Shortest round-trip rendering of a double ("0.075", "1e+300", "42").
/// Non-finite values render as "null" — JSON has no inf/nan.
std::string json_number(double value);

} // namespace seamap
