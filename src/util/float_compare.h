// The project's one definition of "these two floats are the same
// design metric". Both the Pareto-front dedup (core/dse.cpp) and the
// bound-driven pruning (core/scaling_bounds.h consumers) must agree on
// the comparison to the last bit — a second, slightly different
// epsilon would let a point survive the front in one code path and be
// pruned in the other, breaking the pruned == exhaustive guarantee.
#pragma once

#include <algorithm>
#include <cmath>

namespace seamap {

/// Symmetric relative comparison. Purely relative: the epsilon scales
/// with max(|a|, |b|) and nothing else, so degenerate near-zero
/// metrics (a 0-power design vs. a 1e-12-power design) stay distinct
/// instead of collapsing under an absolute floor. Exact equality
/// (including 0 == 0) still compares equal.
inline bool nearly_equal(double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max(std::abs(a), std::abs(b));
}

/// The paper's step-3 "equal power" window: a and b count as tied when
/// they agree within the relative tolerance `tie` (the
/// DseParams::power_tie_tolerance knob). Shared by the best-design
/// fold and the streamed incumbent so both apply the same rule.
inline bool within_relative_tie(double a, double b, double tie) {
    return std::abs(a - b) <= tie * std::max(a, b);
}

} // namespace seamap
