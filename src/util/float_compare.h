// The project's one definition of "these two floats are the same
// design metric". Both the Pareto-front dedup (core/dse.cpp) and the
// bound-driven pruning (core/scaling_bounds.h consumers) must agree on
// the comparison to the last bit — a second, slightly different
// epsilon would let a point survive the front in one code path and be
// pruned in the other, breaking the pruned == exhaustive guarantee.
#pragma once

#include <algorithm>
#include <cmath>

namespace seamap {

/// Symmetric relative comparison. Purely relative: the epsilon scales
/// with max(|a|, |b|) and nothing else, so degenerate near-zero
/// metrics (a 0-power design vs. a 1e-12-power design) stay distinct
/// instead of collapsing under an absolute floor. Exact equality
/// (including 0 == 0) still compares equal.
inline bool nearly_equal(double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max(std::abs(a), std::abs(b));
}

/// The paper's step-3 "equal power" window: a and b count as tied when
/// they agree within the relative tolerance `tie` (the
/// DseParams::power_tie_tolerance knob). Shared by the best-design
/// fold and the streamed incumbent so both apply the same rule.
inline bool within_relative_tie(double a, double b, double tie) {
    return std::abs(a - b) <= tie * std::max(a, b);
}

// The two helpers below are the sanctioned spelling of *bit-exact*
// float comparison. The determinism total orders (better_start, the
// Pareto sort, the dominance staircase) and exact sentinel checks
// (0.0 = "power-gated", 0.0 = "no budget") are deliberately not
// tolerant: a tolerance there would let two distinct designs compare
// equal in one code path and distinct in another, breaking the
// pruned == exhaustive and thread-count-invariance guarantees. The
// seamap_lint `float-eq` rule bans raw ==/!= on floats everywhere
// else, so every exact comparison in the tree is greppable by name.

/// Bit-exact equality, visibly on purpose. NaN compares unequal to
/// everything, exactly like the raw operator.
inline bool exactly_equal(double a, double b) {
    return a == b; // the one sanctioned raw float ==
}

/// Bit-exact test against positive zero (also true for -0.0, exactly
/// like `x == 0.0`).
inline bool exactly_zero(double x) {
    return x == 0.0; // the one sanctioned raw float == 0.0
}

} // namespace seamap
