// Cooperative cancellation for long-running searches. A
// CancellationToken carries an explicit stop request (thread-safe,
// settable from any thread, e.g. a signal handler or UI) and an
// optional wall-clock deadline — together they subsume the old
// core/optimized_mapping.h SearchDeadline. Tokens can be chained: a
// child token created with a parent pointer also stops when the parent
// does, which is how the explorer combines its own time budget with a
// caller-supplied token.
//
// Configuration (set_deadline / set_budget_seconds) must happen before
// the token is shared with worker threads; only request_stop() and the
// queries are thread-safe afterwards.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>

namespace seamap {

class CancellationToken {
public:
    using Clock = std::chrono::steady_clock;

    CancellationToken() = default;
    /// Child token: also reports stop when `parent` does. `parent` must
    /// outlive this token (not owned).
    explicit CancellationToken(const CancellationToken* parent) : parent_(parent) {}

    // Tokens are shared by reference between threads; copying one would
    // silently fork the stop flag.
    CancellationToken(const CancellationToken&) = delete;
    CancellationToken& operator=(const CancellationToken&) = delete;

    /// Ask every cooperating search to stop at its next check.
    void request_stop() { stop_.store(true, std::memory_order_relaxed); }

    /// Absolute wall-clock cutoff after which stop_requested() is true.
    void set_deadline(Clock::time_point when) { deadline_ = when; }
    /// Relative form: now + `seconds`; values <= 0 clear the deadline.
    void set_budget_seconds(double seconds);

    std::optional<Clock::time_point> deadline() const { return deadline_; }

    /// True once request_stop() was called (here or on an ancestor).
    bool cancel_requested() const {
        if (stop_.load(std::memory_order_relaxed)) return true;
        return parent_ != nullptr && parent_->cancel_requested();
    }

    /// True when the search should wind down: explicit request or an
    /// expired deadline, on this token or any ancestor. Cheap when no
    /// deadline is set (one relaxed atomic load per level).
    bool stop_requested() const {
        if (stop_.load(std::memory_order_relaxed)) return true;
        if (deadline_ && Clock::now() >= *deadline_) return true;
        return parent_ != nullptr && parent_->stop_requested();
    }

private:
    std::atomic<bool> stop_{false};
    std::optional<Clock::time_point> deadline_;
    const CancellationToken* parent_ = nullptr;
};

/// Wall-clock rate limiter for periodic side effects (checkpoint
/// flushes, progress lines): due() is true when at least `seconds`
/// elapsed since construction or the last reset(). Lives here because
/// this is the one sanctioned wall-clock site outside benches — the
/// determinism linter forbids clock reads elsewhere, and checkpoint
/// cadence must never leak into search results.
class IntervalTimer {
public:
    using Clock = CancellationToken::Clock;

    /// `seconds` <= 0 disables the timer: due() is always false.
    explicit IntervalTimer(double seconds)
        : seconds_(seconds), last_(Clock::now()) {}

    bool due() const {
        if (seconds_ <= 0.0) return false;
        const std::chrono::duration<double> elapsed = Clock::now() - last_;
        return elapsed.count() >= seconds_;
    }

    /// Restart the interval (call after performing the side effect).
    void reset() { last_ = Clock::now(); }

private:
    double seconds_;
    Clock::time_point last_;
};

/// The stop condition shared by the iterative search engines: an
/// iteration cap (0 = uncapped), a wall-clock budget measured from
/// construction (<= 0 = none), and an optional cancellation token.
/// Both mapping searches terminate through one of these, so their
/// semantics cannot drift apart.
class SearchBudget {
public:
    SearchBudget(std::uint64_t max_iterations, double time_budget_seconds,
                 const CancellationToken* cancel)
        : max_iterations_(max_iterations),
          time_budget_seconds_(time_budget_seconds),
          cancel_(cancel),
          start_(CancellationToken::Clock::now()) {}

    /// True once `iteration` exceeds the cap, the budget elapsed, or a
    /// stop was requested. Cheap when no budget/deadline is armed.
    bool exhausted(std::uint64_t iteration) const {
        if (max_iterations_ > 0 && iteration >= max_iterations_) return true;
        if (cancel_ != nullptr && cancel_->stop_requested()) return true;
        if (time_budget_seconds_ > 0.0) {
            const std::chrono::duration<double> elapsed =
                CancellationToken::Clock::now() - start_;
            if (elapsed.count() >= time_budget_seconds_) return true;
        }
        return false;
    }

private:
    std::uint64_t max_iterations_;
    double time_budget_seconds_;
    const CancellationToken* cancel_;
    CancellationToken::Clock::time_point start_;
};

} // namespace seamap
