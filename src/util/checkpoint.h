// Versioned, crash-safe snapshot files — the persistence layer under
// the exploration (core/dse_checkpoint.h) and campaign
// (sim/campaign_checkpoint.h) checkpoints.
//
// A checkpoint is a line-oriented text document:
//
//   seamap-checkpoint <format>        # magic + format version
//   library <x.y.z>                   # writing library version
//   kind <dse|campaign|...>           # which subsystem owns the payload
//   hash <16 hex digits>              # content hash of the producing state
//   lines <n>                         # payload line count
//   <n payload lines>                 # owner-defined
//   checksum <16 hex digits>          # FNV-1a 64 over every byte above
//
// Safety properties:
//  - Writes are atomic: the document is written to "<path>.tmp",
//    fsync'd, and renamed over <path>; a crash mid-write never damages
//    the previous snapshot. The previous snapshot is first rotated to
//    "<path>.prev", so one good fallback always survives a torn rename
//    window.
//  - Loads are tolerant: a truncated, bit-flipped or otherwise mangled
//    file fails the trailing checksum (or the structure checks) and the
//    loader falls back to "<path>.prev"; only when every candidate is
//    corrupt does it raise Error(checkpoint_corrupt).
//  - Loads are strict about identity: a wrong kind, a different
//    producing-state hash or an incompatible library version raises
//    Error(checkpoint_mismatch) with a diagnostic naming both sides —
//    resuming against the wrong problem is never silent.
//
// Payload encodings need bit-exact doubles to keep resumed results
// byte-identical, so hex_of_double/double_of_hex round-trip the IEEE
// bit pattern instead of going through decimal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace seamap {

/// Current on-disk format version; bump when the envelope (not a
/// payload) changes shape. See CONTRIBUTING.md "Checkpoint format &
/// versioning" for the evolution rules.
inline constexpr std::uint64_t k_checkpoint_format = 1;

/// One snapshot: the owner's kind tag, the content hash of the state
/// that produced it, and the owner-defined payload lines.
struct CheckpointData {
    std::string kind;
    std::uint64_t state_hash = 0;
    std::vector<std::string> lines;
};

/// Result of a tolerant load.
struct CheckpointLoad {
    CheckpointData data;
    /// True when <path> was corrupt and "<path>.prev" supplied the data.
    bool from_fallback = false;
};

/// Atomically persist `data` at `path` (tmp + fsync + rename), rotating
/// any existing snapshot to "<path>.prev" first. Throws Error(io) when
/// the file system refuses.
void save_checkpoint(const std::string& path, const CheckpointData& data);

/// Load the snapshot at `path`, falling back to "<path>.prev" when the
/// primary is corrupt. Returns nullopt when neither file exists. Throws
/// Error(checkpoint_corrupt) when every existing candidate is damaged,
/// and Error(checkpoint_mismatch) when the snapshot's kind, state hash
/// or library version disagrees with the caller's expectation.
std::optional<CheckpointLoad> load_checkpoint(const std::string& path,
                                              std::string_view expected_kind,
                                              std::uint64_t expected_hash);

/// Remove `path`, its ".prev" rotation and any stale ".tmp"; used after
/// a run completes and by tests. Missing files are not an error.
void remove_checkpoint(const std::string& path);

/// FNV-1a 64-bit checksum over `bytes`.
std::uint64_t fnv1a64(std::string_view bytes);

/// Order-sensitive content-hash accumulator: fold values with mix()
/// and read the digest with value(). Built on splitmix64, so single-bit
/// input changes diffuse through the whole digest.
class HashStream {
public:
    void mix(std::uint64_t x);
    void mix(std::string_view text);
    /// Hashes the IEEE-754 bit pattern — bit-exact, no rounding.
    void mix_double(double x);

    std::uint64_t value() const { return state_; }

private:
    std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

/// Bit-exact double <-> 16-hex-digit rendering for payloads.
std::string hex_of_double(double x);
double double_of_hex(std::string_view hex); ///< throws Error(parse)

std::string hex_of_u64(std::uint64_t x);
std::uint64_t u64_of_hex(std::string_view hex); ///< throws Error(parse)

} // namespace seamap
