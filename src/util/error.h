// Structured error model for every failure the library reports across
// a process boundary: each seamap::Error carries a machine-readable
// category (stable code string), a human message and an optional
// context (file path, line number, ...). The CLI maps categories to
// stable exit codes and `{"error": ...}` JSON objects; a future
// seamapd maps them to wire-level error responses. Ingestion and I/O
// paths (taskgraph/serialization, util/checkpoint) throw these instead
// of ad-hoc std::runtime_error/invalid_argument strings.
//
// Error derives from std::runtime_error, so existing catch-all
// handlers keep working; what() renders "message (context)".
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace seamap {

/// Stable failure categories. Extend at the end; the code strings are
/// a wire contract (CLI JSON, future seamapd responses) and must never
/// change meaning.
enum class ErrorCategory {
    usage,               ///< malformed invocation (bad flag, missing argument)
    invalid_argument,    ///< semantically invalid value or configuration
    parse,               ///< malformed input document (task graphs, ...)
    io,                  ///< file system failure (open, read, write, rename)
    checkpoint_corrupt,  ///< checkpoint failed its checksum/structure checks
    checkpoint_mismatch, ///< checkpoint belongs to a different problem/version
    canceled,            ///< operation stopped by cancellation
    internal,            ///< invariant violation; a bug, not a user error
};

/// The stable machine-readable code for a category ("parse_error",
/// "checkpoint_corrupt", ...).
std::string_view error_code(ErrorCategory category);

/// One structured failure.
class Error : public std::runtime_error {
public:
    Error(ErrorCategory category, std::string message);
    /// `context` names what the error is about (a path, "line 12", ...).
    Error(ErrorCategory category, std::string message, std::string context);

    ErrorCategory category() const { return category_; }
    std::string_view code() const { return error_code(category_); }
    /// The message without the context suffix what() appends.
    const std::string& message() const { return message_; }
    /// Optional context; empty when none was given.
    const std::string& context() const { return context_; }

private:
    ErrorCategory category_;
    std::string message_;
    std::string context_;
};

} // namespace seamap
