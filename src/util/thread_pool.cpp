#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

namespace seamap {

ThreadPool::ThreadPool(std::size_t thread_count) {
    const std::size_t count = std::max<std::size_t>(1, thread_count);
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::unique_lock lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
    submit(k_default_priority, std::move(job));
}

void ThreadPool::submit(std::uint64_t priority, std::function<void()> job) {
    {
        std::unique_lock lock(mutex_);
        if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
        queue_.push_back(QueuedJob{priority, next_sequence_++, std::move(job)});
        std::push_heap(queue_.begin(), queue_.end());
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr error = std::exchange(first_error_, nullptr);
        std::rethrow_exception(error);
    }
}

std::size_t ThreadPool::hardware_threads() {
    return std::max(1u, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::resolve_thread_count(std::size_t configured) {
    return configured == 0 ? hardware_threads() : configured;
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock lock(mutex_);
            work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return; // stopping_ and drained
            std::pop_heap(queue_.begin(), queue_.end());
            job = std::move(queue_.back().job);
            queue_.pop_back();
            ++in_flight_;
        }
        try {
            job();
        } catch (...) {
            std::unique_lock lock(mutex_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        {
            std::unique_lock lock(mutex_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
        }
    }
}

void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& f) {
    if (count == 0) return;
    const std::size_t workers = std::min(ThreadPool::resolve_thread_count(threads), count);
    if (workers == 1) {
        for (std::size_t i = 0; i < count; ++i) f(i);
        return;
    }
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([next, count, &f] {
            for (std::size_t i = next->fetch_add(1); i < count; i = next->fetch_add(1)) f(i);
        });
    }
    pool.wait_idle();
}

} // namespace seamap
