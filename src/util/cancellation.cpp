#include "util/cancellation.h"

namespace seamap {

void CancellationToken::set_budget_seconds(double seconds) {
    if (seconds <= 0.0) {
        deadline_.reset();
        return;
    }
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
}

} // namespace seamap
