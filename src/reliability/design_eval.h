// One-stop evaluation of a candidate design (mapping + per-core scaling)
// against every metric the paper reports: multiprocessor execution time
// T_M, register usage R, expected SEUs Gamma, and power P. Shared by
// the proposed optimizer, the simulated-annealing baselines and the
// experiment benches so that all of them score designs identically.
//
// evaluate_design() is the *reference* implementation: it builds a
// fresh schedule and fresh accumulators per call. Search hot loops run
// on core/eval_context.h instead — a reusable per-scaling engine with
// preallocated scratch, incremental rescheduling and memoization that
// is pinned bit-identical to this function by
// tests/core/eval_context_equivalence_test.cpp. Change the arithmetic
// here and the fast path must change in lockstep (the harness fails
// loudly otherwise).
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "reliability/seu_estimator.h"
#include "sched/list_scheduler.h"
#include "sched/mapping.h"
#include "taskgraph/task_graph.h"

#include <cstdint>

namespace seamap {

/// Everything fixed during one mapping-optimization run.
struct EvaluationContext {
    const TaskGraph& graph;
    const MpsocArchitecture& arch;
    ScalingVector levels;
    SeuEstimator estimator;
    /// Real-time constraint on T_M, seconds.
    double deadline_seconds;
};

/// Scores of one candidate design.
struct DesignMetrics {
    double tm_seconds = 0.0;          ///< pipelined completion time T_M
    double latency_seconds = 0.0;     ///< one-iteration latency L
    std::uint64_t register_bits = 0;  ///< R = sum_i R_i (eq. 8)
    double gamma = 0.0;               ///< expected SEUs (eq. 3)
    double power_mw = 0.0;            ///< MPSoC power (eq. 5)
    bool feasible = false;            ///< T_M <= deadline
};

/// Schedule + score a complete mapping. Throws on incomplete mappings.
DesignMetrics evaluate_design(const EvaluationContext& ctx, const Mapping& mapping);

/// Variant that also returns the schedule (for Gantt output and the
/// fault-injection simulator).
DesignMetrics evaluate_design(const EvaluationContext& ctx, const Mapping& mapping,
                              Schedule& schedule_out);

} // namespace seamap
