#include "reliability/seu_estimator.h"

#include "reliability/register_usage.h"

// estimate_into() is the hot variant design_eval's scoring loop calls
// per candidate; the marker arms seamap_lint's hot-path-alloc rule so
// new allocation-shaped calls in this file fail `make lint`.
// seamap-lint: hot-path

namespace seamap {

SeuEstimator::SeuEstimator(SerModel ser, ExposurePolicy policy)
    : ser_(std::move(ser)), policy_(policy) {}

double SeuEstimator::core_gamma(std::uint64_t register_bits, double exposure_seconds,
                                double vdd) const {
    return static_cast<double>(register_bits) * exposure_seconds * ser_.ser_per_bit_second(vdd);
}

SeuBreakdown SeuEstimator::estimate(const TaskGraph& graph, const Mapping& mapping,
                                    const MpsocArchitecture& arch, const ScalingVector& levels,
                                    const Schedule& schedule) const {
    SeuBreakdown breakdown;
    estimate_into(graph, mapping, arch, levels, schedule, breakdown);
    return breakdown;
}

void SeuEstimator::estimate_into(const TaskGraph& graph, const Mapping& mapping,
                                 const MpsocArchitecture& arch, const ScalingVector& levels,
                                 const Schedule& schedule, SeuBreakdown& out) const {
    arch.validate_scaling(levels);
    const auto register_bits = per_core_register_bits(graph, mapping, arch.core_count());

    // assign() reuses the caller's preallocated breakdown buffer; it
    // only grows on the first call for a given core count.
    out.per_core.assign(arch.core_count(), 0.0);
    out.total = 0.0;
    for (std::size_t c = 0; c < arch.core_count(); ++c) {
        if (register_bits[c] == 0) continue; // no live state on this core
        const double exposure = policy_ == ExposurePolicy::full_duration
                                    ? schedule.total_time_seconds
                                    : schedule.core_busy_seconds[c];
        const double vdd = arch.scaling_table().vdd(levels[c]);
        out.per_core[c] = core_gamma(register_bits[c], exposure, vdd);
        out.total += out.per_core[c];
    }
}

} // namespace seamap
