// Analytic estimator of the number of SEUs experienced, eq. (3):
//     Gamma = sum_i R_i * T_i * lambda_i
// with R_i from eq. (8) and two selectable exposure semantics for T_i:
//
//  - ExposurePolicy::full_duration (default, used for all paper
//    reproductions): a core's register bank holds live application
//    state for the entire run, so its exposure is the wall-clock
//    completion time T_M regardless of when the core computes. This is
//    the semantics under which the paper's Section III observations
//    hold (localized mappings suffer through long T_M, distributed
//    mappings through duplicated R), and it matches the paper's
//    time-based SER quote ("1 SEU per 10 ms for a 1 kbit register
//    bank").
//
//  - ExposurePolicy::busy_only: exposure is the core's busy time
//    (eq. 7's T_i literally); registers are vulnerable only while the
//    core executes. Provided for the model ablation bench.
//
// Cores with no mapped tasks hold no live state and contribute nothing
// under either policy.
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "reliability/ser_model.h"
#include "sched/list_scheduler.h"
#include "sched/mapping.h"
#include "taskgraph/task_graph.h"

#include <vector>

namespace seamap {

enum class ExposurePolicy {
    full_duration,
    busy_only,
};

/// Per-core and total expected SEU counts.
struct SeuBreakdown {
    std::vector<double> per_core;
    double total = 0.0;
};

/// Gamma evaluator (eq. 3).
class SeuEstimator {
public:
    explicit SeuEstimator(SerModel ser, ExposurePolicy policy = ExposurePolicy::full_duration);

    const SerModel& ser_model() const { return ser_; }
    ExposurePolicy policy() const { return policy_; }

    /// Expected SEUs for a scheduled design.
    SeuBreakdown estimate(const TaskGraph& graph, const Mapping& mapping,
                          const MpsocArchitecture& arch, const ScalingVector& levels,
                          const Schedule& schedule) const;

    /// estimate() into a caller-owned breakdown, reusing its per-core
    /// buffer across calls (no allocation once warm). Identical
    /// arithmetic to estimate().
    void estimate_into(const TaskGraph& graph, const Mapping& mapping,
                       const MpsocArchitecture& arch, const ScalingVector& levels,
                       const Schedule& schedule, SeuBreakdown& out) const;

    /// Primitive used by greedy construction: expected SEUs on one core
    /// holding `register_bits` of state, exposed for `exposure_seconds`
    /// at supply `vdd`.
    double core_gamma(std::uint64_t register_bits, double exposure_seconds, double vdd) const;

private:
    SerModel ser_;
    ExposurePolicy policy_;
};

} // namespace seamap
