#include "reliability/register_usage.h"

#include <stdexcept>

namespace seamap {

std::vector<std::uint64_t> per_core_register_bits(const TaskGraph& graph, const Mapping& mapping,
                                                  std::size_t core_count) {
    if (mapping.task_count() != graph.task_count())
        throw std::invalid_argument("per_core_register_bits: mapping/graph size mismatch");
    std::vector<RegisterSet> unions(core_count, RegisterSet(graph.register_file().size()));
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        if (!mapping.is_assigned(t)) continue;
        const CoreId core = mapping.core_of(t);
        if (core >= core_count)
            throw std::out_of_range("per_core_register_bits: bad core id in mapping");
        unions[core] |= graph.task(t).registers;
    }
    std::vector<std::uint64_t> bits(core_count, 0);
    for (std::size_t c = 0; c < core_count; ++c)
        bits[c] = unions[c].bits_in(graph.register_file());
    return bits;
}

std::uint64_t total_register_bits(const TaskGraph& graph, const Mapping& mapping,
                                  std::size_t core_count) {
    std::uint64_t total = 0;
    for (std::uint64_t bits : per_core_register_bits(graph, mapping, core_count)) total += bits;
    return total;
}

std::uint64_t register_bits_with_candidate(const TaskGraph& graph, const RegisterSet& current_set,
                                           TaskId candidate) {
    RegisterSet merged = current_set;
    merged |= graph.task(candidate).registers;
    return merged.bits_in(graph.register_file());
}

std::vector<double> time_weighted_register_bits(const TaskGraph& graph, const Mapping& mapping,
                                                std::span<const double> exec_seconds,
                                                std::size_t core_count) {
    if (mapping.task_count() != graph.task_count())
        throw std::invalid_argument("time_weighted_register_bits: mapping/graph size mismatch");
    if (exec_seconds.size() != graph.task_count())
        throw std::invalid_argument("time_weighted_register_bits: exec_seconds size mismatch");
    std::vector<double> weighted_bits(core_count, 0.0);
    std::vector<double> busy(core_count, 0.0);
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        if (!mapping.is_assigned(t)) continue;
        const CoreId core = mapping.core_of(t);
        if (core >= core_count)
            throw std::out_of_range("time_weighted_register_bits: bad core id in mapping");
        if (exec_seconds[t] < 0.0)
            throw std::invalid_argument("time_weighted_register_bits: negative execution time");
        weighted_bits[core] +=
            static_cast<double>(graph.task_register_bits(t)) * exec_seconds[t];
        busy[core] += exec_seconds[t];
    }
    std::vector<double> average(core_count, 0.0);
    for (std::size_t c = 0; c < core_count; ++c)
        if (busy[c] > 0.0) average[c] = weighted_bits[c] / busy[c];
    return average;
}

} // namespace seamap
