// Register-usage model, eq. (8) of the paper: the register usage R_i of
// core i is the total width of the *union* of the register sets of the
// tasks mapped there — registers shared by co-located tasks count once,
// while tasks split across cores duplicate their shared registers on
// every core involved.
#pragma once

#include "sched/mapping.h"
#include "taskgraph/register_file.h"
#include "taskgraph/task_graph.h"

#include <cstdint>
#include <vector>

namespace seamap {

/// R_i in bits for every core (eq. 8). Unassigned tasks contribute
/// nothing; cores without tasks have R_i = 0.
std::vector<std::uint64_t> per_core_register_bits(const TaskGraph& graph, const Mapping& mapping,
                                                  std::size_t core_count);

/// Total register usage R = sum_i R_i in bits.
std::uint64_t total_register_bits(const TaskGraph& graph, const Mapping& mapping,
                                  std::size_t core_count);

/// Incremental helper for greedy construction: R_i of one core if
/// `candidate` joined the tasks currently mapped there. `current_set`
/// must be the union set of the core's current tasks.
std::uint64_t register_bits_with_candidate(const TaskGraph& graph, const RegisterSet& current_set,
                                           TaskId candidate);

/// The *measured* register usage of eq. (4): the execution-time-
/// weighted average of live register bits on each core, taking "live"
/// as the running task's working set. Always <= the eq. (8) union;
/// equal only when every task on the core uses the same registers.
/// `exec_seconds` gives each task's execution time (e.g. schedule
/// entry finish - start); cores with no busy time report 0.
std::vector<double> time_weighted_register_bits(const TaskGraph& graph, const Mapping& mapping,
                                                std::span<const double> exec_seconds,
                                                std::size_t core_count);

} // namespace seamap
