#include "reliability/ser_model.h"

#include <cmath>
#include <stdexcept>

namespace seamap {

SerModel::SerModel(SerParams params) : params_(params) {
    if (params_.ser_ref_per_bit_cycle < 0.0)
        throw std::invalid_argument("SerModel: reference SER must be >= 0");
    if (params_.ref_vdd <= 0.0 || params_.ref_f_mhz <= 0.0)
        throw std::invalid_argument("SerModel: reference point must be positive");
    if (params_.voltage_exponent_k < 0.0)
        throw std::invalid_argument("SerModel: voltage exponent must be >= 0");
}

double SerModel::ser_per_bit_second(double vdd) const {
    if (vdd <= 0.0) throw std::invalid_argument("SerModel: vdd must be > 0");
    const double ref_rate_per_second = params_.ser_ref_per_bit_cycle * params_.ref_f_mhz * 1e6;
    return ref_rate_per_second * std::exp(params_.voltage_exponent_k * (params_.ref_vdd - vdd));
}

double SerModel::lambda_per_bit_cycle(const OperatingPoint& op) const {
    return ser_per_bit_second(op.vdd) / (op.f_mhz * 1e6);
}

} // namespace seamap
