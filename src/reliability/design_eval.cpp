#include "reliability/design_eval.h"

#include "reliability/register_usage.h"

namespace seamap {

DesignMetrics evaluate_design(const EvaluationContext& ctx, const Mapping& mapping,
                              Schedule& schedule_out) {
    const ListScheduler scheduler;
    schedule_out = scheduler.schedule(ctx.graph, mapping, ctx.arch, ctx.levels);

    DesignMetrics metrics;
    metrics.tm_seconds = schedule_out.total_time_seconds;
    metrics.latency_seconds = schedule_out.latency_seconds;
    metrics.register_bits = total_register_bits(ctx.graph, mapping, ctx.arch.core_count());
    metrics.gamma =
        ctx.estimator.estimate(ctx.graph, mapping, ctx.arch, ctx.levels, schedule_out).total;
    metrics.power_mw =
        ctx.arch.power_model().mpsoc_power_mw(ctx.levels, schedule_out.utilization);
    metrics.feasible = schedule_out.meets_deadline(ctx.deadline_seconds);
    return metrics;
}

DesignMetrics evaluate_design(const EvaluationContext& ctx, const Mapping& mapping) {
    Schedule schedule;
    return evaluate_design(ctx, mapping, schedule);
}

} // namespace seamap
