// Soft-error-rate model. The paper quotes an SER in "SEUs per bit per
// cycle" (1e-9 in the evaluation) and notes that lowering Vdd raises
// the SER exponentially (Chandra & Aitken [2]); its Observation 3
// calibrates the law: scaling every core from level 1 (200 MHz, 1 V)
// to level 2 (100 MHz, 0.58 V) multiplies the SEUs experienced by
// ~2.5x while execution time doubles.
//
// We model the physical rate in the *time* domain, where it is
// frequency-independent:
//     ser_time(V) = ser_ref * f_ref * exp(k * (V_ref - V))   [SEU/bit/s]
// and derive the per-cycle rate on a core clocked at f:
//     lambda_cycle(V, f) = ser_time(V) / f
// so halving f doubles lambda_cycle (each cycle is exposed twice as
// long). With k = ln(1.25) / (1.0 - 0.58) ~= 0.5313 / V, the 1->2
// transition gives exactly 2 (frequency) x 1.25 (voltage) = 2.5x more
// SEUs per cycle — the paper's Observation 3.
#pragma once

#include "arch/scaling_table.h"

namespace seamap {

/// Parameters of the SER law; defaults reproduce the paper.
struct SerParams {
    /// Reference SER in SEUs per bit per cycle at (ref_vdd, ref_f_mhz).
    double ser_ref_per_bit_cycle = 1e-9;
    double ref_vdd = 1.0;
    double ref_f_mhz = 200.0;
    /// Exponential voltage acceleration, 1/volt.
    double voltage_exponent_k = 0.53131; // ln(1.25) / 0.42
};

/// SER evaluator bound to one parameter set.
class SerModel {
public:
    SerModel() : SerModel(SerParams{}) {}
    explicit SerModel(SerParams params);

    const SerParams& params() const { return params_; }

    /// SEUs per bit per second at supply voltage `vdd` (frequency-
    /// independent physical rate).
    double ser_per_bit_second(double vdd) const;

    /// SEUs per bit per clock cycle at an operating point.
    double lambda_per_bit_cycle(const OperatingPoint& op) const;

private:
    SerParams params_;
};

} // namespace seamap
