// JSON views of the public result types, built on the deterministic
// util/json.h writer. The documents are stable (insertion-ordered
// keys, shortest round-trip doubles), so `seamap_cli optimize --json`
// output is golden-testable and byte-identical across thread counts.
//
// Schema of optimize_report_json (the `optimize --json` document):
//   {
//     "seamap_version": "x.y.z",
//     "strategy": "optimized" | "annealing" | <registered name>,
//     "problem": {
//       "graph": {"name", "tasks", "edges", "batches"},
//       "architecture": {"cores", "scaling_levels"},
//       "deadline_seconds", "exposure_policy"
//     },
//     "result": {
//       "scalings": {"total", "enumerated", "searched",
//                    "skipped_infeasible"},   // enumerated < total only
//                                             // when cancelled/cut early
//       "best": <point> | null,
//       "feasible_count",
//       "pareto_front": [<point>...],
//       "min_power_points": [<point>...]   // only when
//                                          // search.track_min_power is on
//     }
//   }
// where <point> = {"levels": [..], "core_of": [..], "metrics":
// {"tm_seconds", "latency_seconds", "register_bits", "gamma",
// "power_mw", "feasible"}}.
#pragma once

#include "api/problem.h"
#include "core/dse.h"
#include "reliability/design_eval.h"
#include "util/json.h"

#include <string_view>

namespace seamap {

JsonValue to_json(const DesignMetrics& metrics);
JsonValue to_json(const DsePoint& point);
JsonValue to_json(const DseResult& result);
JsonValue to_json(const Problem& problem);

/// The complete `optimize --json` document (see schema above).
JsonValue optimize_report_json(const Problem& problem, std::string_view strategy_name,
                               const DseResult& result);

} // namespace seamap
