// JSON views of the public result types, built on the deterministic
// util/json.h writer. The documents are stable (insertion-ordered
// keys, shortest round-trip doubles), so `seamap_cli optimize --json`
// output is golden-testable and byte-identical across thread counts.
//
// Schema of optimize_report_json (the `optimize --json` document):
//   {
//     "seamap_version": "x.y.z",
//     "strategy": "optimized" | "annealing" | <registered name>,
//     "problem": {
//       "graph": {"name", "tasks", "edges", "batches"},
//       "architecture": {"cores", "scaling_levels"},
//       "deadline_seconds", "exposure_policy"
//     },
//     "result": {
//       "scalings": {"total", "enumerated", "searched",
//                    "skipped_infeasible"},   // enumerated < total only
//                                             // when cancelled/cut early
//       "best": <point> | null,
//       "feasible_count",
//       "pareto_front": [<point>...],
//       "min_power_points": [<point>...]   // only when
//                                          // search.track_min_power is on
//     }
//   }
// where <point> = {"levels": [..], "core_of": [..], "metrics":
// {"tm_seconds", "latency_seconds", "register_bits", "gamma",
// "power_mw", "feasible"}}.
// Schema of campaign_report_json (the `campaign --json` document):
//   {
//     "seamap_version", "strategy",
//     "design": <point> | null,
//     "campaign": {                      // absent when design is null
//       "trials", "shards", "shard_size", "seed",
//       "analytic_gamma",
//       "total": <stats>,
//       "sites": {"register_file": {"analytic_gamma", ...<stats>},
//                 "pipeline": {...}, "memory": {...}},
//       "hits_per_core": [..], "hits_per_task": [..]
//     }
//   }
// where <stats> = {"mean", "stdev", "ci95_halfwidth", "min", "max",
// "hits"} over the per-trial hit counts.
#pragma once

#include "api/problem.h"
#include "core/dse.h"
#include "reliability/design_eval.h"
#include "sim/campaign.h"
#include "util/error.h"
#include "util/json.h"
#include "util/stats.h"

#include <string_view>

namespace seamap {

JsonValue to_json(const DesignMetrics& metrics);
JsonValue to_json(const DsePoint& point);
JsonValue to_json(const DseResult& result);
JsonValue to_json(const Problem& problem);
JsonValue to_json(const ExactMoments& stats);
JsonValue to_json(const CampaignReport& report);

/// Structured error object: {"code", "message"} plus "context" when one
/// was attached — the machine-readable failure surface `seamap_cli
/// ... --json` wraps as {"error": ...}.
JsonValue to_json(const Error& error);

/// The complete `optimize --json` document (see schema above).
JsonValue optimize_report_json(const Problem& problem, std::string_view strategy_name,
                               const DseResult& result);

/// The complete `campaign --json` document (see schema above): the
/// explored design plus the sharded campaign's measurement report.
/// Byte-identical for every thread count and shard schedule.
JsonValue campaign_report_json(const Problem& problem, std::string_view strategy_name,
                               const DsePoint* design, const CampaignReport* report);

} // namespace seamap
