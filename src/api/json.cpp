#include "api/json.h"

#include "util/version.h"

namespace seamap {

JsonValue to_json(const DesignMetrics& metrics) {
    JsonValue out = JsonValue::object();
    out["tm_seconds"] = metrics.tm_seconds;
    out["latency_seconds"] = metrics.latency_seconds;
    out["register_bits"] = metrics.register_bits;
    out["gamma"] = metrics.gamma;
    out["power_mw"] = metrics.power_mw;
    out["feasible"] = metrics.feasible;
    return out;
}

JsonValue to_json(const DsePoint& point) {
    JsonValue out = JsonValue::object();
    JsonValue levels = JsonValue::array();
    for (const ScalingLevel level : point.levels)
        levels.push_back(static_cast<std::int64_t>(level));
    out["levels"] = std::move(levels);
    JsonValue core_of = JsonValue::array();
    for (const CoreId core : point.mapping.raw())
        core_of.push_back(static_cast<std::int64_t>(core));
    out["core_of"] = std::move(core_of);
    out["metrics"] = to_json(point.metrics);
    return out;
}

JsonValue to_json(const DseResult& result) {
    JsonValue out = JsonValue::object();
    JsonValue scalings = JsonValue::object();
    scalings["total"] = result.scalings_total;
    scalings["enumerated"] = result.scalings_enumerated;
    scalings["emitted"] = result.scalings_emitted;
    scalings["searched"] = result.scalings_searched;
    scalings["skipped_infeasible"] = result.scalings_skipped_infeasible;
    scalings["pruned"] = result.scalings_pruned;
    out["scalings"] = std::move(scalings);
    out["best"] = result.best ? to_json(*result.best) : JsonValue();
    out["feasible_count"] = static_cast<std::uint64_t>(result.feasible_points.size());
    JsonValue front = JsonValue::array();
    for (const DsePoint& point : result.pareto_front) front.push_back(to_json(point));
    out["pareto_front"] = std::move(front);
    // Opt-in (DseParams::search.track_min_power): absent entirely when
    // tracking is off, so the default document schema never changes.
    if (!result.min_power_points.empty()) {
        JsonValue cheapest = JsonValue::array();
        for (const DsePoint& point : result.min_power_points)
            cheapest.push_back(to_json(point));
        out["min_power_points"] = std::move(cheapest);
    }
    return out;
}

JsonValue to_json(const Problem& problem) {
    JsonValue out = JsonValue::object();
    JsonValue graph = JsonValue::object();
    graph["name"] = problem.graph().name();
    graph["tasks"] = static_cast<std::uint64_t>(problem.graph().task_count());
    graph["edges"] = static_cast<std::uint64_t>(problem.graph().edge_count());
    graph["batches"] = problem.graph().batch_count();
    out["graph"] = std::move(graph);
    JsonValue arch = JsonValue::object();
    arch["cores"] = static_cast<std::uint64_t>(problem.architecture().core_count());
    arch["scaling_levels"] =
        static_cast<std::uint64_t>(problem.architecture().scaling_table().level_count());
    out["architecture"] = std::move(arch);
    out["deadline_seconds"] = problem.deadline_seconds();
    out["exposure_policy"] =
        problem.exposure_policy() == ExposurePolicy::full_duration ? "full_duration"
                                                                   : "busy_only";
    return out;
}

JsonValue optimize_report_json(const Problem& problem, std::string_view strategy_name,
                               const DseResult& result) {
    JsonValue out = JsonValue::object();
    out["seamap_version"] = k_version_string;
    out["strategy"] = strategy_name;
    out["problem"] = to_json(problem);
    out["result"] = to_json(result);
    return out;
}

JsonValue to_json(const ExactMoments& stats) {
    JsonValue out = JsonValue::object();
    out["mean"] = stats.mean();
    out["stdev"] = stats.stdev();
    out["ci95_halfwidth"] = stats.ci95_halfwidth();
    out["min"] = stats.min();
    out["max"] = stats.max();
    out["hits"] = stats.sum();
    return out;
}

JsonValue to_json(const CampaignReport& report) {
    JsonValue out = JsonValue::object();
    out["trials"] = report.trials;
    out["shards"] = report.shards;
    // Emitted only for partial (cancelled) reports, so full-run
    // documents keep their historic schema byte-for-byte.
    if (report.shards_completed != report.shards)
        out["shards_completed"] = report.shards_completed;
    out["shard_size"] = report.shard_size;
    out["seed"] = report.seed;
    out["analytic_gamma"] = report.analytic_gamma;
    out["total"] = to_json(report.total_stats);
    JsonValue sites = JsonValue::object();
    // Fixed enum order keeps the document deterministic.
    for (std::size_t s = 0; s < k_fault_site_count; ++s) {
        const FaultSite site = static_cast<FaultSite>(s);
        const SiteReport& site_report = report.site(site);
        JsonValue keyed = JsonValue::object();
        keyed["analytic_gamma"] = site_report.analytic_gamma;
        keyed["mean"] = site_report.stats.mean();
        keyed["stdev"] = site_report.stats.stdev();
        keyed["ci95_halfwidth"] = site_report.stats.ci95_halfwidth();
        keyed["min"] = site_report.stats.min();
        keyed["max"] = site_report.stats.max();
        keyed["hits"] = site_report.stats.sum();
        sites[fault_site_name(site)] = std::move(keyed);
    }
    out["sites"] = std::move(sites);
    JsonValue per_core = JsonValue::array();
    for (const std::uint64_t hits : report.hits_per_core) per_core.push_back(hits);
    out["hits_per_core"] = std::move(per_core);
    JsonValue per_task = JsonValue::array();
    for (const std::uint64_t hits : report.hits_per_task) per_task.push_back(hits);
    out["hits_per_task"] = std::move(per_task);
    return out;
}

JsonValue to_json(const Error& error) {
    JsonValue out = JsonValue::object();
    out["code"] = error.code();
    out["message"] = error.message();
    if (!error.context().empty()) out["context"] = error.context();
    return out;
}

JsonValue campaign_report_json(const Problem& problem, std::string_view strategy_name,
                               const DsePoint* design, const CampaignReport* report) {
    JsonValue out = JsonValue::object();
    out["seamap_version"] = k_version_string;
    out["strategy"] = strategy_name;
    out["problem"] = to_json(problem);
    out["design"] = design ? to_json(*design) : JsonValue();
    if (design && report) out["campaign"] = to_json(*report);
    return out;
}

} // namespace seamap
