#include "api/json.h"

#include "util/version.h"

namespace seamap {

JsonValue to_json(const DesignMetrics& metrics) {
    JsonValue out = JsonValue::object();
    out["tm_seconds"] = metrics.tm_seconds;
    out["latency_seconds"] = metrics.latency_seconds;
    out["register_bits"] = metrics.register_bits;
    out["gamma"] = metrics.gamma;
    out["power_mw"] = metrics.power_mw;
    out["feasible"] = metrics.feasible;
    return out;
}

JsonValue to_json(const DsePoint& point) {
    JsonValue out = JsonValue::object();
    JsonValue levels = JsonValue::array();
    for (const ScalingLevel level : point.levels)
        levels.push_back(static_cast<std::int64_t>(level));
    out["levels"] = std::move(levels);
    JsonValue core_of = JsonValue::array();
    for (const CoreId core : point.mapping.raw())
        core_of.push_back(static_cast<std::int64_t>(core));
    out["core_of"] = std::move(core_of);
    out["metrics"] = to_json(point.metrics);
    return out;
}

JsonValue to_json(const DseResult& result) {
    JsonValue out = JsonValue::object();
    JsonValue scalings = JsonValue::object();
    scalings["total"] = result.scalings_total;
    scalings["enumerated"] = result.scalings_enumerated;
    scalings["searched"] = result.scalings_searched;
    scalings["skipped_infeasible"] = result.scalings_skipped_infeasible;
    scalings["pruned"] = result.scalings_pruned;
    out["scalings"] = std::move(scalings);
    out["best"] = result.best ? to_json(*result.best) : JsonValue();
    out["feasible_count"] = static_cast<std::uint64_t>(result.feasible_points.size());
    JsonValue front = JsonValue::array();
    for (const DsePoint& point : result.pareto_front) front.push_back(to_json(point));
    out["pareto_front"] = std::move(front);
    // Opt-in (DseParams::search.track_min_power): absent entirely when
    // tracking is off, so the default document schema never changes.
    if (!result.min_power_points.empty()) {
        JsonValue cheapest = JsonValue::array();
        for (const DsePoint& point : result.min_power_points)
            cheapest.push_back(to_json(point));
        out["min_power_points"] = std::move(cheapest);
    }
    return out;
}

JsonValue to_json(const Problem& problem) {
    JsonValue out = JsonValue::object();
    JsonValue graph = JsonValue::object();
    graph["name"] = problem.graph().name();
    graph["tasks"] = static_cast<std::uint64_t>(problem.graph().task_count());
    graph["edges"] = static_cast<std::uint64_t>(problem.graph().edge_count());
    graph["batches"] = problem.graph().batch_count();
    out["graph"] = std::move(graph);
    JsonValue arch = JsonValue::object();
    arch["cores"] = static_cast<std::uint64_t>(problem.architecture().core_count());
    arch["scaling_levels"] =
        static_cast<std::uint64_t>(problem.architecture().scaling_table().level_count());
    out["architecture"] = std::move(arch);
    out["deadline_seconds"] = problem.deadline_seconds();
    out["exposure_policy"] =
        problem.exposure_policy() == ExposurePolicy::full_duration ? "full_duration"
                                                                   : "busy_only";
    return out;
}

JsonValue optimize_report_json(const Problem& problem, std::string_view strategy_name,
                               const DseResult& result) {
    JsonValue out = JsonValue::object();
    out["seamap_version"] = k_version_string;
    out["strategy"] = strategy_name;
    out["problem"] = to_json(problem);
    out["result"] = to_json(result);
    return out;
}

} // namespace seamap
