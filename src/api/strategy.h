// The name-keyed search-strategy registry of the public API, plus the
// SA-baseline adapter. The SearchStrategy contract itself (and the
// Fig. 7 "optimized" implementation) lives in core/search_strategy.h —
// the explorer consumes the interface without looking upward; this
// header is where interchangeable engines are *assembled and named*:
// the built-ins "optimized" and "annealing" are pre-registered, and a
// new backend is one register_search_strategy() call away.
#pragma once

#include "baseline/objectives.h"
#include "baseline/simulated_annealing.h"
#include "core/eval_context.h"
#include "core/optimized_mapping.h"
#include "core/search_strategy.h"
#include "reliability/design_eval.h"
#include "sched/mapping.h"
#include "util/cancellation.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace seamap {

/// The canonical knob set a registry factory receives — one struct for
/// every engine, so the same ExploreOptions mean the same thing
/// regardless of the strategy name. Each engine honors the knobs it
/// understands: both built-ins consume max_iterations (0 = time-budget
/// only), time_budget_seconds, the temperature pair, swap_probability
/// and require_all_cores; sweep_interval and restarts are Fig. 7
/// concepts the annealing baseline ignores. The `seed` field is always
/// ignored — per-scaling seeds arrive through search().
using StrategyOptions = LocalSearchParams;

/// The simulated-annealing baseline mapper [13], annealing on any of
/// the Table II objectives (Gamma by default, which makes it a fair
/// soft-error-aware baseline). The `seed` field of the params is
/// ignored — search() uses its seed argument.
class AnnealingStrategy final : public SearchStrategy {
public:
    /// Validates the params eagerly (bad budgets/temperatures throw
    /// here, not mid-exploration on a worker thread).
    explicit AnnealingStrategy(SaParams params = {},
                               MappingObjective objective = MappingObjective::seu_count);

    std::string name() const override;
    LocalSearchResult search(const EvaluationContext& ctx, const Mapping& initial,
                             std::uint64_t seed,
                             const CancellationToken* cancel = nullptr) const override;
    LocalSearchResult search(EvalContext& eval, const Mapping& initial, std::uint64_t seed,
                             const CancellationToken* cancel = nullptr) const override;

private:
    SaParams params_;
    MappingObjective objective_;
};

using StrategyFactory = std::function<std::unique_ptr<SearchStrategy>(const StrategyOptions&)>;

/// Register a strategy under `name`. Returns false (and changes
/// nothing) when the name is already taken. Thread-safe.
bool register_search_strategy(std::string name, StrategyFactory factory);

/// Instantiate a registered strategy; throws std::invalid_argument
/// naming the known strategies when `name` is unknown or when the
/// factory returns null. "optimized" and "annealing" are built in.
std::unique_ptr<SearchStrategy> make_search_strategy(std::string_view name,
                                                     const StrategyOptions& options = {});

/// Registered names, sorted. ("optimized", "annealing" built in.)
std::vector<std::string> search_strategy_names();

} // namespace seamap
