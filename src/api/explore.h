// The one-call entry point of the public API: run the paper's Fig. 4
// design-space exploration on a Problem with a named search strategy.
//
//     Problem problem = ProblemBuilder()...build();
//     ExploreOptions options;
//     options.strategy = "annealing";           // or "optimized" (default)
//     options.dse.search.max_iterations = 6'000;
//     options.dse.num_threads = 0;              // one per hardware thread
//     DseResult result = explore(problem, options);
//
// Progress streaming and cooperative cancellation ride along through
// the optional ProgressObserver / CancellationToken arguments.
#pragma once

#include "api/observer.h"
#include "api/problem.h"
#include "core/dse.h"
#include "core/dse_checkpoint.h"
#include "util/cancellation.h"

#include <string>

namespace seamap {

/// Exploration options: a strategy-registry name plus the explorer
/// knobs. Every strategy's factory receives `dse.search` as its
/// StrategyOptions (see api/strategy.h for which knobs each engine
/// honors); `dse.search.seed` is the per-scaling seed base.
struct ExploreOptions {
    std::string strategy = "optimized";
    DseParams dse;
};

/// Run the full exploration. Throws std::invalid_argument for an
/// unknown strategy name. `checkpoint`, when non-null, makes the run
/// crash-safe: newly decided scalings are snapshotted on the
/// checkpointer's cadence, and a previously loaded prefix (see
/// core/dse_checkpoint.h) is resumed — final results are byte-identical
/// to the uninterrupted run at any thread count.
DseResult explore(const Problem& problem, const ExploreOptions& options = {},
                  ProgressObserver* observer = nullptr,
                  const CancellationToken* cancel = nullptr,
                  DseCheckpointer* checkpoint = nullptr);

/// The exploration's checkpoint identity hash for a (problem, options)
/// pair — what a DseCheckpointer for this run must be keyed with.
std::uint64_t explore_state_hash(const Problem& problem, const ExploreOptions& options);

} // namespace seamap
