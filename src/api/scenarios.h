// Ready-made reproducible Problems for benches, tests and examples —
// scenario definitions that must stay bit-for-bit identical across the
// call sites that cite each other's numbers (a benchmark recorded in
// BENCH_N.json and the test pinning that benchmark's correctness claim
// must run the *same* workload, so it is defined exactly once, here).
// Deliberately NOT exported through seamap/seamap.h: these are bench
// fixtures, not stable public API — include this header directly.
#pragma once

#include "api/problem.h"

#include <cstddef>

namespace seamap {

/// The branch-and-bound "prunable scaling space" scenario of the
/// README performance table and bm_explore_prunable: a pipelined
/// private-register workload (`stages` x `width` tasks, 256 batches,
/// light communication) on a deep dyadic DVS ladder (200/100/50/25
/// MHz) in a clock-tree-dominated power regime (idle_activity 0.85)
/// with nearly voltage-flat SER (k = 0.1), deadline 2.5x the
/// all-nominal T_M lower bound. Deterministic: identical arguments
/// produce an identical Problem.
Problem prunable_pipeline_problem(std::size_t cores, std::size_t stages = 8,
                                  std::size_t width = 8);

/// The giant-instance "--scale" family of the ROADMAP (1k/4k/10k tasks
/// x 16/64 cores): a TGFF random graph with the paper's Section V cost
/// distributions on a geometric `scaling_levels`-point DVS ladder
/// (200 MHz shrinking by 0.7 per level) in the same prune-friendly
/// regime as prunable_pipeline_problem (clock-tree-dominated power,
/// nearly voltage-flat SER, deadline 2.5x the all-nominal T_M lower
/// bound). The scaling space has C(cores + levels - 1, levels - 1)
/// slots — at 16 cores x 6 levels that is 20349, past the 10^4 mark
/// where lazy enumeration starts to pay. Deterministic in
/// (tasks, cores, scaling_levels, seed).
Problem scale_problem(std::size_t tasks, std::size_t cores, std::size_t scaling_levels = 3,
                      std::uint64_t seed = 1);

/// The committed 10^4-slot acceptance instance of the lazy-enumeration
/// tentpole: the prunable pipeline workload (6 x 6 tasks — small
/// enough to sweep exhaustively as the reference) on 16 cores x a
/// dyadic 6-level ladder, i.e. C(21, 5) = 20349 scaling slots.
/// tests/integration/dse_scale_test.cpp pins lazy explore() to < 50%
/// of the materialized sweep's slots emitted, with byte-identical
/// best/pareto_front JSON at 1/2/8 threads.
Problem scale_acceptance_problem();

} // namespace seamap
