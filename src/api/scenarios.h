// Ready-made reproducible Problems for benches, tests and examples —
// scenario definitions that must stay bit-for-bit identical across the
// call sites that cite each other's numbers (a benchmark recorded in
// BENCH_N.json and the test pinning that benchmark's correctness claim
// must run the *same* workload, so it is defined exactly once, here).
// Deliberately NOT exported through seamap/seamap.h: these are bench
// fixtures, not stable public API — include this header directly.
#pragma once

#include "api/problem.h"

#include <cstddef>

namespace seamap {

/// The branch-and-bound "prunable scaling space" scenario of the
/// README performance table and bm_explore_prunable: a pipelined
/// private-register workload (`stages` x `width` tasks, 256 batches,
/// light communication) on a deep dyadic DVS ladder (200/100/50/25
/// MHz) in a clock-tree-dominated power regime (idle_activity 0.85)
/// with nearly voltage-flat SER (k = 0.1), deadline 2.5x the
/// all-nominal T_M lower bound. Deterministic: identical arguments
/// produce an identical Problem.
Problem prunable_pipeline_problem(std::size_t cores, std::size_t stages = 8,
                                  std::size_t width = 8);

} // namespace seamap
