#include "api/strategy.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace seamap {

AnnealingStrategy::AnnealingStrategy(SaParams params, MappingObjective objective)
    : params_(params), objective_(objective) {
    (void)SimulatedAnnealingMapper(params_);
}

std::string AnnealingStrategy::name() const { return "annealing"; }

LocalSearchResult AnnealingStrategy::search(const EvaluationContext& ctx,
                                            const Mapping& initial, std::uint64_t seed,
                                            const CancellationToken* cancel) const {
    EvalContext eval(ctx);
    return search(eval, initial, seed, cancel);
}

LocalSearchResult AnnealingStrategy::search(EvalContext& eval, const Mapping& initial,
                                            std::uint64_t seed,
                                            const CancellationToken* cancel) const {
    SaParams params = params_;
    params.seed = seed;
    const SaResult annealed =
        SimulatedAnnealingMapper(params).optimize(eval, objective_, initial, cancel);
    LocalSearchResult result;
    result.best_mapping = annealed.best_mapping;
    result.best_metrics = annealed.best_metrics;
    result.found_feasible = annealed.found_feasible;
    result.iterations_run = annealed.iterations_run;
    result.improvements = annealed.accepted_moves;
    result.evaluations = annealed.evaluations;
    return result;
}

namespace {

struct Registry {
    std::mutex mutex;
    std::vector<std::pair<std::string, StrategyFactory>> entries;

    Registry() {
        entries.emplace_back("optimized", [](const StrategyOptions& options) {
            return std::make_unique<OptimizedMappingStrategy>(options);
        });
        entries.emplace_back("annealing", [](const StrategyOptions& options) {
            SaParams params;
            params.iterations = options.max_iterations;
            params.time_budget_seconds = options.time_budget_seconds;
            params.initial_temperature = options.initial_temperature;
            params.final_temperature = options.final_temperature;
            params.swap_probability = options.swap_probability;
            params.require_all_cores = options.require_all_cores;
            return std::make_unique<AnnealingStrategy>(params);
        });
    }
};

Registry& registry() {
    static Registry instance;
    return instance;
}

} // namespace

bool register_search_strategy(std::string name, StrategyFactory factory) {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    for (const auto& [existing, _] : reg.entries)
        if (existing == name) return false;
    reg.entries.emplace_back(std::move(name), std::move(factory));
    return true;
}

std::unique_ptr<SearchStrategy> make_search_strategy(std::string_view name,
                                                     const StrategyOptions& options) {
    Registry& reg = registry();
    StrategyFactory factory;
    {
        std::lock_guard lock(reg.mutex);
        for (const auto& [existing, candidate] : reg.entries)
            if (existing == name) factory = candidate;
    }
    if (!factory) {
        std::string known;
        for (const std::string& entry : search_strategy_names()) {
            if (!known.empty()) known += ", ";
            known += entry;
        }
        throw std::invalid_argument("unknown search strategy '" + std::string(name) +
                                    "' (known: " + known + ")");
    }
    std::unique_ptr<SearchStrategy> strategy = factory(options);
    if (strategy == nullptr)
        throw std::invalid_argument("search strategy factory for '" + std::string(name) +
                                    "' returned null (options it cannot satisfy?)");
    return strategy;
}

std::vector<std::string> search_strategy_names() {
    Registry& reg = registry();
    std::vector<std::string> names;
    {
        std::lock_guard lock(reg.mutex);
        names.reserve(reg.entries.size());
        for (const auto& [name, _] : reg.entries) names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace seamap
