// Public re-export of the exploration progress interface. The types
// live in core/observer.h (the explorer calls them, and core never
// depends upward on api/); this shim keeps the whole API surface
// reachable through the api/ headers and seamap/seamap.h.
#pragma once

#include "core/observer.h" // arch-check: export
