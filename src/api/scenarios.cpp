#include "api/scenarios.h"

#include "sched/list_scheduler.h"
#include "tgff/random_graph.h"
#include "util/rng.h"

#include <string>
#include <utility>
#include <vector>

namespace seamap {

namespace {

/// Shared pipeline recipe of prunable_pipeline_problem and
/// scale_acceptance_problem — same graph construction and prune-
/// friendly regime, parameterized over the DVS ladder.
Problem pipeline_problem(std::size_t cores, std::size_t stages, std::size_t width,
                         const std::vector<double>& f_mhz) {
    RegisterFile file;
    Rng widths(21);
    for (std::size_t s = 0; s < stages; ++s)
        for (std::size_t w = 0; w < width; ++w)
            file.add_register("r" + std::to_string(s) + "_" + std::to_string(w),
                              256 + static_cast<std::uint64_t>(widths.uniform_int(0, 1791)));
    TaskGraph graph("prunable_pipe", std::move(file));
    Rng rng(9);
    std::vector<TaskId> previous;
    RegisterId next_register = 0;
    for (std::size_t s = 0; s < stages; ++s) {
        std::vector<TaskId> current;
        for (std::size_t w = 0; w < width; ++w) {
            const std::uint64_t exec =
                600'000 + static_cast<std::uint64_t>(rng.uniform_int(0, 1'799'999));
            const RegisterId own = next_register++;
            const TaskId task =
                graph.add_task("t" + std::to_string(s) + "_" + std::to_string(w), exec,
                               std::vector<RegisterId>{own});
            if (!previous.empty()) {
                const std::size_t parent = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(previous.size()) - 1));
                graph.add_edge(previous[parent], task,
                               20'000 +
                                   static_cast<std::uint64_t>(rng.uniform_int(0, 29'999)));
            }
            current.push_back(task);
        }
        previous = current;
    }
    graph.set_batch_count(256);

    PowerParams power;
    power.idle_activity = 0.85; // clock-tree-dominated power
    SerParams ser;
    ser.voltage_exponent_k = 0.1; // nearly voltage-flat SER
    MpsocArchitecture arch(cores, VoltageScalingTable::from_frequencies(f_mhz), power);
    const double deadline =
        2.5 * tm_lower_bound_seconds(graph, arch, ScalingVector(cores, 1));
    return ProblemBuilder()
        .graph(std::move(graph))
        .architecture(std::move(arch))
        .deadline_seconds(deadline)
        .ser_model(SerModel{ser})
        .build();
}

} // namespace

Problem prunable_pipeline_problem(std::size_t cores, std::size_t stages,
                                  std::size_t width) {
    return pipeline_problem(cores, stages, width, {200.0, 100.0, 50.0, 25.0});
}

Problem scale_problem(std::size_t tasks, std::size_t cores, std::size_t scaling_levels,
                      std::uint64_t seed) {
    TgffParams params;
    params.task_count = tasks;
    // Pipelined like the MPEG-2 reference workload (437 frames) and the
    // prunable pipeline (256): with B >> 1 the throughput term dominates
    // T_M, which is what makes the branch-and-bound case bounds tight
    // enough to prune.
    params.batch_count = 256;
    params.name = "scale_" + std::to_string(tasks) + "t" + std::to_string(cores) + "c";
    TaskGraph graph = generate_tgff_graph(params, seed);

    // Geometric DVS ladder from the 200 MHz nominal point; 0.7 per
    // level keeps the slowest point useful (six levels bottom out at
    // ~34 MHz) while spreading power wide enough for bounds to rank
    // scalings meaningfully.
    std::vector<double> f_mhz(scaling_levels);
    double f = 200.0;
    for (std::size_t i = 0; i < scaling_levels; ++i, f *= 0.7) f_mhz[i] = f;

    // Same prune-friendly regime as prunable_pipeline_problem: power
    // dominated by the always-on clock tree (so powering cores down
    // buys a lot), SER nearly flat in voltage (so slow scalings are not
    // automatically better for Gamma), generous deadline.
    PowerParams power;
    power.idle_activity = 0.85;
    SerParams ser;
    ser.voltage_exponent_k = 0.1;
    MpsocArchitecture arch(cores, VoltageScalingTable::from_frequencies(f_mhz), power);
    const double deadline =
        2.5 * tm_lower_bound_seconds(graph, arch, ScalingVector(cores, 1));
    return ProblemBuilder()
        .graph(std::move(graph))
        .architecture(std::move(arch))
        .deadline_seconds(deadline)
        .ser_model(SerModel{ser})
        .build();
}

Problem scale_acceptance_problem() {
    // The prunable pipeline recipe on a dyadic SIX-level ladder:
    // 16 cores x 6 levels = C(21, 5) = 20349 scaling slots, past the
    // 10^4 mark. The deep slow tail (12.5 / 6.25 MHz) is mostly killed
    // by the T_M gate and the bound-sorted disposal + branch-and-bound
    // prune cut most of the rest — measured at 300-iteration searches:
    // ~3.0k of 20349 slots emitted (~15%), ~2.9k pruned, ~2.4k
    // feasible designs, against ~5.9k gate passers the exhaustive
    // sweep searches. The pipeline workload (private registers, light
    // communication) is what makes the ScalingBoundsModel tight; TGFF
    // graphs with shared output buffers leave the Gamma bound too
    // loose to prune (see scale_problem, which measures raw eval
    // throughput instead).
    return pipeline_problem(16, 6, 6,
                            {200.0, 100.0, 50.0, 25.0, 12.5, 6.25});
}

} // namespace seamap
