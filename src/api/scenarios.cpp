#include "api/scenarios.h"

#include "sched/list_scheduler.h"
#include "util/rng.h"

#include <string>
#include <utility>
#include <vector>

namespace seamap {

Problem prunable_pipeline_problem(std::size_t cores, std::size_t stages,
                                  std::size_t width) {
    RegisterFile file;
    Rng widths(21);
    for (std::size_t s = 0; s < stages; ++s)
        for (std::size_t w = 0; w < width; ++w)
            file.add_register("r" + std::to_string(s) + "_" + std::to_string(w),
                              256 + static_cast<std::uint64_t>(widths.uniform_int(0, 1791)));
    TaskGraph graph("prunable_pipe", std::move(file));
    Rng rng(9);
    std::vector<TaskId> previous;
    RegisterId next_register = 0;
    for (std::size_t s = 0; s < stages; ++s) {
        std::vector<TaskId> current;
        for (std::size_t w = 0; w < width; ++w) {
            const std::uint64_t exec =
                600'000 + static_cast<std::uint64_t>(rng.uniform_int(0, 1'799'999));
            const RegisterId own = next_register++;
            const TaskId task =
                graph.add_task("t" + std::to_string(s) + "_" + std::to_string(w), exec,
                               std::vector<RegisterId>{own});
            if (!previous.empty()) {
                const std::size_t parent = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(previous.size()) - 1));
                graph.add_edge(previous[parent], task,
                               20'000 +
                                   static_cast<std::uint64_t>(rng.uniform_int(0, 29'999)));
            }
            current.push_back(task);
        }
        previous = current;
    }
    graph.set_batch_count(256);

    PowerParams power;
    power.idle_activity = 0.85; // clock-tree-dominated power
    SerParams ser;
    ser.voltage_exponent_k = 0.1; // nearly voltage-flat SER
    MpsocArchitecture arch(cores,
                           VoltageScalingTable::from_frequencies({200.0, 100.0, 50.0, 25.0}),
                           power);
    const double deadline =
        2.5 * tm_lower_bound_seconds(graph, arch, ScalingVector(cores, 1));
    return ProblemBuilder()
        .graph(std::move(graph))
        .architecture(std::move(arch))
        .deadline_seconds(deadline)
        .ser_model(SerModel{ser})
        .build();
}

} // namespace seamap
