// The public problem description: everything the paper's Fig. 4 flow
// needs as *input*, bundled into one immutable, cheaply copyable value.
// A Problem is the stable contract between workload producers (CLI,
// services, tests) and interchangeable analysis engines (the search
// strategies of api/strategy.h, the fault injector, future backends) —
// the same problem/engine separation frameworks like CFA and OpenSEA
// use for fault analysis.
//
//     Problem problem = ProblemBuilder()
//                           .graph(mpeg2_decoder_graph())
//                           .architecture(4, VoltageScalingTable::arm7_three_level())
//                           .deadline_seconds(mpeg2_deadline_seconds())
//                           .build();                 // validates here
//     DseResult result = explore(problem);            // api/explore.h
//
// Validation happens once, at build(); every consumer downstream can
// assume a well-formed DAG, a matching architecture and a positive
// deadline.
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "arch/scaling_table.h"
#include "reliability/design_eval.h"
#include "reliability/ser_model.h"
#include "reliability/seu_estimator.h"
#include "taskgraph/task_graph.h"

#include <memory>
#include <optional>

namespace seamap {

/// Immutable problem instance; build with ProblemBuilder. Copies share
/// the underlying state, so passing Problems by value is cheap and the
/// references returned by the accessors stay valid for the lifetime of
/// any copy.
class Problem {
public:
    const TaskGraph& graph() const { return state_->graph; }
    const MpsocArchitecture& architecture() const { return state_->arch; }
    double deadline_seconds() const { return state_->deadline_seconds; }
    const SerModel& ser_model() const { return state_->ser; }
    ExposurePolicy exposure_policy() const { return state_->policy; }

    /// Gamma estimator configured with this problem's SER model and
    /// exposure policy.
    SeuEstimator make_estimator() const;

    /// Evaluation context for one scaling combination (validated
    /// against the architecture). The context references this problem's
    /// state — keep the Problem (or a copy) alive while using it.
    EvaluationContext evaluation_context(ScalingVector levels) const;

private:
    friend class ProblemBuilder;

    struct State {
        TaskGraph graph;
        MpsocArchitecture arch;
        double deadline_seconds;
        SerModel ser;
        ExposurePolicy policy;
    };

    explicit Problem(std::shared_ptr<const State> state) : state_(std::move(state)) {}

    std::shared_ptr<const State> state_;
};

/// Fluent builder; build() performs all validation and throws
/// std::invalid_argument with a description of everything that is
/// missing or malformed.
class ProblemBuilder {
public:
    ProblemBuilder& graph(TaskGraph graph);
    ProblemBuilder& architecture(MpsocArchitecture arch);
    /// Convenience: a homogeneous MPSoC with `cores` cores and `table`.
    ProblemBuilder& architecture(std::size_t cores, VoltageScalingTable table);
    ProblemBuilder& deadline_seconds(double seconds);
    /// Optional; defaults reproduce the paper's SER parameters.
    ProblemBuilder& ser_model(SerModel model);
    /// Optional; defaults to ExposurePolicy::full_duration (the paper's
    /// semantics).
    ProblemBuilder& exposure_policy(ExposurePolicy policy);

    /// Validates and assembles the immutable Problem.
    Problem build() const;

private:
    std::optional<TaskGraph> graph_;
    std::optional<MpsocArchitecture> arch_;
    std::optional<double> deadline_seconds_;
    SerModel ser_{};
    ExposurePolicy policy_ = ExposurePolicy::full_duration;
};

} // namespace seamap
