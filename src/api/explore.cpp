#include "api/explore.h"

#include "api/strategy.h"
#include "core/dse_checkpoint.h"

#include <memory>

namespace seamap {

DseResult explore(const Problem& problem, const ExploreOptions& options,
                  ProgressObserver* observer, const CancellationToken* cancel,
                  DseCheckpointer* checkpoint) {
    const DesignSpaceExplorer explorer(problem.ser_model(), problem.exposure_policy());
    // One construction path for every name: the registry factory
    // receives options.dse.search as the canonical StrategyOptions.
    const std::unique_ptr<SearchStrategy> strategy =
        make_search_strategy(options.strategy, options.dse.search);
    return explorer.explore(problem.graph(), problem.architecture(),
                            problem.deadline_seconds(), options.dse, *strategy, observer,
                            cancel, checkpoint);
}

std::uint64_t explore_state_hash(const Problem& problem, const ExploreOptions& options) {
    return dse_state_hash(problem.graph(), problem.architecture(),
                          problem.deadline_seconds(), options.dse, problem.ser_model(),
                          problem.exposure_policy(), options.strategy);
}

} // namespace seamap
