#include "api/problem.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace seamap {

SeuEstimator Problem::make_estimator() const {
    return SeuEstimator(state_->ser, state_->policy);
}

EvaluationContext Problem::evaluation_context(ScalingVector levels) const {
    state_->arch.validate_scaling(levels);
    return EvaluationContext{state_->graph, state_->arch, std::move(levels),
                             make_estimator(), state_->deadline_seconds};
}

ProblemBuilder& ProblemBuilder::graph(TaskGraph graph) {
    graph_ = std::move(graph);
    return *this;
}

ProblemBuilder& ProblemBuilder::architecture(MpsocArchitecture arch) {
    arch_ = std::move(arch);
    return *this;
}

ProblemBuilder& ProblemBuilder::architecture(std::size_t cores, VoltageScalingTable table) {
    return architecture(MpsocArchitecture(cores, std::move(table)));
}

ProblemBuilder& ProblemBuilder::deadline_seconds(double seconds) {
    deadline_seconds_ = seconds;
    return *this;
}

ProblemBuilder& ProblemBuilder::ser_model(SerModel model) {
    ser_ = std::move(model);
    return *this;
}

ProblemBuilder& ProblemBuilder::exposure_policy(ExposurePolicy policy) {
    policy_ = policy;
    return *this;
}

Problem ProblemBuilder::build() const {
    std::string problems;
    auto complain = [&problems](const std::string& what) {
        if (!problems.empty()) problems += "; ";
        problems += what;
    };
    if (!graph_) complain("graph not set");
    if (!arch_) complain("architecture not set");
    if (!deadline_seconds_) {
        complain("deadline not set");
    } else if (!std::isfinite(*deadline_seconds_) || *deadline_seconds_ <= 0.0) {
        complain("deadline must be a positive finite number of seconds");
    }
    if (graph_) {
        try {
            graph_->validate();
        } catch (const std::exception& e) {
            complain(std::string("invalid graph: ") + e.what());
        }
    }
    if (!problems.empty()) throw std::invalid_argument("ProblemBuilder: " + problems);
    auto state = std::make_shared<const Problem::State>(
        Problem::State{*graph_, *arch_, *deadline_seconds_, ser_, policy_});
    return Problem(std::move(state));
}

} // namespace seamap
