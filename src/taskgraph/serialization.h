// Plain-text (de)serialization for task graphs, so examples and
// experiments can save generated workloads and reload them later.
//
// Format (line-oriented, '#' comments, whitespace-separated):
//   graph <name-with-no-spaces>
//   batches <count>
//   registers <count>
//   reg <name> <bits>                  # one per register, id = order
//   tasks <count>
//   task <name> <exec_cycles> <k> <r0> ... <r(k-1)>
//   edges <count>
//   edge <src_id> <dst_id> <comm_cycles>
#pragma once

#include "taskgraph/task_graph.h"

#include <iosfwd>
#include <string>

namespace seamap {

/// Write `graph` to `os` in the text format above.
void write_task_graph(std::ostream& os, const TaskGraph& graph);

/// Parse a graph from `is`; throws seamap::Error (ErrorCategory::parse)
/// with a line number on malformed input. Hostile inputs — truncated
/// files, giant declared counts, non-numeric fields, out-of-range
/// register/task ids, duplicate edges — are all rejected with the same
/// structured error, never undefined behavior or a bad_alloc.
TaskGraph read_task_graph(std::istream& is);

/// Convenience round-trips through files; open/write failures throw
/// seamap::Error (ErrorCategory::io) with the path as context.
void save_task_graph(const std::string& path, const TaskGraph& graph);
TaskGraph load_task_graph(const std::string& path);

} // namespace seamap
