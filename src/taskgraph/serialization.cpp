#include "taskgraph/serialization.h"

#include "util/error.h"
#include "util/strings.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace seamap {

void write_task_graph(std::ostream& os, const TaskGraph& graph) {
    os << "# seamap task graph\n";
    os << "graph " << graph.name() << '\n';
    os << "batches " << graph.batch_count() << '\n';
    const RegisterFile& regs = graph.register_file();
    os << "registers " << regs.size() << '\n';
    for (RegisterId id = 0; id < regs.size(); ++id)
        os << "reg " << regs.name(id) << ' ' << regs.bits(id) << '\n';
    os << "tasks " << graph.task_count() << '\n';
    for (TaskId id = 0; id < graph.task_count(); ++id) {
        const Task& task = graph.task(id);
        os << "task " << task.name << ' ' << task.exec_cycles << ' ' << task.registers.count();
        task.registers.for_each([&](RegisterId rid) { os << ' ' << rid; });
        os << '\n';
    }
    os << "edges " << graph.edge_count() << '\n';
    for (const Edge& edge : graph.edges())
        os << "edge " << edge.src << ' ' << edge.dst << ' ' << edge.comm_cycles << '\n';
}

namespace {

// Hard ceiling on every declared count ("registers N", "tasks N",
// "edges N", per-task register-list length). Far above any real
// workload, low enough that a hostile header can never drive looping
// or allocation before the mismatch is discovered.
constexpr std::uint64_t k_max_declared_count = 1'000'000;

// Ceiling on per-item magnitudes (register bits, exec/comm cycles).
// With at most k_max_declared_count items, whole-graph sums like
// total_exec_cycles() stay below 10^18 and cannot wrap a u64.
constexpr std::uint64_t k_max_magnitude = 1'000'000'000'000;

class LineReader {
public:
    explicit LineReader(std::istream& is) : is_(is) {}

    /// Next non-empty, non-comment line split into fields; nullopt at EOF.
    std::optional<std::vector<std::string>> next() {
        std::string line;
        while (std::getline(is_, line)) {
            ++line_number_;
            const std::string_view trimmed = trim(line);
            if (trimmed.empty() || trimmed.front() == '#') continue;
            std::vector<std::string> fields;
            std::istringstream fs{std::string(trimmed)};
            std::string field;
            while (fs >> field) fields.push_back(field);
            return fields;
        }
        return std::nullopt;
    }

    [[noreturn]] void fail(const std::string& message) const {
        throw Error(ErrorCategory::parse, "task graph parse error at line " +
                                              std::to_string(line_number_) + ": " + message);
    }

    /// parse_u64 with the line number attached on failure.
    std::uint64_t number(const std::string& field, const char* what) const {
        try {
            return parse_u64(field);
        } catch (const std::exception&) {
            fail(std::string(what) + " is not an unsigned integer: '" + field + "'");
        }
    }

    /// A declared count, rejected above k_max_declared_count.
    std::uint64_t count(const std::string& field, const char* what) const {
        const std::uint64_t value = number(field, what);
        if (value > k_max_declared_count)
            fail(std::string(what) + " " + std::to_string(value) + " exceeds the limit of " +
                 std::to_string(k_max_declared_count));
        return value;
    }

    /// A per-item magnitude, rejected above k_max_magnitude.
    std::uint64_t magnitude(const std::string& field, const char* what) const {
        const std::uint64_t value = number(field, what);
        if (value > k_max_magnitude)
            fail(std::string(what) + " " + std::to_string(value) + " exceeds the limit of " +
                 std::to_string(k_max_magnitude));
        return value;
    }

    std::vector<std::string> expect(const std::string& keyword, std::size_t field_count) {
        auto fields = next();
        if (!fields) fail("unexpected end of input; expected '" + keyword + "'");
        if ((*fields)[0] != keyword)
            fail("expected '" + keyword + "', got '" + (*fields)[0] + "'");
        if (fields->size() != field_count)
            fail("'" + keyword + "' expects " + std::to_string(field_count - 1) + " fields");
        return *fields;
    }

private:
    std::istream& is_;
    std::size_t line_number_ = 0;
};

} // namespace

TaskGraph read_task_graph(std::istream& is) {
    LineReader reader(is);

    const auto graph_line = reader.expect("graph", 2);
    const auto batches_line = reader.expect("batches", 2);
    const std::uint64_t batches = reader.count(batches_line[1], "batch count");

    RegisterFile regs;
    const auto registers_line = reader.expect("registers", 2);
    const auto reg_count = reader.count(registers_line[1], "register count");
    for (std::uint64_t i = 0; i < reg_count; ++i) {
        const auto fields = reader.expect("reg", 3);
        const std::uint64_t bits = reader.magnitude(fields[2], "register width");
        try {
            regs.add_register(fields[1], bits);
        } catch (const std::exception& e) {
            reader.fail(e.what());
        }
    }

    TaskGraph graph(graph_line[1], std::move(regs));
    try {
        graph.set_batch_count(batches);
    } catch (const std::exception& e) {
        reader.fail(e.what());
    }

    const auto tasks_line = reader.expect("tasks", 2);
    const auto task_count = reader.count(tasks_line[1], "task count");
    for (std::uint64_t i = 0; i < task_count; ++i) {
        auto fields = reader.next();
        if (!fields) reader.fail("unexpected end of input in task list");
        if ((*fields)[0] != "task" || fields->size() < 4) reader.fail("malformed task line");
        const auto reg_list_count = reader.count((*fields)[3], "task register count");
        // reg_list_count <= k_max_declared_count, so 4 + reg_list_count
        // cannot wrap.
        if (fields->size() != 4 + reg_list_count)
            reader.fail("task register list length mismatch");
        std::vector<RegisterId> ids;
        ids.reserve(reg_list_count);
        for (std::uint64_t r = 0; r < reg_list_count; ++r) {
            const std::uint64_t rid = reader.number((*fields)[4 + r], "register id");
            if (rid >= graph.register_file().size())
                reader.fail("register id " + std::to_string(rid) + " out of range (file has " +
                            std::to_string(graph.register_file().size()) + " registers)");
            ids.push_back(static_cast<RegisterId>(rid));
        }
        const std::uint64_t exec = reader.magnitude((*fields)[2], "task exec cycles");
        try {
            graph.add_task((*fields)[1], exec, ids);
        } catch (const std::exception& e) {
            reader.fail(e.what());
        }
    }

    const auto edges_line = reader.expect("edges", 2);
    const auto edge_count = reader.count(edges_line[1], "edge count");
    for (std::uint64_t i = 0; i < edge_count; ++i) {
        const auto fields = reader.expect("edge", 4);
        const std::uint64_t src = reader.number(fields[1], "edge source");
        const std::uint64_t dst = reader.number(fields[2], "edge destination");
        if (src >= graph.task_count() || dst >= graph.task_count())
            reader.fail("edge endpoint out of range (graph has " +
                        std::to_string(graph.task_count()) + " tasks)");
        const std::uint64_t comm = reader.magnitude(fields[3], "edge comm cycles");
        try {
            graph.add_edge(static_cast<TaskId>(src), static_cast<TaskId>(dst), comm);
        } catch (const std::exception& e) {
            reader.fail(e.what()); // duplicate edges, self-loops
        }
    }

    try {
        graph.validate();
    } catch (const std::exception& e) {
        throw Error(ErrorCategory::parse, std::string("task graph parse error: ") + e.what());
    }
    return graph;
}

void save_task_graph(const std::string& path, const TaskGraph& graph) {
    std::ofstream os(path);
    if (!os) throw Error(ErrorCategory::io, "cannot open task graph for writing", path);
    write_task_graph(os, graph);
    os.flush();
    if (!os) throw Error(ErrorCategory::io, "failed writing task graph", path);
}

TaskGraph load_task_graph(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw Error(ErrorCategory::io, "cannot open task graph for reading", path);
    return read_task_graph(is);
}

} // namespace seamap
