#include "taskgraph/serialization.h"

#include "util/strings.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace seamap {

void write_task_graph(std::ostream& os, const TaskGraph& graph) {
    os << "# seamap task graph\n";
    os << "graph " << graph.name() << '\n';
    os << "batches " << graph.batch_count() << '\n';
    const RegisterFile& regs = graph.register_file();
    os << "registers " << regs.size() << '\n';
    for (RegisterId id = 0; id < regs.size(); ++id)
        os << "reg " << regs.name(id) << ' ' << regs.bits(id) << '\n';
    os << "tasks " << graph.task_count() << '\n';
    for (TaskId id = 0; id < graph.task_count(); ++id) {
        const Task& task = graph.task(id);
        os << "task " << task.name << ' ' << task.exec_cycles << ' ' << task.registers.count();
        task.registers.for_each([&](RegisterId rid) { os << ' ' << rid; });
        os << '\n';
    }
    os << "edges " << graph.edge_count() << '\n';
    for (const Edge& edge : graph.edges())
        os << "edge " << edge.src << ' ' << edge.dst << ' ' << edge.comm_cycles << '\n';
}

namespace {

class LineReader {
public:
    explicit LineReader(std::istream& is) : is_(is) {}

    /// Next non-empty, non-comment line split into fields; nullopt at EOF.
    std::optional<std::vector<std::string>> next() {
        std::string line;
        while (std::getline(is_, line)) {
            ++line_number_;
            const std::string_view trimmed = trim(line);
            if (trimmed.empty() || trimmed.front() == '#') continue;
            std::vector<std::string> fields;
            std::istringstream fs{std::string(trimmed)};
            std::string field;
            while (fs >> field) fields.push_back(field);
            return fields;
        }
        return std::nullopt;
    }

    [[noreturn]] void fail(const std::string& message) const {
        throw std::invalid_argument("task graph parse error at line " +
                                    std::to_string(line_number_) + ": " + message);
    }

    std::vector<std::string> expect(const std::string& keyword, std::size_t field_count) {
        auto fields = next();
        if (!fields) fail("unexpected end of input; expected '" + keyword + "'");
        if ((*fields)[0] != keyword)
            fail("expected '" + keyword + "', got '" + (*fields)[0] + "'");
        if (fields->size() != field_count)
            fail("'" + keyword + "' expects " + std::to_string(field_count - 1) + " fields");
        return *fields;
    }

private:
    std::istream& is_;
    std::size_t line_number_ = 0;
};

} // namespace

TaskGraph read_task_graph(std::istream& is) {
    LineReader reader(is);

    const auto graph_line = reader.expect("graph", 2);
    const auto batches_line = reader.expect("batches", 2);

    RegisterFile regs;
    const auto registers_line = reader.expect("registers", 2);
    const auto reg_count = parse_u64(registers_line[1]);
    for (std::uint64_t i = 0; i < reg_count; ++i) {
        const auto fields = reader.expect("reg", 3);
        regs.add_register(fields[1], parse_u64(fields[2]));
    }

    TaskGraph graph(graph_line[1], std::move(regs));
    graph.set_batch_count(parse_u64(batches_line[1]));

    const auto tasks_line = reader.expect("tasks", 2);
    const auto task_count = parse_u64(tasks_line[1]);
    for (std::uint64_t i = 0; i < task_count; ++i) {
        auto fields = reader.next();
        if (!fields) reader.fail("unexpected end of input in task list");
        if ((*fields)[0] != "task" || fields->size() < 4) reader.fail("malformed task line");
        const auto reg_list_count = parse_u64((*fields)[3]);
        if (fields->size() != 4 + reg_list_count) reader.fail("task register list length mismatch");
        std::vector<RegisterId> ids;
        for (std::uint64_t r = 0; r < reg_list_count; ++r)
            ids.push_back(static_cast<RegisterId>(parse_u64((*fields)[4 + r])));
        graph.add_task((*fields)[1], parse_u64((*fields)[2]), ids);
    }

    const auto edges_line = reader.expect("edges", 2);
    const auto edge_count = parse_u64(edges_line[1]);
    for (std::uint64_t i = 0; i < edge_count; ++i) {
        const auto fields = reader.expect("edge", 4);
        graph.add_edge(static_cast<TaskId>(parse_u64(fields[1])),
                       static_cast<TaskId>(parse_u64(fields[2])), parse_u64(fields[3]));
    }

    graph.validate();
    return graph;
}

void save_task_graph(const std::string& path, const TaskGraph& graph) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open for writing: " + path);
    write_task_graph(os, graph);
}

TaskGraph load_task_graph(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open for reading: " + path);
    return read_task_graph(is);
}

} // namespace seamap
