// Directed acyclic task-graph application model (Section II-B of the
// paper): nodes are computational tasks with an execution cost in clock
// cycles and a register working set; edges carry inter-task
// communication costs in clock cycles that are paid only when producer
// and consumer map to different cores.
//
// A TaskGraph optionally models a *batched* application: `batch_count`
// iterations of the graph flow through the system (437 frames for the
// MPEG-2 decoder). Task/edge costs always store the whole-run totals;
// per-iteration costs are totals / batch_count.
#pragma once

#include "taskgraph/register_file.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace seamap {

using TaskId = std::uint32_t;

/// One computational task.
struct Task {
    std::string name;
    /// Whole-run execution cost in clock cycles.
    std::uint64_t exec_cycles = 0;
    /// Register working set (bitset over the graph's register file).
    RegisterSet registers;
};

/// One dependency edge with a whole-run communication cost in cycles.
struct Edge {
    TaskId src = 0;
    TaskId dst = 0;
    std::uint64_t comm_cycles = 0;
};

/// Immutable-after-build DAG application model. Build with add_task /
/// add_edge, then call validate() once; algorithms assume a validated
/// graph.
class TaskGraph {
public:
    TaskGraph(std::string name, RegisterFile registers);

    // --- construction -------------------------------------------------
    /// Add a task; `register_ids` may contain duplicates (ignored).
    TaskId add_task(std::string name, std::uint64_t exec_cycles,
                    std::span<const RegisterId> register_ids = {});
    /// Add a dependency edge; self-loops and duplicate (src,dst) pairs
    /// are rejected.
    void add_edge(TaskId src, TaskId dst, std::uint64_t comm_cycles);
    /// Number of iterations of the graph that flow through the system
    /// (>= 1); see file comment.
    void set_batch_count(std::uint64_t batches);
    /// Checks the graph is a nonempty DAG; throws std::invalid_argument
    /// with a description otherwise.
    void validate() const;

    // --- basic accessors ----------------------------------------------
    const std::string& name() const { return name_; }
    const RegisterFile& register_file() const { return registers_; }
    std::uint64_t batch_count() const { return batch_count_; }
    std::size_t task_count() const { return tasks_.size(); }
    std::size_t edge_count() const { return edges_.size(); }
    const Task& task(TaskId id) const;
    const std::vector<Edge>& edges() const { return edges_; }
    const Edge& edge(std::size_t index) const;

    /// Indices into edges() of a task's outgoing / incoming edges.
    std::span<const std::size_t> out_edge_indices(TaskId id) const;
    std::span<const std::size_t> in_edge_indices(TaskId id) const;
    /// Convenience id lists (allocate).
    std::vector<TaskId> successors(TaskId id) const;
    std::vector<TaskId> predecessors(TaskId id) const;

    // --- graph-level metrics -------------------------------------------
    /// Tasks with no predecessors / successors.
    std::vector<TaskId> source_tasks() const;
    std::vector<TaskId> sink_tasks() const;
    /// Kahn topological order; throws if the graph has a cycle.
    std::vector<TaskId> topological_order() const;
    bool is_acyclic() const;
    /// Sum of task execution costs (whole run).
    std::uint64_t total_exec_cycles() const;
    /// Sum of edge communication costs (whole run).
    std::uint64_t total_comm_cycles() const;
    /// Longest path in execution cycles; optionally adds edge costs
    /// (the all-edges-remote upper bound).
    std::uint64_t critical_path_cycles(bool include_comm) const;

    // --- register-set queries (eq. 8 building blocks) -------------------
    /// Total bits of one task's working set.
    std::uint64_t task_register_bits(TaskId id) const;
    /// Bits shared between two tasks' working sets.
    std::uint64_t shared_register_bits(TaskId a, TaskId b) const;
    /// Bits of the union of several tasks' working sets (eq. 8 for one
    /// core holding exactly these tasks).
    std::uint64_t union_register_bits(std::span<const TaskId> ids) const;
    /// Union working set of several tasks.
    RegisterSet union_register_set(std::span<const TaskId> ids) const;

private:
    void check_task(TaskId id) const;

    std::string name_;
    RegisterFile registers_;
    std::uint64_t batch_count_ = 1;
    std::vector<Task> tasks_;
    std::vector<Edge> edges_;
    std::vector<std::vector<std::size_t>> out_edges_;
    std::vector<std::vector<std::size_t>> in_edges_;
};

} // namespace seamap
