// Graphviz DOT export of task graphs (and of mapped graphs, where node
// colour groups tasks by core) for documentation and debugging.
#pragma once

#include "taskgraph/task_graph.h"

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

namespace seamap {

/// Plain structural dump: nodes labelled "name (cycles)", edges
/// labelled with communication cost.
void write_dot(std::ostream& os, const TaskGraph& graph);

/// Same, but colours each task by the core it maps to. `core_of` must
/// have one entry per task.
void write_dot_mapped(std::ostream& os, const TaskGraph& graph,
                      std::span<const std::uint32_t> core_of);

/// Convenience: render to a string.
std::string to_dot(const TaskGraph& graph);

} // namespace seamap
