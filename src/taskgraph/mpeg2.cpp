#include "taskgraph/mpeg2.h"

#include <array>

namespace seamap {

double mpeg2_deadline_seconds() {
    return static_cast<double>(k_mpeg2_frame_count) / 29.97;
}

// Register-model reconstruction
// -----------------------------
// Fig. 2 publishes the node and edge costs; Section III publishes three
// sharing facts that pin the register model:
//   (1) t5 and t6 share "nearly 6.4 kbit";
//   (2) t6, t7 and t8 share "about 8 kbit among them";
//   (3) mapping {t5,t6} and {t7,t8} on different cores duplicates
//       "about 14.4 kbit" between the cores.
// We satisfy all three exactly with shared register groups:
//   g_blockbuf (6.4 kbit) used by {t5, t6}            -> fact (1)
//   g_coeff    (8.0 kbit) used by {t6, t7, t8}        -> fact (2)
//   g_stage    (6.4 kbit) used by {t5, t7}
// Splitting {t5,t6} | {t7,t8} then duplicates g_coeff (via t6 vs t7,t8)
// plus g_stage (via t5 vs t7) = 14.4 kbit             -> fact (3).
// The remaining groups and per-task locals model the decoder's stream/
// macroblock/motion/display state; their sizes are chosen so the
// 4-core register-usage range brackets the paper's Table II span
// (~80-118 kbit/cycle). 1 kbit = 1000 bits throughout.
TaskGraph mpeg2_decoder_graph() {
    RegisterFile regs;
    // Shared groups.
    const RegisterId g_stream = regs.add_register("g_stream", 2'000);     // t1,t2,t3
    const RegisterId g_mbstate = regs.add_register("g_mbstate", 3'000);   // t3,t4,t9
    const RegisterId g_blockbuf = regs.add_register("g_blockbuf", 6'400); // t5,t6
    const RegisterId g_coeff = regs.add_register("g_coeff", 8'000);       // t6,t7,t8
    const RegisterId g_stage = regs.add_register("g_stage", 6'400);       // t5,t7
    const RegisterId g_mv = regs.add_register("g_mv", 4'000);             // t9,t10
    const RegisterId g_recon = regs.add_register("g_recon", 3'000);       // t8,t10
    const RegisterId g_disp = regs.add_register("g_disp", 2'000);         // t10,t11
    // Per-task private state.
    const std::array<std::uint64_t, 11> local_bits = {2'000, 3'000, 3'000, 4'000, 3'000, 4'000,
                                                      5'000, 5'000, 6'000, 4'000, 3'000};
    std::array<RegisterId, 11> locals{};
    for (std::size_t i = 0; i < locals.size(); ++i)
        locals[i] = regs.add_register("l_t" + std::to_string(i + 1), local_bits[i]);

    TaskGraph graph("mpeg2_decoder", std::move(regs));
    graph.set_batch_count(k_mpeg2_frame_count);

    const auto u = k_mpeg2_cost_unit;
    struct Spec {
        const char* name;
        std::uint64_t cost_units;
        std::vector<RegisterId> registers;
    };
    const std::array<Spec, 11> specs = {{
        {"decode_header_sequences", 10, {g_stream, locals[0]}},
        {"decode_frame_slice_headers", 15, {g_stream, locals[1]}},
        {"decode_macroblock_sequences", 16, {g_stream, g_mbstate, locals[2]}},
        {"run_length_decode_block", 31, {g_mbstate, locals[3]}},
        {"inverse_scan_blocks", 25, {g_blockbuf, g_stage, locals[4]}},
        {"inverse_quantize_blocks", 39, {g_blockbuf, g_coeff, locals[5]}},
        {"idct_by_row", 63, {g_coeff, g_stage, locals[6]}},
        {"idct_by_column", 61, {g_coeff, g_recon, locals[7]}},
        {"motion_compensate_blocks", 48, {g_mbstate, g_mv, locals[8]}},
        {"add_blocks", 41, {g_mv, g_recon, g_disp, locals[9]}},
        {"store_display_frame", 21, {g_disp, locals[10]}},
    }};
    std::array<TaskId, 11> t{};
    for (std::size_t i = 0; i < specs.size(); ++i)
        t[i] = graph.add_task(specs[i].name, specs[i].cost_units * u, specs[i].registers);

    // Edge reconstruction: the header pipeline feeds the block-decode
    // chain (RLD -> inverse scan -> inverse quantize -> IDCT row ->
    // IDCT column) and the motion-compensation branch, which re-join at
    // add_blocks and drain into store/display. Edge costs use the
    // published multiset {1,2,2,2,2,3,3,4,4,4,4}.
    graph.add_edge(t[0], t[1], 1 * u);
    graph.add_edge(t[1], t[2], 2 * u);
    graph.add_edge(t[2], t[3], 2 * u);
    graph.add_edge(t[3], t[4], 2 * u);
    graph.add_edge(t[4], t[5], 3 * u);
    graph.add_edge(t[5], t[6], 3 * u);
    graph.add_edge(t[6], t[7], 4 * u);
    graph.add_edge(t[7], t[9], 4 * u);
    graph.add_edge(t[2], t[8], 2 * u);
    graph.add_edge(t[8], t[9], 4 * u);
    graph.add_edge(t[9], t[10], 4 * u);

    graph.validate();
    return graph;
}

} // namespace seamap
