#include "taskgraph/register_file.h"

#include <bit>
#include <stdexcept>

namespace seamap {

RegisterId RegisterFile::add_register(std::string name, std::uint64_t bits) {
    if (bits == 0) throw std::invalid_argument("RegisterFile: register '" + name + "' must have positive width");
    registers_.push_back(RegisterInfo{std::move(name), bits});
    total_bits_ += bits;
    return static_cast<RegisterId>(registers_.size() - 1);
}

std::uint64_t RegisterFile::bits(RegisterId id) const { return info(id).bits; }

const std::string& RegisterFile::name(RegisterId id) const { return info(id).name; }

const RegisterInfo& RegisterFile::info(RegisterId id) const {
    if (id >= registers_.size()) throw std::out_of_range("RegisterFile: bad register id");
    return registers_[id];
}

RegisterSet::RegisterSet(std::size_t universe_size)
    : universe_size_(universe_size), blocks_((universe_size + 63) / 64, 0) {}

void RegisterSet::check_id(RegisterId id) const {
    if (id >= universe_size_) throw std::out_of_range("RegisterSet: register id outside universe");
}

void RegisterSet::set(RegisterId id) {
    check_id(id);
    blocks_[id / 64] |= (1ULL << (id % 64));
}

void RegisterSet::reset(RegisterId id) {
    check_id(id);
    blocks_[id / 64] &= ~(1ULL << (id % 64));
}

bool RegisterSet::test(RegisterId id) const {
    check_id(id);
    return (blocks_[id / 64] >> (id % 64)) & 1ULL;
}

void RegisterSet::clear() {
    for (auto& block : blocks_) block = 0;
}

std::size_t RegisterSet::count() const {
    std::size_t total = 0;
    for (auto block : blocks_) total += static_cast<std::size_t>(std::popcount(block));
    return total;
}

bool RegisterSet::empty() const {
    for (auto block : blocks_)
        if (block != 0) return false;
    return true;
}

RegisterSet& RegisterSet::operator|=(const RegisterSet& other) {
    if (universe_size_ != other.universe_size_)
        throw std::invalid_argument("RegisterSet: universe size mismatch in |=");
    for (std::size_t i = 0; i < blocks_.size(); ++i) blocks_[i] |= other.blocks_[i];
    return *this;
}

RegisterSet& RegisterSet::operator&=(const RegisterSet& other) {
    if (universe_size_ != other.universe_size_)
        throw std::invalid_argument("RegisterSet: universe size mismatch in &=");
    for (std::size_t i = 0; i < blocks_.size(); ++i) blocks_[i] &= other.blocks_[i];
    return *this;
}

std::uint64_t RegisterSet::bits_in(const RegisterFile& file) const {
    if (file.size() != universe_size_)
        throw std::invalid_argument("RegisterSet: register file does not match universe");
    std::uint64_t total = 0;
    for_each([&](RegisterId id) { total += file.bits(id); });
    return total;
}

} // namespace seamap
