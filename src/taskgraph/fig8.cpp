#include "taskgraph/fig8.h"

#include <array>

namespace seamap {

// Fig. 8(b) register table and Fig. 8(c) task register usage are
// published verbatim:
//   r1 4096, r2 2048, r3 2048, r4 5120, r5 4096, r6 2048, r7 2048,
//   r8 4096, r9 2048
//   t1 = [r1, r2, r3]      t2 = [r2, r4, r5, r6]   t3 = [r4, r5, r6]
//   t4 = [r5, r6, r7]      t5 = [r6, r7, r8]       t6 = [r7, r8, r9]
// The edge endpoints in the figure scan are partially garbled; the
// reconstruction below keeps the walkthrough intact: t1's dependents
// are {t2, t3}; t3's dependents include {t4, t5}; t6 is the join that
// makes the initial mapping miss the 75 ms deadline until
// OptimizedMapping's task movements repair it (Section IV-B). With the
// example's (1, 2, 2) scalings, the repaired design meets the 75 ms
// deadline exactly. Edge costs use the figure's small multiples
// {1, 2, 2, 2, 3, 1, 1}.
TaskGraph fig8_example_graph() {
    RegisterFile regs;
    const std::array<std::uint64_t, 9> widths = {4096, 2048, 2048, 5120, 4096, 2048, 2048, 4096,
                                                 2048};
    std::array<RegisterId, 9> r{};
    for (std::size_t i = 0; i < widths.size(); ++i) {
        std::string reg_name = "r";
        reg_name += std::to_string(i + 1);
        r[i] = regs.add_register(std::move(reg_name), widths[i]);
    }

    TaskGraph graph("fig8_example", std::move(regs));

    const auto u = k_fig8_cost_unit;
    const TaskId t1 = graph.add_task("t1", 5 * u, std::array{r[0], r[1], r[2]});
    const TaskId t2 = graph.add_task("t2", 4 * u, std::array{r[1], r[3], r[4], r[5]});
    const TaskId t3 = graph.add_task("t3", 4 * u, std::array{r[3], r[4], r[5]});
    const TaskId t4 = graph.add_task("t4", 5 * u, std::array{r[4], r[5], r[6]});
    const TaskId t5 = graph.add_task("t5", 6 * u, std::array{r[5], r[6], r[7]});
    const TaskId t6 = graph.add_task("t6", 4 * u, std::array{r[6], r[7], r[8]});

    graph.add_edge(t1, t2, 1 * u);
    graph.add_edge(t1, t3, 2 * u);
    graph.add_edge(t2, t6, 1 * u);
    graph.add_edge(t3, t4, 2 * u);
    graph.add_edge(t3, t5, 2 * u);
    graph.add_edge(t4, t6, 3 * u);
    graph.add_edge(t5, t6, 1 * u);

    graph.validate();
    return graph;
}

} // namespace seamap
