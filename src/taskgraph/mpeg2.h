// The MPEG-2 video decoder task graph of the paper's Fig. 2: eleven
// tasks whose computation/communication costs are multiples of 5.5e6
// clock cycles, plus a register working-set model reconstructed from
// the sharing facts quoted in Section III.
#pragma once

#include "taskgraph/task_graph.h"

#include <cstdint>

namespace seamap {

/// Cost unit of Fig. 2: every node/edge weight is a multiple of this.
inline constexpr std::uint64_t k_mpeg2_cost_unit = 5'500'000;

/// Frames in the evaluation bitstream ("tennis", 437 frames at
/// 29.97 fps) — used as the graph's batch count.
inline constexpr std::uint64_t k_mpeg2_frame_count = 437;

/// Real-time constraint of the paper's evaluation: decode the whole
/// bitstream at 29.97 fps, i.e. 437 / 29.97 seconds.
double mpeg2_deadline_seconds();

/// Build the Fig. 2 decoder graph. Register sets follow the paper's
/// published sharing facts (see mpeg2.cpp for the reconstruction).
TaskGraph mpeg2_decoder_graph();

} // namespace seamap
