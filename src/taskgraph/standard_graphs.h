// Classic structured task graphs used throughout the mapping/DSE
// literature, complementing the MPEG-2 decoder and the TGFF-style
// random workloads: FFT butterflies, Gaussian elimination and linear
// processing pipelines. They provide controlled topology extremes
// (wide, triangular, serial) for tests, examples and ablations.
//
// All builders attach a register model with the same structure as the
// TGFF generator: each task owns an output buffer shared with all its
// consumers plus private local state, so the localize-vs-duplicate
// trade-off the paper studies is present in every workload.
#pragma once

#include "taskgraph/task_graph.h"

#include <cstdint>

namespace seamap {

/// Common register/cost knobs for the structured builders.
struct StandardGraphParams {
    /// Execution cost per task in cycles (before any per-task scaling
    /// the individual builders apply).
    std::uint64_t base_exec_cycles = 2'000'000;
    /// Communication cost per edge in cycles.
    std::uint64_t comm_cycles = 400'000;
    /// Output-buffer register bits per task (shared with consumers).
    std::uint64_t buffer_bits = 1'500;
    /// Private register bits per task.
    std::uint64_t local_bits = 1'500;
    /// Iterations flowing through the graph (pipelined batches).
    std::uint64_t batch_count = 1;
};

/// Radix-2 FFT butterfly task graph with 2^log2_points input points:
/// log2_points ranks of 2^(log2_points-1) butterflies each; every
/// butterfly feeds two butterflies of the next rank. Wide and regular —
/// the parallelism-friendly extreme.
TaskGraph fft_task_graph(std::uint32_t log2_points,
                         const StandardGraphParams& params = {});

/// Gaussian-elimination task graph for an n x n system: for each pivot
/// column k, one pivot task feeds n-k-1 update tasks, which feed the
/// next pivot — the classic triangular DAG with shrinking parallelism.
TaskGraph gaussian_elimination_task_graph(std::uint32_t n,
                                          const StandardGraphParams& params = {});

/// Linear pipeline of `stages` stages, each `width` parallel filters:
/// stage s task i feeds stage s+1 task i (and wraps the boundary so the
/// stages stay connected). With batch_count > 1 this is the classic
/// software-pipelining workload.
TaskGraph pipeline_task_graph(std::uint32_t stages, std::uint32_t width,
                              const StandardGraphParams& params = {});

} // namespace seamap
