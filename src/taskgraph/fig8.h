// The six-task worked example of the paper's Fig. 8, including its
// explicit register table (r1..r9, Fig. 8b) and per-task register
// usage (Fig. 8c). Costs are multiples of 60e4 = 600,000 cycles; the
// example architecture runs cores at scalings (1, 2, 2) with a 75 ms
// deadline.
#pragma once

#include "taskgraph/task_graph.h"

#include <cstdint>

namespace seamap {

/// Cost unit of Fig. 8 ("all costs are multiples of 60x10^4 cycles").
inline constexpr std::uint64_t k_fig8_cost_unit = 600'000;

/// Deadline used by the worked example.
inline constexpr double k_fig8_deadline_seconds = 0.075;

/// Build the Fig. 8 example graph (single-shot: batch count 1).
TaskGraph fig8_example_graph();

} // namespace seamap
