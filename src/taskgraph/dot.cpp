#include "taskgraph/dot.h"

#include <array>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace seamap {

namespace {

// Pastel palette; cores beyond the palette wrap around.
constexpr std::array<const char*, 8> k_core_colors = {
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
    "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
};

/// DOT double-quoted string escaping: backslash and quote are escaped,
/// and literal line breaks become the \n / \r label escapes so names
/// with newlines still produce one valid quoted string.
std::string escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        default: out += c;
        }
    }
    return out;
}

void write_header(std::ostream& os, const TaskGraph& graph) {
    os << "digraph \"" << escape(graph.name()) << "\" {\n";
    os << "  rankdir=TB;\n";
    os << "  node [shape=box, style=\"rounded,filled\", fillcolor=\"#f0f0f0\"];\n";
}

void write_edges(std::ostream& os, const TaskGraph& graph) {
    for (const Edge& edge : graph.edges())
        os << "  t" << edge.src << " -> t" << edge.dst << " [label=\"" << edge.comm_cycles
           << "\"];\n";
}

} // namespace

void write_dot(std::ostream& os, const TaskGraph& graph) {
    write_header(os, graph);
    for (TaskId id = 0; id < graph.task_count(); ++id) {
        const Task& task = graph.task(id);
        os << "  t" << id << " [label=\"" << escape(task.name) << "\\n" << task.exec_cycles
           << " cyc\"];\n";
    }
    write_edges(os, graph);
    os << "}\n";
}

void write_dot_mapped(std::ostream& os, const TaskGraph& graph,
                      std::span<const std::uint32_t> core_of) {
    if (core_of.size() != graph.task_count())
        throw std::invalid_argument("write_dot_mapped: core_of size must equal task count");
    write_header(os, graph);
    for (TaskId id = 0; id < graph.task_count(); ++id) {
        const Task& task = graph.task(id);
        const char* color = k_core_colors[core_of[id] % k_core_colors.size()];
        os << "  t" << id << " [label=\"" << escape(task.name) << "\\ncore " << core_of[id]
           << "\", fillcolor=\"" << color << "\"];\n";
    }
    write_edges(os, graph);
    os << "}\n";
}

std::string to_dot(const TaskGraph& graph) {
    std::ostringstream os;
    write_dot(os, graph);
    return os.str();
}

} // namespace seamap
