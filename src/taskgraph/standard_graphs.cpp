#include "taskgraph/standard_graphs.h"

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace seamap {

namespace {

void check_params(const StandardGraphParams& params) {
    if (params.base_exec_cycles == 0)
        throw std::invalid_argument("StandardGraphParams: base_exec_cycles must be > 0");
    if (params.buffer_bits == 0 || params.local_bits == 0)
        throw std::invalid_argument("StandardGraphParams: register widths must be > 0");
    if (params.batch_count == 0)
        throw std::invalid_argument("StandardGraphParams: batch_count must be >= 1");
}

/// Builder helper holding the shared output-buffer/local register idiom.
class StructuredBuilder {
public:
    StructuredBuilder(std::string graph_name, std::size_t task_count,
                      const StandardGraphParams& params)
        : params_(params) {
        check_params(params);
        RegisterFile regs;
        buffers_.reserve(task_count);
        locals_.reserve(task_count);
        for (std::size_t i = 0; i < task_count; ++i) {
            std::string buffer_name = "buf_";
            buffer_name += std::to_string(i);
            std::string local_name = "loc_";
            local_name += std::to_string(i);
            buffers_.push_back(regs.add_register(std::move(buffer_name), params.buffer_bits));
            locals_.push_back(regs.add_register(std::move(local_name), params.local_bits));
        }
        graph_.emplace(std::move(graph_name), std::move(regs));
        graph_->set_batch_count(params.batch_count);
        predecessors_.resize(task_count);
    }

    /// Add task `index` (tasks must be added in index order) with the
    /// given cost multiplier; registers = own buffer + local + all
    /// producer buffers recorded via edge().
    TaskId add_task(std::size_t index, const std::string& name, std::uint64_t cost_units) {
        std::vector<RegisterId> used = {buffers_[index], locals_[index]};
        for (TaskId p : predecessors_[index]) used.push_back(buffers_[p]);
        const TaskId id =
            graph_->add_task(name, cost_units * params_.base_exec_cycles, used);
        if (id != index)
            throw std::logic_error("StructuredBuilder: tasks must be added in index order");
        return id;
    }

    /// Record a dependency; call for all edges into `dst` *before*
    /// adding task `dst` so its register set includes producer buffers.
    void note_dependency(std::size_t src, std::size_t dst) {
        predecessors_[dst].push_back(static_cast<TaskId>(src));
    }

    /// Materialize the recorded dependencies as graph edges.
    TaskGraph finish() {
        for (std::size_t dst = 0; dst < predecessors_.size(); ++dst)
            for (TaskId src : predecessors_[dst])
                graph_->add_edge(src, static_cast<TaskId>(dst), params_.comm_cycles);
        graph_->validate();
        return std::move(*graph_);
    }

private:
    StandardGraphParams params_;
    std::optional<TaskGraph> graph_;
    std::vector<RegisterId> buffers_;
    std::vector<RegisterId> locals_;
    std::vector<std::vector<TaskId>> predecessors_;
};

} // namespace

TaskGraph fft_task_graph(std::uint32_t log2_points, const StandardGraphParams& params) {
    if (log2_points == 0 || log2_points > 10)
        throw std::invalid_argument("fft_task_graph: log2_points must be in [1, 10]");
    const std::size_t ranks = log2_points;
    const std::size_t per_rank = std::size_t{1} << (log2_points - 1);
    const std::size_t task_count = ranks * per_rank;
    StructuredBuilder builder("fft_" + std::to_string(std::size_t{1} << log2_points),
                              task_count, params);

    auto index_of = [&](std::size_t rank, std::size_t i) { return rank * per_rank + i; };
    // Dependencies: butterfly i of rank r+1 consumes butterflies i and
    // i XOR 2^r of rank r (the radix-2 data flow on butterfly indices).
    for (std::size_t rank = 1; rank < ranks; ++rank) {
        const std::size_t stride = std::size_t{1} << (rank - 1);
        for (std::size_t i = 0; i < per_rank; ++i) {
            builder.note_dependency(index_of(rank - 1, i), index_of(rank, i));
            const std::size_t partner = i ^ stride;
            if (partner != i && partner < per_rank)
                builder.note_dependency(index_of(rank - 1, partner), index_of(rank, i));
        }
    }
    for (std::size_t rank = 0; rank < ranks; ++rank)
        for (std::size_t i = 0; i < per_rank; ++i) {
            std::string name = "bfly_r";
            name += std::to_string(rank);
            name += "_";
            name += std::to_string(i);
            builder.add_task(index_of(rank, i), name, 1);
        }
    return builder.finish();
}

TaskGraph gaussian_elimination_task_graph(std::uint32_t n, const StandardGraphParams& params) {
    if (n < 2 || n > 64)
        throw std::invalid_argument("gaussian_elimination_task_graph: n must be in [2, 64]");
    // Tasks: for k = 0..n-2: pivot_k, then updates u_{k,j} for
    // j = k+1..n-1. Pivot k depends on the updates of column k-1;
    // update (k, j) depends on pivot k.
    std::size_t task_count = 0;
    for (std::uint32_t k = 0; k + 1 < n; ++k) task_count += 1 + (n - k - 1);
    StructuredBuilder builder("gaussian_" + std::to_string(n), task_count, params);

    std::vector<std::size_t> pivot_index(n - 1);
    std::vector<std::vector<std::size_t>> update_index(n - 1);
    std::size_t next = 0;
    for (std::uint32_t k = 0; k + 1 < n; ++k) {
        pivot_index[k] = next++;
        update_index[k].resize(n - k - 1);
        for (std::uint32_t j = 0; j < n - k - 1; ++j) update_index[k][j] = next++;
    }
    for (std::uint32_t k = 0; k + 1 < n; ++k) {
        if (k > 0) {
            // Pivot k consumes every update of the previous column.
            for (std::size_t u : update_index[k - 1]) builder.note_dependency(u, pivot_index[k]);
        }
        for (std::size_t u : update_index[k]) builder.note_dependency(pivot_index[k], u);
        // Update (k, j) also refines the value update (k-1, j) produced.
        if (k > 0)
            for (std::uint32_t j = 0; j + 1 < n - k; ++j)
                builder.note_dependency(update_index[k - 1][j + 1], update_index[k][j]);
    }
    next = 0;
    for (std::uint32_t k = 0; k + 1 < n; ++k) {
        builder.add_task(next++, "pivot_" + std::to_string(k), 2);
        for (std::uint32_t j = 0; j < n - k - 1; ++j)
            builder.add_task(next++, "upd_" + std::to_string(k) + "_" + std::to_string(k + 1 + j),
                             1);
    }
    return builder.finish();
}

TaskGraph pipeline_task_graph(std::uint32_t stages, std::uint32_t width,
                              const StandardGraphParams& params) {
    if (stages == 0 || width == 0 || static_cast<std::uint64_t>(stages) * width > 4096)
        throw std::invalid_argument("pipeline_task_graph: bad stages/width");
    const std::size_t task_count = static_cast<std::size_t>(stages) * width;
    StructuredBuilder builder(
        "pipeline_" + std::to_string(stages) + "x" + std::to_string(width), task_count, params);
    auto index_of = [&](std::uint32_t stage, std::uint32_t lane) {
        return static_cast<std::size_t>(stage) * width + lane;
    };
    for (std::uint32_t stage = 1; stage < stages; ++stage)
        for (std::uint32_t lane = 0; lane < width; ++lane) {
            builder.note_dependency(index_of(stage - 1, lane), index_of(stage, lane));
            if (width > 1) // cross-lane exchange keeps the stages coupled
                builder.note_dependency(index_of(stage - 1, (lane + 1) % width),
                                        index_of(stage, lane));
        }
    for (std::uint32_t stage = 0; stage < stages; ++stage)
        for (std::uint32_t lane = 0; lane < width; ++lane) {
            std::string name = "s";
            name += std::to_string(stage);
            name += "_l";
            name += std::to_string(lane);
            builder.add_task(index_of(stage, lane), name, 1 + (stage % 3));
        }
    return builder.finish();
}

} // namespace seamap
