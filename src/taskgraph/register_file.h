// Register resources of an application. The paper's reliability model
// (eqs. 4 and 8) is driven by which *register sets* tasks touch and how
// those sets overlap: registers shared by tasks co-located on one core
// are counted once, while splitting sharers across cores duplicates the
// shared state on every core that needs it.
//
// A RegisterFile names every architectural register bank the
// application uses and records its width in bits; tasks refer to
// registers by RegisterId. RegisterSet is a dynamic bitset over those
// ids with the weighted-size query (total bits) that eq. (8) needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace seamap {

using RegisterId = std::uint32_t;

/// One named register bank with a width in bits.
struct RegisterInfo {
    std::string name;
    std::uint64_t bits = 0;
};

/// The application's register inventory. Append-only; ids are dense
/// [0, size()).
class RegisterFile {
public:
    /// Add a register bank; returns its id. Width must be positive.
    RegisterId add_register(std::string name, std::uint64_t bits);

    std::size_t size() const { return registers_.size(); }
    bool empty() const { return registers_.empty(); }
    std::uint64_t bits(RegisterId id) const;
    const std::string& name(RegisterId id) const;
    const RegisterInfo& info(RegisterId id) const;
    /// Sum of all register widths.
    std::uint64_t total_bits() const { return total_bits_; }

private:
    std::vector<RegisterInfo> registers_;
    std::uint64_t total_bits_ = 0;
};

/// Dynamic bitset over RegisterId with set algebra and weighted size.
/// Sized to a fixed universe (the register file) at construction so
/// that union/intersection are branch-free block loops.
class RegisterSet {
public:
    RegisterSet() = default;
    /// Empty set over a universe of `universe_size` registers.
    explicit RegisterSet(std::size_t universe_size);

    void set(RegisterId id);
    void reset(RegisterId id);
    bool test(RegisterId id) const;
    void clear();

    /// Number of registers in the set.
    std::size_t count() const;
    bool empty() const;
    std::size_t universe_size() const { return universe_size_; }

    RegisterSet& operator|=(const RegisterSet& other);
    RegisterSet& operator&=(const RegisterSet& other);
    friend RegisterSet operator|(RegisterSet a, const RegisterSet& b) { return a |= b; }
    friend RegisterSet operator&(RegisterSet a, const RegisterSet& b) { return a &= b; }
    bool operator==(const RegisterSet& other) const = default;

    /// Total width in bits of the registers in this set (the |...| of
    /// eq. 8); weights come from the register file.
    std::uint64_t bits_in(const RegisterFile& file) const;

    /// Raw backing words, LSB-first: register `id` is bit `id % 64` of
    /// word `id / 64`. For flat word-array consumers (the SoA union
    /// scratch in core/eval_context.h); word_count() may be smaller
    /// than (universe_size + 63) / 64 for default-constructed sets.
    const std::uint64_t* words() const { return blocks_.data(); }
    std::size_t word_count() const { return blocks_.size(); }

    /// Enumerate members in ascending id order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (std::size_t b = 0; b < blocks_.size(); ++b) {
            std::uint64_t word = blocks_[b];
            while (word != 0) {
                const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
                fn(static_cast<RegisterId>(b * 64 + bit));
                word &= word - 1;
            }
        }
    }

private:
    void check_id(RegisterId id) const;

    std::size_t universe_size_ = 0;
    std::vector<std::uint64_t> blocks_;
};

} // namespace seamap
