#include "taskgraph/task_graph.h"

#include <algorithm>
#include <stdexcept>

namespace seamap {

TaskGraph::TaskGraph(std::string name, RegisterFile registers)
    : name_(std::move(name)), registers_(std::move(registers)) {}

TaskId TaskGraph::add_task(std::string name, std::uint64_t exec_cycles,
                           std::span<const RegisterId> register_ids) {
    if (exec_cycles == 0)
        throw std::invalid_argument("TaskGraph: task '" + name + "' must have positive cost");
    Task task;
    task.name = std::move(name);
    task.exec_cycles = exec_cycles;
    task.registers = RegisterSet(registers_.size());
    for (RegisterId rid : register_ids) task.registers.set(rid);
    tasks_.push_back(std::move(task));
    out_edges_.emplace_back();
    in_edges_.emplace_back();
    return static_cast<TaskId>(tasks_.size() - 1);
}

void TaskGraph::add_edge(TaskId src, TaskId dst, std::uint64_t comm_cycles) {
    check_task(src);
    check_task(dst);
    if (src == dst) throw std::invalid_argument("TaskGraph: self-loop on task " + tasks_[src].name);
    for (std::size_t idx : out_edges_[src])
        if (edges_[idx].dst == dst)
            throw std::invalid_argument("TaskGraph: duplicate edge " + tasks_[src].name + " -> " +
                                        tasks_[dst].name);
    edges_.push_back(Edge{src, dst, comm_cycles});
    out_edges_[src].push_back(edges_.size() - 1);
    in_edges_[dst].push_back(edges_.size() - 1);
}

void TaskGraph::set_batch_count(std::uint64_t batches) {
    if (batches == 0) throw std::invalid_argument("TaskGraph: batch count must be >= 1");
    batch_count_ = batches;
}

void TaskGraph::validate() const {
    if (tasks_.empty()) throw std::invalid_argument("TaskGraph '" + name_ + "': no tasks");
    if (!is_acyclic()) throw std::invalid_argument("TaskGraph '" + name_ + "': graph has a cycle");
}

const Task& TaskGraph::task(TaskId id) const {
    check_task(id);
    return tasks_[id];
}

const Edge& TaskGraph::edge(std::size_t index) const {
    if (index >= edges_.size()) throw std::out_of_range("TaskGraph: bad edge index");
    return edges_[index];
}

std::span<const std::size_t> TaskGraph::out_edge_indices(TaskId id) const {
    check_task(id);
    return out_edges_[id];
}

std::span<const std::size_t> TaskGraph::in_edge_indices(TaskId id) const {
    check_task(id);
    return in_edges_[id];
}

std::vector<TaskId> TaskGraph::successors(TaskId id) const {
    std::vector<TaskId> out;
    for (std::size_t idx : out_edge_indices(id)) out.push_back(edges_[idx].dst);
    return out;
}

std::vector<TaskId> TaskGraph::predecessors(TaskId id) const {
    std::vector<TaskId> out;
    for (std::size_t idx : in_edge_indices(id)) out.push_back(edges_[idx].src);
    return out;
}

std::vector<TaskId> TaskGraph::source_tasks() const {
    std::vector<TaskId> out;
    for (TaskId id = 0; id < tasks_.size(); ++id)
        if (in_edges_[id].empty()) out.push_back(id);
    return out;
}

std::vector<TaskId> TaskGraph::sink_tasks() const {
    std::vector<TaskId> out;
    for (TaskId id = 0; id < tasks_.size(); ++id)
        if (out_edges_[id].empty()) out.push_back(id);
    return out;
}

std::vector<TaskId> TaskGraph::topological_order() const {
    std::vector<std::size_t> in_degree(tasks_.size());
    for (TaskId id = 0; id < tasks_.size(); ++id) in_degree[id] = in_edges_[id].size();
    std::vector<TaskId> ready = source_tasks();
    std::vector<TaskId> order;
    order.reserve(tasks_.size());
    // Pop the smallest ready id for a deterministic order.
    while (!ready.empty()) {
        const auto smallest = std::min_element(ready.begin(), ready.end());
        const TaskId id = *smallest;
        ready.erase(smallest);
        order.push_back(id);
        for (std::size_t idx : out_edges_[id]) {
            const TaskId dst = edges_[idx].dst;
            if (--in_degree[dst] == 0) ready.push_back(dst);
        }
    }
    if (order.size() != tasks_.size())
        throw std::invalid_argument("TaskGraph '" + name_ + "': graph has a cycle");
    return order;
}

bool TaskGraph::is_acyclic() const {
    try {
        (void)topological_order();
        return true;
    } catch (const std::invalid_argument&) {
        return false;
    }
}

std::uint64_t TaskGraph::total_exec_cycles() const {
    std::uint64_t total = 0;
    for (const auto& task : tasks_) total += task.exec_cycles;
    return total;
}

std::uint64_t TaskGraph::total_comm_cycles() const {
    std::uint64_t total = 0;
    for (const auto& edge : edges_) total += edge.comm_cycles;
    return total;
}

std::uint64_t TaskGraph::critical_path_cycles(bool include_comm) const {
    const std::vector<TaskId> order = topological_order();
    std::vector<std::uint64_t> finish(tasks_.size(), 0);
    std::uint64_t best = 0;
    for (TaskId id : order) {
        std::uint64_t start = 0;
        for (std::size_t idx : in_edges_[id]) {
            const Edge& e = edges_[idx];
            const std::uint64_t arrival = finish[e.src] + (include_comm ? e.comm_cycles : 0);
            start = std::max(start, arrival);
        }
        finish[id] = start + tasks_[id].exec_cycles;
        best = std::max(best, finish[id]);
    }
    return best;
}

std::uint64_t TaskGraph::task_register_bits(TaskId id) const {
    return task(id).registers.bits_in(registers_);
}

std::uint64_t TaskGraph::shared_register_bits(TaskId a, TaskId b) const {
    RegisterSet shared = task(a).registers;
    shared &= task(b).registers;
    return shared.bits_in(registers_);
}

RegisterSet TaskGraph::union_register_set(std::span<const TaskId> ids) const {
    RegisterSet acc(registers_.size());
    for (TaskId id : ids) acc |= task(id).registers;
    return acc;
}

std::uint64_t TaskGraph::union_register_bits(std::span<const TaskId> ids) const {
    return union_register_set(ids).bits_in(registers_);
}

void TaskGraph::check_task(TaskId id) const {
    if (id >= tasks_.size()) throw std::out_of_range("TaskGraph: bad task id");
}

} // namespace seamap
