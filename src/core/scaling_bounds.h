// Sound per-scaling lower bounds on power and expected SEUs, the
// admissible heuristics that drive the branch-and-bound explorer
// (core/dse.cpp).
//
// Any feasible design at a scaling combination powers some non-empty
// sub-multiset S of the combination's cores (unused cores are
// power-gated and hold no live state) whose combined deadline capacity
// covers the graph's work. case_bounds_for() enumerates every such S
// and returns one sound (power, Gamma) lower-bound pair per case: a
// design that powers exactly S costs at least that pair, pointwise.
// The explorer prunes a combination only when EVERY case is strictly
// dominated by an already-evaluated design — each case may fall to a
// different incumbent (a case that gates its fast cores has low power
// but high Gamma and dies to a fast incumbent; a case that powers them
// dies to a cheap one). bounds_for() is the pointwise minimum over
// cases — a single conservative corner used for best-first ordering.
//
// Per-case soundness leans on the deadline-capacity argument that
// makes tight deadlines the prunable regime. With T_M <= D and
// per-core utilization <= 1, core i absorbs at most f_i * D cycles —
// and under pipelined batching strictly less: T_M = L + (B-1) * II
// exactly, per-iteration busy time is at most II, and L is at least
// the critical path on the case's fastest core, so whole-run busy is
// capped by f_i * B * (D - L_min) / (B - 1).
//
//  - Power (eq. 5 shape): P = sum_{i in S} P_a(l_i) * (idle +
//    (1-idle) u_i). Every powered core pays its idle fraction;
//    the busy part prices the graph's cycles by the fractional
//    knapsack over S's energy-per-cycle levels (a true minimum),
//    divided by the largest admissible T_M.
//
//  - Gamma (eq. 3, full_duration): Gamma = T_M * sum_{i in S} R_i *
//    lambda_i >= tm_lb(S) * rate_lb(S). The rate bound telescopes over
//    S's SER tiers: lambda(host) = lambda_min + sum over tiers j of
//    (lambda_j - lambda_{j-1}) for every tier at or below the host, so
//        sum R_i lambda_i  =  lambda_min * sum_i R_i
//                           + sum_j (lambda_j - lambda_{j-1}) * bits_j
//    with bits_j the union bits on cores of tier >= j. The first term
//    is >= lambda_min * U (U = union of every working set — each
//    register is live somewhere). For the second, capacity forces
//    cycles beyond the cheaper tiers' combined budget onto tier >= j,
//    and a register subset covering c cycles (every task carries its
//    own registers) holds at least B(c) bits, where B is the
//    fractional cheapest-bits-per-cycle cover of the graph's
//    registers; a single-whole-task floor (the smallest working set)
//    guards the relaxation when the overflow is tiny. tm_lb(S)
//    restricts the T_M lower bound to S: only powered cores do work.
//    Under busy_only exposure each task's own bits are exposed for at
//    least its execution time at S's best SEU-per-cycle rate.
//
// Bounds are multiplied by (1 - 1e-9) before being returned so that
// accumulating the same physics in a different summation order can
// never push a "bound" above the true achievable value by round-off;
// the branch-and-bound prune additionally requires *strict* dominance.
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "reliability/ser_model.h"
#include "reliability/seu_estimator.h"
#include "taskgraph/task_graph.h"

#include <cstdint>
#include <vector>

namespace seamap {

/// Lower bounds over every feasible mapping (of one powered-core case,
/// or of a whole scaling combination for the pointwise minimum).
struct ScalingBounds {
    double power_mw_lb = 0.0;
    double gamma_lb = 0.0;
};

/// Bound evaluator for one (graph, architecture, deadline, SER model)
/// problem; graph-level aggregates are computed once at construction.
class ScalingBoundsModel {
public:
    /// `graph` and `arch` must outlive the model.
    ScalingBoundsModel(const TaskGraph& graph, const MpsocArchitecture& arch,
                       double deadline_seconds, const SerModel& ser, ExposurePolicy policy);

    /// One sound bound pair per admissible powered-core sub-multiset
    /// (capacity covers the work): every feasible design's (P, Gamma)
    /// is pointwise >= the pair of the case it powers. Empty when no
    /// case has enough capacity (the T_M gate rejects such scalings
    /// anyway). Order is deterministic.
    std::vector<ScalingBounds> case_bounds_for(const ScalingVector& levels) const;

    /// Pointwise minimum over the cases: a single conservative corner
    /// (any feasible design costs at least this much in each
    /// objective separately). Zero bounds when no case is admissible.
    ScalingBounds bounds_for(const ScalingVector& levels) const;

    /// The corner of an already-computed case list — the fold
    /// bounds_for applies, exposed so callers holding the cases (the
    /// explorer keeps them for the per-case prune test) don't
    /// re-enumerate.
    static ScalingBounds corner_of(const std::vector<ScalingBounds>& cases);

private:
    /// One powered-core case: count of powered cores per scaling
    /// level, level-index-keyed (0-based level - 1).
    ScalingBounds case_bounds(const std::vector<std::pair<std::size_t, std::size_t>>&
                                  powered) const;

    /// Fractional min-bits cover: smallest union width (bits) a task
    /// set covering `cycles` of work can carry. Built from registers
    /// sorted by bits-per-covered-cycle; piecewise linear, monotone.
    double min_union_bits_covering(double cycles) const;

    const TaskGraph& graph_;
    const MpsocArchitecture& arch_;
    double deadline_seconds_;
    ExposurePolicy policy_;

    // Graph aggregates (whole-run cycle totals, bits).
    double batches_ = 1.0;
    double critical_path_cycles_ = 0.0; ///< whole-run, no communication
    double biggest_task_cycles_ = 0.0;  ///< whole-run, single task
    double total_exec_cycles_ = 0.0;
    std::uint64_t union_bits_all_ = 0;   ///< |union of every task's set|
    std::uint64_t min_task_bits_ = 0;    ///< smallest single-task set
    double bits_times_cycles_ = 0.0;     ///< sum_t bits_t * exec_cycles_t
    double cycles_without_registers_ = 0.0; ///< work of zero-bit tasks
    // Registers sorted by ascending bits/covered-cycles density;
    // prefix sums drive min_union_bits_covering.
    std::vector<double> cover_cycles_prefix_;
    std::vector<double> cover_bits_prefix_;

    // Per-level tables, indexed by level - 1.
    std::vector<double> frequency_hz_;
    std::vector<double> active_power_mw_;
    std::vector<double> energy_per_cycle_mws_;
    std::vector<double> ser_per_bit_second_;
};

} // namespace seamap
