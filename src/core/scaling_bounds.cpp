#include "core/scaling_bounds.h"

#include "sched/list_scheduler.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

namespace seamap {

namespace {

/// Safety margins mirroring the evaluators' own tolerances: a design
/// counts as feasible up to deadline * (1 + 1e-9)
/// (Schedule::meets_deadline) and per-core utilization may reach
/// 1 + 1e-9 (PowerModel), so capacity and utilization denominators use
/// the widened deadline. The final shave absorbs summation-order ulps.
constexpr double k_deadline_slack = 1.0 + 1e-9;
constexpr double k_bound_shave = 1.0 - 1e-9;

} // namespace

ScalingBoundsModel::ScalingBoundsModel(const TaskGraph& graph, const MpsocArchitecture& arch,
                                       double deadline_seconds, const SerModel& ser,
                                       ExposurePolicy policy)
    : graph_(graph), arch_(arch), deadline_seconds_(deadline_seconds), policy_(policy) {
    batches_ = static_cast<double>(graph.batch_count());
    critical_path_cycles_ = static_cast<double>(graph.critical_path_cycles(false));
    total_exec_cycles_ = static_cast<double>(graph.total_exec_cycles());

    std::vector<TaskId> all_tasks(graph.task_count());
    std::iota(all_tasks.begin(), all_tasks.end(), TaskId{0});
    union_bits_all_ = graph.union_register_bits(all_tasks);
    min_task_bits_ = std::numeric_limits<std::uint64_t>::max();
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        const std::uint64_t task_bits = graph.task_register_bits(t);
        const double exec = static_cast<double>(graph.task(t).exec_cycles);
        min_task_bits_ = std::min(min_task_bits_, task_bits);
        biggest_task_cycles_ = std::max(biggest_task_cycles_, exec);
        bits_times_cycles_ += static_cast<double>(task_bits) * exec;
        if (task_bits == 0) cycles_without_registers_ += exec;
    }
    if (graph.task_count() == 0) min_task_bits_ = 0;

    // Per-register coverage: register r can "explain" at most the
    // cycles of the tasks that use it, at a price of its width. The
    // fractional cheapest-price-per-cycle cover of c cycles is then a
    // true lower bound on the union bits of any task set holding c
    // cycles of work (every task is covered by its own registers).
    const RegisterFile& file = graph.register_file();
    struct Cover {
        double bits = 0.0;
        double cycles = 0.0;
    };
    std::vector<Cover> covers(file.size());
    for (std::size_t r = 0; r < covers.size(); ++r)
        covers[r].bits = static_cast<double>(file.bits(static_cast<RegisterId>(r)));
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        const double exec = static_cast<double>(graph.task(t).exec_cycles);
        graph.task(t).registers.for_each([&](RegisterId r) { covers[r].cycles += exec; });
    }
    std::erase_if(covers, [](const Cover& c) { return c.cycles <= 0.0; });
    std::sort(covers.begin(), covers.end(), [](const Cover& a, const Cover& b) {
        return a.bits * b.cycles < b.bits * a.cycles; // bits/cycles ascending
    });
    cover_cycles_prefix_.reserve(covers.size());
    cover_bits_prefix_.reserve(covers.size());
    double cycles_acc = 0.0;
    double bits_acc = 0.0;
    for (const Cover& cover : covers) {
        cycles_acc += cover.cycles;
        bits_acc += cover.bits;
        cover_cycles_prefix_.push_back(cycles_acc);
        cover_bits_prefix_.push_back(bits_acc);
    }

    const VoltageScalingTable& table = arch.scaling_table();
    const PowerModel& power = arch.power_model();
    frequency_hz_.reserve(table.level_count());
    for (std::size_t l = 1; l <= table.level_count(); ++l) {
        const auto level = static_cast<ScalingLevel>(l);
        frequency_hz_.push_back(table.frequency_hz(level));
        active_power_mw_.push_back(power.core_active_power_mw(level));
        energy_per_cycle_mws_.push_back(power.core_energy_per_cycle_mws(level));
        ser_per_bit_second_.push_back(ser.ser_per_bit_second(table.vdd(level)));
    }
}

double ScalingBoundsModel::min_union_bits_covering(double cycles) const {
    if (cycles <= 0.0 || cover_cycles_prefix_.empty()) return 0.0;
    if (cycles >= cover_cycles_prefix_.back()) return cover_bits_prefix_.back();
    const auto at = std::lower_bound(cover_cycles_prefix_.begin(),
                                     cover_cycles_prefix_.end(), cycles);
    const std::size_t i = static_cast<std::size_t>(at - cover_cycles_prefix_.begin());
    const double prev_cycles = i == 0 ? 0.0 : cover_cycles_prefix_[i - 1];
    const double prev_bits = i == 0 ? 0.0 : cover_bits_prefix_[i - 1];
    const double step_cycles = cover_cycles_prefix_[i] - prev_cycles;
    const double step_bits = cover_bits_prefix_[i] - prev_bits;
    return prev_bits + step_bits * (cycles - prev_cycles) / step_cycles;
}

ScalingBounds ScalingBoundsModel::case_bounds(
    const std::vector<std::pair<std::size_t, std::size_t>>& powered) const {
    const double deadline = deadline_seconds_ * k_deadline_slack;
    ScalingBounds bounds;

    // Whole-run busy-time capacity of one powered core (see header):
    // deadline * slack for a single batch; the pipelined identity
    // T_M = L + (B-1) * II with per-iteration busy <= II and
    // L >= critical path on the case's fastest core is tighter.
    double fmax = 0.0;
    double rate_sum = 0.0;
    for (const auto& [l, n] : powered) {
        fmax = std::max(fmax, frequency_hz_[l]);
        rate_sum += static_cast<double>(n) * frequency_hz_[l];
    }
    double cap_seconds = deadline * k_deadline_slack;
    if (batches_ > 1.0) {
        const double latency_min = critical_path_cycles_ / batches_ / fmax;
        const double pipelined =
            batches_ / (batches_ - 1.0) * (deadline - latency_min) * k_deadline_slack;
        cap_seconds = std::clamp(pipelined, 0.0, cap_seconds);
    }

    // --- power: idle floor of every powered core + fractional ---------
    // knapsack of the work over the case's energy-per-cycle levels.
    std::vector<std::pair<double, double>> fills; // (energy/cycle, capacity)
    double idle_power_mw = 0.0;
    const double idle = arch_.power_model().params().idle_activity;
    for (const auto& [l, n] : powered) {
        idle_power_mw += idle * static_cast<double>(n) * active_power_mw_[l];
        fills.emplace_back(energy_per_cycle_mws_[l],
                           static_cast<double>(n) * frequency_hz_[l] * cap_seconds);
    }
    std::sort(fills.begin(), fills.end());
    double remaining = total_exec_cycles_;
    double busy_energy_mws = 0.0; // min sum_i P_a_i * busy_seconds_i
    for (const auto& [energy_per_cycle, cap] : fills) {
        if (remaining <= 0.0) break;
        const double cycles = std::min(remaining, cap);
        busy_energy_mws += cycles * energy_per_cycle;
        remaining -= cycles;
    }
    bounds.power_mw_lb =
        k_bound_shave * (idle_power_mw + (1.0 - idle) * busy_energy_mws / deadline);

    // --- T_M lower bound over the powered cores only (the gate's own
    // formula, restricted to the case: only powered cores do work) ----
    const double tm_lb =
        tm_lower_bound_from_aggregates(critical_path_cycles_, total_exec_cycles_,
                                       biggest_task_cycles_, batches_, fmax, rate_sum);

    // --- gamma --------------------------------------------------------
    if (policy_ == ExposurePolicy::full_duration) {
        // Telescoped tier sum over the case's SER rates (see header).
        std::vector<std::pair<double, double>> tiers; // (lambda, capacity)
        for (const auto& [l, n] : powered)
            tiers.emplace_back(ser_per_bit_second_[l],
                               static_cast<double>(n) * frequency_hz_[l] * cap_seconds);
        std::sort(tiers.begin(), tiers.end());
        const double lambda_min = tiers.front().first;
        double rate_lb = static_cast<double>(union_bits_all_) * lambda_min;
        double whole_task_extra = 0.0; // b_min floor at the worst forced tier
        double tier_lambda = lambda_min;
        double prefix_cap = 0.0;
        for (const auto& [lambda, cap] : tiers) {
            if (lambda > tier_lambda) {
                const double overflow = total_exec_cycles_ - prefix_cap;
                if (overflow <= 0.0) break;
                const double forced_bits =
                    min_union_bits_covering(overflow - cycles_without_registers_);
                rate_lb += (lambda - tier_lambda) * forced_bits;
                whole_task_extra =
                    static_cast<double>(min_task_bits_) * (lambda - lambda_min);
                tier_lambda = lambda;
            }
            prefix_cap += cap;
        }
        // The fractional cover can undercut a single task's set when
        // the overflow is tiny; the whole-task floor is sound on its
        // own, so take the stronger of the two refinements.
        rate_lb = std::max(rate_lb,
                           static_cast<double>(union_bits_all_) * lambda_min +
                               whole_task_extra);
        bounds.gamma_lb = k_bound_shave * tm_lb * rate_lb;
    } else {
        // busy_only: each task's own bits are exposed for at least its
        // execution time, priced at the case's best SEU-per-cycle rate
        // (lambda / f is how long one cycle is exposed).
        double min_rate_per_cycle = std::numeric_limits<double>::infinity();
        for (const auto& [l, n] : powered)
            min_rate_per_cycle =
                std::min(min_rate_per_cycle, ser_per_bit_second_[l] / frequency_hz_[l]);
        bounds.gamma_lb = k_bound_shave * bits_times_cycles_ * min_rate_per_cycle;
    }
    return bounds;
}

std::vector<ScalingBounds> ScalingBoundsModel::case_bounds_for(
    const ScalingVector& levels) const {
    arch_.validate_scaling(levels);
    std::vector<ScalingBounds> cases;
    if (total_exec_cycles_ <= 0.0 || deadline_seconds_ <= 0.0) return cases;

    // Distinct levels and their multiplicities; cores at one level are
    // interchangeable, so a powered-core case is a count per level.
    std::vector<std::pair<std::size_t, std::size_t>> groups; // (level-1, count)
    {
        ScalingVector sorted = levels;
        std::sort(sorted.begin(), sorted.end());
        for (const ScalingLevel level : sorted) {
            const std::size_t l = static_cast<std::size_t>(level) - 1;
            if (!groups.empty() && groups.back().first == l)
                ++groups.back().second;
            else
                groups.emplace_back(l, 1);
        }
    }

    // Odometer over powered counts [0, n_l] per level group.
    std::vector<std::size_t> counts(groups.size(), 0);
    std::vector<std::pair<std::size_t, std::size_t>> powered;
    const double min_cap_seconds = deadline_seconds_; // cheap pre-filter below
    for (;;) {
        std::size_t g = 0;
        while (g < counts.size() && counts[g] == groups[g].second) {
            counts[g] = 0;
            ++g;
        }
        if (g == counts.size()) break;
        ++counts[g];

        powered.clear();
        double rough_cap = 0.0;
        for (std::size_t i = 0; i < groups.size(); ++i) {
            if (counts[i] == 0) continue;
            powered.emplace_back(groups[i].first, counts[i]);
            rough_cap += static_cast<double>(counts[i]) *
                         frequency_hz_[groups[i].first] * min_cap_seconds *
                         k_deadline_slack * k_deadline_slack * k_deadline_slack;
        }
        // A case without the capacity for the work cannot be powered
        // by any feasible design; the exact per-case capacity is never
        // larger than this rough one, but the fractional knapsack
        // leaving `remaining` work unplaced proves the same thing, so
        // filter on the rough capacity only (cheap and sound both
        // ways: extra cases only make the pruning test stricter).
        if (rough_cap < total_exec_cycles_) continue;
        cases.push_back(case_bounds(powered));
    }
    return cases;
}

ScalingBounds ScalingBoundsModel::bounds_for(const ScalingVector& levels) const {
    return corner_of(case_bounds_for(levels));
}

ScalingBounds ScalingBoundsModel::corner_of(const std::vector<ScalingBounds>& cases) {
    ScalingBounds corner;
    bool first = true;
    for (const ScalingBounds& bounds : cases) {
        if (first) {
            corner = bounds;
            first = false;
            continue;
        }
        corner.power_mw_lb = std::min(corner.power_mw_lb, bounds.power_mw_lb);
        corner.gamma_lb = std::min(corner.gamma_lb, bounds.gamma_lb);
    }
    return corner;
}

} // namespace seamap
