#include "core/optimized_mapping.h"

#include "util/rng.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

namespace seamap {

namespace {

void random_task_movement(Mapping& mapping, Rng& rng, double swap_probability,
                          bool require_all_cores) {
    const auto tasks = static_cast<std::int64_t>(mapping.task_count());
    const auto cores = static_cast<std::int64_t>(mapping.core_count());
    if (cores < 2 || tasks < 1) return;
    if (tasks >= 2 && rng.uniform() < swap_probability) {
        // Swaps never change per-core populations, so they are always
        // admissible under require_all_cores.
        for (int attempt = 0; attempt < 8; ++attempt) {
            const auto a = static_cast<TaskId>(rng.uniform_int(0, tasks - 1));
            const auto b = static_cast<TaskId>(rng.uniform_int(0, tasks - 1));
            if (a == b || mapping.core_of(a) == mapping.core_of(b)) continue;
            const CoreId core_a = mapping.core_of(a);
            mapping.assign(a, mapping.core_of(b));
            mapping.assign(b, core_a);
            return;
        }
    }
    for (int attempt = 0; attempt < 8; ++attempt) {
        const auto task = static_cast<TaskId>(rng.uniform_int(0, tasks - 1));
        if (require_all_cores && mapping.task_count_on(mapping.core_of(task)) == 1)
            continue; // would empty its core
        auto target = static_cast<CoreId>(rng.uniform_int(0, cores - 2));
        if (target >= mapping.core_of(task)) ++target;
        mapping.assign(task, target);
        return;
    }
}

} // namespace

OptimizedMapping::OptimizedMapping(LocalSearchParams params) : params_(params) {
    if (params_.max_iterations == 0 && params_.time_budget_seconds <= 0.0)
        throw std::invalid_argument("OptimizedMapping: need an iteration or time budget");
    if (params_.initial_temperature <= 0.0 || params_.final_temperature <= 0.0 ||
        params_.final_temperature > params_.initial_temperature)
        throw std::invalid_argument("OptimizedMapping: bad temperature range");
    if (params_.swap_probability < 0.0 || params_.swap_probability > 1.0)
        throw std::invalid_argument("OptimizedMapping: bad swap probability");
}

LocalSearchResult OptimizedMapping::optimize(const EvaluationContext& ctx,
                                             const Mapping& initial,
                                             const CancellationToken* cancel) const {
    if (!initial.complete())
        throw std::invalid_argument("OptimizedMapping: initial mapping incomplete");

    const SearchBudget budget(params_.max_iterations, params_.time_budget_seconds, cancel);
    auto stopped = [&] { return cancel != nullptr && cancel->stop_requested(); };

    Rng rng(params_.seed);
    Mapping current = initial;                                     // step A
    DesignMetrics current_metrics = evaluate_design(ctx, current); // list schedule M

    LocalSearchResult result;
    result.best_mapping = current;
    result.best_metrics = current_metrics;
    result.found_feasible = current_metrics.feasible;
    result.evaluations = 1;

    // Steps E-F: a feasible design with fewer expected SEUs becomes the
    // new best; until anything is feasible, track the least-infeasible.
    auto consider_best = [&](const Mapping& mapping, const DesignMetrics& metrics) {
        const bool improves = metrics.feasible &&
                              (!result.found_feasible ||
                               metrics.gamma < result.best_metrics.gamma);
        if (improves) {
            result.best_mapping = mapping;
            result.best_metrics = metrics;
            result.found_feasible = true;
            ++result.improvements;
        } else if (!result.found_feasible &&
                   metrics.tm_seconds < result.best_metrics.tm_seconds) {
            result.best_mapping = mapping;
            result.best_metrics = metrics;
        }
    };
    // Walk ordering: feasibility first, then fewer expected SEUs.
    auto walk_improves = [](const DesignMetrics& candidate, const DesignMetrics& reference) {
        if (!reference.feasible)
            return candidate.feasible || candidate.tm_seconds < reference.tm_seconds;
        return candidate.feasible && candidate.gamma < reference.gamma;
    };
    // The paper's systematic pass: try every single-task move from the
    // current mapping and return the best strict improvement.
    auto sweep = [&]() {
        Mapping best_neighbor = current;
        DesignMetrics best_metrics = current_metrics;
        bool found = false;
        for (TaskId t = 0; t < ctx.graph.task_count() && !stopped(); ++t) {
            const CoreId original = current.core_of(t);
            if (params_.require_all_cores && current.task_count_on(original) == 1)
                continue; // moving t would empty its core
            for (CoreId core = 0; core < ctx.arch.core_count() && !stopped(); ++core) {
                if (core == original) continue;
                Mapping candidate = current;
                candidate.assign(t, core);
                const DesignMetrics metrics = evaluate_design(ctx, candidate);
                ++result.evaluations;
                consider_best(candidate, metrics);
                if (walk_improves(metrics, best_metrics)) {
                    best_neighbor = std::move(candidate);
                    best_metrics = metrics;
                    found = true;
                }
            }
        }
        if (found) {
            current = std::move(best_neighbor);
            current_metrics = best_metrics;
        }
    };

    // Restart scheduling: the iteration budget is divided evenly;
    // restart k > 0 begins from a perturbed copy of `initial`.
    const std::uint64_t restarts = std::max<std::uint64_t>(1, params_.restarts);
    const std::uint64_t restart_period =
        params_.max_iterations > 0
            ? std::max<std::uint64_t>(1, params_.max_iterations / restarts)
            : 0;
    auto restart_walk = [&]() {
        current = initial;
        const auto kicks = std::max<std::size_t>(2, ctx.graph.task_count() / 2);
        for (std::size_t k = 0; k < kicks; ++k)
            random_task_movement(current, rng, params_.swap_probability,
                                 params_.require_all_cores);
        current_metrics = evaluate_design(ctx, current);
        ++result.evaluations;
        consider_best(current, current_metrics);
    };

    std::uint64_t iteration = 0;
    while (!budget.exhausted(iteration)) { // step B
        ++iteration;
        if (restart_period > 0 && iteration % restart_period == 0 &&
            iteration + restart_period <= params_.max_iterations) {
            restart_walk();
            continue;
        }
        if (params_.sweep_interval > 0 && iteration % params_.sweep_interval == 0) {
            sweep();
            continue;
        }
        Mapping neighbor = current; // step C: neighbouring task movement
        random_task_movement(neighbor, rng, params_.swap_probability,
                             params_.require_all_cores);
        if (neighbor == current) continue;
        const DesignMetrics metrics = evaluate_design(ctx, neighbor); // step D
        ++result.evaluations;
        consider_best(neighbor, metrics);

        // Walk policy: move toward feasibility first, then toward lower
        // Gamma, with annealed acceptance of worse steps. The cooling
        // progress is measured within the current restart segment so
        // every restart begins hot again.
        bool step = walk_improves(metrics, current_metrics);
        if (!step) {
            double relative_worsening;
            if (!current_metrics.feasible) {
                relative_worsening = metrics.tm_seconds / current_metrics.tm_seconds - 1.0;
            } else if (!metrics.feasible) {
                relative_worsening = 1.0; // leaving the feasible region is heavily damped
            } else {
                relative_worsening = metrics.gamma / current_metrics.gamma - 1.0;
            }
            const std::uint64_t segment = restart_period > 0 ? restart_period
                                          : params_.max_iterations > 0 ? params_.max_iterations
                                                                       : 10'000;
            const double progress =
                static_cast<double>(iteration % segment) / static_cast<double>(segment);
            const double temperature =
                params_.initial_temperature *
                std::exp(std::log(params_.final_temperature / params_.initial_temperature) *
                         progress);
            step = rng.uniform() < std::exp(-relative_worsening / temperature);
        }
        if (step) {
            current = std::move(neighbor);
            current_metrics = metrics;
        }
    }
    result.iterations_run = iteration;
    return result;
}

} // namespace seamap
