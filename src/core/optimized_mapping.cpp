#include "core/optimized_mapping.h"

#include "util/float_compare.h"
#include "util/rng.h"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace seamap {

OptimizedMapping::OptimizedMapping(LocalSearchParams params) : params_(params) {
    if (params_.max_iterations == 0 && params_.time_budget_seconds <= 0.0)
        throw std::invalid_argument("OptimizedMapping: need an iteration or time budget");
    if (params_.initial_temperature <= 0.0 || params_.final_temperature <= 0.0 ||
        params_.final_temperature > params_.initial_temperature)
        throw std::invalid_argument("OptimizedMapping: bad temperature range");
    if (params_.swap_probability < 0.0 || params_.swap_probability > 1.0)
        throw std::invalid_argument("OptimizedMapping: bad swap probability");
}

LocalSearchResult OptimizedMapping::optimize(const EvaluationContext& ctx,
                                             const Mapping& initial,
                                             const CancellationToken* cancel) const {
    EvalContext eval(ctx);
    return optimize(eval, initial, cancel);
}

LocalSearchResult OptimizedMapping::optimize(EvalContext& eval, const Mapping& initial,
                                             const CancellationToken* cancel) const {
    if (!initial.complete())
        throw std::invalid_argument("OptimizedMapping: initial mapping incomplete");
    const EvaluationContext& ctx = eval.problem();

    const SearchBudget budget(params_.max_iterations, params_.time_budget_seconds, cancel);
    auto stopped = [&] { return cancel != nullptr && cancel->stop_requested(); };

    Rng rng(params_.seed);
    Mapping current = initial;                           // step A
    DesignMetrics current_metrics = eval.rebase(current); // list schedule M

    LocalSearchResult result;
    result.best_mapping = current;
    result.best_metrics = current_metrics;
    result.found_feasible = current_metrics.feasible;
    result.evaluations = 1;

    // Steps E-F: a feasible design with fewer expected SEUs becomes the
    // new best; until anything is feasible, track the least-infeasible.
    // `make_mapping` materializes the candidate only when it is
    // actually retained — neighbourhood candidates are otherwise
    // evaluated incrementally without building a Mapping.
    auto consider_best = [&](const DesignMetrics& metrics, auto&& make_mapping) {
        const bool improves = metrics.feasible &&
                              (!result.found_feasible ||
                               metrics.gamma < result.best_metrics.gamma);
        if (improves) {
            result.best_mapping = make_mapping();
            result.best_metrics = metrics;
            result.found_feasible = true;
            ++result.improvements;
        } else if (!result.found_feasible &&
                   metrics.tm_seconds < result.best_metrics.tm_seconds) {
            result.best_mapping = make_mapping();
            result.best_metrics = metrics;
        }
        // Opt-in side channel: the cheapest feasible design the walk
        // passes through (power first, Gamma tie-break). Pure
        // observation — the walk and Mbest above never read it.
        if (params_.track_min_power && metrics.feasible) {
            const bool cheaper =
                !result.min_power_found ||
                metrics.power_mw < result.min_power_metrics.power_mw ||
                (exactly_equal(metrics.power_mw, result.min_power_metrics.power_mw) &&
                 metrics.gamma < result.min_power_metrics.gamma);
            if (cheaper) {
                result.min_power_mapping = make_mapping();
                result.min_power_metrics = metrics;
                result.min_power_found = true;
            }
        }
    };
    // Walk ordering: feasibility first, then fewer expected SEUs.
    auto walk_improves = [](const DesignMetrics& candidate, const DesignMetrics& reference) {
        if (!reference.feasible)
            return candidate.feasible || candidate.tm_seconds < reference.tm_seconds;
        return candidate.feasible && candidate.gamma < reference.gamma;
    };
    // The paper's systematic pass: try every single-task move from the
    // current mapping and take the best strict improvement. Each
    // candidate is a single move off the rebased current mapping, so it
    // is exactly the suffix-reschedule case.
    Mapping scratch_mapping;
    auto sweep = [&]() {
        DesignMetrics best_metrics = current_metrics;
        TaskId best_task = 0;
        CoreId best_core = 0;
        bool found = false;
        for (TaskId t = 0; t < ctx.graph.task_count() && !stopped(); ++t) {
            const CoreId original = current.core_of(t);
            if (params_.require_all_cores && current.task_count_on(original) == 1)
                continue; // moving t would empty its core
            for (CoreId core = 0; core < ctx.arch.core_count() && !stopped(); ++core) {
                if (core == original) continue;
                const DesignMetrics metrics = eval.evaluate_move(t, core);
                ++result.evaluations;
                consider_best(metrics, [&]() -> const Mapping& {
                    scratch_mapping = current;
                    scratch_mapping.assign(t, core);
                    return scratch_mapping;
                });
                if (walk_improves(metrics, best_metrics)) {
                    best_task = t;
                    best_core = core;
                    best_metrics = metrics;
                    found = true;
                }
            }
        }
        if (found) {
            current.assign(best_task, best_core);
            current_metrics = best_metrics;
            eval.rebase(current);
        }
    };

    // Restart scheduling: the iteration budget is divided evenly;
    // restart k > 0 begins from a perturbed copy of `initial`.
    const std::uint64_t restarts = std::max<std::uint64_t>(1, params_.restarts);
    const std::uint64_t restart_period =
        params_.max_iterations > 0
            ? std::max<std::uint64_t>(1, params_.max_iterations / restarts)
            : 0;
    auto restart_walk = [&]() {
        current = initial;
        const auto kicks = std::max<std::size_t>(2, ctx.graph.task_count() / 2);
        for (std::size_t k = 0; k < kicks; ++k)
            random_neighbor_op(current, rng, params_.swap_probability,
                               params_.require_all_cores);
        current_metrics = eval.rebase(current);
        ++result.evaluations;
        consider_best(current_metrics, [&]() -> const Mapping& { return current; });
    };

    Mapping neighbor;
    std::uint64_t iteration = 0;
    while (!budget.exhausted(iteration)) { // step B
        ++iteration;
        if (restart_period > 0 && iteration % restart_period == 0 &&
            iteration + restart_period <= params_.max_iterations) {
            restart_walk();
            continue;
        }
        if (params_.sweep_interval > 0 && iteration % params_.sweep_interval == 0) {
            sweep();
            continue;
        }
        neighbor = current; // step C: neighbouring task movement
        const NeighborOp op = random_neighbor_op(neighbor, rng, params_.swap_probability,
                                                 params_.require_all_cores);
        if (op.kind == NeighborOp::Kind::none) continue; // mapping unchanged
        const DesignMetrics metrics = eval.evaluate_neighbor(op); // step D
        ++result.evaluations;
        consider_best(metrics, [&]() -> const Mapping& { return neighbor; });

        // Walk policy: move toward feasibility first, then toward lower
        // Gamma, with annealed acceptance of worse steps. The cooling
        // progress is measured within the current restart segment so
        // every restart begins hot again.
        bool step = walk_improves(metrics, current_metrics);
        if (!step) {
            double relative_worsening;
            if (!current_metrics.feasible) {
                relative_worsening = metrics.tm_seconds / current_metrics.tm_seconds - 1.0;
            } else if (!metrics.feasible) {
                relative_worsening = 1.0; // leaving the feasible region is heavily damped
            } else {
                relative_worsening = metrics.gamma / current_metrics.gamma - 1.0;
            }
            const std::uint64_t segment = restart_period > 0 ? restart_period
                                          : params_.max_iterations > 0 ? params_.max_iterations
                                                                       : 10'000;
            const double progress =
                static_cast<double>(iteration % segment) / static_cast<double>(segment);
            const double temperature =
                params_.initial_temperature *
                std::exp(std::log(params_.final_temperature / params_.initial_temperature) *
                         progress);
            step = rng.uniform() < std::exp(-relative_worsening / temperature);
        }
        if (step) {
            std::swap(current, neighbor); // keeps neighbor's storage alive for reuse
            current_metrics = metrics;
            eval.rebase(current);
        }
    }
    result.iterations_run = iteration;
    return result;
}

} // namespace seamap
