#include "core/initial_mapping.h"

#include "reliability/register_usage.h"
#include "util/float_compare.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace seamap {

namespace {

/// Bookkeeping for the core currently being filled.
struct CoreState {
    CoreId id = 0;
    RegisterSet registers;
    std::uint64_t busy_cycles = 0;
    double frequency_hz = 0.0;
    double vdd = 0.0;

    double busy_seconds() const { return static_cast<double>(busy_cycles) / frequency_hz; }
};

/// Busy-cycle increment of adding `task` to the core: its execution
/// plus the communication of every edge that currently looks remote.
std::uint64_t busy_increment(const EvaluationContext& ctx, const Mapping& mapping, CoreId core,
                             TaskId task) {
    std::uint64_t cycles = ctx.graph.task(task).exec_cycles;
    for (std::size_t idx : ctx.graph.out_edge_indices(task)) {
        const Edge& e = ctx.graph.edge(idx);
        if (!mapping.is_assigned(e.dst) || mapping.core_of(e.dst) != core)
            cycles += e.comm_cycles;
    }
    for (std::size_t idx : ctx.graph.in_edge_indices(task)) {
        const Edge& e = ctx.graph.edge(idx);
        // A producer already placed on another core pays for this edge;
        // placing the consumer here cannot remove that cost, but placing
        // it on the producer's core would. Count it so the greedy sees
        // the locality benefit.
        if (mapping.is_assigned(e.src) && mapping.core_of(e.src) != core)
            cycles += e.comm_cycles;
    }
    return cycles;
}

/// Score of "map `task` on this core now": the core's expected SEUs
/// afterwards (register-union bits x busy exposure x SER at the core's
/// voltage). Lower is better; ties break on the time increment, per
/// Fig. 6 line 9 ("minimum SEUs and Time").
struct CandidateScore {
    double gamma = 0.0;
    double busy_seconds = 0.0;

    bool operator<(const CandidateScore& other) const {
        if (!exactly_equal(gamma, other.gamma)) return gamma < other.gamma;
        return busy_seconds < other.busy_seconds;
    }
};

CandidateScore score_candidate(const EvaluationContext& ctx, const Mapping& mapping,
                               const CoreState& core, TaskId task) {
    const std::uint64_t new_bits =
        register_bits_with_candidate(ctx.graph, core.registers, task);
    const std::uint64_t new_busy = core.busy_cycles + busy_increment(ctx, mapping, core.id, task);
    const double busy_seconds = static_cast<double>(new_busy) / core.frequency_hz;
    CandidateScore score;
    score.busy_seconds = busy_seconds;
    score.gamma = ctx.estimator.core_gamma(new_bits, busy_seconds, core.vdd);
    return score;
}

} // namespace

Mapping initial_sea_mapping(const EvaluationContext& ctx) {
    ctx.graph.validate();
    ctx.arch.validate_scaling(ctx.levels);
    const std::size_t n = ctx.graph.task_count();
    const std::size_t cores = ctx.arch.core_count();

    Mapping mapping(n, cores);
    std::deque<TaskId> queue;
    std::vector<bool> queued(n, false);
    for (TaskId t : ctx.graph.source_tasks()) {
        queue.push_back(t);
        queued[t] = true;
    }

    auto pop_unmapped = [&]() -> std::optional<TaskId> {
        while (!queue.empty()) {
            const TaskId t = queue.front();
            queue.pop_front();
            if (!mapping.is_assigned(t)) return t;
        }
        return std::nullopt;
    };
    auto lowest_unmapped = [&]() -> std::optional<TaskId> {
        for (TaskId t = 0; t < n; ++t)
            if (!mapping.is_assigned(t)) return t;
        return std::nullopt;
    };

    const std::size_t last_core = cores - 1;
    for (std::size_t c = 0; c + 1 < cores || cores == 1; ++c) {
        if (mapping.complete()) break;
        CoreState core;
        core.id = static_cast<CoreId>(c);
        core.registers = RegisterSet(ctx.graph.register_file().size());
        core.frequency_hz = ctx.arch.frequency_hz(ctx.levels[c]);
        core.vdd = ctx.arch.scaling_table().vdd(ctx.levels[c]);

        auto seed = pop_unmapped();
        if (!seed) seed = lowest_unmapped();
        if (!seed) break;
        TaskId current = *seed;
        core.busy_cycles += busy_increment(ctx, mapping, core.id, current);
        mapping.assign(current, core.id);
        core.registers |= ctx.graph.task(current).registers;

        while (true) {
            const std::size_t remaining_cores = cores - 1 - c;
            const std::size_t unmapped = n - mapping.assigned_count();
            // Keep at least one task for every remaining core
            // (Fig. 6 line 4) and respect the per-core time budget.
            if (unmapped <= remaining_cores) break;
            if (ctx.deadline_seconds > 0.0 && core.busy_seconds() >= ctx.deadline_seconds) break;

            // Dependency list L: unmapped dependents of the current
            // task, scored by the SEUs the core would experience.
            TaskId best_task = 0;
            CandidateScore best_score{std::numeric_limits<double>::infinity(),
                                      std::numeric_limits<double>::infinity()};
            bool have_candidate = false;
            std::vector<TaskId> others;
            for (std::size_t idx : ctx.graph.out_edge_indices(current)) {
                const TaskId dep = ctx.graph.edge(idx).dst;
                if (mapping.is_assigned(dep)) continue;
                const CandidateScore score = score_candidate(ctx, mapping, core, dep);
                if (!have_candidate || score < best_score) {
                    if (have_candidate) others.push_back(best_task);
                    best_task = dep;
                    best_score = score;
                    have_candidate = true;
                } else {
                    others.push_back(dep);
                }
            }

            if (have_candidate) {
                // Map the minimum-SEU dependent; the rest of L joins Q.
                for (TaskId t : others) {
                    if (!queued[t]) {
                        queue.push_back(t);
                        queued[t] = true;
                    }
                }
                current = best_task;
            } else {
                // L empty: continue this core from the queue.
                const auto next = pop_unmapped();
                if (!next) break;
                current = *next;
            }
            core.busy_cycles += busy_increment(ctx, mapping, core.id, current);
            mapping.assign(current, core.id);
            core.registers |= ctx.graph.task(current).registers;
        }
        if (cores == 1) break;
    }

    // Whatever is left belongs to the last core.
    for (TaskId t = 0; t < n; ++t)
        if (!mapping.is_assigned(t)) mapping.assign(t, static_cast<CoreId>(last_core));
    return mapping;
}

} // namespace seamap
