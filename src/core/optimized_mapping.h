// Stage 2 of the proposed soft error-aware task mapping: the
// OptimizedMapping local search of the paper's Fig. 7.
//
// Starting from the stage-1 mapping, the search walks a move/swap
// neighbourhood; every candidate is list-scheduled (step D) and the
// best *feasible* design by expected SEUs is retained (steps E-F). The
// walk itself is greedy with an exploration probability so it can
// escape local minima, and — like the paper — it runs until a search
// budget (iterations and/or wall-clock) is exhausted rather than to
// convergence.
#pragma once

#include "core/eval_context.h"
#include "reliability/design_eval.h"
#include "sched/mapping.h"
#include "util/cancellation.h"

#include <cstdint>

namespace seamap {

/// Search knobs. The paper uses wall-clock budgets (40-130 min of
/// SystemC-driven search); with the analytic evaluator the default
/// iteration budget explores a comparable design-space fraction in
/// milliseconds. Set `time_budget_seconds` > 0 to add a wall-clock cap.
struct LocalSearchParams {
    std::uint64_t max_iterations = 4'000;
    double time_budget_seconds = 0.0; ///< 0 = iteration budget only
    /// Annealed acceptance of non-improving walk steps: a worse
    /// neighbour (relative cost increase d) is accepted with
    /// probability exp(-d / T), with T cooled geometrically from
    /// `initial_temperature` to `final_temperature` within each restart
    /// segment. Mbest tracking (steps E-F) is unaffected — only
    /// feasible, lower-Gamma designs ever become the returned best.
    double initial_temperature = 0.30;
    double final_temperature = 1e-4;
    /// Probability that a neighbour swaps two tasks instead of moving one.
    double swap_probability = 0.3;
    /// Every `sweep_interval` iterations the search systematically
    /// evaluates all single-task moves from the current mapping and
    /// takes the best one — the paper's exhaustive neighbourhood pass
    /// (its O(N^3) complexity analysis assumes such sweeps). 0 disables.
    std::uint64_t sweep_interval = 25;
    /// Reject task movements that would leave a previously-populated
    /// core without tasks. The paper's designs keep every core of the
    /// chosen architecture allocation populated (Tables II/III); leave
    /// this off to let the search shut cores down.
    bool require_all_cores = false;
    /// Independent walk restarts sharing the iteration budget; restart
    /// k > 0 begins from a randomly perturbed copy of the initial
    /// mapping. Escapes local minima that a single walk gets stuck in.
    std::uint64_t restarts = 3;
    std::uint64_t seed = 1;
    /// Also record the minimum-power feasible design the walk passes
    /// through (power first, Gamma tie-break) in the result's
    /// `min_power_*` fields. Off by default: tracking is free in walk
    /// behavior (the walk itself is untouched) but retaining the extra
    /// mapping copies costs a little, and downstream result schemas
    /// (api/json.h) only grow a field when it is on.
    bool track_min_power = false;
};

/// Outcome of one local-search run.
struct LocalSearchResult {
    Mapping best_mapping;
    DesignMetrics best_metrics;
    bool found_feasible = false;
    std::uint64_t iterations_run = 0;
    std::uint64_t improvements = 0;
    std::uint64_t evaluations = 0;
    /// Minimum-power feasible design seen by this walk (power first,
    /// Gamma tie-break) — only tracked when
    /// LocalSearchParams::track_min_power is on; `min_power_found`
    /// stays false otherwise. May coincide with `best_mapping`.
    Mapping min_power_mapping;
    DesignMetrics min_power_metrics;
    bool min_power_found = false;
};

/// Fig. 7 search engine.
class OptimizedMapping {
public:
    explicit OptimizedMapping(LocalSearchParams params);

    /// Search from `initial` (complete). Returns the best feasible
    /// design by Gamma; if none was found, the design closest to
    /// feasibility (smallest T_M). An optional `cancel` token caps the
    /// walk on top of the iteration/time budgets — it is checked inside
    /// the loop, so a search never overshoots a stop request or token
    /// deadline by more than one design evaluation. Builds a fresh
    /// EvalContext internally (fast path, default EvalOptions).
    LocalSearchResult optimize(const EvaluationContext& ctx, const Mapping& initial,
                               const CancellationToken* cancel = nullptr) const;

    /// Search on a caller-provided evaluation context (the explorer
    /// builds one per scaling combination; tests/benches select the
    /// naive-reference path through it). The walk — RNG draws, step
    /// acceptance, best tracking — is a pure function of
    /// (ctx, initial, seed) regardless of the context's EvalOptions:
    /// every evaluation path is bit-identical.
    LocalSearchResult optimize(EvalContext& eval, const Mapping& initial,
                               const CancellationToken* cancel = nullptr) const;

private:
    LocalSearchParams params_;
};

} // namespace seamap
