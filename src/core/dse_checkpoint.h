// Crash-safe checkpoint/resume for the design-space explorer
// (core/dse.h), built on the generic snapshot layer (util/checkpoint.h).
//
// What is persisted — and why it is exactly resumable: the explorer's
// merge replays prune decisions sequentially in slot pop order,
// and each slot's replay decision depends only on the folded outcomes
// of *earlier* slots. The contiguous prefix of decided slots is
// therefore replay-stable: record each prefix slot's replay outcome
// ({pruned | no feasible design | feasible(point, optional min-power
// point)}) and a resumed run that preloads the prefix and searches only
// the remaining slots reproduces the uninterrupted run byte-for-byte —
// at any thread count, since thread count never influences replay
// decisions.
//
// Snapshots are keyed by dse_state_hash(), a content hash of everything
// that determines the byte-exact outcome (graph, architecture,
// deadline, SER model, search parameters, strategy name). Knobs the
// result is provably invariant to — thread count, evaluation-path
// options, wall-clock budgets — are excluded, so a run checkpointed at
// 8 threads resumes correctly at 1. Resuming against a different
// problem fails with Error(checkpoint_mismatch).
#pragma once

#include "arch/mpsoc.h"
#include "core/dse.h"
#include "reliability/ser_model.h"
#include "reliability/seu_estimator.h"
#include "taskgraph/task_graph.h"
#include "util/cancellation.h"
#include "util/checkpoint.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace seamap {

/// Replay outcome of one decided slot, in slot pop order.
struct DseSlotRecord {
    enum class Kind : unsigned char {
        pruned,    ///< bounds strictly dominated by an earlier survivor
        no_design, ///< searched, no feasible mapping found
        feasible,  ///< searched, `point` holds the folded best design
    };
    /// Enumeration index of the scaling combination (cross-checked
    /// against the recomputed plan on resume).
    std::uint64_t combo = 0;
    Kind kind = Kind::pruned;
    DsePoint point;           ///< feasible only
    DsePoint min_power_point; ///< feasible only, when tracked
    bool has_min_power = false;
};

/// Parsed resume state: the decided prefix in slot pop order.
struct DseResumeState {
    std::vector<DseSlotRecord> records;
    /// True when the primary snapshot was corrupt and ".prev" supplied
    /// the data (the caller may want to tell the user).
    bool from_fallback = false;
};

/// What load() found, for caller messaging.
struct DseResumeInfo {
    std::uint64_t slots_decided = 0;
    bool from_fallback = false;
};

/// Content hash of the exploration inputs that determine the byte-exact
/// result. Deliberately excludes num_threads, EvalOptions and the
/// wall-clock budgets (see file comment).
std::uint64_t dse_state_hash(const TaskGraph& graph, const MpsocArchitecture& arch,
                             double deadline_seconds, const DseParams& params,
                             const SerModel& ser, ExposurePolicy policy,
                             std::string_view strategy_name);

/// Accumulates decided-slot records and persists them as crash-safe
/// snapshots. record() is cheap (string encode) so the explorer can
/// call it under its bookkeeping mutex; maybe_flush()/flush() do the
/// file I/O and are called outside it. Thread-safe.
class DseCheckpointer {
public:
    DseCheckpointer(std::string path, std::uint64_t state_hash);

    /// Flush cadence: persist after every `every_records` newly decided
    /// slots (0 = never by count) and whenever `interval_seconds`
    /// elapsed since the last flush (0 = never by time). flush() is
    /// always available regardless.
    void set_cadence(std::uint64_t every_records, double interval_seconds);

    /// Load the snapshot at path(), seeding this checkpointer with the
    /// stored prefix so later flushes extend it and exposing the
    /// decoded records via resume_state(). Calling load() is how the
    /// owner opts into resuming: explore() only consumes state that was
    /// loaded beforehand, so skipping load() means a fresh start.
    /// `task_count` and `core_count` shape the decoded mappings (and
    /// are validated against every record). Returns nullopt when no
    /// snapshot exists; throws Error(checkpoint_corrupt/_mismatch) as
    /// documented on load_checkpoint().
    std::optional<DseResumeInfo> load(std::size_t task_count, std::size_t core_count);

    /// The decoded prefix from a successful load(); nullptr otherwise.
    const DseResumeState* resume_state() const { return resume_ ? &*resume_ : nullptr; }

    /// Append one decided slot (strict pop-order prefix).
    void record(const DseSlotRecord& record);

    /// Persist when the cadence is due and new records exist.
    void maybe_flush();
    /// Persist now when new records exist since the last flush.
    void flush();

    /// Delete the snapshot files (after a completed run, when the
    /// caller does not want to keep the finished snapshot).
    void remove();

    const std::string& path() const { return path_; }
    std::uint64_t recorded() const;

private:
    void flush_locked();

    std::string path_;
    std::uint64_t state_hash_;
    std::optional<DseResumeState> resume_;
    mutable std::mutex mutex_;
    std::vector<std::string> lines_;
    std::size_t flushed_lines_ = 0;
    std::uint64_t every_records_ = 0;
    IntervalTimer timer_{0.0};
};

} // namespace seamap
