#include "core/search_strategy.h"

namespace seamap {

SearchStrategy::~SearchStrategy() = default;

LocalSearchResult SearchStrategy::search(EvalContext& eval, const Mapping& initial,
                                         std::uint64_t seed,
                                         const CancellationToken* cancel) const {
    return search(eval.problem(), initial, seed, cancel);
}

OptimizedMappingStrategy::OptimizedMappingStrategy(LocalSearchParams params)
    : params_(params) {
    (void)OptimizedMapping(params_);
}

std::string OptimizedMappingStrategy::name() const { return "optimized"; }

LocalSearchResult OptimizedMappingStrategy::search(const EvaluationContext& ctx,
                                                   const Mapping& initial,
                                                   std::uint64_t seed,
                                                   const CancellationToken* cancel) const {
    EvalContext eval(ctx);
    return search(eval, initial, seed, cancel);
}

LocalSearchResult OptimizedMappingStrategy::search(EvalContext& eval, const Mapping& initial,
                                                   std::uint64_t seed,
                                                   const CancellationToken* cancel) const {
    LocalSearchParams params = params_;
    params.seed = seed;
    return OptimizedMapping(params).optimize(eval, initial, cancel);
}

} // namespace seamap
