#include "core/eval_context.h"

#include "sched/list_scheduler.h"
#include "taskgraph/register_file.h"

#include <algorithm>
#include <stdexcept>

// This file is the zero-steady-state-allocation evaluation engine: the
// marker below arms seamap_lint's hot-path-alloc rule, so any
// allocation-shaped call added outside the explicitly allowed setup
// regions fails `make lint` (and tests/core/eval_context_alloc_test.cpp
// enforces the same property at runtime via the operator-new guard).
// seamap-lint: hot-path

namespace seamap {

NeighborOp random_neighbor_op(Mapping& mapping, Rng& rng, double swap_probability,
                              bool require_all_cores) {
    NeighborOp op;
    const auto tasks = static_cast<std::int64_t>(mapping.task_count());
    const auto cores = static_cast<std::int64_t>(mapping.core_count());
    if (cores < 2 || tasks < 1) return op;
    if (tasks >= 2 && rng.uniform() < swap_probability) {
        // Swaps never change per-core populations, so they are always
        // admissible under require_all_cores.
        for (int attempt = 0; attempt < 8; ++attempt) {
            const auto a = static_cast<TaskId>(rng.uniform_int(0, tasks - 1));
            const auto b = static_cast<TaskId>(rng.uniform_int(0, tasks - 1));
            if (a == b || mapping.core_of(a) == mapping.core_of(b)) continue;
            const CoreId core_a = mapping.core_of(a);
            mapping.assign(a, mapping.core_of(b));
            mapping.assign(b, core_a);
            op.kind = NeighborOp::Kind::swap;
            op.a = a;
            op.b = b;
            return op;
        }
    }
    for (int attempt = 0; attempt < 8; ++attempt) {
        const auto task = static_cast<TaskId>(rng.uniform_int(0, tasks - 1));
        const CoreId from = mapping.core_of(task);
        if (require_all_cores && mapping.task_count_on(from) == 1)
            continue; // would empty its core
        auto target = static_cast<CoreId>(rng.uniform_int(0, cores - 2));
        if (target >= from) ++target;
        mapping.assign(task, target);
        op.kind = NeighborOp::Kind::move;
        op.a = task;
        op.b = task;
        op.from = from;
        op.to = target;
        return op;
    }
    return op;
}

// seamap-lint: push-allow(hot-path-alloc) -- constructor: one-time
// per-scaling precomputation and scratch sizing; nothing here runs in
// the steady-state evaluation loop
EvalContext::EvalContext(const EvaluationContext& ctx, EvalOptions options)
    : ctx_(ctx), options_(options) {
    ctx_.arch.validate_scaling(ctx_.levels);
    n_ = ctx_.graph.task_count();
    cores_ = ctx_.arch.core_count();
    batches_ = static_cast<double>(ctx_.graph.batch_count());

    order_ = static_schedule_order(ctx_.graph);
    pos_.resize(n_);
    for (std::size_t p = 0; p < n_; ++p) pos_[order_[p]] = p;
    // Earliest placement position a mutation of task t can influence:
    // every predecessor of t is placed before t, and positions before
    // the earliest predecessor see neither t's core (no edges into t
    // originate there) nor any other changed core.
    suffix_start_.resize(n_);
    for (TaskId t = 0; t < n_; ++t) {
        std::size_t s = pos_[t];
        for (std::size_t idx : ctx_.graph.in_edge_indices(t))
            s = std::min(s, pos_[ctx_.graph.edge(idx).src]);
        suffix_start_[t] = s;
    }

    core_freq_.resize(cores_);
    ser_rate_.resize(cores_);
    active_power_mw_.resize(cores_);
    for (std::size_t c = 0; c < cores_; ++c) {
        core_freq_[c] = ctx_.arch.frequency_hz(ctx_.levels[c]);
        ser_rate_[c] = ctx_.estimator.ser_model().ser_per_bit_second(
            ctx_.arch.scaling_table().vdd(ctx_.levels[c]));
        active_power_mw_[c] = ctx_.arch.power_model().core_active_power_mw(ctx_.levels[c]);
    }

    const std::size_t universe = ctx_.graph.register_file().size();
    words_ = (universe + 63) / 64;
    // SoA register state: every task's register set flattened into one
    // fixed-width row of the arena (tasks whose backing sets are
    // shorter — default-constructed empties — zero-fill), plus the
    // per-register width table the weighted popcount reads.
    task_reg_words_.assign(n_ * words_, 0);
    for (TaskId t = 0; t < n_; ++t) {
        const RegisterSet& regs = ctx_.graph.task(t).registers;
        std::copy_n(regs.words(), std::min(regs.word_count(), words_),
                    task_reg_words_.begin() + static_cast<std::ptrdiff_t>(t * words_));
    }
    reg_bits_.resize(universe);
    for (RegisterId r = 0; r < universe; ++r)
        reg_bits_[r] = ctx_.graph.register_file().bits(r);

    data_ready_.resize(n_);
    core_free_.resize(cores_);
    finish_.resize(n_);
    busy_.resize(cores_);
    busy_seconds_.resize(cores_);
    utilization_.resize(cores_);
    register_bits_.resize(cores_);
    busy_delta_.resize(cores_);
    union_words_.resize(cores_ * words_);
    scratch_words_.resize(words_);
    key_scratch_.resize(n_);

    base_finish_.resize(n_);
    base_arrival_.resize(ctx_.graph.edge_count());
    base_core_free_at_.resize(n_ * cores_);
    base_busy_.resize(cores_);
    base_bits_.resize(cores_);
    core_task_offsets_.resize(cores_ + 1);
    core_task_cursor_.resize(cores_);
    core_task_ids_.resize(n_);
}
// seamap-lint: pop-allow(hot-path-alloc)

void EvalContext::check_mapping(const Mapping& mapping) const {
    if (mapping.task_count() != n_)
        throw std::invalid_argument("EvalContext: mapping task count != graph task count");
    if (mapping.core_count() != cores_)
        throw std::invalid_argument("EvalContext: mapping core count != architecture");
    if (!mapping.complete())
        throw std::invalid_argument("EvalContext: mapping is incomplete");
}

// Identical arithmetic, in identical order, to ListScheduler::schedule
// + per_core_busy_cycles + per_core_register_bits + SeuEstimator::
// estimate + PowerModel::mpsoc_power_mw — the equivalence harness pins
// this correspondence bit-for-bit.
DesignMetrics EvalContext::evaluate_full(const Mapping& mapping, bool record) {
    check_mapping(mapping);
    const CoreId* core_of = mapping.raw().data();

    std::fill(data_ready_.begin(), data_ready_.end(), 0.0);
    std::fill(core_free_.begin(), core_free_.end(), 0.0);
    for (std::size_t p = 0; p < n_; ++p) {
        if (record)
            std::copy(core_free_.begin(), core_free_.end(),
                      base_core_free_at_.begin() +
                          static_cast<std::ptrdiff_t>(p * cores_));
        const TaskId t = order_[p];
        const CoreId core = core_of[t];
        const double start = std::max(core_free_[core], data_ready_[t]);
        const double finish =
            start + static_cast<double>(ctx_.graph.task(t).exec_cycles) / batches_ /
                        core_freq_[core];
        finish_[t] = finish;
        double cursor = finish;
        for (std::size_t idx : ctx_.graph.out_edge_indices(t)) {
            const Edge& e = ctx_.graph.edge(idx);
            const bool cross = core_of[e.dst] != core;
            double arrival = finish;
            if (cross) {
                cursor += static_cast<double>(e.comm_cycles) / batches_ / core_freq_[core];
                arrival = cursor;
            }
            if (record) base_arrival_[idx] = arrival;
            data_ready_[e.dst] = std::max(data_ready_[e.dst], arrival);
        }
        core_free_[core] = cursor;
    }

    double latency = 0.0;
    for (TaskId t = 0; t < n_; ++t) latency = std::max(latency, finish_[t]);

    // Whole-run busy cycles, eq. (7) attribution (integer, exact).
    std::fill(busy_.begin(), busy_.end(), std::uint64_t{0});
    for (TaskId t = 0; t < n_; ++t) {
        const CoreId core = core_of[t];
        busy_[core] += ctx_.graph.task(t).exec_cycles;
        for (std::size_t idx : ctx_.graph.out_edge_indices(t)) {
            const Edge& e = ctx_.graph.edge(idx);
            if (core_of[e.dst] != core) busy_[core] += e.comm_cycles;
        }
    }

    // Per-core register unions, eq. (8): fixed-width word rows, so the
    // per-task OR is a contiguous word loop over the arena rows (the
    // vectorizable SoA form of `union[core] |= task.registers`).
    std::fill(union_words_.begin(), union_words_.end(), std::uint64_t{0});
    for (TaskId t = 0; t < n_; ++t) {
        std::uint64_t* dst = union_words_.data() + core_of[t] * words_;
        const std::uint64_t* src = task_reg_words_.data() + t * words_;
        for (std::size_t w = 0; w < words_; ++w) dst[w] |= src[w];
    }
    for (std::size_t c = 0; c < cores_; ++c)
        register_bits_[c] = weighted_bits(union_words_.data() + c * words_);

    if (record) {
        std::copy(finish_.begin(), finish_.end(), base_finish_.begin());
        std::copy(busy_.begin(), busy_.end(), base_busy_.begin());
        std::copy(register_bits_.begin(), register_bits_.end(), base_bits_.begin());
        // Counting sort into the CSR partition (fixed-capacity arrays;
        // iterating tasks in id order keeps each core's slice ascending,
        // matching the per-core push_back lists this replaces).
        std::fill(core_task_cursor_.begin(), core_task_cursor_.end(), std::size_t{0});
        for (TaskId t = 0; t < n_; ++t) ++core_task_cursor_[core_of[t]];
        core_task_offsets_[0] = 0;
        for (std::size_t c = 0; c < cores_; ++c)
            core_task_offsets_[c + 1] = core_task_offsets_[c] + core_task_cursor_[c];
        std::copy(core_task_offsets_.begin(), core_task_offsets_.end() - 1,
                  core_task_cursor_.begin());
        for (TaskId t = 0; t < n_; ++t) core_task_ids_[core_task_cursor_[core_of[t]]++] = t;
    }
    return finish_metrics(latency);
}

std::uint64_t EvalContext::weighted_bits(const std::uint64_t* row) const {
    // Weighted popcount of one union row: the eq. (8) |R| term. Integer
    // addition commutes exactly, so the value is bit-identical to
    // RegisterSet::bits_in whatever the traversal order.
    std::uint64_t total = 0;
    for (std::size_t w = 0; w < words_; ++w) {
        std::uint64_t word = row[w];
        while (word != 0) {
            const auto bit = static_cast<unsigned>(__builtin_ctzll(word));
            total += reg_bits_[w * 64 + bit];
            word &= word - 1;
        }
    }
    return total;
}

DesignMetrics EvalContext::finish_metrics(double latency) {
    DesignMetrics metrics;
    metrics.latency_seconds = latency;
    double ii = 0.0;
    for (std::size_t c = 0; c < cores_; ++c) {
        busy_seconds_[c] = static_cast<double>(busy_[c]) / core_freq_[c];
        ii = std::max(ii, busy_seconds_[c] / batches_);
    }
    metrics.tm_seconds = latency + (batches_ - 1.0) * ii;
    for (std::size_t c = 0; c < cores_; ++c) {
        utilization_[c] = metrics.tm_seconds > 0.0
                              ? std::min(1.0, busy_seconds_[c] / metrics.tm_seconds)
                              : 0.0;
    }
    std::uint64_t total_bits = 0;
    for (std::size_t c = 0; c < cores_; ++c) total_bits += register_bits_[c];
    metrics.register_bits = total_bits;

    double gamma = 0.0;
    const bool full_duration = ctx_.estimator.policy() == ExposurePolicy::full_duration;
    for (std::size_t c = 0; c < cores_; ++c) {
        if (register_bits_[c] == 0) continue; // no live state on this core
        const double exposure = full_duration ? metrics.tm_seconds : busy_seconds_[c];
        gamma += static_cast<double>(register_bits_[c]) * exposure * ser_rate_[c];
    }
    metrics.gamma = gamma;
    metrics.power_mw =
        ctx_.arch.power_model().mpsoc_power_mw_precomputed(active_power_mw_, utilization_);
    metrics.feasible = metrics.tm_seconds <= ctx_.deadline_seconds * (1.0 + 1e-9);
    return metrics;
}

DesignMetrics EvalContext::evaluate(const Mapping& mapping) {
    if (options_.naive_reference) return evaluate_design(ctx_, mapping);
    ++stats_.full_evals;
    return evaluate_full(mapping, false);
}

DesignMetrics EvalContext::evaluate_memoized(const Mapping& mapping) {
    if (options_.naive_reference) return evaluate_design(ctx_, mapping);
    if (!options_.memoize) return evaluate(mapping);
    check_mapping(mapping);
    const CoreId* key = mapping.raw().data();
    const std::uint64_t hash = hash_key(key);
    if (const DesignMetrics* hit = memo_find(hash, key)) {
        ++stats_.memo_hits;
        return *hit;
    }
    ++stats_.full_evals;
    const DesignMetrics metrics = evaluate_full(mapping, false);
    memo_insert(hash, key, metrics);
    return metrics;
}

DesignMetrics EvalContext::rebase(const Mapping& base) {
    base_ = base;
    if (options_.naive_reference) {
        base_metrics_ = evaluate_design(ctx_, base_);
        has_base_ = true;
        return base_metrics_;
    }
    ++stats_.full_evals;
    base_metrics_ = evaluate_full(base_, true);
    has_base_ = true;
    if (options_.memoize) {
        const CoreId* key = base_.raw().data();
        const std::uint64_t hash = hash_key(key);
        if (memo_find(hash, key) == nullptr) memo_insert(hash, key, base_metrics_);
    }
    return base_metrics_;
}

DesignMetrics EvalContext::evaluate_move(TaskId task, CoreId to) {
    if (!has_base_) throw std::logic_error("EvalContext::evaluate_move: call rebase() first");
    if (task >= n_) throw std::invalid_argument("EvalContext::evaluate_move: bad task id");
    if (to >= cores_) throw std::invalid_argument("EvalContext::evaluate_move: bad core id");
    const CoreId from = base_.raw()[task];
    if (to == from) return base_metrics_;
    if (options_.naive_reference || !options_.incremental) {
        mapping_scratch_ = base_;
        mapping_scratch_.assign(task, to);
        if (options_.naive_reference) return evaluate_design(ctx_, mapping_scratch_);
        return evaluate_memoized(mapping_scratch_);
    }
    std::uint64_t hash = 0;
    if (options_.memoize) {
        std::copy(base_.raw().begin(), base_.raw().end(), key_scratch_.begin());
        key_scratch_[task] = to;
        hash = hash_key(key_scratch_.data());
        if (const DesignMetrics* hit = memo_find(hash, key_scratch_.data())) {
            ++stats_.memo_hits;
            return *hit;
        }
    }
    const Override ov{task, to, task, to};
    const DesignMetrics metrics = evaluate_override(ov, suffix_start_[task]);
    if (options_.memoize) memo_insert(hash, key_scratch_.data(), metrics);
    return metrics;
}

DesignMetrics EvalContext::evaluate_swap(TaskId a, TaskId b) {
    if (!has_base_) throw std::logic_error("EvalContext::evaluate_swap: call rebase() first");
    if (a >= n_ || b >= n_)
        throw std::invalid_argument("EvalContext::evaluate_swap: bad task id");
    const CoreId core_a = base_.raw()[a];
    const CoreId core_b = base_.raw()[b];
    if (a == b || core_a == core_b) return base_metrics_;
    if (options_.naive_reference || !options_.incremental) {
        mapping_scratch_ = base_;
        mapping_scratch_.assign(a, core_b);
        mapping_scratch_.assign(b, core_a);
        if (options_.naive_reference) return evaluate_design(ctx_, mapping_scratch_);
        return evaluate_memoized(mapping_scratch_);
    }
    std::uint64_t hash = 0;
    if (options_.memoize) {
        std::copy(base_.raw().begin(), base_.raw().end(), key_scratch_.begin());
        key_scratch_[a] = core_b;
        key_scratch_[b] = core_a;
        hash = hash_key(key_scratch_.data());
        if (const DesignMetrics* hit = memo_find(hash, key_scratch_.data())) {
            ++stats_.memo_hits;
            return *hit;
        }
    }
    const Override ov{a, core_b, b, core_a};
    const DesignMetrics metrics =
        evaluate_override(ov, std::min(suffix_start_[a], suffix_start_[b]));
    if (options_.memoize) memo_insert(hash, key_scratch_.data(), metrics);
    return metrics;
}

DesignMetrics EvalContext::evaluate_neighbor(const NeighborOp& op) {
    switch (op.kind) {
    case NeighborOp::Kind::none:
        if (!has_base_)
            throw std::logic_error("EvalContext::evaluate_neighbor: call rebase() first");
        return base_metrics_;
    case NeighborOp::Kind::move:
        return evaluate_move(op.a, op.to);
    case NeighborOp::Kind::swap:
        return evaluate_swap(op.a, op.b);
    }
    throw std::logic_error("EvalContext::evaluate_neighbor: bad op kind");
}

DesignMetrics EvalContext::evaluate_override(const Override& ov, std::size_t suffix_pos) {
    ++stats_.incremental_evals;
    const CoreId* base_raw = base_.raw().data();

    // Restore the timeline state as of `suffix_pos` (every placement
    // before it is provably identical under the override) and replay
    // only the suffix with the candidate core lookup.
    std::copy_n(base_core_free_at_.begin() +
                    static_cast<std::ptrdiff_t>(suffix_pos * cores_),
                cores_, core_free_.begin());
    for (std::size_t q = suffix_pos; q < n_; ++q) {
        const TaskId w = order_[q];
        double ready = 0.0;
        for (std::size_t idx : ctx_.graph.in_edge_indices(w)) {
            if (pos_[ctx_.graph.edge(idx).src] < suffix_pos)
                ready = std::max(ready, base_arrival_[idx]);
        }
        data_ready_[w] = ready;
    }
    for (std::size_t q = suffix_pos; q < n_; ++q) {
        const TaskId w = order_[q];
        const CoreId core = ov.core_of(base_raw, w);
        const double start = std::max(core_free_[core], data_ready_[w]);
        const double finish =
            start + static_cast<double>(ctx_.graph.task(w).exec_cycles) / batches_ /
                        core_freq_[core];
        finish_[w] = finish;
        double cursor = finish;
        for (std::size_t idx : ctx_.graph.out_edge_indices(w)) {
            const Edge& e = ctx_.graph.edge(idx);
            const bool cross = ov.core_of(base_raw, e.dst) != core;
            double arrival = finish;
            if (cross) {
                cursor += static_cast<double>(e.comm_cycles) / batches_ / core_freq_[core];
                arrival = cursor;
            }
            data_ready_[e.dst] = std::max(data_ready_[e.dst], arrival);
        }
        core_free_[core] = cursor;
    }
    double latency = 0.0;
    for (TaskId t = 0; t < n_; ++t)
        latency = std::max(latency, pos_[t] < suffix_pos ? base_finish_[t] : finish_[t]);

    // Busy cycles: integer delta over the touched tasks and their
    // incident edges (exactly equal to a full eq. 7 recompute).
    std::fill(busy_delta_.begin(), busy_delta_.end(), std::int64_t{0});
    const bool two_tasks = ov.b != ov.a;
    auto apply_exec_delta = [&](TaskId t, CoreId cand_core) {
        const auto exec = static_cast<std::int64_t>(ctx_.graph.task(t).exec_cycles);
        busy_delta_[base_raw[t]] -= exec;
        busy_delta_[cand_core] += exec;
    };
    apply_exec_delta(ov.a, ov.core_a);
    if (two_tasks) apply_exec_delta(ov.b, ov.core_b);
    auto apply_edge_delta = [&](std::size_t idx) {
        const Edge& e = ctx_.graph.edge(idx);
        const auto comm = static_cast<std::int64_t>(e.comm_cycles);
        if (base_raw[e.src] != base_raw[e.dst]) busy_delta_[base_raw[e.src]] -= comm;
        const CoreId cand_src = ov.core_of(base_raw, e.src);
        if (cand_src != ov.core_of(base_raw, e.dst)) busy_delta_[cand_src] += comm;
    };
    for (std::size_t idx : ctx_.graph.out_edge_indices(ov.a)) apply_edge_delta(idx);
    for (std::size_t idx : ctx_.graph.in_edge_indices(ov.a)) apply_edge_delta(idx);
    if (two_tasks) {
        // Skip edges already handled through task a.
        for (std::size_t idx : ctx_.graph.out_edge_indices(ov.b))
            if (ctx_.graph.edge(idx).dst != ov.a) apply_edge_delta(idx);
        for (std::size_t idx : ctx_.graph.in_edge_indices(ov.b))
            if (ctx_.graph.edge(idx).src != ov.a) apply_edge_delta(idx);
    }
    for (std::size_t c = 0; c < cores_; ++c)
        busy_[c] = static_cast<std::uint64_t>(static_cast<std::int64_t>(base_busy_[c]) +
                                              busy_delta_[c]);

    // Register unions: only the cores whose task sets changed. Unions
    // are set algebra, so recomputing the two touched cores from their
    // base task lists gives exactly the full eq. 8 result. Same SoA
    // word-row OR as the full pass, over the CSR task slice.
    std::copy(base_bits_.begin(), base_bits_.end(), register_bits_.begin());
    auto or_task_row = [&](TaskId t) {
        const std::uint64_t* src = task_reg_words_.data() + t * words_;
        for (std::size_t w = 0; w < words_; ++w) scratch_words_[w] |= src[w];
    };
    auto recompute_core_bits = [&](CoreId c) {
        std::fill(scratch_words_.begin(), scratch_words_.end(), std::uint64_t{0});
        for (std::size_t i = core_task_offsets_[c]; i < core_task_offsets_[c + 1]; ++i) {
            const TaskId t = core_task_ids_[i];
            if (ov.core_of(base_raw, t) == c) or_task_row(t);
        }
        if (ov.core_a == c && base_raw[ov.a] != c) or_task_row(ov.a);
        if (two_tasks && ov.core_b == c && base_raw[ov.b] != c) or_task_row(ov.b);
        register_bits_[c] = weighted_bits(scratch_words_.data());
    };
    recompute_core_bits(base_raw[ov.a]);
    recompute_core_bits(ov.core_a);
    if (two_tasks) {
        if (base_raw[ov.b] != base_raw[ov.a] && base_raw[ov.b] != ov.core_a)
            recompute_core_bits(base_raw[ov.b]);
        if (ov.core_b != base_raw[ov.a] && ov.core_b != ov.core_a)
            recompute_core_bits(ov.core_b);
    }

    return finish_metrics(latency);
}

std::uint64_t EvalContext::hash_key(const CoreId* key) const {
    std::uint64_t hash = 0x9e3779b97f4a7c15ULL ^ n_;
    for (std::size_t i = 0; i < n_; ++i) hash = splitmix64(hash ^ key[i]);
    return hash;
}

const DesignMetrics* EvalContext::memo_find(std::uint64_t hash, const CoreId* key) const {
    if (memo_slots_.empty()) return nullptr;
    const std::size_t mask = memo_slots_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
        const std::uint32_t slot = memo_slots_[i];
        if (slot == 0) return nullptr;
        const MemoEntry& entry = memo_entries_[slot - 1];
        if (entry.hash == hash &&
            std::equal(key, key + n_, memo_keys_.data() + entry.key_offset))
            return &entry.metrics;
    }
}

// seamap-lint: push-allow(hot-path-alloc) -- memo-table growth is the
// documented exception to the zero-allocation steady state: inserts
// amortize across the walk and stop entirely at memo_capacity; lookups
// (the hit path) never allocate
void EvalContext::memo_insert(std::uint64_t hash, const CoreId* key,
                              const DesignMetrics& metrics) {
    if (memo_entries_.size() >= options_.memo_capacity) return;
    if (memo_slots_.empty()) memo_slots_.assign(2048, 0);
    // Keep the open-addressing load factor below 0.7.
    if ((memo_entries_.size() + 1) * 10 >= memo_slots_.size() * 7) {
        std::vector<std::uint32_t> bigger(memo_slots_.size() * 2, 0);
        const std::size_t mask = bigger.size() - 1;
        for (std::size_t e = 0; e < memo_entries_.size(); ++e) {
            std::size_t i = memo_entries_[e].hash & mask;
            while (bigger[i] != 0) i = (i + 1) & mask;
            bigger[i] = static_cast<std::uint32_t>(e + 1);
        }
        memo_slots_ = std::move(bigger);
    }
    const std::size_t offset = memo_keys_.size();
    memo_keys_.insert(memo_keys_.end(), key, key + n_);
    memo_entries_.push_back(MemoEntry{hash, offset, metrics});
    const std::size_t mask = memo_slots_.size() - 1;
    std::size_t i = hash & mask;
    while (memo_slots_[i] != 0) i = (i + 1) & mask;
    memo_slots_[i] = static_cast<std::uint32_t>(memo_entries_.size());
    stats_.memo_entries = memo_entries_.size();
}
// seamap-lint: pop-allow(hot-path-alloc)

} // namespace seamap
