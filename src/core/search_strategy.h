// The pluggable per-scaling mapping-search contract the explorer
// (core/dse.h) calls, plus the core-owned implementation wrapping the
// paper's Fig. 7 search. Interchangeable engines living above core
// (the SA baseline adapter, registered third-party backends) implement
// this same interface; the name-keyed registry that creates them by
// string lives with the public API in api/strategy.h, keeping the
// dependency graph acyclic (core never looks upward).
//
// Determinism contract: search() must be a pure function of
// (ctx, initial, seed) whenever `cancel` never fires. The explorer
// relies on this to stay bit-identical across thread counts.
#pragma once

#include "core/eval_context.h"
#include "core/optimized_mapping.h"
#include "reliability/design_eval.h"
#include "sched/mapping.h"
#include "util/cancellation.h"

#include <cstdint>
#include <string>

namespace seamap {

/// One per-scaling mapping-search engine.
class SearchStrategy {
public:
    virtual ~SearchStrategy();

    /// Registry key ("optimized", "annealing", ...).
    virtual std::string name() const = 0;

    /// Search a mapping for the fixed scaling in `ctx`, starting from
    /// the complete mapping `initial`. `seed` is the per-scaling
    /// derived seed (the explorer varies it per combination so repeated
    /// scalings do not replay the same walk); `cancel`, when non-null,
    /// must be polled so the thread-pooled explorer can stop workers
    /// cooperatively.
    virtual LocalSearchResult search(const EvaluationContext& ctx, const Mapping& initial,
                                     std::uint64_t seed,
                                     const CancellationToken* cancel = nullptr) const = 0;

    /// Hot-path entry the explorer actually calls: the per-scaling
    /// EvalContext (core/eval_context.h) carries preallocated scratch,
    /// the memo table and the incremental scheduler for this worker.
    /// The default forwards to the EvaluationContext overload, so
    /// custom strategies that never heard of EvalContext keep working;
    /// the built-ins override it to run their walks on `eval`
    /// directly. The determinism contract is unchanged: for a given
    /// (problem, initial, seed) the result must be bit-identical
    /// whichever overload runs.
    virtual LocalSearchResult search(EvalContext& eval, const Mapping& initial,
                                     std::uint64_t seed,
                                     const CancellationToken* cancel = nullptr) const;
};

/// The paper's Fig. 7 local search (proposed method). The `seed` field
/// of the params is ignored — search() uses its seed argument.
class OptimizedMappingStrategy final : public SearchStrategy {
public:
    /// Validates the params eagerly (bad budgets/temperatures throw
    /// here, not mid-exploration on a worker thread).
    explicit OptimizedMappingStrategy(LocalSearchParams params = {});

    std::string name() const override;
    LocalSearchResult search(const EvaluationContext& ctx, const Mapping& initial,
                             std::uint64_t seed,
                             const CancellationToken* cancel = nullptr) const override;
    LocalSearchResult search(EvalContext& eval, const Mapping& initial, std::uint64_t seed,
                             const CancellationToken* cancel = nullptr) const override;

private:
    LocalSearchParams params_;
};

} // namespace seamap
