#include "core/dse.h"

#include "core/initial_mapping.h"
#include "core/observer.h"
#include "core/search_strategy.h"
#include "util/rng.h"
#include "util/thread_pool.h"

#include <algorithm>
#include <cmath>
#include <mutex>

namespace seamap {

namespace {

/// Outcome of one scaling combination, written by exactly one worker
/// into its pre-assigned slot so the merge below can fold counters and
/// feasible points in enumeration order regardless of thread count.
struct ScalingOutcome {
    enum class Status : unsigned char {
        not_run,            ///< stop requested before this slot started
        skipped_infeasible, ///< failed the T_M lower-bound gate
        searched_no_design, ///< searched, no feasible mapping found
        feasible,           ///< searched, `point` holds the best design
    };
    Status status = Status::not_run;
    DsePoint point;
};

/// Symmetric relative comparison for the Pareto dedup. Purely
/// relative: the epsilon scales with max(|a|, |b|) and nothing else,
/// so degenerate near-zero metrics (a 0-power design vs. a 1e-12-power
/// design) stay distinct instead of collapsing under an absolute
/// floor. Exact equality (including 0 == 0) still deduplicates.
bool nearly_equal(double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max(std::abs(a), std::abs(b));
}

/// The paper's step-3 selection rule: lower power wins; within the
/// relative power tie window, fewer expected SEUs win. Shared by the
/// deterministic final fold and the streamed incumbent so both report
/// the same design for the same point sequence.
bool better_design(const DsePoint& candidate, const DsePoint& best, double tie) {
    const double best_power = best.metrics.power_mw;
    const double power = candidate.metrics.power_mw;
    const bool near_tie =
        std::abs(power - best_power) <= tie * std::max(best_power, power);
    return near_tie ? candidate.metrics.gamma < best.metrics.gamma : power < best_power;
}

} // namespace

DesignSpaceExplorer::DesignSpaceExplorer(SerModel ser, ExposurePolicy policy)
    : ser_(std::move(ser)), policy_(policy) {}

DseResult DesignSpaceExplorer::explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                                       double deadline_seconds,
                                       const DseParams& params) const {
    const OptimizedMappingStrategy strategy(params.search);
    return explore(graph, arch, deadline_seconds, params, strategy);
}

DseResult DesignSpaceExplorer::explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                                       double deadline_seconds, const DseParams& params,
                                       const SearchStrategy& strategy,
                                       ProgressObserver* observer,
                                       const CancellationToken* cancel) const {
    graph.validate();
    // One token funnels every stop source to the workers: the caller's
    // cancellation (chained as parent) and the explorer's own total
    // wall-clock budget (this token's deadline).
    CancellationToken stop(cancel);
    stop.set_budget_seconds(params.total_time_budget_seconds);

    // The sequence is materialized up front so each combination has a
    // fixed slot: workers may finish out of order, but counters and
    // feasible points are folded in enumeration order below, making the
    // result independent of the thread count (absent wall-clock cuts).
    std::vector<ScalingVector> combinations;
    ScalingEnumerator enumerator(arch.core_count(), arch.scaling_table().level_count());
    while (auto levels = enumerator.next()) combinations.push_back(std::move(*levels));
    std::vector<ScalingOutcome> outcomes(combinations.size());

    // Observer state: callbacks are serialized behind one mutex; the
    // streamed incumbent applies the selection rule in completion
    // order, which with one thread equals enumeration order.
    std::mutex observer_mutex;
    std::optional<DsePoint> incumbent;
    const double tie = std::max(0.0, params.power_tie_tolerance);
    if (observer != nullptr) observer->on_explore_begin(combinations.size());
    auto notify = [&](std::size_t index, const ScalingOutcome& outcome) {
        if (observer == nullptr) return;
        std::lock_guard lock(observer_mutex);
        ScalingProgress progress;
        progress.index = index;
        progress.total = combinations.size();
        progress.levels = combinations[index];
        switch (outcome.status) {
        case ScalingOutcome::Status::not_run:
            return;
        case ScalingOutcome::Status::skipped_infeasible:
            progress.outcome = ScalingProgress::Outcome::skipped_infeasible;
            break;
        case ScalingOutcome::Status::searched_no_design:
            progress.outcome = ScalingProgress::Outcome::searched_no_design;
            break;
        case ScalingOutcome::Status::feasible:
            progress.outcome = ScalingProgress::Outcome::feasible;
            progress.metrics = outcome.point.metrics;
            break;
        }
        observer->on_scaling_done(progress);
        if (outcome.status == ScalingOutcome::Status::feasible &&
            (!incumbent || better_design(outcome.point, *incumbent, tie))) {
            incumbent = outcome.point;
            observer->on_incumbent(*incumbent);
        }
    };

    auto evaluate_combination = [&](std::size_t index) {
        if (stop.stop_requested()) return; // slot stays not_run
        const ScalingVector& levels = combinations[index];
        ScalingOutcome& outcome = outcomes[index];

        // Step 1 gate: skip scalings that cannot possibly meet the
        // deadline under any mapping.
        if (tm_lower_bound_seconds(graph, arch, levels) >
            deadline_seconds * (1.0 + 1e-9)) {
            outcome.status = ScalingOutcome::Status::skipped_infeasible;
            notify(index, outcome);
            return;
        }

        EvaluationContext ctx{graph, arch, levels, SeuEstimator(ser_, policy_),
                              deadline_seconds};
        // The reusable per-scaling evaluation engine this worker's
        // search runs on: preallocated scratch, incremental
        // rescheduling and the memo table all live here, private to
        // this worker, so thread-count invariance is untouched.
        EvalContext eval(ctx, params.eval);

        // Step 2: soft error-aware mapping through the pluggable
        // strategy. Vary the search seed per scaling so repeated
        // scalings do not replay the same random walk.
        Mapping initial = params.use_initial_sea_mapping
                              ? initial_sea_mapping(ctx)
                              : round_robin_mapping(graph, arch.core_count());
        std::uint64_t level_hash = 0xcbf29ce484222325ULL;
        for (ScalingLevel level : levels) level_hash = splitmix64(level_hash ^ level);
        const std::uint64_t seed = splitmix64(params.search.seed ^ level_hash);
        LocalSearchResult searched = strategy.search(eval, initial, seed, &stop);
        if (!searched.found_feasible) {
            outcome.status = ScalingOutcome::Status::searched_no_design;
            notify(index, outcome);
            return;
        }
        outcome.status = ScalingOutcome::Status::feasible;
        outcome.point.levels = levels;
        outcome.point.mapping = std::move(searched.best_mapping);
        outcome.point.metrics = searched.best_metrics;
        notify(index, outcome);
    };

    parallel_for_index(combinations.size(), params.num_threads, evaluate_combination);

    // Deterministic merge in enumeration order.
    DseResult result;
    result.scalings_total = combinations.size();
    for (ScalingOutcome& outcome : outcomes) {
        switch (outcome.status) {
        case ScalingOutcome::Status::not_run:
            continue;
        case ScalingOutcome::Status::skipped_infeasible:
            ++result.scalings_enumerated;
            ++result.scalings_skipped_infeasible;
            continue;
        case ScalingOutcome::Status::searched_no_design:
            ++result.scalings_enumerated;
            ++result.scalings_searched;
            continue;
        case ScalingOutcome::Status::feasible:
            ++result.scalings_enumerated;
            ++result.scalings_searched;
            result.feasible_points.push_back(std::move(outcome.point));
        }
    }

    // Step 3: iterative assessment — among feasible designs pick
    // minimum power, breaking near-ties by Gamma.
    for (const DsePoint& point : result.feasible_points)
        if (!result.best || better_design(point, *result.best, tie)) result.best = point;
    result.pareto_front = pareto_front_of(result.feasible_points);
    if (observer != nullptr) observer->on_explore_end(result);
    return result;
}

std::vector<DsePoint> pareto_front_of(const std::vector<DsePoint>& points) {
    std::vector<DsePoint> front;
    for (const DsePoint& candidate : points) {
        bool dominated = false;
        for (const DsePoint& other : points) {
            const bool no_worse = other.metrics.power_mw <= candidate.metrics.power_mw &&
                                  other.metrics.gamma <= candidate.metrics.gamma;
            const bool strictly_better = other.metrics.power_mw < candidate.metrics.power_mw ||
                                         other.metrics.gamma < candidate.metrics.gamma;
            if (no_worse && strictly_better) {
                dominated = true;
                break;
            }
        }
        if (!dominated) front.push_back(candidate);
    }
    // Total order (power, gamma, levels, mapping) — not just power —
    // so the sorted front, and therefore which representative of a
    // near-duplicate group survives the dedup below, is independent of
    // the order candidates were evaluated in (std::sort is unstable;
    // sorting on power alone left equal-power groups in input order).
    std::sort(front.begin(), front.end(), [](const DsePoint& a, const DsePoint& b) {
        if (a.metrics.power_mw != b.metrics.power_mw)
            return a.metrics.power_mw < b.metrics.power_mw;
        if (a.metrics.gamma != b.metrics.gamma) return a.metrics.gamma < b.metrics.gamma;
        if (a.levels != b.levels) return a.levels < b.levels;
        return a.mapping.raw() < b.mapping.raw();
    });
    // Drop near-duplicates on (P, Gamma) so the front is a clean
    // staircase; exact float equality would keep points that differ
    // only in the last ulp of an otherwise identical design. Each
    // point is compared against the last *kept* point (not std::unique,
    // whose behavior is unspecified for non-transitive predicates).
    std::vector<DsePoint> deduped;
    for (DsePoint& point : front) {
        if (!deduped.empty() &&
            nearly_equal(deduped.back().metrics.power_mw, point.metrics.power_mw) &&
            nearly_equal(deduped.back().metrics.gamma, point.metrics.gamma))
            continue;
        deduped.push_back(std::move(point));
    }
    return deduped;
}

} // namespace seamap
