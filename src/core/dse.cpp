#include "core/dse.h"

#include "core/dse_checkpoint.h"
#include "core/initial_mapping.h"
#include "core/observer.h"
#include "core/scaling_bounds.h"
#include "core/search_strategy.h"
#include "util/error.h"
#include "util/float_compare.h"
#include "util/rng.h"
#include "util/thread_pool.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace seamap {

namespace {

/// Final outcome of one scaling combination after the deterministic
/// merge replay. Written in pre-assigned slots so counters and feasible
/// points fold in enumeration order regardless of thread count.
struct ScalingOutcome {
    enum class Status : unsigned char {
        not_run,            ///< stop requested before this slot finished
        skipped_infeasible, ///< failed the T_M lower-bound gate
        pruned,             ///< bounds dominated by an earlier survivor
        searched_no_design, ///< searched, no feasible mapping found
        feasible,           ///< searched, `point` holds the best design
    };
    Status status = Status::not_run;
    DsePoint point;
    /// Folded min-power side channel (DseParams::search.track_min_power).
    DsePoint min_power_point;
    bool has_min_power = false;
};

/// Deterministic best-of-K fold over a scaling's multi-start results:
/// feasibility first, then the search objective (fewest expected SEUs),
/// power, completion time, and finally the mapping as a total-order
/// tie-break. Folding in start order makes the pick a pure function of
/// the K results. With one start this is the identity.
bool better_start(const LocalSearchResult& a, const LocalSearchResult& b) {
    if (a.found_feasible != b.found_feasible) return a.found_feasible;
    if (a.found_feasible) {
        if (!exactly_equal(a.best_metrics.gamma, b.best_metrics.gamma))
            return a.best_metrics.gamma < b.best_metrics.gamma;
        if (!exactly_equal(a.best_metrics.power_mw, b.best_metrics.power_mw))
            return a.best_metrics.power_mw < b.best_metrics.power_mw;
    }
    if (!exactly_equal(a.best_metrics.tm_seconds, b.best_metrics.tm_seconds))
        return a.best_metrics.tm_seconds < b.best_metrics.tm_seconds;
    return a.best_mapping.raw() < b.best_mapping.raw();
}

const LocalSearchResult& fold_starts(const std::vector<LocalSearchResult>& starts) {
    const LocalSearchResult* best = &starts.front();
    for (std::size_t r = 1; r < starts.size(); ++r)
        if (better_start(starts[r], *best)) best = &starts[r];
    return *best;
}

/// Companion fold for the opt-in min-power side channel: among starts
/// that tracked a feasible min-power design, the cheapest wins (power,
/// then Gamma, then the mapping as a total-order tie-break). Returns
/// nullptr when no start recorded one (tracking off, or nothing
/// feasible). Same start-order purity argument as fold_starts.
const LocalSearchResult* fold_min_power(const std::vector<LocalSearchResult>& starts) {
    const LocalSearchResult* best = nullptr;
    for (const LocalSearchResult& start : starts) {
        if (!start.min_power_found) continue;
        if (best == nullptr) {
            best = &start;
            continue;
        }
        const DesignMetrics& a = start.min_power_metrics;
        const DesignMetrics& b = best->min_power_metrics;
        bool cheaper = false;
        if (!exactly_equal(a.power_mw, b.power_mw)) {
            cheaper = a.power_mw < b.power_mw;
        } else if (!exactly_equal(a.gamma, b.gamma)) {
            cheaper = a.gamma < b.gamma;
        } else {
            cheaper = start.min_power_mapping.raw() < best->min_power_mapping.raw();
        }
        if (cheaper) best = &start;
    }
    return best;
}

/// Incumbent (P, Gamma) staircase the branch-and-bound prunes against:
/// kept sorted by power ascending with strictly decreasing gamma. A
/// combination is prunable only when some incumbent beats its bounds
/// *strictly in both objectives* — then every design it could contain
/// is strictly dominated and can appear in neither the front nor the
/// pick (the front filter uses <=/<, so strict-both implies removal).
class DominanceFront {
public:
    void insert(double power, double gamma) {
        // First staircase point with power >= the new one.
        auto at = std::lower_bound(points_.begin(), points_.end(),
                                   std::pair<double, double>{power, -1.0});
        if (at != points_.begin() && std::prev(at)->second <= gamma)
            return; // weakly dominated by a cheaper point
        if (at != points_.end() && exactly_equal(at->first, power) && at->second <= gamma)
            return; // weakly dominated at equal power
        auto last = at;
        while (last != points_.end() && last->second >= gamma) ++last;
        at = points_.erase(at, last);
        points_.insert(at, {power, gamma});
    }

    /// True when some incumbent strictly beats (power_lb, gamma_lb) in
    /// both objectives.
    bool dominates(const ScalingBounds& bounds) const {
        // Last staircase point with power < power_lb carries the
        // minimum gamma among all of them.
        auto at = std::lower_bound(points_.begin(), points_.end(),
                                   std::pair<double, double>{bounds.power_mw_lb, -1.0});
        if (at == points_.begin()) return false;
        return std::prev(at)->second < bounds.gamma_lb;
    }

private:
    std::vector<std::pair<double, double>> points_;
};

/// The paper's step-3 selection rule — minimum power, fewer expected
/// SEUs within the relative power tie window — applied to the sorted
/// Pareto front. On the front the rule is a pure function of the point
/// set (no evaluation-order sensitivity), which is what makes it
/// invariant under dominance pruning: pruned designs never reach a
/// front.
std::optional<DsePoint> select_best(const std::vector<DsePoint>& front, double tie) {
    if (front.empty()) return std::nullopt;
    const DsePoint* best = &front.front();
    for (std::size_t i = 1; i < front.size(); ++i) {
        const DsePoint& candidate = front[i];
        if (within_relative_tie(candidate.metrics.power_mw, best->metrics.power_mw, tie) &&
            candidate.metrics.gamma < best->metrics.gamma)
            best = &candidate;
    }
    return *best;
}

} // namespace

DesignSpaceExplorer::DesignSpaceExplorer(SerModel ser, ExposurePolicy policy)
    : ser_(std::move(ser)), policy_(policy) {}

DseResult DesignSpaceExplorer::explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                                       double deadline_seconds,
                                       const DseParams& params) const {
    const OptimizedMappingStrategy strategy(params.search);
    return explore(graph, arch, deadline_seconds, params, strategy);
}

DseResult DesignSpaceExplorer::explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                                       double deadline_seconds, const DseParams& params,
                                       const SearchStrategy& strategy,
                                       ProgressObserver* observer,
                                       const CancellationToken* cancel,
                                       DseCheckpointer* checkpoint) const {
    graph.validate();
    // One token funnels every stop source to the workers: the caller's
    // cancellation (chained as parent) and the explorer's own total
    // wall-clock budget (this token's deadline).
    CancellationToken stop(cancel);
    stop.set_budget_seconds(params.total_time_budget_seconds);

    // The sequence is materialized up front so each combination has a
    // fixed slot: workers may finish out of order, but the merge below
    // replays prune decisions in best-first order and folds counters
    // and feasible points in enumeration order, making the result
    // independent of the thread count (absent wall-clock cuts).
    std::vector<ScalingVector> combinations;
    ScalingEnumerator enumerator(arch.core_count(), arch.scaling_table().level_count());
    while (auto levels = enumerator.next()) combinations.push_back(std::move(*levels));
    std::vector<ScalingOutcome> outcomes(combinations.size());

    const std::size_t starts = std::max<std::size_t>(1, params.multi_start);
    const double tie = std::max(0.0, params.power_tie_tolerance);

    // Observer state: callbacks are serialized behind one mutex. The
    // streamed incumbent is the step-3 rule applied to the Pareto front
    // of everything completed so far, so its last value matches the
    // final best at any thread count (dominated — later pruned —
    // designs never move a front).
    std::mutex observer_mutex;
    std::vector<DsePoint> observed_points;
    DominanceFront observed_front; // strict-dominance filter for arrivals
    std::optional<DsePoint> observed_best;
    if (observer != nullptr) observer->on_explore_begin(combinations.size());
    auto notify = [&](std::size_t index, ScalingProgress::Outcome outcome,
                      const DsePoint* point) {
        if (observer == nullptr) return;
        std::lock_guard lock(observer_mutex);
        ScalingProgress progress;
        progress.index = index;
        progress.total = combinations.size();
        progress.levels = combinations[index];
        progress.outcome = outcome;
        if (point != nullptr) progress.metrics = point->metrics;
        observer->on_scaling_done(progress);
        if (point == nullptr) return;
        // A strictly dominated arrival can never enter any current or
        // future Pareto front (its dominator is retained), so the
        // fold's result cannot change: skip the O(n log n) recompute.
        // Keeps the serialized incumbent stream cheap when most
        // completions are dominated (the common case at scale).
        if (observed_front.dominates(
                ScalingBounds{point->metrics.power_mw, point->metrics.gamma}))
            return;
        observed_front.insert(point->metrics.power_mw, point->metrics.gamma);
        observed_points.push_back(*point);
        std::optional<DsePoint> incumbent = select_best(pareto_front_of(observed_points), tie);
        const bool changed =
            incumbent &&
            (!observed_best || incumbent->levels != observed_best->levels ||
             incumbent->mapping != observed_best->mapping ||
             !exactly_equal(incumbent->metrics.power_mw, observed_best->metrics.power_mw) ||
             !exactly_equal(incumbent->metrics.gamma, observed_best->metrics.gamma));
        if (changed) {
            observed_best = std::move(incumbent);
            observer->on_incumbent(*observed_best);
        }
    };

    // --- plan: gate, bounds, best-first order -------------------------
    // Per-combination T_M lower bounds gate hopeless scalings exactly
    // as before; survivors get sound (power, Gamma) lower bounds and
    // run best-first by power bound so strong incumbents arrive early.
    struct SearchSlot {
        std::size_t combo = 0; ///< enumeration index
        /// One bound pair per admissible powered-core case; the slot
        /// is prunable only when every case is strictly dominated.
        std::vector<ScalingBounds> cases;
        /// Pointwise-minimum corner, for best-first ordering.
        ScalingBounds bounds;
        std::vector<LocalSearchResult> start_results;
        std::vector<unsigned char> start_ran; ///< 1 = searched or prune-skipped
        bool runtime_pruned = false;
        std::size_t starts_done = 0;
    };
    std::vector<SearchSlot> slots;
    if (!stop.stop_requested()) {
        // Bounds exist to prune; the exhaustive mode skips their
        // (per-combination exponential powered-subset) computation
        // entirely and just runs slots in enumeration order — the
        // deterministic merge makes ordering unobservable.
        const std::optional<ScalingBoundsModel> bounds_model =
            params.prune ? std::optional<ScalingBoundsModel>(std::in_place, graph, arch,
                                                             deadline_seconds, ser_, policy_)
                         : std::nullopt;
        for (std::size_t index = 0; index < combinations.size(); ++index) {
            if (stop.stop_requested()) break; // remaining slots stay not_run
            if (tm_lower_bound_seconds(graph, arch, combinations[index]) >
                deadline_seconds * (1.0 + 1e-9)) {
                // Gate skips are free: record and stream them right
                // here, ahead of any search.
                outcomes[index].status = ScalingOutcome::Status::skipped_infeasible;
                notify(index, ScalingProgress::Outcome::skipped_infeasible, nullptr);
                continue;
            }
            SearchSlot slot;
            slot.combo = index;
            if (bounds_model) {
                slot.cases = bounds_model->case_bounds_for(combinations[index]);
                slot.bounds = ScalingBoundsModel::corner_of(slot.cases);
            }
            slot.start_results.resize(starts);
            slot.start_ran.assign(starts, 0);
            slots.push_back(std::move(slot));
        }
        std::sort(slots.begin(), slots.end(), [](const SearchSlot& a, const SearchSlot& b) {
            if (!exactly_equal(a.bounds.power_mw_lb, b.bounds.power_mw_lb))
                return a.bounds.power_mw_lb < b.bounds.power_mw_lb;
            return a.combo < b.combo;
        });
    }

    // --- run ----------------------------------------------------------
    // Shared branch-and-bound state: the incumbent front holds the
    // folded design of every *decided* slot (the contiguous completed
    // prefix of the best-first order), so a worker's prune decision
    // only ever uses information from slots strictly earlier in that
    // order — a subset of what the deterministic merge replay knows,
    // which is what keeps worker pruning a subset of replay pruning.
    std::mutex bb_mutex;
    DominanceFront incumbent_front;
    // A slot is prunable when every powered-core case is strictly
    // dominated by some incumbent (different cases may fall to
    // different incumbents); an empty case list means the capacity
    // pre-filter could not even place the work — left to the search.
    auto front_prunes = [](const DominanceFront& front, const SearchSlot& slot) {
        if (slot.cases.empty()) return false;
        return std::all_of(slot.cases.begin(), slot.cases.end(),
                           [&](const ScalingBounds& bounds) {
                               return front.dominates(bounds);
                           });
    };
    std::vector<unsigned char> slot_completed(slots.size(), 0);
    std::size_t decided = 0;

    // --- resume: preload the checkpointed decided prefix --------------
    // Each record is the *replay* outcome of one best-first slot, and
    // replay decisions depend only on earlier slots — so restoring the
    // prefix as already-completed slots (with synthetic start results
    // that fold back to the stored designs) reproduces the
    // uninterrupted run byte-for-byte. The recording state below
    // (recorded / record_front) re-runs the same replay incrementally
    // over newly decided slots so snapshots always stay replay-faithful.
    std::size_t recorded = 0;
    DominanceFront record_front;
    const DseResumeState* resume =
        checkpoint != nullptr ? checkpoint->resume_state() : nullptr;
    if (resume != nullptr && !stop.stop_requested()) {
        const std::vector<DseSlotRecord>& records = resume->records;
        if (records.size() > slots.size())
            throw Error(ErrorCategory::checkpoint_mismatch,
                        "checkpoint holds " + std::to_string(records.size()) +
                            " decided slots but this exploration planned only " +
                            std::to_string(slots.size()),
                        checkpoint->path());
        for (std::size_t i = 0; i < records.size(); ++i) {
            const DseSlotRecord& record = records[i];
            SearchSlot& slot = slots[i];
            if (record.combo != slot.combo)
                throw Error(ErrorCategory::checkpoint_mismatch,
                            "checkpoint slot order diverges at decided slot " +
                                std::to_string(i) + " (stored combination " +
                                std::to_string(record.combo) + ", planned " +
                                std::to_string(slot.combo) + ")",
                            checkpoint->path());
            slot.start_ran.assign(starts, 1);
            slot.starts_done = starts;
            slot_completed[i] = 1;
            switch (record.kind) {
            case DseSlotRecord::Kind::pruned:
                slot.runtime_pruned = true;
                break;
            case DseSlotRecord::Kind::no_design:
                // All-default start results already fold to "searched,
                // nothing feasible".
                break;
            case DseSlotRecord::Kind::feasible: {
                // Start 0 carries the stored folded design; the other
                // starts stay at found_feasible = false, so both folds
                // (fold_starts / fold_min_power) return the stored pick.
                LocalSearchResult& r0 = slot.start_results[0];
                r0.found_feasible = true;
                r0.best_mapping = record.point.mapping;
                r0.best_metrics = record.point.metrics;
                if (record.has_min_power) {
                    r0.min_power_found = true;
                    r0.min_power_mapping = record.min_power_point.mapping;
                    r0.min_power_metrics = record.min_power_point.metrics;
                }
                record_front.insert(record.point.metrics.power_mw,
                                    record.point.metrics.gamma);
                break;
            }
            }
        }
        recorded = records.size();
        // Advance the decided prefix over the restored slots, seeding
        // the incumbent front exactly as live completion would have.
        while (decided < slots.size() && slot_completed[decided]) {
            const SearchSlot& done = slots[decided];
            if (!done.runtime_pruned) {
                const LocalSearchResult& folded = fold_starts(done.start_results);
                if (folded.found_feasible)
                    incumbent_front.insert(folded.best_metrics.power_mw,
                                           folded.best_metrics.gamma);
            }
            ++decided;
        }
    }

    auto run_start = [&](std::size_t pos, std::size_t start_index) {
        SearchSlot& slot = slots[pos];
        const std::size_t index = slot.combo;
        bool searched = false;
        if (!stop.stop_requested()) {
            bool do_search = true;
            if (params.prune) {
                std::lock_guard lock(bb_mutex);
                if (slot.runtime_pruned) {
                    do_search = false;
                } else if (front_prunes(incumbent_front, slot)) {
                    slot.runtime_pruned = true;
                    do_search = false;
                }
            }
            if (do_search) {
                const ScalingVector& levels = combinations[index];
                EvaluationContext ctx{graph, arch, levels, SeuEstimator(ser_, policy_),
                                      deadline_seconds};
                // The reusable per-start evaluation engine this
                // worker's search runs on: preallocated scratch,
                // incremental rescheduling and the memo table all live
                // here, private to this worker, so thread-count
                // invariance is untouched.
                EvalContext eval(ctx, params.eval);
                Mapping initial = params.use_initial_sea_mapping
                                      ? initial_sea_mapping(ctx)
                                      : round_robin_mapping(graph, arch.core_count());
                // Vary the search seed per scaling so repeated scalings
                // do not replay the same random walk; start 0 keeps the
                // historic derivation so multi_start == 1 is unchanged.
                std::uint64_t level_hash = 0xcbf29ce484222325ULL;
                for (ScalingLevel level : levels) level_hash = splitmix64(level_hash ^ level);
                std::uint64_t seed = splitmix64(params.search.seed ^ level_hash);
                if (start_index > 0)
                    seed = splitmix64(seed + 0x9e3779b97f4a7c15ULL * start_index);
                slot.start_results[start_index] =
                    strategy.search(eval, initial, seed, &stop);
                searched = true;
            }
            // A stop landing while the search ran may have cut it short,
            // leaving a partial (non-replay-faithful) result: discard it
            // — the slot stays not_run and a resume re-searches it in
            // full. Prune skips carry no search data and stay valid.
            std::lock_guard lock(bb_mutex);
            if (!searched || !stop.stop_requested()) slot.start_ran[start_index] = 1;
        }

        // Completion bookkeeping: the last start of a slot decides its
        // live outcome, advances the decided prefix and folds surviving
        // designs into the incumbent front.
        ScalingProgress::Outcome live_outcome = ScalingProgress::Outcome::pruned;
        const DsePoint* live_point = nullptr;
        DsePoint folded_point;
        bool completed_now = false;
        {
            std::lock_guard lock(bb_mutex);
            if (++slot.starts_done < starts) return;
            slot_completed[pos] = 1;
            const bool fully_ran =
                std::all_of(slot.start_ran.begin(), slot.start_ran.end(),
                            [](unsigned char ran) { return ran == 1; });
            if (fully_ran) {
                completed_now = true;
                if (!slot.runtime_pruned) {
                    const LocalSearchResult& folded = fold_starts(slot.start_results);
                    if (folded.found_feasible) {
                        folded_point.levels = combinations[index];
                        folded_point.mapping = folded.best_mapping;
                        folded_point.metrics = folded.best_metrics;
                        live_outcome = ScalingProgress::Outcome::feasible;
                        live_point = &folded_point;
                    } else {
                        live_outcome = ScalingProgress::Outcome::searched_no_design;
                    }
                }
            }
            while (decided < slots.size() && slot_completed[decided]) {
                const SearchSlot& done = slots[decided];
                const bool done_ran =
                    std::all_of(done.start_ran.begin(), done.start_ran.end(),
                                [](unsigned char ran) { return ran == 1; });
                if (done_ran && !done.runtime_pruned) {
                    const LocalSearchResult& folded = fold_starts(done.start_results);
                    if (folded.found_feasible)
                        incumbent_front.insert(folded.best_metrics.power_mw,
                                               folded.best_metrics.gamma);
                }
                ++decided;
            }
            // Checkpoint recording: extend the replay over newly decided
            // fully-ran slots. A stop-skipped slot ends the recordable
            // prefix (nothing after it is replay-stable); a worker-pruned
            // slot the replay keeps is the same unsound-bounds condition
            // the merge's tripwire throws on — stop recording and let it.
            while (checkpoint != nullptr && recorded < slots.size() &&
                   slot_completed[recorded]) {
                SearchSlot& done = slots[recorded];
                const bool done_ran =
                    std::all_of(done.start_ran.begin(), done.start_ran.end(),
                                [](unsigned char ran) { return ran == 1; });
                if (!done_ran) break;
                DseSlotRecord record;
                record.combo = done.combo;
                if (params.prune && front_prunes(record_front, done)) {
                    record.kind = DseSlotRecord::Kind::pruned;
                } else {
                    if (done.runtime_pruned) break;
                    const LocalSearchResult& folded = fold_starts(done.start_results);
                    if (folded.found_feasible) {
                        record.kind = DseSlotRecord::Kind::feasible;
                        record.point.levels = combinations[done.combo];
                        record.point.mapping = folded.best_mapping;
                        record.point.metrics = folded.best_metrics;
                        if (const LocalSearchResult* cheapest =
                                fold_min_power(done.start_results)) {
                            record.min_power_point.levels = combinations[done.combo];
                            record.min_power_point.mapping = cheapest->min_power_mapping;
                            record.min_power_point.metrics = cheapest->min_power_metrics;
                            record.has_min_power = true;
                        }
                        record_front.insert(folded.best_metrics.power_mw,
                                            folded.best_metrics.gamma);
                    } else {
                        record.kind = DseSlotRecord::Kind::no_design;
                    }
                }
                checkpoint->record(record);
                ++recorded;
            }
        }
        if (completed_now) notify(index, live_outcome, live_point);
        if (checkpoint != nullptr) checkpoint->maybe_flush();
    };

    // Restored slots are complete already: only the remainder runs.
    const std::size_t first_live = recorded;
    if (first_live < slots.size()) {
        ThreadPool pool(std::min(ThreadPool::resolve_thread_count(params.num_threads),
                                 (slots.size() - first_live) * starts));
        // Searches run best-first by power bound (enumeration order
        // when pruning is off): lower priority value wins the queue.
        for (std::size_t pos = first_live; pos < slots.size(); ++pos)
            for (std::size_t r = 0; r < starts; ++r)
                pool.submit(pos, [&, pos, r] { run_start(pos, r); });
        pool.wait_idle();
    }
    // Persist whatever the run decided — on a stop this is the snapshot
    // a resume continues from; on completion it doubles as a memoized
    // result (a resume replays it without searching).
    if (checkpoint != nullptr) checkpoint->flush();

    // --- merge: deterministic branch-and-bound replay -----------------
    // Replays the prune decisions sequentially in best-first order from
    // the recorded outcomes: a slot is pruned iff its bounds are
    // strictly dominated by the folded design of an earlier surviving
    // slot. Worker-side pruning is always a subset of this (a worker
    // only ever consulted earlier survivors), so every replay-surviving
    // slot has real search results; searches the replay prunes are
    // discarded as speculative. The outcome is a pure function of the
    // problem — identical for every thread count.
    DominanceFront replay_front;
    for (SearchSlot& slot : slots) {
        ScalingOutcome& outcome = outcomes[slot.combo];
        const bool fully_ran =
            !slot.start_ran.empty() &&
            std::all_of(slot.start_ran.begin(), slot.start_ran.end(),
                        [](unsigned char ran) { return ran == 1; });
        if (!fully_ran) continue; // stop cut this slot: stays not_run
        if (params.prune && front_prunes(replay_front, slot)) {
            outcome.status = ScalingOutcome::Status::pruned;
            continue;
        }
        if (slot.runtime_pruned)
            throw std::logic_error(
                "DesignSpaceExplorer: worker pruned a slot the deterministic replay "
                "keeps — scaling bounds are unsound");
        const LocalSearchResult& folded = fold_starts(slot.start_results);
        if (!folded.found_feasible) {
            outcome.status = ScalingOutcome::Status::searched_no_design;
            continue;
        }
        outcome.status = ScalingOutcome::Status::feasible;
        outcome.point.levels = combinations[slot.combo];
        outcome.point.mapping = folded.best_mapping;
        outcome.point.metrics = folded.best_metrics;
        if (const LocalSearchResult* cheapest = fold_min_power(slot.start_results)) {
            outcome.min_power_point.levels = combinations[slot.combo];
            outcome.min_power_point.mapping = cheapest->min_power_mapping;
            outcome.min_power_point.metrics = cheapest->min_power_metrics;
            outcome.has_min_power = true;
        }
        replay_front.insert(folded.best_metrics.power_mw, folded.best_metrics.gamma);
    }

    // Deterministic fold in enumeration order.
    DseResult result;
    result.scalings_total = combinations.size();
    for (ScalingOutcome& outcome : outcomes) {
        switch (outcome.status) {
        case ScalingOutcome::Status::not_run:
            continue;
        case ScalingOutcome::Status::skipped_infeasible:
            ++result.scalings_enumerated;
            ++result.scalings_skipped_infeasible;
            continue;
        case ScalingOutcome::Status::pruned:
            ++result.scalings_enumerated;
            ++result.scalings_pruned;
            continue;
        case ScalingOutcome::Status::searched_no_design:
            ++result.scalings_enumerated;
            ++result.scalings_searched;
            continue;
        case ScalingOutcome::Status::feasible:
            ++result.scalings_enumerated;
            ++result.scalings_searched;
            result.feasible_points.push_back(std::move(outcome.point));
            if (outcome.has_min_power)
                result.min_power_points.push_back(std::move(outcome.min_power_point));
        }
    }

    // Step 3: iterative assessment — among feasible designs pick
    // minimum power, breaking near-ties by Gamma. Applied to the front,
    // where the rule is order-independent and prune-invariant.
    result.pareto_front = pareto_front_of(result.feasible_points);
    result.best = select_best(result.pareto_front, tie);
    if (observer != nullptr) observer->on_explore_end(result);
    return result;
}

std::vector<DsePoint> pareto_front_of(const std::vector<DsePoint>& points) {
    // Sort-and-sweep over the 2-D (power, gamma) objectives: sorting by
    // the same total order the output uses anyway, a point is dominated
    // iff the minimum gamma among strictly-cheaper points is <= its own
    // (strictness then comes from the power gap) or a same-power point
    // has strictly smaller gamma. O(n log n) against the former
    // all-pairs scan, with byte-identical output: survivors are the
    // same set, already in the output's total order.
    std::vector<std::size_t> order(points.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t ia, std::size_t ib) {
        const DsePoint& a = points[ia];
        const DsePoint& b = points[ib];
        if (!exactly_equal(a.metrics.power_mw, b.metrics.power_mw))
            return a.metrics.power_mw < b.metrics.power_mw;
        if (!exactly_equal(a.metrics.gamma, b.metrics.gamma))
            return a.metrics.gamma < b.metrics.gamma;
        if (a.levels != b.levels) return a.levels < b.levels;
        return a.mapping.raw() < b.mapping.raw();
    });

    std::vector<DsePoint> front;
    double cheaper_min_gamma = std::numeric_limits<double>::infinity();
    for (std::size_t group = 0; group < order.size();) {
        std::size_t group_end = group;
        const double group_power = points[order[group]].metrics.power_mw;
        while (group_end < order.size() &&
               exactly_equal(points[order[group_end]].metrics.power_mw, group_power))
            ++group_end;
        // Within an equal-power group the sort put minimum gamma first.
        const double group_min_gamma = points[order[group]].metrics.gamma;
        for (std::size_t k = group; k < group_end; ++k) {
            const DsePoint& candidate = points[order[k]];
            const bool dominated = cheaper_min_gamma <= candidate.metrics.gamma ||
                                   group_min_gamma < candidate.metrics.gamma;
            if (!dominated) front.push_back(candidate);
        }
        cheaper_min_gamma = std::min(cheaper_min_gamma, group_min_gamma);
        group = group_end;
    }

    // Drop near-duplicates on (P, Gamma) so the front is a clean
    // staircase; exact float equality would keep points that differ
    // only in the last ulp of an otherwise identical design. Each
    // point is compared against the last *kept* point (not std::unique,
    // whose behavior is unspecified for non-transitive predicates).
    std::vector<DsePoint> deduped;
    for (DsePoint& point : front) {
        if (!deduped.empty() &&
            nearly_equal(deduped.back().metrics.power_mw, point.metrics.power_mw) &&
            nearly_equal(deduped.back().metrics.gamma, point.metrics.gamma))
            continue;
        deduped.push_back(std::move(point));
    }
    return deduped;
}

} // namespace seamap
