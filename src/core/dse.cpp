#include "core/dse.h"

#include "core/initial_mapping.h"
#include "util/rng.h"
#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace seamap {

namespace {

/// Outcome of one scaling combination, written by exactly one worker
/// into its pre-assigned slot so the merge below can fold counters and
/// feasible points in enumeration order regardless of thread count.
struct ScalingOutcome {
    enum class Status : unsigned char {
        not_run,            ///< global time budget hit before this slot started
        skipped_infeasible, ///< failed the T_M lower-bound gate
        searched_no_design, ///< searched, no feasible mapping found
        feasible,           ///< searched, `point` holds the best design
    };
    Status status = Status::not_run;
    DsePoint point;
};

bool nearly_equal(double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
}

} // namespace

DesignSpaceExplorer::DesignSpaceExplorer(SerModel ser, ExposurePolicy policy)
    : ser_(std::move(ser)), policy_(policy) {}

DseResult DesignSpaceExplorer::explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                                       double deadline_seconds, const DseParams& params) const {
    graph.validate();
    using Clock = std::chrono::steady_clock;
    const auto start_time = Clock::now();
    SearchDeadline budget_deadline;
    if (params.total_time_budget_seconds > 0.0)
        budget_deadline = start_time + std::chrono::duration_cast<Clock::duration>(
                                           std::chrono::duration<double>(
                                               params.total_time_budget_seconds));
    auto out_of_time = [&]() { return budget_deadline && Clock::now() >= *budget_deadline; };

    // The sequence is materialized up front so each combination has a
    // fixed slot: workers may finish out of order, but counters and
    // feasible points are folded in enumeration order below, making the
    // result independent of the thread count (absent wall-clock cuts).
    std::vector<ScalingVector> combinations;
    ScalingEnumerator enumerator(arch.core_count(), arch.scaling_table().level_count());
    while (auto levels = enumerator.next()) combinations.push_back(std::move(*levels));
    std::vector<ScalingOutcome> outcomes(combinations.size());

    auto evaluate_combination = [&](std::size_t index) {
        if (out_of_time()) return; // slot stays not_run
        const ScalingVector& levels = combinations[index];
        ScalingOutcome& outcome = outcomes[index];

        // Step 1 gate: skip scalings that cannot possibly meet the
        // deadline under any mapping.
        if (tm_lower_bound_seconds(graph, arch, levels) >
            deadline_seconds * (1.0 + 1e-9)) {
            outcome.status = ScalingOutcome::Status::skipped_infeasible;
            return;
        }

        EvaluationContext ctx{graph, arch, levels, SeuEstimator(ser_, policy_),
                              deadline_seconds};

        // Step 2: two-stage soft error-aware mapping. Vary the search
        // seed per scaling so repeated scalings do not replay the same
        // random walk.
        Mapping initial = params.use_initial_sea_mapping
                              ? initial_sea_mapping(ctx)
                              : round_robin_mapping(graph, arch.core_count());
        LocalSearchParams search = params.search;
        std::uint64_t level_hash = 0xcbf29ce484222325ULL;
        for (ScalingLevel level : levels) level_hash = splitmix64(level_hash ^ level);
        search.seed = splitmix64(params.search.seed ^ level_hash);
        const OptimizedMapping searcher(search);
        LocalSearchResult searched = searcher.optimize(ctx, initial, budget_deadline);
        if (!searched.found_feasible) {
            outcome.status = ScalingOutcome::Status::searched_no_design;
            return;
        }
        outcome.status = ScalingOutcome::Status::feasible;
        outcome.point.levels = levels;
        outcome.point.mapping = std::move(searched.best_mapping);
        outcome.point.metrics = searched.best_metrics;
    };

    const std::size_t threads =
        params.num_threads == 0 ? ThreadPool::hardware_threads() : params.num_threads;
    parallel_for_index(combinations.size(), threads, evaluate_combination);

    // Deterministic merge in enumeration order.
    DseResult result;
    for (ScalingOutcome& outcome : outcomes) {
        switch (outcome.status) {
        case ScalingOutcome::Status::not_run:
            continue;
        case ScalingOutcome::Status::skipped_infeasible:
            ++result.scalings_enumerated;
            ++result.scalings_skipped_infeasible;
            continue;
        case ScalingOutcome::Status::searched_no_design:
            ++result.scalings_enumerated;
            ++result.scalings_searched;
            continue;
        case ScalingOutcome::Status::feasible:
            ++result.scalings_enumerated;
            ++result.scalings_searched;
            result.feasible_points.push_back(std::move(outcome.point));
        }
    }

    // Step 3: iterative assessment — among feasible designs pick
    // minimum power, breaking near-ties by Gamma.
    const double tie = std::max(0.0, params.power_tie_tolerance);
    for (const DsePoint& point : result.feasible_points) {
        if (!result.best) {
            result.best = point;
            continue;
        }
        const double best_power = result.best->metrics.power_mw;
        const double power = point.metrics.power_mw;
        const bool near_tie = std::abs(power - best_power) <=
                              tie * std::max(best_power, power);
        if (near_tie ? point.metrics.gamma < result.best->metrics.gamma : power < best_power)
            result.best = point;
    }
    result.pareto_front = pareto_front_of(result.feasible_points);
    return result;
}

std::vector<DsePoint> pareto_front_of(const std::vector<DsePoint>& points) {
    std::vector<DsePoint> front;
    for (const DsePoint& candidate : points) {
        bool dominated = false;
        for (const DsePoint& other : points) {
            const bool no_worse = other.metrics.power_mw <= candidate.metrics.power_mw &&
                                  other.metrics.gamma <= candidate.metrics.gamma;
            const bool strictly_better = other.metrics.power_mw < candidate.metrics.power_mw ||
                                         other.metrics.gamma < candidate.metrics.gamma;
            if (no_worse && strictly_better) {
                dominated = true;
                break;
            }
        }
        if (!dominated) front.push_back(candidate);
    }
    std::sort(front.begin(), front.end(), [](const DsePoint& a, const DsePoint& b) {
        return a.metrics.power_mw < b.metrics.power_mw;
    });
    // Drop near-duplicates on (P, Gamma) so the front is a clean
    // staircase; exact float equality would keep points that differ
    // only in the last ulp of an otherwise identical design. Each
    // point is compared against the last *kept* point (not std::unique,
    // whose behavior is unspecified for non-transitive predicates).
    std::vector<DsePoint> deduped;
    for (DsePoint& point : front) {
        if (!deduped.empty() &&
            nearly_equal(deduped.back().metrics.power_mw, point.metrics.power_mw) &&
            nearly_equal(deduped.back().metrics.gamma, point.metrics.gamma))
            continue;
        deduped.push_back(std::move(point));
    }
    return deduped;
}

} // namespace seamap
