#include "core/dse.h"

#include "core/dse_checkpoint.h"
#include "core/initial_mapping.h"
#include "core/lazy_scaling_queue.h"
#include "core/observer.h"
#include "core/scaling_bounds.h"
#include "core/search_strategy.h"
#include "util/error.h"
#include "util/float_compare.h"
#include "util/rng.h"
#include "util/thread_pool.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

namespace seamap {

namespace {

/// Decided design of one *feasible* scaling combination, keyed by its
/// enumeration rank in a sparse map so the end-of-run fold still walks
/// feasible points in enumeration order regardless of thread count.
/// Pruned / gate-skipped / searched-but-empty decisions carry no design
/// and fold into plain counters instead: resident memory tracks the
/// slots actually decided, never the full combination space (which at
/// giant instances — C(69,5) and up — would dwarf the frontier the
/// lazy enumeration is meant to bound).
struct FeasibleOutcome {
    DsePoint point;
    /// Folded min-power side channel (DseParams::search.track_min_power).
    DsePoint min_power_point;
    bool has_min_power = false;
};

/// Deterministic best-of-K fold over a scaling's multi-start results:
/// feasibility first, then the search objective (fewest expected SEUs),
/// power, completion time, and finally the mapping as a total-order
/// tie-break. Folding in start order makes the pick a pure function of
/// the K results. With one start this is the identity.
bool better_start(const LocalSearchResult& a, const LocalSearchResult& b) {
    if (a.found_feasible != b.found_feasible) return a.found_feasible;
    if (a.found_feasible) {
        if (!exactly_equal(a.best_metrics.gamma, b.best_metrics.gamma))
            return a.best_metrics.gamma < b.best_metrics.gamma;
        if (!exactly_equal(a.best_metrics.power_mw, b.best_metrics.power_mw))
            return a.best_metrics.power_mw < b.best_metrics.power_mw;
    }
    if (!exactly_equal(a.best_metrics.tm_seconds, b.best_metrics.tm_seconds))
        return a.best_metrics.tm_seconds < b.best_metrics.tm_seconds;
    return a.best_mapping.raw() < b.best_mapping.raw();
}

const LocalSearchResult& fold_starts(const std::vector<LocalSearchResult>& starts) {
    const LocalSearchResult* best = &starts.front();
    for (std::size_t r = 1; r < starts.size(); ++r)
        if (better_start(starts[r], *best)) best = &starts[r];
    return *best;
}

/// Companion fold for the opt-in min-power side channel: among starts
/// that tracked a feasible min-power design, the cheapest wins (power,
/// then Gamma, then the mapping as a total-order tie-break). Returns
/// nullptr when no start recorded one (tracking off, or nothing
/// feasible). Same start-order purity argument as fold_starts.
const LocalSearchResult* fold_min_power(const std::vector<LocalSearchResult>& starts) {
    const LocalSearchResult* best = nullptr;
    for (const LocalSearchResult& start : starts) {
        if (!start.min_power_found) continue;
        if (best == nullptr) {
            best = &start;
            continue;
        }
        const DesignMetrics& a = start.min_power_metrics;
        const DesignMetrics& b = best->min_power_metrics;
        bool cheaper = false;
        if (!exactly_equal(a.power_mw, b.power_mw)) {
            cheaper = a.power_mw < b.power_mw;
        } else if (!exactly_equal(a.gamma, b.gamma)) {
            cheaper = a.gamma < b.gamma;
        } else {
            cheaper = start.min_power_mapping.raw() < best->min_power_mapping.raw();
        }
        if (cheaper) best = &start;
    }
    return best;
}

/// The paper's step-3 selection rule — minimum power, fewer expected
/// SEUs within the relative power tie window — applied to the sorted
/// Pareto front. On the front the rule is a pure function of the point
/// set (no evaluation-order sensitivity), which is what makes it
/// invariant under dominance pruning: pruned designs never reach a
/// front.
std::optional<DsePoint> select_best(const std::vector<DsePoint>& front, double tie) {
    if (front.empty()) return std::nullopt;
    const DsePoint* best = &front.front();
    for (std::size_t i = 1; i < front.size(); ++i) {
        const DsePoint& candidate = front[i];
        if (within_relative_tie(candidate.metrics.power_mw, best->metrics.power_mw, tie) &&
            candidate.metrics.gamma < best->metrics.gamma)
            best = &candidate;
    }
    return *best;
}

/// How far the lazy producer may run ahead of the replayed prefix, in
/// pop-order slots. The pop-time disposal decision for slot p consults
/// the replay front of exactly the first p - k_disposal_window slots —
/// a prefix that is fully decided by the time the producer needs it —
/// so which slots get searches submitted (scalings_emitted) is a pure
/// function of the problem at every thread count, while still keeping
/// up to a window of searches in flight. Thread-count *independent* on
/// purpose: scaling it with num_threads would make emission counts
/// differ between runs. 64 comfortably feeds any sane worker count and
/// keeps at most a window of per-slot case-bound lists alive at once.
constexpr std::size_t k_disposal_window = 64;

} // namespace

DesignSpaceExplorer::DesignSpaceExplorer(SerModel ser, ExposurePolicy policy)
    : ser_(std::move(ser)), policy_(policy) {}

DseResult DesignSpaceExplorer::explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                                       double deadline_seconds,
                                       const DseParams& params) const {
    const OptimizedMappingStrategy strategy(params.search);
    return explore(graph, arch, deadline_seconds, params, strategy);
}

DseResult DesignSpaceExplorer::explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                                       double deadline_seconds, const DseParams& params,
                                       const SearchStrategy& strategy,
                                       ProgressObserver* observer,
                                       const CancellationToken* cancel,
                                       DseCheckpointer* checkpoint) const {
    graph.validate();
    // One token funnels every stop source to the workers: the caller's
    // cancellation (chained as parent) and the explorer's own total
    // wall-clock budget (this token's deadline).
    CancellationToken stop(cancel);
    stop.set_budget_seconds(params.total_time_budget_seconds);

    // The scaling sequence is generated *lazily*, bound-sorted, by the
    // priority queue (core/lazy_scaling_queue.h) — the full sequence is
    // never materialized and, with pruning on, dominated slots are
    // disposed of at pop time before their searches are ever submitted.
    // Outcome storage is sparse for the same reason: feasible designs
    // land in a rank-keyed map (walked in enumeration order by the
    // final fold) and everything else folds into counters, so workers
    // may finish out of order yet the result stays independent of the
    // thread count (absent wall-clock cuts) while resident memory
    // tracks decided slots, not queue.total().
    const std::optional<ScalingBoundsModel> bounds_model =
        params.prune ? std::optional<ScalingBoundsModel>(std::in_place, graph, arch,
                                                         deadline_seconds, ser_, policy_)
                     : std::nullopt;
    LazyScalingQueue queue(graph, arch, deadline_seconds,
                           bounds_model ? &*bounds_model : nullptr);
    std::map<std::uint64_t, FeasibleOutcome> feasible_outcomes; // under bb_mutex
    std::uint64_t skipped_count = 0;   ///< gate skips; producer thread only
    std::uint64_t pruned_count = 0;    ///< replay-pruned; under bb_mutex
    std::uint64_t no_design_count = 0; ///< searched, empty; under bb_mutex

    const std::size_t starts = std::max<std::size_t>(1, params.multi_start);
    const double tie = std::max(0.0, params.power_tie_tolerance);

    // Observer state: callbacks are serialized behind one mutex. The
    // streamed incumbent is the step-3 rule applied to the Pareto front
    // of everything completed so far, so its last value matches the
    // final best at any thread count (dominated — later pruned —
    // designs never move a front).
    std::mutex observer_mutex;
    std::vector<DsePoint> observed_points;
    DominanceFront observed_front; // strict-dominance filter for arrivals
    std::optional<DsePoint> observed_best;
    if (observer != nullptr) observer->on_explore_begin(queue.total());
    auto notify = [&](std::uint64_t rank, const ScalingVector& levels,
                      ScalingProgress::Outcome outcome, const DsePoint* point) {
        if (observer == nullptr) return;
        std::lock_guard lock(observer_mutex);
        ScalingProgress progress;
        progress.index = rank;
        progress.total = queue.total();
        progress.levels = levels;
        progress.outcome = outcome;
        if (point != nullptr) progress.metrics = point->metrics;
        observer->on_scaling_done(progress);
        if (point == nullptr) return;
        // A strictly dominated arrival can never enter any current or
        // future Pareto front (its dominator is retained), so the
        // fold's result cannot change: skip the O(n log n) recompute.
        // Keeps the serialized incumbent stream cheap when most
        // completions are dominated (the common case at scale).
        if (observed_front.dominates(
                ScalingBounds{point->metrics.power_mw, point->metrics.gamma}))
            return;
        observed_front.insert(point->metrics.power_mw, point->metrics.gamma);
        observed_points.push_back(*point);
        std::optional<DsePoint> incumbent = select_best(pareto_front_of(observed_points), tie);
        const bool changed =
            incumbent &&
            (!observed_best || incumbent->levels != observed_best->levels ||
             incumbent->mapping != observed_best->mapping ||
             !exactly_equal(incumbent->metrics.power_mw, observed_best->metrics.power_mw) ||
             !exactly_equal(incumbent->metrics.gamma, observed_best->metrics.gamma));
        if (changed) {
            observed_best = std::move(incumbent);
            observer->on_incumbent(*observed_best);
        }
    };

    // --- shared branch-and-bound state --------------------------------
    // One slot per gate-passing pop, in pop order (std::deque: grows
    // under the lock while workers hold references to earlier slots).
    struct SearchSlot {
        std::uint64_t rank = 0; ///< enumeration index
        ScalingVector levels;
        /// One bound pair per admissible powered-core case; the slot
        /// is prunable only when every case is strictly dominated.
        /// Freed as soon as the replay decides the slot, so only a
        /// window of case lists is ever alive.
        std::vector<ScalingBounds> cases;
        std::vector<LocalSearchResult> start_results;
        std::vector<unsigned char> start_ran; ///< 1 = searched or prune-skipped
        /// Resume: the checkpointed replay decision for this slot.
        const DseSlotRecord* record = nullptr;
        bool disposed = false; ///< dropped at pop time (lagged front)
        bool runtime_pruned = false;
        bool completed = false;
        std::size_t starts_done = 0;
        /// The replay's verdict, kept on the slot so the lagged
        /// disposal front can be advanced without a dense outcome
        /// array: set iff the replay decided this slot feasible.
        bool replay_feasible = false;
        double replay_power = 0.0;
        double replay_gamma = 0.0;
    };
    std::deque<SearchSlot> slots;
    std::mutex bb_mutex;
    std::condition_variable replay_cv; ///< signals `replayed` advances
    // The incremental sequential replay: decides slots[0..replayed) in
    // pop order exactly as the end-of-run merge used to, maintaining
    // the front of surviving folded designs. Workers consult it for
    // opportunistic pruning (their view is a prefix of what the full
    // replay will know, so worker pruning stays a subset of replay
    // pruning) and the checkpoint records are its decisions verbatim.
    DominanceFront replay_front;
    std::size_t replayed = 0;
    // The *lagged* copy the producer's deterministic disposal uses:
    // advanced to exactly the prefix the window rule calls for, never
    // further, so disposal decisions are timing-independent.
    DominanceFront disposal_front;
    std::size_t disposal_advanced = 0;
    bool recording_stopped = false;
    bool bounds_unsound = false;
    std::exception_ptr search_error;
    std::uint64_t emitted = 0;

    // A slot is prunable when every powered-core case is strictly
    // dominated by some incumbent (different cases may fall to
    // different incumbents); an empty case list means the capacity
    // pre-filter could not even place the work — left to the search.
    auto front_prunes = [](const DominanceFront& front,
                           const std::vector<ScalingBounds>& cases) {
        if (cases.empty()) return false;
        return std::all_of(cases.begin(), cases.end(), [&](const ScalingBounds& bounds) {
            return front.dominates(bounds);
        });
    };

    const DseResumeState* resume =
        checkpoint != nullptr ? checkpoint->resume_state() : nullptr;
    const std::vector<DseSlotRecord>* records = resume != nullptr ? &resume->records : nullptr;
    std::size_t next_record = 0;

    // Advance the replay over the contiguous completed prefix. Called
    // with bb_mutex held. Mirrors the old end-of-run merge exactly: a
    // stop-cut slot stays not_run (and ends the recordable prefix —
    // nothing after it is replay-stable in a snapshot) but later slots
    // are still decided against the front without it.
    auto advance_replay = [&] {
        const bool advanced = replayed < slots.size() && slots[replayed].completed;
        while (replayed < slots.size() && slots[replayed].completed) {
            SearchSlot& slot = slots[replayed];
            if (slot.record != nullptr) {
                // Restored decision: replay it from the snapshot.
                const DseSlotRecord& record = *slot.record;
                switch (record.kind) {
                case DseSlotRecord::Kind::pruned:
                    ++pruned_count;
                    break;
                case DseSlotRecord::Kind::no_design:
                    ++no_design_count;
                    break;
                case DseSlotRecord::Kind::feasible: {
                    FeasibleOutcome outcome;
                    outcome.point.levels = slot.levels;
                    outcome.point.mapping = record.point.mapping;
                    outcome.point.metrics = record.point.metrics;
                    if (record.has_min_power) {
                        outcome.min_power_point.levels = slot.levels;
                        outcome.min_power_point.mapping = record.min_power_point.mapping;
                        outcome.min_power_point.metrics = record.min_power_point.metrics;
                        outcome.has_min_power = true;
                    }
                    slot.replay_feasible = true;
                    slot.replay_power = record.point.metrics.power_mw;
                    slot.replay_gamma = record.point.metrics.gamma;
                    replay_front.insert(record.point.metrics.power_mw,
                                        record.point.metrics.gamma);
                    feasible_outcomes.emplace(slot.rank, std::move(outcome));
                    break;
                }
                }
            } else {
                const bool fully_ran =
                    !slot.start_ran.empty() &&
                    std::all_of(slot.start_ran.begin(), slot.start_ran.end(),
                                [](unsigned char ran) { return ran == 1; });
                DseSlotRecord record;
                record.combo = slot.rank;
                bool recordable = false;
                if (slot.disposed ||
                    (params.prune && front_prunes(replay_front, slot.cases))) {
                    // A disposed slot's replay front is a superset of
                    // the lagged front that disposed it, so the replay
                    // verdict is already known (dominance is monotone).
                    ++pruned_count;
                    record.kind = DseSlotRecord::Kind::pruned;
                    recordable = true;
                } else if (!fully_ran) {
                    // Stop cut this slot: stays not_run.
                    recording_stopped = true;
                } else if (slot.runtime_pruned) {
                    // Worker pruned a slot the replay keeps: the bounds
                    // are unsound. Surfaced after the pool drains.
                    bounds_unsound = true;
                    recording_stopped = true;
                } else {
                    const LocalSearchResult& folded = fold_starts(slot.start_results);
                    if (folded.found_feasible) {
                        FeasibleOutcome outcome;
                        outcome.point.levels = slot.levels;
                        outcome.point.mapping = folded.best_mapping;
                        outcome.point.metrics = folded.best_metrics;
                        record.kind = DseSlotRecord::Kind::feasible;
                        record.point = outcome.point;
                        if (const LocalSearchResult* cheapest =
                                fold_min_power(slot.start_results)) {
                            outcome.min_power_point.levels = slot.levels;
                            outcome.min_power_point.mapping = cheapest->min_power_mapping;
                            outcome.min_power_point.metrics = cheapest->min_power_metrics;
                            outcome.has_min_power = true;
                            record.min_power_point = outcome.min_power_point;
                            record.has_min_power = true;
                        }
                        slot.replay_feasible = true;
                        slot.replay_power = folded.best_metrics.power_mw;
                        slot.replay_gamma = folded.best_metrics.gamma;
                        replay_front.insert(folded.best_metrics.power_mw,
                                            folded.best_metrics.gamma);
                        feasible_outcomes.emplace(slot.rank, std::move(outcome));
                    } else {
                        ++no_design_count;
                        record.kind = DseSlotRecord::Kind::no_design;
                    }
                    recordable = true;
                }
                if (checkpoint != nullptr && recordable && !recording_stopped)
                    checkpoint->record(record);
            }
            // The replay is this slot's last reader: drop the bound
            // cases and search results, keep the cheap outcome.
            slot.cases = {};
            slot.start_results = {};
            ++replayed;
        }
        if (advanced) replay_cv.notify_all();
    };

    // Advance the disposal front to exactly `prefix` decided slots
    // (never further). Called with bb_mutex held, prefix <= replayed.
    auto advance_disposal_to = [&](std::size_t prefix) {
        while (disposal_advanced < prefix) {
            const SearchSlot& slot = slots[disposal_advanced];
            if (slot.replay_feasible)
                disposal_front.insert(slot.replay_power, slot.replay_gamma);
            ++disposal_advanced;
        }
    };

    // The slot reference is resolved by the producer while it still
    // holds bb_mutex and passed in directly: deque element references
    // are stable across emplace_back, but slots::operator[] traverses
    // the deque's node map, which a concurrent emplace_back may be
    // reallocating — workers must never index the deque unlocked.
    auto run_start = [&](SearchSlot& slot, std::size_t start_index) {
        bool searched = false;
        if (!stop.stop_requested()) {
            bool do_search = true;
            if (params.prune) {
                std::lock_guard lock(bb_mutex);
                if (slot.runtime_pruned) {
                    do_search = false;
                } else if (front_prunes(replay_front, slot.cases)) {
                    slot.runtime_pruned = true;
                    do_search = false;
                }
            }
            if (do_search) {
                try {
                    const ScalingVector& levels = slot.levels;
                    EvaluationContext ctx{graph, arch, levels, SeuEstimator(ser_, policy_),
                                          deadline_seconds};
                    // The reusable per-start evaluation engine this
                    // worker's search runs on: preallocated scratch,
                    // incremental rescheduling and the memo table all
                    // live here, private to this worker, so
                    // thread-count invariance is untouched.
                    EvalContext eval(ctx, params.eval);
                    Mapping initial = params.use_initial_sea_mapping
                                          ? initial_sea_mapping(ctx)
                                          : round_robin_mapping(graph, arch.core_count());
                    // Vary the search seed per scaling so repeated
                    // scalings do not replay the same random walk;
                    // start 0 keeps the historic derivation so
                    // multi_start == 1 is unchanged.
                    std::uint64_t level_hash = 0xcbf29ce484222325ULL;
                    for (ScalingLevel level : levels)
                        level_hash = splitmix64(level_hash ^ level);
                    std::uint64_t seed = splitmix64(params.search.seed ^ level_hash);
                    if (start_index > 0)
                        seed = splitmix64(seed + 0x9e3779b97f4a7c15ULL * start_index);
                    slot.start_results[start_index] =
                        strategy.search(eval, initial, seed, &stop);
                    searched = true;
                } catch (...) {
                    // A throwing strategy must not strand the producer
                    // waiting on completions that will never come:
                    // capture the first error, stop the exploration
                    // cooperatively, and let the slot finish as
                    // not_run. Rethrown once the pool drains.
                    std::lock_guard lock(bb_mutex);
                    if (search_error == nullptr) search_error = std::current_exception();
                    stop.request_stop();
                }
            }
            // A stop landing while the search ran may have cut it short,
            // leaving a partial (non-replay-faithful) result: discard it
            // — the slot stays not_run and a resume re-searches it in
            // full. Prune skips carry no search data and stay valid.
            std::lock_guard lock(bb_mutex);
            if (!searched || !stop.stop_requested()) slot.start_ran[start_index] = 1;
        }

        // Completion bookkeeping: the last start of a slot decides its
        // live outcome and extends the sequential replay.
        ScalingProgress::Outcome live_outcome = ScalingProgress::Outcome::pruned;
        const DsePoint* live_point = nullptr;
        DsePoint folded_point;
        bool completed_now = false;
        {
            std::lock_guard lock(bb_mutex);
            if (++slot.starts_done < starts) return;
            slot.completed = true;
            const bool fully_ran =
                std::all_of(slot.start_ran.begin(), slot.start_ran.end(),
                            [](unsigned char ran) { return ran == 1; });
            if (fully_ran) {
                completed_now = true;
                if (!slot.runtime_pruned) {
                    const LocalSearchResult& folded = fold_starts(slot.start_results);
                    if (folded.found_feasible) {
                        folded_point.levels = slot.levels;
                        folded_point.mapping = folded.best_mapping;
                        folded_point.metrics = folded.best_metrics;
                        live_outcome = ScalingProgress::Outcome::feasible;
                        live_point = &folded_point;
                    } else {
                        live_outcome = ScalingProgress::Outcome::searched_no_design;
                    }
                }
            }
            advance_replay();
        }
        if (completed_now) notify(slot.rank, slot.levels, live_outcome, live_point);
        if (checkpoint != nullptr) checkpoint->maybe_flush();
    };

    // --- produce + run ------------------------------------------------
    // The producer (this thread) pops slots from the lazy queue while
    // the pool runs searches. For each gate-passing pop it recomputes
    // the per-case bounds, waits until the replay covers the disposal
    // window's prefix, and either disposes of the slot (provably
    // dominated — counted pruned, never searched) or emits it.
    if (!stop.stop_requested()) {
        ThreadPool pool(ThreadPool::resolve_thread_count(params.num_threads));
        while (!stop.stop_requested()) {
            std::optional<LazyScalingQueue::Slot> popped = queue.pop();
            if (!popped) break;
            const std::uint64_t rank = popped->rank;
            if (!popped->gate_passed) {
                // Gate skips are free: count and stream them right
                // here, ahead of any search. (Producer-only counter —
                // gate-skipped ranks never enter `slots`, so no other
                // thread ever touches them.)
                ++skipped_count;
                notify(rank, popped->levels, ScalingProgress::Outcome::skipped_infeasible,
                       nullptr);
                continue;
            }
            // The queue only kept the corner (storing every generated
            // node's case list would defeat the lazy memory bound);
            // the full per-case list is recomputed for the pop.
            std::vector<ScalingBounds> cases;
            if (bounds_model) cases = bounds_model->case_bounds_for(popped->levels);

            bool disposed = false;
            bool emitted_now = false;
            std::size_t pos = 0;
            SearchSlot* slot_ptr = nullptr;
            {
                std::unique_lock lock(bb_mutex);
                pos = slots.size();
                const std::size_t need =
                    pos > k_disposal_window ? pos - k_disposal_window : 0;
                replay_cv.wait(lock,
                               [&] { return replayed >= need || stop.stop_requested(); });
                if (stop.stop_requested()) break;
                advance_disposal_to(need);
                if (params.prune) disposed = front_prunes(disposal_front, cases);
                if (!disposed) {
                    ++emitted;
                    emitted_now = true;
                }
                const DseSlotRecord* record = nullptr;
                if (records != nullptr && next_record < records->size()) {
                    record = &(*records)[next_record];
                    if (record->combo != rank)
                        throw Error(ErrorCategory::checkpoint_mismatch,
                                    "checkpoint slot order diverges at decided slot " +
                                        std::to_string(next_record) +
                                        " (stored combination " +
                                        std::to_string(record->combo) + ", produced " +
                                        std::to_string(rank) + ")",
                                    checkpoint->path());
                    ++next_record;
                }
                slots.emplace_back();
                SearchSlot& slot = slots.back();
                slot_ptr = &slot;
                slot.rank = rank;
                slot.levels = std::move(popped->levels);
                if (record != nullptr) {
                    // Restored: the snapshot already holds this slot's
                    // replay decision; nothing runs.
                    slot.record = record;
                    slot.completed = true;
                    advance_replay();
                    continue;
                }
                slot.cases = std::move(cases);
                if (disposed) {
                    slot.disposed = true;
                    slot.completed = true;
                    advance_replay();
                } else {
                    slot.start_results.resize(starts);
                    slot.start_ran.assign(starts, 0);
                }
            }
            if (disposed) {
                notify(rank, slot_ptr->levels, ScalingProgress::Outcome::pruned, nullptr);
                if (checkpoint != nullptr) checkpoint->maybe_flush();
                continue;
            }
            if (emitted_now)
                for (std::size_t r = 0; r < starts; ++r)
                    pool.submit(pos, [&, slot_ptr, r] { run_start(*slot_ptr, r); });
        }
        pool.wait_idle();
    }
    {
        // Quiescent now: every created slot is completed (the pool ran
        // all submitted starts), so this sweeps the replay to the end.
        std::lock_guard lock(bb_mutex);
        advance_replay();
        if (search_error != nullptr) std::rethrow_exception(search_error);
    }
    // Persist whatever the run decided — on a stop this is the snapshot
    // a resume continues from; on completion it doubles as a memoized
    // result (a resume replays it without searching).
    if (checkpoint != nullptr) checkpoint->flush();
    if (bounds_unsound)
        throw std::logic_error(
            "DesignSpaceExplorer: worker pruned a slot the deterministic replay "
            "keeps — scaling bounds are unsound");
    if (records != nullptr && next_record < records->size() && !stop.stop_requested())
        throw Error(ErrorCategory::checkpoint_mismatch,
                    "checkpoint holds " + std::to_string(records->size()) +
                        " decided slots but this exploration produced only " +
                        std::to_string(next_record),
                    checkpoint->path());

    // Deterministic fold: the counters are order-independent sums and
    // the rank-keyed map iterates in ascending enumeration rank, so the
    // feasible/min-power point order is byte-identical to the old dense
    // rank-indexed sweep at any thread count.
    DseResult result;
    result.scalings_total = queue.total();
    result.scalings_emitted = emitted;
    result.scalings_skipped_infeasible = skipped_count;
    result.scalings_pruned = pruned_count;
    result.scalings_searched =
        no_design_count + static_cast<std::uint64_t>(feasible_outcomes.size());
    result.scalings_enumerated = skipped_count + pruned_count + result.scalings_searched;
    for (auto& [rank, outcome] : feasible_outcomes) {
        (void)rank;
        result.feasible_points.push_back(std::move(outcome.point));
        if (outcome.has_min_power)
            result.min_power_points.push_back(std::move(outcome.min_power_point));
    }

    // Step 3: iterative assessment — among feasible designs pick
    // minimum power, breaking near-ties by Gamma. Applied to the front,
    // where the rule is order-independent and prune-invariant.
    result.pareto_front = pareto_front_of(result.feasible_points);
    result.best = select_best(result.pareto_front, tie);
    if (observer != nullptr) observer->on_explore_end(result);
    return result;
}

std::vector<DsePoint> pareto_front_of(const std::vector<DsePoint>& points) {
    // Sort-and-sweep over the 2-D (power, gamma) objectives: sorting by
    // the same total order the output uses anyway, a point is dominated
    // iff the minimum gamma among strictly-cheaper points is <= its own
    // (strictness then comes from the power gap) or a same-power point
    // has strictly smaller gamma. O(n log n) against the former
    // all-pairs scan, with byte-identical output: survivors are the
    // same set, already in the output's total order.
    std::vector<std::size_t> order(points.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t ia, std::size_t ib) {
        const DsePoint& a = points[ia];
        const DsePoint& b = points[ib];
        if (!exactly_equal(a.metrics.power_mw, b.metrics.power_mw))
            return a.metrics.power_mw < b.metrics.power_mw;
        if (!exactly_equal(a.metrics.gamma, b.metrics.gamma))
            return a.metrics.gamma < b.metrics.gamma;
        if (a.levels != b.levels) return a.levels < b.levels;
        return a.mapping.raw() < b.mapping.raw();
    });

    std::vector<DsePoint> front;
    double cheaper_min_gamma = std::numeric_limits<double>::infinity();
    for (std::size_t group = 0; group < order.size();) {
        std::size_t group_end = group;
        const double group_power = points[order[group]].metrics.power_mw;
        while (group_end < order.size() &&
               exactly_equal(points[order[group_end]].metrics.power_mw, group_power))
            ++group_end;
        // Within an equal-power group the sort put minimum gamma first.
        const double group_min_gamma = points[order[group]].metrics.gamma;
        for (std::size_t k = group; k < group_end; ++k) {
            const DsePoint& candidate = points[order[k]];
            const bool dominated = cheaper_min_gamma <= candidate.metrics.gamma ||
                                   group_min_gamma < candidate.metrics.gamma;
            if (!dominated) front.push_back(candidate);
        }
        cheaper_min_gamma = std::min(cheaper_min_gamma, group_min_gamma);
        group = group_end;
    }

    // Drop near-duplicates on (P, Gamma) so the front is a clean
    // staircase; exact float equality would keep points that differ
    // only in the last ulp of an otherwise identical design. Each
    // point is compared against the last *kept* point (not std::unique,
    // whose behavior is unspecified for non-transitive predicates).
    std::vector<DsePoint> deduped;
    for (DsePoint& point : front) {
        if (!deduped.empty() &&
            nearly_equal(deduped.back().metrics.power_mw, point.metrics.power_mw) &&
            nearly_equal(deduped.back().metrics.gamma, point.metrics.gamma))
            continue;
        deduped.push_back(std::move(point));
    }
    return deduped;
}

} // namespace seamap
