#include "core/dse.h"

#include "core/initial_mapping.h"
#include "util/rng.h"

#include <algorithm>
#include <chrono>

namespace seamap {

DesignSpaceExplorer::DesignSpaceExplorer(SerModel ser, ExposurePolicy policy)
    : ser_(std::move(ser)), policy_(policy) {}

DseResult DesignSpaceExplorer::explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                                       double deadline_seconds, const DseParams& params) const {
    graph.validate();
    using Clock = std::chrono::steady_clock;
    const auto start_time = Clock::now();
    auto out_of_time = [&]() {
        if (params.total_time_budget_seconds <= 0.0) return false;
        const std::chrono::duration<double> elapsed = Clock::now() - start_time;
        return elapsed.count() >= params.total_time_budget_seconds;
    };

    DseResult result;
    ScalingEnumerator enumerator(arch.core_count(), arch.scaling_table().level_count());
    while (auto levels = enumerator.next()) {
        if (out_of_time()) break;
        ++result.scalings_enumerated;

        // Step 1 gate: skip scalings that cannot possibly meet the
        // deadline under any mapping.
        if (tm_lower_bound_seconds(graph, arch, *levels) >
            deadline_seconds * (1.0 + 1e-9)) {
            ++result.scalings_skipped_infeasible;
            continue;
        }

        EvaluationContext ctx{graph, arch, *levels, SeuEstimator(ser_, policy_),
                              deadline_seconds};

        // Step 2: two-stage soft error-aware mapping. Vary the search
        // seed per scaling so repeated scalings do not replay the same
        // random walk.
        Mapping initial = params.use_initial_sea_mapping
                              ? initial_sea_mapping(ctx)
                              : round_robin_mapping(graph, arch.core_count());
        LocalSearchParams search = params.search;
        std::uint64_t level_hash = 0xcbf29ce484222325ULL;
        for (ScalingLevel level : *levels) level_hash = splitmix64(level_hash ^ level);
        search.seed = splitmix64(params.search.seed ^ level_hash);
        const OptimizedMapping searcher(search);
        LocalSearchResult searched = searcher.optimize(ctx, initial);
        ++result.scalings_searched;
        if (!searched.found_feasible) continue;

        DsePoint point;
        point.levels = *levels;
        point.mapping = std::move(searched.best_mapping);
        point.metrics = searched.best_metrics;
        result.feasible_points.push_back(std::move(point));
    }

    // Step 3: iterative assessment — among feasible designs pick
    // minimum power, breaking near-ties by Gamma.
    const double tie = std::max(0.0, params.power_tie_tolerance);
    for (const DsePoint& point : result.feasible_points) {
        if (!result.best) {
            result.best = point;
            continue;
        }
        const double best_power = result.best->metrics.power_mw;
        const double power = point.metrics.power_mw;
        const bool near_tie = std::abs(power - best_power) <=
                              tie * std::max(best_power, power);
        if (near_tie ? point.metrics.gamma < result.best->metrics.gamma : power < best_power)
            result.best = point;
    }
    result.pareto_front = pareto_front_of(result.feasible_points);
    return result;
}

std::vector<DsePoint> pareto_front_of(std::vector<DsePoint> points) {
    std::vector<DsePoint> front;
    for (const DsePoint& candidate : points) {
        bool dominated = false;
        for (const DsePoint& other : points) {
            const bool no_worse = other.metrics.power_mw <= candidate.metrics.power_mw &&
                                  other.metrics.gamma <= candidate.metrics.gamma;
            const bool strictly_better = other.metrics.power_mw < candidate.metrics.power_mw ||
                                         other.metrics.gamma < candidate.metrics.gamma;
            if (no_worse && strictly_better) {
                dominated = true;
                break;
            }
        }
        if (!dominated) front.push_back(candidate);
    }
    std::sort(front.begin(), front.end(), [](const DsePoint& a, const DsePoint& b) {
        return a.metrics.power_mw < b.metrics.power_mw;
    });
    // Drop duplicates on (P, Gamma) so the front is a clean staircase.
    front.erase(std::unique(front.begin(), front.end(),
                            [](const DsePoint& a, const DsePoint& b) {
                                return a.metrics.power_mw == b.metrics.power_mw &&
                                       a.metrics.gamma == b.metrics.gamma;
                            }),
                front.end());
    return front;
}

} // namespace seamap
