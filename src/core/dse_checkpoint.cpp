#include "core/dse_checkpoint.h"

#include "util/error.h"
#include "util/strings.h"

#include <utility>

namespace seamap {

namespace {

// --- payload encoding -----------------------------------------------
// One line per decided slot, space-separated fields:
//   pruned <combo>
//   nodesign <combo>
//   feasible <combo> <point> [minpower <point>]
// where <point> = <mapping csv> <tm> <latency> <register_bits> <gamma>
// <power> <feasible 0|1>, doubles rendered as bit-exact hex
// (util/checkpoint.h) so a resumed run is byte-identical. Scaling
// levels are not stored: the combination index recovers them from the
// deterministic enumeration on resume.

std::string csv_of_mapping(const Mapping& mapping) {
    std::string out;
    const std::vector<CoreId>& raw = mapping.raw();
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(raw[i]);
    }
    return out;
}

void encode_point(std::string& out, const DsePoint& point) {
    out += ' ';
    out += csv_of_mapping(point.mapping);
    out += ' ' + hex_of_double(point.metrics.tm_seconds);
    out += ' ' + hex_of_double(point.metrics.latency_seconds);
    out += ' ' + std::to_string(point.metrics.register_bits);
    out += ' ' + hex_of_double(point.metrics.gamma);
    out += ' ' + hex_of_double(point.metrics.power_mw);
    out += point.metrics.feasible ? " 1" : " 0";
}

std::string encode_record(const DseSlotRecord& record) {
    switch (record.kind) {
    case DseSlotRecord::Kind::pruned: return "pruned " + std::to_string(record.combo);
    case DseSlotRecord::Kind::no_design: return "nodesign " + std::to_string(record.combo);
    case DseSlotRecord::Kind::feasible: break;
    }
    std::string out = "feasible " + std::to_string(record.combo);
    encode_point(out, record.point);
    if (record.has_min_power) {
        out += " minpower";
        encode_point(out, record.min_power_point);
    }
    return out;
}

[[noreturn]] void fail_decode(const std::string& path, const std::string& why) {
    throw Error(ErrorCategory::checkpoint_corrupt, "corrupt dse checkpoint payload: " + why,
                path);
}

Mapping mapping_of_csv(const std::string& path, const std::string& csv,
                       std::size_t task_count, std::size_t core_count) {
    const std::vector<std::string> fields = split(csv, ',');
    if (fields.size() != task_count)
        fail_decode(path, "mapping has " + std::to_string(fields.size()) + " entries for " +
                              std::to_string(task_count) + " tasks");
    Mapping mapping(task_count, core_count);
    for (std::size_t t = 0; t < fields.size(); ++t) {
        unsigned long long core = 0;
        try {
            core = parse_u64(fields[t]);
        } catch (const std::exception&) {
            fail_decode(path, "non-numeric mapping entry '" + fields[t] + "'");
        }
        if (core >= core_count)
            fail_decode(path, "mapping entry " + std::to_string(core) + " exceeds core count " +
                                  std::to_string(core_count));
        mapping.assign(static_cast<TaskId>(t), static_cast<CoreId>(core));
    }
    return mapping;
}

/// Decode one <point> starting at fields[at]; advances `at`.
DsePoint decode_point(const std::string& path, const std::vector<std::string>& fields,
                      std::size_t& at, std::size_t task_count, std::size_t core_count) {
    if (fields.size() - at < 7) fail_decode(path, "truncated design point");
    DsePoint point;
    point.mapping = mapping_of_csv(path, fields[at], task_count, core_count);
    try {
        point.metrics.tm_seconds = double_of_hex(fields[at + 1]);
        point.metrics.latency_seconds = double_of_hex(fields[at + 2]);
        point.metrics.register_bits = parse_u64(fields[at + 3]);
        point.metrics.gamma = double_of_hex(fields[at + 4]);
        point.metrics.power_mw = double_of_hex(fields[at + 5]);
    } catch (const std::exception&) {
        fail_decode(path, "non-numeric design metrics");
    }
    if (fields[at + 6] != "0" && fields[at + 6] != "1")
        fail_decode(path, "bad feasibility flag '" + fields[at + 6] + "'");
    point.metrics.feasible = fields[at + 6] == "1";
    at += 7;
    return point;
}

DseSlotRecord decode_record(const std::string& path, const std::string& line,
                            std::size_t task_count, std::size_t core_count) {
    const std::vector<std::string> fields = split(line, ' ');
    if (fields.size() < 2) fail_decode(path, "short record line");
    DseSlotRecord record;
    try {
        record.combo = parse_u64(fields[1]);
    } catch (const std::exception&) {
        fail_decode(path, "non-numeric combination index '" + fields[1] + "'");
    }
    if (fields[0] == "pruned") {
        record.kind = DseSlotRecord::Kind::pruned;
        if (fields.size() != 2) fail_decode(path, "trailing fields on pruned record");
        return record;
    }
    if (fields[0] == "nodesign") {
        record.kind = DseSlotRecord::Kind::no_design;
        if (fields.size() != 2) fail_decode(path, "trailing fields on nodesign record");
        return record;
    }
    if (fields[0] != "feasible") fail_decode(path, "unknown record kind '" + fields[0] + "'");
    record.kind = DseSlotRecord::Kind::feasible;
    std::size_t at = 2;
    record.point = decode_point(path, fields, at, task_count, core_count);
    if (at < fields.size()) {
        if (fields[at] != "minpower")
            fail_decode(path, "unexpected field '" + fields[at] + "' after design point");
        ++at;
        record.min_power_point = decode_point(path, fields, at, task_count, core_count);
        record.has_min_power = true;
    }
    if (at != fields.size()) fail_decode(path, "trailing fields on feasible record");
    return record;
}

} // namespace

std::uint64_t dse_state_hash(const TaskGraph& graph, const MpsocArchitecture& arch,
                             double deadline_seconds, const DseParams& params,
                             const SerModel& ser, ExposurePolicy policy,
                             std::string_view strategy_name) {
    HashStream h;
    // v2: the lazy bound-sorted enumeration (core/lazy_scaling_queue.h)
    // changed the slot pop order, so v1 snapshots do not replay; the
    // salt makes them fail the state-hash check cleanly.
    h.mix("seamap-dse-state-v2");

    // Application: name, batching, register inventory, tasks, edges.
    h.mix(graph.name());
    h.mix(graph.batch_count());
    const RegisterFile& regs = graph.register_file();
    h.mix(regs.size());
    for (std::size_t r = 0; r < regs.size(); ++r) {
        h.mix(regs.name(static_cast<RegisterId>(r)));
        h.mix(regs.bits(static_cast<RegisterId>(r)));
    }
    h.mix(graph.task_count());
    for (std::size_t t = 0; t < graph.task_count(); ++t) {
        const Task& task = graph.task(static_cast<TaskId>(t));
        h.mix(task.name);
        h.mix(task.exec_cycles);
        h.mix(task.registers.count());
        task.registers.for_each([&](RegisterId id) { h.mix(id); });
    }
    h.mix(graph.edge_count());
    for (const Edge& edge : graph.edges()) {
        h.mix(edge.src);
        h.mix(edge.dst);
        h.mix(edge.comm_cycles);
    }

    // Architecture: cores, operating points, power parameters.
    h.mix(arch.core_count());
    const VoltageScalingTable& table = arch.scaling_table();
    h.mix(table.level_count());
    for (std::size_t l = 1; l <= table.level_count(); ++l) {
        const OperatingPoint& op = table.at_level(static_cast<ScalingLevel>(l));
        h.mix_double(op.f_mhz);
        h.mix_double(op.vdd);
    }
    const PowerParams& power = arch.power_model().params();
    h.mix_double(power.c_eff_farads);
    h.mix_double(power.idle_activity);

    // Reliability model and constraint.
    const SerParams& sp = ser.params();
    h.mix_double(sp.ser_ref_per_bit_cycle);
    h.mix_double(sp.ref_vdd);
    h.mix_double(sp.ref_f_mhz);
    h.mix_double(sp.voltage_exponent_k);
    h.mix(static_cast<std::uint64_t>(policy));
    h.mix_double(deadline_seconds);

    // Search configuration. num_threads, EvalOptions and the wall-clock
    // budgets are deliberately absent: the result is invariant to them,
    // and resuming across thread counts is the point of the feature.
    const LocalSearchParams& s = params.search;
    h.mix(s.max_iterations);
    h.mix_double(s.initial_temperature);
    h.mix_double(s.final_temperature);
    h.mix_double(s.swap_probability);
    h.mix(s.sweep_interval);
    h.mix(static_cast<std::uint64_t>(s.require_all_cores));
    h.mix(s.restarts);
    h.mix(s.seed);
    h.mix(static_cast<std::uint64_t>(s.track_min_power));
    h.mix(static_cast<std::uint64_t>(params.use_initial_sea_mapping));
    h.mix_double(params.power_tie_tolerance);
    h.mix(static_cast<std::uint64_t>(params.prune));
    h.mix(std::max<std::size_t>(1, params.multi_start));
    h.mix(strategy_name);
    return h.value();
}

DseCheckpointer::DseCheckpointer(std::string path, std::uint64_t state_hash)
    : path_(std::move(path)), state_hash_(state_hash) {}

void DseCheckpointer::set_cadence(std::uint64_t every_records, double interval_seconds) {
    std::lock_guard lock(mutex_);
    every_records_ = every_records;
    timer_ = IntervalTimer(interval_seconds);
}

std::optional<DseResumeInfo> DseCheckpointer::load(std::size_t task_count,
                                                   std::size_t core_count) {
    std::optional<CheckpointLoad> loaded = load_checkpoint(path_, "dse", state_hash_);
    if (!loaded) return std::nullopt;
    DseResumeState state;
    state.from_fallback = loaded->from_fallback;
    state.records.reserve(loaded->data.lines.size());
    for (const std::string& line : loaded->data.lines)
        state.records.push_back(decode_record(path_, line, task_count, core_count));
    std::lock_guard lock(mutex_);
    lines_ = std::move(loaded->data.lines);
    flushed_lines_ = lines_.size();
    resume_ = std::move(state);
    DseResumeInfo info;
    info.slots_decided = resume_->records.size();
    info.from_fallback = resume_->from_fallback;
    return info;
}

void DseCheckpointer::record(const DseSlotRecord& record) {
    std::lock_guard lock(mutex_);
    lines_.push_back(encode_record(record));
}

void DseCheckpointer::maybe_flush() {
    std::lock_guard lock(mutex_);
    if (lines_.size() == flushed_lines_) return;
    const bool by_count =
        every_records_ > 0 && lines_.size() - flushed_lines_ >= every_records_;
    if (!by_count && !timer_.due()) return;
    flush_locked();
}

void DseCheckpointer::flush() {
    std::lock_guard lock(mutex_);
    if (lines_.size() == flushed_lines_) return;
    flush_locked();
}

void DseCheckpointer::remove() {
    std::lock_guard lock(mutex_);
    remove_checkpoint(path_);
    flushed_lines_ = 0;
}

std::uint64_t DseCheckpointer::recorded() const {
    std::lock_guard lock(mutex_);
    return lines_.size();
}

void DseCheckpointer::flush_locked() {
    CheckpointData data;
    data.kind = "dse";
    data.state_hash = state_hash_;
    data.lines = lines_;
    save_checkpoint(path_, data);
    flushed_lines_ = lines_.size();
    timer_.reset();
}

} // namespace seamap
