#include "core/lazy_scaling_queue.h"

#include "sched/list_scheduler.h"
#include "util/rng.h"

#include <limits>
#include <stdexcept>

namespace seamap {

namespace {

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
    return a > std::numeric_limits<std::uint64_t>::max() - b
               ? std::numeric_limits<std::uint64_t>::max()
               : a + b;
}

/// counts[m * (level_count + 1) + w] = number of non-increasing tuples
/// of length m over values [1..w] (multisets of size m from w values,
/// C(m + w - 1, w - 1)), by the Pascal-style recurrence
/// N(m, w) = N(m, w-1) + N(m-1, w) — exact in uint64 wherever the
/// whole sequence is enumerable at all, saturating beyond.
std::vector<std::uint64_t> multiset_counts(std::size_t core_count, std::size_t level_count) {
    const std::size_t width = level_count + 1;
    std::vector<std::uint64_t> counts((core_count + 1) * width, 0);
    for (std::size_t w = 0; w <= level_count; ++w) counts[w] = 1; // N(0, w) = 1
    for (std::size_t m = 1; m <= core_count; ++m)
        for (std::size_t w = 1; w <= level_count; ++w)
            counts[m * width + w] =
                saturating_add(counts[m * width + w - 1], counts[(m - 1) * width + w]);
    return counts;
}

std::uint64_t rank_with_counts(const ScalingVector& levels, std::size_t level_count,
                               const std::vector<std::uint64_t>& counts) {
    const std::size_t width = level_count + 1;
    const std::size_t n = levels.size();
    std::uint64_t rank = 0;
    std::size_t prev = level_count;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t value = levels[i];
        if (value < 1 || value > prev)
            throw std::invalid_argument(
                "LazyScalingQueue::rank_of: tuple is not non-increasing in [1, level_count]");
        // Tuples that put a larger value w at position i sort earlier
        // (descending lex); each leaves N(n-1-i, w) completions.
        for (std::size_t w = value + 1; w <= prev; ++w)
            rank = saturating_add(rank, counts[(n - 1 - i) * width + w]);
        prev = value;
    }
    return rank;
}

} // namespace

LazyScalingQueue::LazyScalingQueue(const TaskGraph& graph, const MpsocArchitecture& arch,
                                   double deadline_seconds, const ScalingBoundsModel* bounds,
                                   std::uint64_t successor_shuffle_seed)
    : graph_(graph), arch_(arch), deadline_seconds_(deadline_seconds), bounds_(bounds),
      shuffle_seed_(successor_shuffle_seed) {
    const std::size_t cores = arch.core_count();
    const std::size_t levels = arch.scaling_table().level_count();
    counts_ = multiset_counts(cores, levels);
    total_ = ScalingEnumerator::combination_count(cores, levels);
    visited_.assign((total_ + 63) / 64, 0);

    // Aggregates for the hoisted T_M gate — the exact inputs
    // tm_lower_bound_seconds computes per call.
    batches_ = static_cast<double>(graph.batch_count());
    critical_path_cycles_ = static_cast<double>(graph.critical_path_cycles(false));
    total_exec_cycles_ = static_cast<double>(graph.total_exec_cycles());
    std::uint64_t biggest_task = 0;
    for (TaskId t = 0; t < graph.task_count(); ++t)
        biggest_task = std::max(biggest_task, graph.task(t).exec_cycles);
    biggest_task_cycles_ = static_cast<double>(biggest_task);

    ScalingVector root(cores, static_cast<ScalingLevel>(levels));
    arch.validate_scaling(root);
    visit(0);
    generate(std::move(root));
}

std::uint64_t LazyScalingQueue::rank_of(const ScalingVector& levels, std::size_t level_count) {
    return rank_with_counts(levels, level_count, multiset_counts(levels.size(), level_count));
}

std::uint64_t LazyScalingQueue::rank_of_tabled(const ScalingVector& levels) const {
    return rank_with_counts(levels, arch_.scaling_table().level_count(), counts_);
}

void LazyScalingQueue::successors(const ScalingVector& levels, std::vector<ScalingVector>& out) {
    const std::size_t n = levels.size();
    for (std::size_t i = 0; i < n; ++i) {
        // The rightmost occurrence of each distinct value > 1: the only
        // position where decrementing that value keeps the tuple
        // non-increasing (the next entry, if any, is strictly smaller).
        if (levels[i] <= 1) continue;
        if (i + 1 < n && levels[i + 1] == levels[i]) continue;
        ScalingVector next = levels;
        --next[i];
        out.push_back(std::move(next));
    }
}

bool LazyScalingQueue::visit(std::uint64_t rank) {
    std::uint64_t& word = visited_[rank / 64];
    const std::uint64_t bit = std::uint64_t{1} << (rank % 64);
    if ((word & bit) != 0) return false;
    word |= bit;
    return true;
}

void LazyScalingQueue::generate(ScalingVector levels) {
    Node node;
    node.rank = rank_of_tabled(levels);
    // Same accumulation loop as tm_lower_bound_seconds (max and sum in
    // core order) so the gate verdict is bit-identical to the per-call
    // form the materialized sweep evaluated.
    double fastest = 0.0;
    double total_rate = 0.0;
    for (std::size_t c = 0; c < levels.size(); ++c) {
        const double f = arch_.frequency_hz(levels[c]);
        fastest = std::max(fastest, f);
        total_rate += f;
    }
    node.gate_passed =
        tm_lower_bound_from_aggregates(critical_path_cycles_, total_exec_cycles_,
                                       biggest_task_cycles_, batches_, fastest, total_rate) <=
        deadline_seconds_ * (1.0 + 1e-9);
    if (node.gate_passed && bounds_ != nullptr) {
        node.corner = bounds_->bounds_for(levels);
        node.sort_key = node.corner.power_mw_lb;
    }
    node.levels = std::move(levels);
    frontier_.push(std::move(node));
    ++generated_;
}

std::optional<LazyScalingQueue::Slot> LazyScalingQueue::pop() {
    if (frontier_.empty()) return std::nullopt;
    // priority_queue::top is const; the contents are moved out right
    // before the pop, which never observes them again.
    Node node = std::move(const_cast<Node&>(frontier_.top()));
    frontier_.pop();
    ++popped_;

    // Expand the Fig. 5 neighbors of the popped combination. The push
    // order is irrelevant to pop order (strict (key, rank) total
    // order); a nonzero shuffle seed deterministically permutes it to
    // let tests prove exactly that, plus the dedup.
    successor_scratch_.clear();
    successors(node.levels, successor_scratch_);
    if (shuffle_seed_ != 0 && successor_scratch_.size() > 1) {
        std::uint64_t state = splitmix64(shuffle_seed_ ^ node.rank);
        for (std::size_t i = successor_scratch_.size() - 1; i > 0; --i) {
            state = splitmix64(state);
            std::swap(successor_scratch_[i], successor_scratch_[state % (i + 1)]);
        }
    }
    for (ScalingVector& next : successor_scratch_)
        if (visit(rank_of_tabled(next))) generate(std::move(next));

    Slot slot;
    slot.rank = node.rank;
    slot.levels = std::move(node.levels);
    slot.gate_passed = node.gate_passed;
    slot.corner = node.corner;
    return slot;
}

} // namespace seamap
