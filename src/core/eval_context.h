// Zero-allocation per-candidate evaluation hot path. The Fig. 4 flow
// evaluates thousands of (mapping, scaling) candidates per exploration;
// reliability/design_eval.h scores each one from scratch — a fresh list
// schedule (priority selection + ~10 heap allocations), fresh register
// unions and fresh SEU/power sums per call. EvalContext is the reusable
// per-scaling evaluation engine both search strategies run on instead:
//
//  - Precomputation: the list scheduler's placement sequence is a pure
//    function of the graph (sched/list_scheduler.h,
//    static_schedule_order), so the order, b-level selection, core
//    frequencies, per-core SER rates and active powers are computed
//    once per scaling; per candidate only the timing arithmetic runs.
//  - Scratch reuse: ready lists, per-PE timelines, data-ready arrays,
//    busy/utilization accumulators and register-union bitsets live in
//    the context and are reused across candidates — the steady-state
//    evaluation loop performs no heap allocation.
//  - Incremental re-evaluation: for the move/swap neighbourhood steps
//    of the Fig. 7 search and the SA baseline, only the schedule
//    suffix from the first affected placement position is replayed
//    (positions before the earliest predecessor of a moved task are
//    provably unchanged), and only the affected cores' register unions
//    and busy cycles are recomputed.
//  - Memoization: a per-scaling memo table keyed by the full mapping
//    (open addressing, flat key arena) returns previously computed
//    metrics for revisited candidates, so a random walk that undoes a
//    move never pays for the same design twice.
//
// Determinism contract: every path (full, incremental, memoized)
// reproduces evaluate_design() BIT-IDENTICALLY — the same floating-
// point operations in the same order. The naive_reference option turns
// the context into a thin wrapper over evaluate_design() so the
// equivalence harness (tests/core/eval_context_equivalence_test.cpp)
// and the before/after benches drive both paths through identical
// search code.
//
// An EvalContext is single-threaded state: the explorer builds one per
// scaling combination inside each worker, so contexts are never shared
// across threads.
#pragma once

#include "reliability/design_eval.h"
#include "sched/mapping.h"
#include "taskgraph/task_graph.h"
#include "util/rng.h"

#include <cstdint>
#include <vector>

namespace seamap {

/// Evaluation-path knobs. Defaults give the full fast path; the
/// reference flag pins the optimization to the naive implementation.
struct EvalOptions {
    /// Per-scaling memo table over complete mappings.
    bool memoize = true;
    /// Suffix-only rescheduling for move/swap neighbours.
    bool incremental = true;
    /// Memo entry cap; inserts stop beyond it (lookups keep working).
    std::size_t memo_capacity = 1u << 20;
    /// Route every evaluation through evaluate_design() instead of the
    /// optimized path (no scratch reuse, no memo, no incremental).
    /// This is the pre-optimization reference the equivalence tests
    /// and benches compare against.
    bool naive_reference = false;
};

/// One neighbourhood mutation, reported by random_neighbor_op so the
/// caller can ask EvalContext for an incremental re-evaluation.
struct NeighborOp {
    enum class Kind : unsigned char {
        none, ///< no admissible mutation found; mapping unchanged
        move, ///< task `a` moved from core `from` to core `to`
        swap, ///< tasks `a` and `b` (on different cores) exchanged cores
    };
    Kind kind = Kind::none;
    TaskId a = 0;
    TaskId b = 0;
    CoreId from = 0;
    CoreId to = 0;
};

/// The shared move/swap neighbourhood of both search engines: with
/// probability `swap_probability` exchange two tasks on different
/// cores, otherwise move one task to another core (rejecting moves that
/// would empty a populated core when `require_all_cores`). Mutates
/// `mapping` in place and reports what changed. The RNG draw sequence
/// is the contract: both engines' walks are reproducible bit-for-bit
/// from the seed, so this function consumes draws exactly like the
/// historical per-engine copies it replaces.
NeighborOp random_neighbor_op(Mapping& mapping, Rng& rng, double swap_probability,
                              bool require_all_cores);

/// Reusable per-scaling evaluation engine. See file comment.
class EvalContext {
public:
    /// `ctx` must outlive the EvalContext. Validates the scaling vector
    /// eagerly and precomputes the schedule order.
    explicit EvalContext(const EvaluationContext& ctx, EvalOptions options = {});

    EvalContext(const EvalContext&) = delete;
    EvalContext& operator=(const EvalContext&) = delete;

    /// The problem this context evaluates against.
    const EvaluationContext& problem() const { return ctx_; }
    const EvalOptions& options() const { return options_; }

    /// Full evaluation of a complete mapping; bit-identical to
    /// evaluate_design(problem(), mapping). Allocation-free after the
    /// first call. Throws std::invalid_argument on size mismatches or
    /// incomplete mappings.
    DesignMetrics evaluate(const Mapping& mapping);

    /// evaluate() behind the memo table: a revisited mapping returns
    /// its cached metrics without re-scheduling.
    DesignMetrics evaluate_memoized(const Mapping& mapping);

    /// Establish `base` as the incremental-evaluation anchor (the
    /// search's current mapping) and return its metrics. Records the
    /// per-position timeline state evaluate_move/evaluate_swap restart
    /// from. Always a full recorded pass; a known future optimization
    /// is committing the just-replayed suffix of an accepted neighbour
    /// instead, which would help high-acceptance (hot) walk phases.
    DesignMetrics rebase(const Mapping& base);

    /// True once rebase() has run.
    bool has_base() const { return has_base_; }
    const Mapping& base() const { return base_; }
    const DesignMetrics& base_metrics() const { return base_metrics_; }

    /// Metrics of base() with `task` moved to core `to` (base itself is
    /// left untouched). Memoized, then suffix-rescheduled: only
    /// placement positions from the earliest predecessor of `task`
    /// onward are replayed, and only the two affected cores' register
    /// unions and busy cycles are recomputed. Requires a prior
    /// rebase().
    DesignMetrics evaluate_move(TaskId task, CoreId to);

    /// Metrics of base() with tasks `a` and `b` exchanging cores.
    DesignMetrics evaluate_swap(TaskId a, TaskId b);

    /// Dispatch on a NeighborOp produced against base(). Kind::none
    /// returns base_metrics().
    DesignMetrics evaluate_neighbor(const NeighborOp& op);

    /// Instrumentation for benches and tests.
    struct Stats {
        std::uint64_t full_evals = 0;        ///< complete timing passes (incl. rebase)
        std::uint64_t incremental_evals = 0; ///< suffix-only replays
        std::uint64_t memo_hits = 0;
        std::uint64_t memo_entries = 0;
    };
    const Stats& stats() const { return stats_; }

private:
    /// A candidate relative to the base: up to two tasks on new cores.
    /// For a move both slots describe the same task.
    struct Override {
        TaskId a;
        CoreId core_a;
        TaskId b;
        CoreId core_b;

        CoreId core_of(const CoreId* base_raw, TaskId w) const {
            if (w == a) return core_a;
            if (w == b) return core_b;
            return base_raw[w];
        }
    };

    DesignMetrics evaluate_full(const Mapping& mapping, bool record);
    DesignMetrics evaluate_override(const Override& ov, std::size_t suffix_pos);
    DesignMetrics finish_metrics(double latency);
    void check_mapping(const Mapping& mapping) const;

    // Memo table: open addressing over a flat key arena.
    std::uint64_t hash_key(const CoreId* key) const;
    const DesignMetrics* memo_find(std::uint64_t hash, const CoreId* key) const;
    void memo_insert(std::uint64_t hash, const CoreId* key, const DesignMetrics& metrics);

    std::uint64_t weighted_bits(const std::uint64_t* row) const;

    const EvaluationContext& ctx_;
    EvalOptions options_;
    std::size_t n_ = 0;
    std::size_t cores_ = 0;
    std::size_t words_ = 0; ///< fixed bitset width: register words per row
    double batches_ = 1.0;

    // Per-scaling precomputation.
    std::vector<TaskId> order_;          ///< static schedule order
    std::vector<std::size_t> pos_;       ///< task -> position in order_
    std::vector<std::size_t> suffix_start_; ///< task -> earliest affected position
    std::vector<double> core_freq_;
    std::vector<double> ser_rate_;       ///< SER per bit-second at each core's Vdd
    std::vector<double> active_power_mw_;
    /// Struct-of-arrays register state: each task's register set as a
    /// fixed-width row of `words_` words (row-major arena, n_ rows), so
    /// a per-core union is a contiguous `dst[w] |= src[w]` word loop
    /// the compiler can vectorize — no pointer-chasing through
    /// RegisterSet's per-set heap blocks.
    std::vector<std::uint64_t> task_reg_words_; ///< [task * words_ + w]
    std::vector<std::uint64_t> reg_bits_;       ///< register id -> width in bits

    // Scratch reused by every evaluation (no steady-state allocation).
    std::vector<double> data_ready_;
    std::vector<double> core_free_;
    std::vector<double> finish_;
    std::vector<std::uint64_t> busy_;
    std::vector<double> busy_seconds_;
    std::vector<double> utilization_;
    std::vector<std::uint64_t> register_bits_;
    std::vector<std::int64_t> busy_delta_;
    std::vector<std::uint64_t> union_words_;   ///< [core * words_ + w]
    std::vector<std::uint64_t> scratch_words_; ///< one row, incremental path
    std::vector<CoreId> key_scratch_;
    Mapping mapping_scratch_; ///< naive_reference candidate materialization

    // Incremental base state (valid while has_base_).
    bool has_base_ = false;
    Mapping base_;
    DesignMetrics base_metrics_;
    std::vector<double> base_finish_;
    std::vector<double> base_arrival_;      ///< per edge: data-arrival instant
    std::vector<double> base_core_free_at_; ///< position-major [pos * cores + core]
    std::vector<std::uint64_t> base_busy_;
    std::vector<std::uint64_t> base_bits_;
    // Base task->core partition in CSR form (built by each rebase into
    // fixed-capacity arrays — no per-core vectors, no steady-state
    // growth): core c's tasks are core_task_ids_[core_task_offsets_[c]
    // .. core_task_offsets_[c + 1]), ascending by task id.
    std::vector<std::size_t> core_task_offsets_; ///< cores_ + 1 entries
    std::vector<std::size_t> core_task_cursor_;  ///< counting-sort scratch
    std::vector<TaskId> core_task_ids_;          ///< n_ entries

    // Memo storage.
    struct MemoEntry {
        std::uint64_t hash = 0;
        std::size_t key_offset = 0;
        DesignMetrics metrics;
    };
    std::vector<MemoEntry> memo_entries_;
    std::vector<std::uint32_t> memo_slots_; ///< entry index + 1; 0 = empty
    std::vector<CoreId> memo_keys_;

    Stats stats_;
};

} // namespace seamap
