// The full design-space exploration of the paper's Fig. 4: joint power
// minimization (voltage scaling, step 1) and reliability improvement
// (soft error-aware task mapping, step 2) under a real-time constraint,
// with iterative assessment (step 3).
//
// Scaling combinations are enumerated with nextScaling (Fig. 5) from
// the lowest-voltage point upward; combinations whose execution-time
// lower bound already misses the deadline are skipped. For every
// remaining combination the two-stage mapper (InitialSEAMapping +
// OptimizedMapping) minimizes the expected SEUs; the explorer records
// each feasible design's (P, Gamma) and finally reports
//   - the paper's pick: minimum power, ties broken by fewer SEUs, and
//   - the Pareto front over (P, Gamma) for inspection.
#pragma once

#include "arch/mpsoc.h"
#include "core/optimized_mapping.h"
#include "reliability/design_eval.h"
#include "sched/mapping.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace seamap {

/// One evaluated design point.
struct DsePoint {
    ScalingVector levels;
    Mapping mapping;
    DesignMetrics metrics;
};

/// Exploration knobs.
struct DseParams {
    /// Per-scaling mapping-search effort (Fig. 7 budget).
    LocalSearchParams search;
    /// Overall wall-clock budget, seconds (0 = none): the paper's
    /// "chosen search-time".
    double total_time_budget_seconds = 0.0;
    /// Start stage 2 from the stage-1 greedy mapping (Fig. 6). Off =
    /// ablation: start from a round-robin mapping instead.
    bool use_initial_sea_mapping = true;
    /// Relative power window within which designs count as "equal
    /// power" for the Gamma tie-break.
    double power_tie_tolerance = 5e-3;
    /// Worker threads for the per-scaling mapping searches (each
    /// scaling is an independent search with its own derived seed).
    /// 1 = serial, 0 = one per hardware thread. Results are
    /// bit-identical for every thread count as long as no wall-clock
    /// budget (`total_time_budget_seconds` / `search.time_budget_seconds`)
    /// cuts searches short.
    std::size_t num_threads = 1;
};

/// Exploration outcome.
struct DseResult {
    /// Minimum-power feasible design (Gamma tie-break); nullopt when no
    /// scaling meets the deadline.
    std::optional<DsePoint> best;
    /// Every feasible design point evaluated.
    std::vector<DsePoint> feasible_points;
    /// Non-dominated subset over (power_mw, gamma).
    std::vector<DsePoint> pareto_front;
    std::uint64_t scalings_enumerated = 0;
    std::uint64_t scalings_skipped_infeasible = 0;
    std::uint64_t scalings_searched = 0;
};

/// Fig. 4 explorer.
class DesignSpaceExplorer {
public:
    explicit DesignSpaceExplorer(SerModel ser,
                                 ExposurePolicy policy = ExposurePolicy::full_duration);

    DseResult explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                      double deadline_seconds, const DseParams& params) const;

private:
    SerModel ser_;
    ExposurePolicy policy_;
};

/// Pareto filter over (power_mw, gamma); exposed for tests and benches.
/// Points whose power AND gamma agree within a relative epsilon are
/// deduplicated so the front is a clean staircase.
std::vector<DsePoint> pareto_front_of(const std::vector<DsePoint>& points);

} // namespace seamap
