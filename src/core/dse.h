// The full design-space exploration of the paper's Fig. 4: joint power
// minimization (voltage scaling, step 1) and reliability improvement
// (soft error-aware task mapping, step 2) under a real-time constraint,
// with iterative assessment (step 3).
//
// Scaling combinations are generated *lazily*, bound-sorted, by
// core/lazy_scaling_queue.h — the full Fig. 5 sequence is never
// materialized. Combinations whose execution-time lower bound already
// misses the deadline are skipped at pop time. The survivors run as a
// bound-driven branch-and-bound: each gets sound power/Gamma lower
// bounds (core/scaling_bounds.h), pops arrive in ascending power-bound
// order so good incumbents arrive early, and dominated combinations
// are *disposed of* before their searches are ever submitted (plus a
// worker-side skip for slots already in flight). For every combination
// that survives, the two-stage mapper (InitialSEAMapping +
// OptimizedMapping) minimizes the expected SEUs; the explorer records
// each feasible design's (P, Gamma) and finally reports
//   - the paper's pick: minimum power, ties broken by fewer SEUs
//     (applied to the Pareto front, where it is independent of
//     evaluation order and of pruning), and
//   - the Pareto front over (P, Gamma) for inspection.
//
// Pruning soundness: a combination is pruned only when an already-
// evaluated design beats its *lower bounds* strictly in both power and
// Gamma — every design it could contain is then strictly dominated, so
// `best` and `pareto_front` are bit-identical to the exhaustive run.
// Determinism: a sequential replay decides every slot in pop order
// (itself a pure function of the problem) from the recorded outcomes,
// so which combinations count as pruned (and therefore feasible_points
// and every counter) is a pure function of the problem — identical at
// every thread count. Pop-time disposal consults the replay front at a
// fixed lag (never the racing live front), and worker-side pruning
// against the replay front is only ever a subset of the full replay's
// (a search the replay prunes is discarded as speculative).
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "core/eval_context.h"
#include "core/optimized_mapping.h"
#include "reliability/design_eval.h"
#include "reliability/ser_model.h"
#include "reliability/seu_estimator.h"
#include "sched/mapping.h"
#include "taskgraph/task_graph.h"
#include "util/cancellation.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace seamap {

class SearchStrategy;   // core/search_strategy.h
class ProgressObserver; // core/observer.h
class DseCheckpointer;  // core/dse_checkpoint.h

/// One evaluated design point.
struct DsePoint {
    ScalingVector levels;
    Mapping mapping;
    DesignMetrics metrics;
};

/// Exploration knobs.
struct DseParams {
    /// Per-scaling mapping-search effort (Fig. 7 budget). Strategy
    /// factories receive this as their canonical knob set and honor
    /// what they understand (api/strategy.h); for *any* strategy,
    /// `search.seed` is the base from which per-scaling seeds derive.
    LocalSearchParams search;
    /// Overall wall-clock budget, seconds (0 = none): the paper's
    /// "chosen search-time".
    double total_time_budget_seconds = 0.0;
    /// Start stage 2 from the stage-1 greedy mapping (Fig. 6). Off =
    /// ablation: start from a round-robin mapping instead.
    bool use_initial_sea_mapping = true;
    /// Relative power window within which designs count as "equal
    /// power" for the Gamma tie-break.
    double power_tie_tolerance = 5e-3;
    /// Worker threads for the per-scaling mapping searches (each
    /// scaling is an independent search with its own derived seed).
    /// 1 = serial; 0 = one per hardware thread, clamped to
    /// std::thread::hardware_concurrency() in exactly one place
    /// (ThreadPool::resolve_thread_count). Results are bit-identical
    /// for every thread count — including 0 vs. the explicit hardware
    /// count — as long as no wall-clock budget
    /// (`total_time_budget_seconds` / `search.time_budget_seconds`)
    /// or cancellation cuts searches short.
    std::size_t num_threads = 1;
    /// Evaluation-path knobs for the per-scaling EvalContext each
    /// worker runs its search on (core/eval_context.h). Every setting
    /// — fast, memo/incremental disabled, or the naive reference —
    /// yields bit-identical results; the default is the full fast
    /// path. Exposed so the equivalence harness and the benches can
    /// pin the optimization against the naive path end-to-end.
    EvalOptions eval;
    /// Bound-driven pruning: skip scaling combinations whose power and
    /// Gamma lower bounds are strictly dominated by an already-found
    /// design. `best` and `pareto_front` are unaffected (bit-identical
    /// to an exhaustive run); `feasible_points` loses only provably
    /// dominated entries, deterministically at every thread count.
    /// Turn off to force the exhaustive Fig. 4 sweep.
    bool prune = true;
    /// Independent mapping searches per scaling combination (distinct
    /// derived seeds, deterministic best-of-K fold). Values > 1 keep
    /// the worker pool saturated when fewer runnable scalings than
    /// threads remain, trading the idle capacity for search quality.
    /// 0 is treated as 1. The fold keeps start 0's walk identical to
    /// multi_start == 1, and results stay bit-identical across thread
    /// counts for any fixed value.
    std::size_t multi_start = 1;
};

/// Exploration outcome.
struct DseResult {
    /// Minimum-power feasible design (Gamma tie-break); nullopt when no
    /// scaling meets the deadline.
    std::optional<DsePoint> best;
    /// Every feasible design point evaluated.
    std::vector<DsePoint> feasible_points;
    /// The minimum-power feasible design each scaling's walk passed
    /// through (power first, Gamma tie-break), parallel in enumeration
    /// order to `feasible_points`. Only populated when
    /// `DseParams::search.track_min_power` is on and the strategy
    /// tracks it (the Fig. 7 engine does); empty otherwise, so result
    /// schemas built on this struct are unchanged when the flag is off.
    /// Sharpens the incumbent front: a walk's min-Gamma pick can sit at
    /// a higher power than the cheapest feasible design it saw.
    std::vector<DsePoint> min_power_points;
    /// Non-dominated subset over (power_mw, gamma).
    std::vector<DsePoint> pareto_front;
    /// Size of the full Fig. 5 sequence for this architecture.
    std::uint64_t scalings_total = 0;
    /// Combinations whose evaluation actually started (gate applied).
    /// Equals scalings_total on a full run; smaller when cancellation
    /// or the total time budget stopped the exploration early —
    /// enumerated/total is the completed fraction.
    std::uint64_t scalings_enumerated = 0;
    std::uint64_t scalings_skipped_infeasible = 0;
    /// Gate-passing combinations whose mapping searches were actually
    /// submitted — i.e. not disposed of at pop time by the lazy
    /// enumeration's dominance check. Deterministic at every thread
    /// count; `scalings_searched <= scalings_emitted`, and the gap to
    /// `scalings_searched + scalings_pruned` is the work the lazy
    /// enumeration saved outright. Without pruning every gate passer
    /// is emitted.
    std::uint64_t scalings_emitted = 0;
    /// Combinations whose whole mapping space was provably dominated
    /// by an already-found design (DseParams::prune); their searches
    /// were skipped (or discarded as speculative). Deterministic for
    /// any thread count.
    std::uint64_t scalings_pruned = 0;
    /// Combinations whose mapping search ran and counted.
    std::uint64_t scalings_searched = 0;
};

/// Fig. 4 explorer. The per-scaling mapping search is pluggable: any
/// SearchStrategy (core/search_strategy.h) slots in — the paper's
/// Fig. 7 search, the SA baseline, or a custom backend registered by
/// name in api/strategy.h.
class DesignSpaceExplorer {
public:
    explicit DesignSpaceExplorer(SerModel ser,
                                 ExposurePolicy policy = ExposurePolicy::full_duration);

    /// Explore with the default Fig. 7 "optimized" strategy built from
    /// `params.search`.
    DseResult explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                      double deadline_seconds, const DseParams& params) const;

    /// Explore with an explicit strategy. `observer`, when non-null,
    /// streams per-scaling progress and incumbent (P, Gamma) designs
    /// (serialized, possibly from worker threads); `cancel`, when
    /// non-null, stops the exploration cooperatively — already-finished
    /// scalings are folded into the (partial) result. `checkpoint`,
    /// when non-null, supplies an already-decided slot prefix (load it
    /// beforehand — core/dse_checkpoint.h), receives every newly
    /// decided slot and flushes snapshots on its cadence; resuming a
    /// killed exploration reproduces the uninterrupted result
    /// byte-for-byte at any thread count.
    DseResult explore(const TaskGraph& graph, const MpsocArchitecture& arch,
                      double deadline_seconds, const DseParams& params,
                      const SearchStrategy& strategy,
                      ProgressObserver* observer = nullptr,
                      const CancellationToken* cancel = nullptr,
                      DseCheckpointer* checkpoint = nullptr) const;

private:
    SerModel ser_;
    ExposurePolicy policy_;
};

/// Pareto filter over (power_mw, gamma); exposed for tests and benches.
/// Points whose power AND gamma agree within a relative epsilon are
/// deduplicated so the front is a clean staircase.
std::vector<DsePoint> pareto_front_of(const std::vector<DsePoint>& points);

} // namespace seamap
