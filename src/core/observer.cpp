#include "core/observer.h"

namespace seamap {

ProgressObserver::~ProgressObserver() = default;

void ProgressObserver::on_explore_begin(std::size_t) {}
void ProgressObserver::on_scaling_done(const ScalingProgress&) {}
void ProgressObserver::on_incumbent(const DsePoint&) {}
void ProgressObserver::on_explore_end(const DseResult&) {}

} // namespace seamap
