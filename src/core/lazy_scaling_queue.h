// Bound-sorted *lazy* generation of the Fig. 5 scaling sequence for
// the explorer (core/dse.cpp): instead of materializing all
// C(C+L-1, L-1) combinations up front, slots are popped one at a time
// from a priority queue keyed by the ScalingBoundsModel power lower
// bound, expanding successors over the Fig. 5 neighbor structure
// (decrement one level) with a visited bitmap for dedup. At 10^4+ slot
// spaces this keeps memory proportional to the expansion frontier and
// lets the explorer dispose of dominated slots before their (per-case
// exponential) bound lists or searches are ever stored.
//
// Ordering contract. pop() returns every combination exactly once, in
// ascending (corner power lower bound, enumeration rank) order *over
// the generated frontier* — a pure function of the problem, identical
// on every run. Without a bounds model every key is zero and the tie
// rank makes pops exactly the Fig. 5 enumeration order: each
// combination below the all-slowest root has a neighbor parent with a
// smaller rank (incrementing the leftmost occurrence of any
// non-maximal level value), so by induction the minimum-rank unpopped
// combination is always already generated. With bounds the keys are
// not monotone along successor edges (speeding one core up can lower
// the corner — capacity admits cheaper powered-core cases), so the pop
// order is a deterministic *approximation* of the global bound order,
// which is all the explorer's sequential replay needs.
//
// The T_M feasibility gate is evaluated here from graph aggregates
// hoisted out of the per-combination loop (the same
// tm_lower_bound_from_aggregates formula tm_lower_bound_seconds
// evaluates, so gate decisions are bit-identical to the materialized
// sweep) — gate-failed slots still pop (the explorer records them as
// skipped) and still expand, but skip the bound computation entirely.
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "core/scaling_bounds.h"
#include "taskgraph/task_graph.h"
#include "util/float_compare.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

namespace seamap {

/// Incumbent (P, Gamma) staircase the branch-and-bound prunes against:
/// kept sorted by power ascending with strictly decreasing gamma. A
/// combination is prunable only when some incumbent beats its bounds
/// *strictly in both objectives* — then every design it could contain
/// is strictly dominated and can appear in neither the front nor the
/// pick (the front filter uses <=/<, so strict-both implies removal).
/// Insertion of a weakly dominated point is a no-op, which makes
/// dominance monotone as the front grows: once a bound pair is
/// dominated it stays dominated under any later insertions.
class DominanceFront {
public:
    void insert(double power, double gamma) {
        // First staircase point with power >= the new one.
        auto at = std::lower_bound(points_.begin(), points_.end(),
                                   std::pair<double, double>{power, -1.0});
        if (at != points_.begin() && std::prev(at)->second <= gamma)
            return; // weakly dominated by a cheaper point
        if (at != points_.end() && exactly_equal(at->first, power) && at->second <= gamma)
            return; // weakly dominated at equal power
        auto last = at;
        while (last != points_.end() && last->second >= gamma) ++last;
        at = points_.erase(at, last);
        points_.insert(at, {power, gamma});
    }

    /// True when some incumbent strictly beats (power_lb, gamma_lb) in
    /// both objectives.
    bool dominates(const ScalingBounds& bounds) const {
        // Last staircase point with power < power_lb carries the
        // minimum gamma among all of them.
        auto at = std::lower_bound(points_.begin(), points_.end(),
                                   std::pair<double, double>{bounds.power_mw_lb, -1.0});
        if (at == points_.begin()) return false;
        return std::prev(at)->second < bounds.gamma_lb;
    }

private:
    std::vector<std::pair<double, double>> points_;
};

/// Priority-queue generator of the Fig. 5 sequence (see file comment).
class LazyScalingQueue {
public:
    /// One generated scaling combination.
    struct Slot {
        /// Position in the Fig. 5 enumeration order (what the
        /// materialized sweep would have called its index).
        std::uint64_t rank = 0;
        ScalingVector levels;
        /// T_M lower-bound gate verdict (false = provably misses the
        /// deadline; the explorer records it as skipped_infeasible).
        bool gate_passed = false;
        /// Pointwise-minimum corner over the powered-core cases, the
        /// pop key; zero when no bounds model was supplied or the gate
        /// failed.
        ScalingBounds corner;
    };

    /// `graph` and `arch` must outlive the queue; `bounds` may be null
    /// (no keys — pops follow the exact enumeration order).
    /// `successor_shuffle_seed` perturbs the order successors are
    /// *pushed* (never the pop order, which the dedup + strict
    /// (key, rank) total order make push-order invariant); nonzero
    /// values exist for the dedup tests only.
    LazyScalingQueue(const TaskGraph& graph, const MpsocArchitecture& arch,
                     double deadline_seconds, const ScalingBoundsModel* bounds,
                     std::uint64_t successor_shuffle_seed = 0);

    /// Next slot in (corner power bound, rank) order, or nullopt once
    /// every combination has been returned.
    std::optional<Slot> pop();

    /// Size of the full Fig. 5 sequence: C(C+L-1, L-1).
    std::uint64_t total() const { return total_; }
    /// Combinations returned by pop() so far.
    std::uint64_t popped() const { return popped_; }
    /// Combinations pushed into the frontier so far (>= popped).
    std::uint64_t generated() const { return generated_; }

    /// Enumeration rank of `levels` (its index in the Fig. 5 order):
    /// counts the non-increasing tuples that sort descending-lex
    /// before it. Exposed for tests; the queue uses a precomputed
    /// table-driven equivalent.
    static std::uint64_t rank_of(const ScalingVector& levels, std::size_t level_count);

    /// The Fig. 5 neighbor structure the expansion walks: every cover
    /// of `levels` in the componentwise order, i.e. the result of
    /// decrementing the rightmost occurrence of each distinct level
    /// value > 1 (each stays non-increasing; together they generate
    /// the whole sequence from the all-slowest root). Appended to
    /// `out` in ascending position order.
    static void successors(const ScalingVector& levels, std::vector<ScalingVector>& out);

private:
    struct Node {
        double sort_key = 0.0;
        std::uint64_t rank = 0;
        ScalingVector levels;
        bool gate_passed = false;
        ScalingBounds corner;
    };
    struct NodeAfter {
        bool operator()(const Node& a, const Node& b) const {
            if (!exactly_equal(a.sort_key, b.sort_key)) return a.sort_key > b.sort_key;
            return a.rank > b.rank;
        }
    };

    std::uint64_t rank_of_tabled(const ScalingVector& levels) const;
    void generate(ScalingVector levels);
    bool visit(std::uint64_t rank);

    const TaskGraph& graph_;
    const MpsocArchitecture& arch_;
    double deadline_seconds_;
    const ScalingBoundsModel* bounds_;
    std::uint64_t shuffle_seed_;

    // Graph aggregates hoisted out of the per-combination T_M gate.
    double batches_ = 1.0;
    double critical_path_cycles_ = 0.0;
    double total_exec_cycles_ = 0.0;
    double biggest_task_cycles_ = 0.0;

    // Multiset-count table: counts_[m * (L + 1) + w] = number of
    // non-increasing tuples of length m over values [1..w], the
    // descending-lex rank increments.
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t popped_ = 0;
    std::uint64_t generated_ = 0;
    std::vector<std::uint64_t> visited_; ///< bitmap over ranks
    std::priority_queue<Node, std::vector<Node>, NodeAfter> frontier_;
    std::vector<ScalingVector> successor_scratch_;
};

} // namespace seamap
