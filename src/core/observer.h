// Progress streaming for the design-space exploration. A caller hands
// the explorer a ProgressObserver to watch scalings complete and the
// incumbent (P, Gamma) design improve while the search runs — e.g. to
// drive a progress bar, stream partial results over a wire, or decide
// to cancel early through the companion CancellationToken
// (util/cancellation.h). Re-exported to API users via api/observer.h.
//
// Callback discipline: the explorer serializes all callbacks behind one
// mutex, so implementations need no locking of their own, but they may
// be invoked from worker threads (never concurrently). With
// num_threads > 1 the *order* in which scalings complete is
// nondeterministic; the enumeration `index` identifies each one. The
// final DseResult is unaffected by anything an observer does.
#pragma once

#include "arch/scaling_enumerator.h"
#include "core/dse.h"
#include "reliability/design_eval.h"

#include <cstddef>

namespace seamap {

/// Completion report for one scaling combination.
struct ScalingProgress {
    /// Position in the Fig. 5 enumeration order.
    std::size_t index = 0;
    /// Total combinations in this exploration.
    std::size_t total = 0;
    ScalingVector levels;
    enum class Outcome {
        skipped_infeasible, ///< failed the T_M lower-bound gate
        pruned,             ///< bounds dominated by an incumbent; search skipped
        searched_no_design, ///< searched, no feasible mapping found
        feasible,           ///< searched, `metrics` holds the design's scores
    };
    Outcome outcome = Outcome::skipped_infeasible;
    /// Valid when outcome == feasible.
    DesignMetrics metrics;
};

/// Override any subset; the defaults do nothing.
class ProgressObserver {
public:
    virtual ~ProgressObserver();

    /// Exploration is starting; `total_scalings` combinations will be
    /// gated/searched (fewer complete if cancelled).
    virtual void on_explore_begin(std::size_t total_scalings);

    /// One scaling combination finished (in completion order). The
    /// streamed outcome is the worker's live view: with pruning on, a
    /// combination reported `feasible` here can still be dropped from
    /// the final feasible_points when the deterministic merge replay
    /// proves it dominated (its design never reaches the front or the
    /// pick either way).
    virtual void on_scaling_done(const ScalingProgress& progress);

    /// A new best-so-far feasible design: the paper's selection rule
    /// (minimum power, Gamma tie-break) applied to the Pareto front of
    /// everything completed so far. Because dominated designs never
    /// move a Pareto front, the last streamed incumbent equals the
    /// final `best` bit-for-bit at any thread count, pruned or not
    /// (absent cancellation).
    virtual void on_incumbent(const DsePoint& incumbent);

    /// Exploration finished; `result` is the value explore() returns.
    virtual void on_explore_end(const DseResult& result);
};

} // namespace seamap
