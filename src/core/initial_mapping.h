// Stage 1 of the proposed soft error-aware task mapping: the greedy
// constructive InitialSEAMapping of the paper's Fig. 6.
//
// The algorithm grows one core at a time. Starting from the graph's
// source task, it repeatedly maps the *dependent* of the current task
// that adds the fewest expected SEUs to the core (dependents share
// registers with their producer, so following dependency edges is how
// the greedy localizes shared state), until either the core's busy
// time would exceed the real-time budget T_Mref or too few unmapped
// tasks remain to populate the other cores. Tasks bypassed along the
// way wait in a queue Q and seed the next cores; whatever remains after
// core C-1 lands on the last core.
#pragma once

#include "reliability/design_eval.h"
#include "sched/mapping.h"

namespace seamap {

/// Greedy SEU-aware constructive mapping (Fig. 6). Always returns a
/// complete mapping; feasibility is the job of stage 2.
Mapping initial_sea_mapping(const EvaluationContext& ctx);

} // namespace seamap
