#include "sim/campaign.h"

#include "sim/campaign_checkpoint.h"
#include "util/cancellation.h"
#include "util/rng.h"
#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace seamap {

std::string_view fault_site_name(FaultSite site) {
    switch (site) {
    case FaultSite::register_file: return "register_file";
    case FaultSite::pipeline: return "pipeline";
    case FaultSite::memory: return "memory";
    }
    throw std::invalid_argument("fault_site_name: unknown site");
}

double FaultSiteWeights::of(FaultSite site) const {
    switch (site) {
    case FaultSite::register_file: return register_file;
    case FaultSite::pipeline: return pipeline;
    case FaultSite::memory: return memory;
    }
    throw std::invalid_argument("FaultSiteWeights: unknown site");
}

namespace {

void validate_config(const CampaignConfig& config) {
    if (config.trials == 0)
        throw std::invalid_argument("CampaignEngine: campaign needs >= 1 trial");
    if (config.shard_size == 0)
        throw std::invalid_argument("CampaignEngine: shard_size must be >= 1");
    if (config.weights.register_file < 0.0 || config.weights.pipeline < 0.0 ||
        config.weights.memory < 0.0)
        throw std::invalid_argument("CampaignEngine: site weights must be >= 0");
    if (config.pipeline_bits < 0.0)
        throw std::invalid_argument("CampaignEngine: pipeline_bits must be >= 0");
}

/// Shard-local accumulators; one slot per shard, written only by the
/// worker that owns the shard, merged in shard order afterwards. Every
/// field is an exact integer, so the merged result is independent of
/// the shard schedule.
struct ShardAccum {
    ExactMoments total;
    std::array<ExactMoments, k_fault_site_count> per_site;
    std::vector<std::uint64_t> hits_per_core;
    std::vector<std::uint64_t> hits_per_task;
};

} // namespace

CampaignEngine::CampaignEngine(SerModel ser, CampaignConfig config)
    : ser_(std::move(ser)), config_(config) {
    validate_config(config_);
}

std::vector<FaultSource> CampaignEngine::build_sources(const TaskGraph& graph,
                                                       const Mapping& mapping,
                                                       const MpsocArchitecture& arch,
                                                       const ScalingVector& levels,
                                                       const Schedule& schedule) const {
    arch.validate_scaling(levels);
    const RegisterFile& regs = graph.register_file();
    // Per-core physical rates, hoisted once per campaign.
    std::vector<double> rate(arch.core_count(), 0.0);
    for (std::size_t c = 0; c < rate.size(); ++c)
        rate[c] = ser_.ser_per_bit_second(arch.scaling_table().vdd(levels[c]));

    std::vector<FaultSource> sources;

    // Site 1: register file — the eq. (3) exposure profile under the
    // configured policy. Union residency has no single owning task.
    const auto profile =
        build_exposure_profile(graph, mapping, arch, schedule, config_.policy);
    for (const auto& interval : profile) {
        FaultSource source;
        source.site = FaultSite::register_file;
        source.core = interval.core;
        source.task = k_no_task;
        source.mean_seus = static_cast<double>(interval.live.bits_in(regs)) *
                           interval.duration_seconds * rate[interval.core] *
                           config_.weights.register_file;
        sources.push_back(source);
    }

    // Site 2: pipeline — latch bits live on a core exactly while it
    // executes a task, summed over all batch iterations.
    const double batches = static_cast<double>(graph.batch_count());
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        const CoreId core = mapping.core_of(t);
        const double busy = (schedule.entries[t].finish_seconds -
                             schedule.entries[t].start_seconds) *
                            batches;
        FaultSource source;
        source.site = FaultSite::pipeline;
        source.core = core;
        source.task = t;
        source.mean_seus =
            config_.pipeline_bits * busy * rate[core] * config_.weights.pipeline;
        sources.push_back(source);
    }

    // Site 3: memory residency — the task's register image stays
    // resident for the whole run [0, T_M] on its core's memory.
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        const CoreId core = mapping.core_of(t);
        FaultSource source;
        source.site = FaultSite::memory;
        source.core = core;
        source.task = t;
        source.mean_seus = static_cast<double>(graph.task(t).registers.bits_in(regs)) *
                           schedule.total_time_seconds * rate[core] *
                           config_.weights.memory;
        sources.push_back(source);
    }
    return sources;
}

CampaignReport CampaignEngine::run(const TaskGraph& graph, const Mapping& mapping,
                                   const MpsocArchitecture& arch,
                                   const ScalingVector& levels,
                                   const Schedule& schedule) const {
    return run(graph, mapping, arch, levels, schedule, nullptr, nullptr);
}

CampaignReport CampaignEngine::run(const TaskGraph& graph, const Mapping& mapping,
                                   const MpsocArchitecture& arch,
                                   const ScalingVector& levels, const Schedule& schedule,
                                   const CancellationToken* cancel,
                                   CampaignCheckpointer* checkpoint) const {
    const std::vector<FaultSource> sources =
        build_sources(graph, mapping, arch, levels, schedule);
    const std::uint64_t trials = config_.trials;
    const std::uint64_t shard_size = config_.shard_size;
    const std::uint64_t shard_count = (trials + shard_size - 1) / shard_size;
    const std::size_t cores = arch.core_count();
    const std::size_t tasks = graph.task_count();

    // Shards restored from a checkpoint are skipped outright; workers
    // consult an immutable snapshot of the bitmap taken before dispatch.
    if (checkpoint != nullptr) checkpoint->initialize(shard_count, cores, tasks);
    const std::vector<std::uint8_t> already_done =
        checkpoint != nullptr ? checkpoint->done_snapshot() : std::vector<std::uint8_t>();

    // Pre-assigned result slots: worker s writes only shards[s]; the
    // deterministic merge below folds them in shard-index order (and
    // since every accumulator is exact, any fold order would produce
    // the same bytes anyway — which is also why restored shards can be
    // merged as one opaque partial).
    std::vector<ShardAccum> shards(shard_count);
    std::vector<std::uint8_t> live_completed(shard_count, 0);
    const std::uint64_t seed = config_.seed;
    parallel_for_index(
        static_cast<std::size_t>(shard_count), config_.num_threads,
        [&](std::size_t shard) {
            if (!already_done.empty() && already_done[shard] != 0) return;
            ShardAccum& acc = shards[shard];
            acc.hits_per_core.assign(cores, 0);
            acc.hits_per_task.assign(tasks, 0);
            const Rng root(seed);
            const std::uint64_t lo = static_cast<std::uint64_t>(shard) * shard_size;
            const std::uint64_t hi = std::min(trials, lo + shard_size);
            std::array<std::uint64_t, k_fault_site_count> trial_site{};
            for (std::uint64_t trial = lo; trial < hi; ++trial) {
                // A stop request abandons the shard un-recorded: a
                // partially-run shard must never enter the partial.
                if (cancel != nullptr && cancel->stop_requested()) return;
                // The stream is a pure function of (seed, trial): any
                // shard schedule replays identical draws per trial.
                Rng stream = root.fork_at(trial);
                trial_site.fill(0);
                std::uint64_t trial_total = 0;
                for (const FaultSource& source : sources) {
                    const std::uint64_t hits = stream.poisson(source.mean_seus);
                    if (hits == 0) continue;
                    trial_site[static_cast<std::size_t>(source.site)] += hits;
                    trial_total += hits;
                    acc.hits_per_core[source.core] += hits;
                    if (source.task != k_no_task) acc.hits_per_task[source.task] += hits;
                }
                for (std::size_t s = 0; s < k_fault_site_count; ++s)
                    acc.per_site[s].add(trial_site[s]);
                acc.total.add(trial_total);
            }
            live_completed[shard] = 1;
            if (checkpoint != nullptr) {
                checkpoint->record_shard(shard, acc.total, acc.per_site,
                                         acc.hits_per_core, acc.hits_per_task);
                checkpoint->maybe_flush();
            }
        });

    CampaignReport report;
    report.trials = trials;
    report.shard_size = shard_size;
    report.shards = shard_count;
    report.seed = seed;
    for (const FaultSource& source : sources) {
        report.analytic_gamma += source.mean_seus;
        report.sites[static_cast<std::size_t>(source.site)].analytic_gamma +=
            source.mean_seus;
    }
    if (checkpoint != nullptr) {
        // The checkpointer already holds restored + live shards as one
        // exact merged partial.
        checkpoint->export_to(report);
        report.shards_completed = checkpoint->completed();
        checkpoint->flush();
        return report;
    }
    report.hits_per_core.assign(cores, 0);
    report.hits_per_task.assign(tasks, 0);
    for (std::uint64_t s = 0; s < shard_count; ++s) {
        if (live_completed[s] == 0) continue; // cancellation cut it short
        const ShardAccum& acc = shards[s];
        report.total_stats.merge(acc.total);
        for (std::size_t site = 0; site < k_fault_site_count; ++site)
            report.sites[site].stats.merge(acc.per_site[site]);
        for (std::size_t c = 0; c < cores; ++c)
            report.hits_per_core[c] += acc.hits_per_core[c];
        for (std::size_t t = 0; t < tasks; ++t)
            report.hits_per_task[t] += acc.hits_per_task[t];
        ++report.shards_completed;
    }
    return report;
}

} // namespace seamap
