// Crash-safe checkpoint/resume for sharded fault-injection campaigns
// (sim/campaign.h), built on the generic snapshot layer
// (util/checkpoint.h).
//
// Why resume is trivially exact here: trial t always draws from the
// order-invariant stream Rng(seed).fork_at(t), and every merged
// accumulator is an exact integer moment (util/stats.h ExactMoments),
// so shard merges are associative AND commutative. The checkpoint
// stores one merged partial (total + per-site moments, per-core and
// per-task hit counts) plus the completed-shard bitmap; a resumed run
// computes only the missing shards and folds them in, reproducing the
// uninterrupted report byte-for-byte at any thread count and any
// completion order.
//
// Snapshots are keyed by campaign_state_hash() — a content hash of the
// design (graph, mapping, architecture, scaling, schedule), the SER
// model and the campaign shape (trials, shard size, seed, policy,
// weights). num_threads is excluded: results never depend on it.
// shard_size IS included — the bitmap is indexed by shard, so a
// snapshot is only resumable at the shard size that wrote it.
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "reliability/ser_model.h"
#include "sched/list_scheduler.h"
#include "sched/mapping.h"
#include "sim/campaign.h"
#include "taskgraph/task_graph.h"
#include "util/cancellation.h"
#include "util/checkpoint.h"
#include "util/stats.h"

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace seamap {

/// Content hash of the campaign inputs that determine the byte-exact
/// report (see file comment for what is deliberately excluded).
std::uint64_t campaign_state_hash(const TaskGraph& graph, const Mapping& mapping,
                                  const MpsocArchitecture& arch, const ScalingVector& levels,
                                  const Schedule& schedule, const SerModel& ser,
                                  const CampaignConfig& config);

/// What load() found in an existing snapshot.
struct CampaignResumeInfo {
    std::uint64_t shards_completed = 0;
    std::uint64_t shard_count = 0;
    bool from_fallback = false;
};

/// Accumulates completed shards into one exact merged partial and
/// persists it as crash-safe snapshots. The campaign engine records
/// every finished shard here (thread-safe); flushing happens on the
/// configured cadence and on demand.
class CampaignCheckpointer {
public:
    CampaignCheckpointer(std::string path, std::uint64_t state_hash);

    /// Flush cadence: persist after every `every_shards` newly recorded
    /// shards (0 = never by count) and whenever `interval_seconds`
    /// elapsed since the last flush (0 = never by time).
    void set_cadence(std::uint64_t every_shards, double interval_seconds);

    /// Load the snapshot at path() into this accumulator. Returns
    /// nullopt when no snapshot exists; throws
    /// Error(checkpoint_corrupt/_mismatch) as documented on
    /// load_checkpoint().
    std::optional<CampaignResumeInfo> load();

    /// Shape the accumulators for this run; verifies any loaded state
    /// against the expected shapes (Error(checkpoint_corrupt) on
    /// disagreement — a hash-matched snapshot cannot legitimately
    /// differ). Must run before record_shard()/done_snapshot().
    void initialize(std::uint64_t shard_count, std::size_t core_count,
                    std::size_t task_count);

    /// Copy of the completed-shard bitmap (1 = already merged); taken
    /// once before dispatch so workers consult an immutable snapshot.
    std::vector<std::uint8_t> done_snapshot() const;

    /// Fold one finished shard into the partial (exact merges) and mark
    /// it done. Thread-safe; ignores shards already recorded.
    void record_shard(std::uint64_t shard, const ExactMoments& total,
                      const std::array<ExactMoments, k_fault_site_count>& per_site,
                      const std::vector<std::uint64_t>& hits_per_core,
                      const std::vector<std::uint64_t>& hits_per_task);

    /// Export the merged partial into a report's accumulators.
    void export_to(CampaignReport& report) const;

    std::uint64_t completed() const;

    /// Persist when the cadence is due and new shards were recorded.
    void maybe_flush();
    /// Persist now when new shards were recorded since the last flush.
    void flush();

    /// Delete the snapshot files.
    void remove();

    const std::string& path() const { return path_; }

    /// Test hook: invoked after each record_shard (outside the internal
    /// lock) with the new completed count — lets tests stop a campaign
    /// at a deterministic point. Not used in production.
    std::function<void(std::uint64_t)> on_shard_recorded;

private:
    void flush_locked();

    std::string path_;
    std::uint64_t state_hash_;
    mutable std::mutex mutex_;
    bool shaped_ = false;
    std::uint64_t shard_count_ = 0;
    std::vector<std::uint8_t> done_;
    std::uint64_t completed_ = 0;
    ExactMoments total_;
    std::array<ExactMoments, k_fault_site_count> per_site_;
    std::vector<std::uint64_t> hits_per_core_;
    std::vector<std::uint64_t> hits_per_task_;
    std::uint64_t flushed_completed_ = 0;
    std::uint64_t every_shards_ = 0;
    IntervalTimer timer_{0.0};
};

} // namespace seamap
