// Sharded fault-injection campaign engine — the measurement-side
// counterpart of the analytic Γ model (eq. 3) at statistically
// meaningful trial counts. Trials are cut into fixed-size blocks
// (shards) dispatched on the project thread pool; trial t always draws
// from the order-invariant stream Rng(seed).fork_at(t) and every
// accumulator merged across shards is an exact integer moment
// (util/stats.h ExactMoments), so the merged report is byte-identical
// for ANY thread count and ANY shard size — the PR 1/4
// enumeration-order merge discipline applied to statistics.
//
// Faults are injected at differentiated sites, following the
// component-level triage of CFA-style frameworks (register file vs
// pipeline vs memory residency):
//
//  - register_file: the exposure profile of sim/exposure.h (live
//    register bits under the configured policy) — weight 1 reproduces
//    the analytic Γ of eq. (3) exactly in expectation, which is the
//    campaign's validation surface against SeuEstimator;
//  - pipeline: per-task latch exposure — `pipeline_bits` of pipeline
//    state are vulnerable on a core exactly while it executes a task,
//    attributed to that task;
//  - memory: residency exposure — a task's register image is resident
//    in memory for the whole run [0, T_M], attributed to the task.
//
// Each site scales the physical SER by its own weight on top of
// SerModel; hits are attributed per task, per core and per component,
// and every site reports mean / stdev / 95% CI over the per-trial hit
// counts.
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "reliability/ser_model.h"
#include "sched/list_scheduler.h"
#include "sched/mapping.h"
#include "sim/exposure.h"
#include "taskgraph/task_graph.h"
#include "util/stats.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace seamap {

class CancellationToken;    // util/cancellation.h
class CampaignCheckpointer; // sim/campaign_checkpoint.h

/// Differentiated fault-site components.
enum class FaultSite : std::uint8_t {
    register_file = 0,
    pipeline = 1,
    memory = 2,
};

inline constexpr std::size_t k_fault_site_count = 3;

/// Stable lower-case name ("register_file", "pipeline", "memory").
std::string_view fault_site_name(FaultSite site);

/// Per-site multiplier on the physical SER rate. register_file at 1.0
/// makes that site's expectation exactly the analytic Γ of eq. (3);
/// the pipeline/memory defaults reflect the smaller latch cross
/// section and the stronger protection (ECC) of memory arrays.
struct FaultSiteWeights {
    double register_file = 1.0;
    double pipeline = 0.25;
    double memory = 0.05;

    double of(FaultSite site) const;
};

/// Campaign shape: trial count, shard granularity, parallelism, seed
/// and the fault-site model. Results never depend on num_threads or
/// shard_size (only throughput does).
struct CampaignConfig {
    std::uint64_t trials = 10'000;
    /// Trials per dispatched shard (block). Must be >= 1.
    std::uint64_t shard_size = 1024;
    /// Worker threads; 0 means hardware concurrency.
    std::size_t num_threads = 1;
    std::uint64_t seed = 1;
    SimExposurePolicy policy = SimExposurePolicy::full_duration;
    FaultSiteWeights weights;
    /// Pipeline latch bits vulnerable on a core while it executes.
    double pipeline_bits = 512.0;
};

/// Sentinel task id for fault sources not attributable to one task
/// (union register residency).
inline constexpr TaskId k_no_task = std::numeric_limits<TaskId>::max();

/// One Poisson fault source: a component's bits on one core, exposed
/// for a fixed duration, with the campaign-invariant Poisson mean
/// precomputed once (bits x seconds x site-weighted SER rate).
struct FaultSource {
    FaultSite site = FaultSite::register_file;
    CoreId core = 0;
    TaskId task = k_no_task;
    double mean_seus = 0.0;
};

/// Per-site results: the analytic expectation and the exact-moment
/// statistics (mean / stdev / 95% CI) over per-trial hit counts.
struct SiteReport {
    double analytic_gamma = 0.0;
    ExactMoments stats;
};

/// Merged campaign result. All counters are exact integers folded
/// deterministically across shards; byte-identical for any thread
/// count and shard schedule.
struct CampaignReport {
    std::uint64_t trials = 0;
    std::uint64_t shard_size = 0;
    std::uint64_t shards = 0;
    /// Shards actually merged into the statistics. Equals `shards` on a
    /// full run; smaller when cancellation stopped the campaign early
    /// (the partial lives in the checkpoint, not in a usable report).
    std::uint64_t shards_completed = 0;
    std::uint64_t seed = 0;
    /// Weighted expectation summed over every site.
    double analytic_gamma = 0.0;
    /// Per-trial totals over all sites.
    ExactMoments total_stats;
    /// Indexed by FaultSite.
    std::array<SiteReport, k_fault_site_count> sites;
    /// Hit attribution summed over all trials and sites.
    std::vector<std::uint64_t> hits_per_core;
    /// Task-attributable hits (pipeline + memory sites); union register
    /// residency has no single owning task and lands only in per-core.
    std::vector<std::uint64_t> hits_per_task;

    const SiteReport& site(FaultSite s) const {
        return sites[static_cast<std::size_t>(s)];
    }
};

/// The campaign engine: bind an SER model and a configuration, then
/// run scheduled designs through it.
class CampaignEngine {
public:
    CampaignEngine(SerModel ser, CampaignConfig config);

    const SerModel& ser_model() const { return ser_; }
    const CampaignConfig& config() const { return config_; }

    /// The campaign-invariant fault-source table for one scheduled
    /// design: every (site, core, task) exposure with its precomputed
    /// Poisson mean, in the fixed enumeration order trials draw in
    /// (register-file profile order, then pipeline by task id, then
    /// memory by task id). Exposed for tests and attribution tooling.
    std::vector<FaultSource> build_sources(const TaskGraph& graph, const Mapping& mapping,
                                           const MpsocArchitecture& arch,
                                           const ScalingVector& levels,
                                           const Schedule& schedule) const;

    /// Run the sharded campaign over a scheduled design.
    CampaignReport run(const TaskGraph& graph, const Mapping& mapping,
                       const MpsocArchitecture& arch, const ScalingVector& levels,
                       const Schedule& schedule) const;

    /// Resumable variant. `cancel`, when non-null, stops the campaign
    /// between shards (completed shards keep counting); `checkpoint`,
    /// when non-null, supplies already-completed shards (load it
    /// beforehand), receives every shard finished here and flushes on
    /// its cadence — because all merges are exact integer moments, the
    /// final report is byte-identical to the uninterrupted run whatever
    /// subset of shards was restored. With both null this is exactly
    /// run().
    CampaignReport run(const TaskGraph& graph, const Mapping& mapping,
                       const MpsocArchitecture& arch, const ScalingVector& levels,
                       const Schedule& schedule, const CancellationToken* cancel,
                       CampaignCheckpointer* checkpoint) const;

private:
    SerModel ser_;
    CampaignConfig config_;
};

} // namespace seamap
