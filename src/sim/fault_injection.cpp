#include "sim/fault_injection.h"

#include <stdexcept>

namespace seamap {

FaultInjector::FaultInjector(SerModel ser, SimExposurePolicy policy, bool sample_locations)
    : ser_(std::move(ser)), policy_(policy), sample_locations_(sample_locations) {}

std::vector<double> FaultInjector::core_rate_table(const MpsocArchitecture& arch,
                                                   const ScalingVector& levels) const {
    arch.validate_scaling(levels);
    std::vector<double> rates(arch.core_count(), 0.0);
    for (std::size_t c = 0; c < rates.size(); ++c)
        rates[c] = ser_.ser_per_bit_second(arch.scaling_table().vdd(levels[c]));
    return rates;
}

InjectionResult FaultInjector::inject_profile_rates(const std::vector<ExposureInterval>& profile,
                                                    const TaskGraph& graph,
                                                    const MpsocArchitecture& arch,
                                                    const std::vector<double>& core_rates,
                                                    Rng& rng) const {
    const RegisterFile& regs = graph.register_file();

    InjectionResult result;
    result.per_core.assign(arch.core_count(), 0);
    if (sample_locations_) result.per_register.assign(regs.size(), 0);

    for (const auto& interval : profile) {
        if (interval.core >= arch.core_count())
            throw std::out_of_range("FaultInjector: bad core id in profile");
        if (interval.duration_seconds < 0.0)
            throw std::invalid_argument("FaultInjector: negative exposure duration");
        const double rate = core_rates[interval.core];
        if (sample_locations_) {
            // Independent Poisson streams per register; the sum of the
            // per-register draws is exactly the interval's Poisson count.
            interval.live.for_each([&](RegisterId rid) {
                const double mean =
                    static_cast<double>(regs.bits(rid)) * interval.duration_seconds * rate;
                const std::uint64_t hits = rng.poisson(mean);
                result.per_register[rid] += hits;
                result.per_core[interval.core] += hits;
                result.total_seus += hits;
            });
        } else {
            const double bits = static_cast<double>(interval.live.bits_in(regs));
            const std::uint64_t hits = rng.poisson(bits * interval.duration_seconds * rate);
            result.per_core[interval.core] += hits;
            result.total_seus += hits;
        }
    }
    return result;
}

InjectionResult FaultInjector::inject_profile(const std::vector<ExposureInterval>& profile,
                                              const TaskGraph& graph,
                                              const MpsocArchitecture& arch,
                                              const ScalingVector& levels, Rng& rng) const {
    // The rate for an interval is a pure function of its core's Vdd, so
    // tabulating per core up front is bit-identical to recomputing per
    // interval — the table entry IS ser_per_bit_second(vdd(level)).
    const std::vector<double> rates = core_rate_table(arch, levels);
    return inject_profile_rates(profile, graph, arch, rates, rng);
}

InjectionResult FaultInjector::inject(const TaskGraph& graph, const Mapping& mapping,
                                      const MpsocArchitecture& arch, const ScalingVector& levels,
                                      const Schedule& schedule, Rng& rng) const {
    const auto profile = build_exposure_profile(graph, mapping, arch, schedule, policy_);
    return inject_profile(profile, graph, arch, levels, rng);
}

CampaignSummary FaultInjector::run_campaign(const TaskGraph& graph, const Mapping& mapping,
                                            const MpsocArchitecture& arch,
                                            const ScalingVector& levels,
                                            const Schedule& schedule, std::uint64_t trials,
                                            std::uint64_t seed) const {
    if (trials == 0) throw std::invalid_argument("FaultInjector: campaign needs >= 1 trial");
    // Campaign-invariant state hoisted out of the trial loop: the
    // exposure profile, the scaling validation and the per-core SER
    // rates are all independent of the trial index.
    const auto profile = build_exposure_profile(graph, mapping, arch, schedule, policy_);
    const std::vector<double> rates = core_rate_table(arch, levels);

    CampaignSummary summary;
    summary.trials = trials;
    summary.analytic_gamma = expected_seus(profile, graph, arch, levels, ser_);
    const Rng root(seed);
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        // fork_at: trial streams are a pure function of (seed, trial),
        // independent of fork call order — the same streams a sharded
        // campaign reproduces for any shard schedule.
        Rng stream = root.fork_at(trial);
        const auto result = inject_profile_rates(profile, graph, arch, rates, stream);
        summary.seu_stats.add(static_cast<double>(result.total_seus));
    }
    return summary;
}

} // namespace seamap
