#include "sim/fault_injection.h"

#include <stdexcept>

namespace seamap {

FaultInjector::FaultInjector(SerModel ser, SimExposurePolicy policy, bool sample_locations)
    : ser_(std::move(ser)), policy_(policy), sample_locations_(sample_locations) {}

InjectionResult FaultInjector::inject_profile(const std::vector<ExposureInterval>& profile,
                                              const TaskGraph& graph,
                                              const MpsocArchitecture& arch,
                                              const ScalingVector& levels, Rng& rng) const {
    arch.validate_scaling(levels);
    const RegisterFile& regs = graph.register_file();

    InjectionResult result;
    result.per_core.assign(arch.core_count(), 0);
    if (sample_locations_) result.per_register.assign(regs.size(), 0);

    for (const auto& interval : profile) {
        if (interval.core >= arch.core_count())
            throw std::out_of_range("FaultInjector: bad core id in profile");
        if (interval.duration_seconds < 0.0)
            throw std::invalid_argument("FaultInjector: negative exposure duration");
        const double rate =
            ser_.ser_per_bit_second(arch.scaling_table().vdd(levels[interval.core]));
        if (sample_locations_) {
            // Independent Poisson streams per register; the sum of the
            // per-register draws is exactly the interval's Poisson count.
            interval.live.for_each([&](RegisterId rid) {
                const double mean =
                    static_cast<double>(regs.bits(rid)) * interval.duration_seconds * rate;
                const std::uint64_t hits = rng.poisson(mean);
                result.per_register[rid] += hits;
                result.per_core[interval.core] += hits;
                result.total_seus += hits;
            });
        } else {
            const double bits = static_cast<double>(interval.live.bits_in(regs));
            const std::uint64_t hits = rng.poisson(bits * interval.duration_seconds * rate);
            result.per_core[interval.core] += hits;
            result.total_seus += hits;
        }
    }
    return result;
}

InjectionResult FaultInjector::inject(const TaskGraph& graph, const Mapping& mapping,
                                      const MpsocArchitecture& arch, const ScalingVector& levels,
                                      const Schedule& schedule, Rng& rng) const {
    const auto profile = build_exposure_profile(graph, mapping, arch, schedule, policy_);
    return inject_profile(profile, graph, arch, levels, rng);
}

CampaignSummary FaultInjector::run_campaign(const TaskGraph& graph, const Mapping& mapping,
                                            const MpsocArchitecture& arch,
                                            const ScalingVector& levels,
                                            const Schedule& schedule, std::uint64_t trials,
                                            std::uint64_t seed) const {
    if (trials == 0) throw std::invalid_argument("FaultInjector: campaign needs >= 1 trial");
    const auto profile = build_exposure_profile(graph, mapping, arch, schedule, policy_);

    CampaignSummary summary;
    summary.trials = trials;
    summary.analytic_gamma = expected_seus(profile, graph, arch, levels, ser_);
    Rng root(seed);
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        Rng stream = root.fork(trial);
        const auto result = inject_profile(profile, graph, arch, levels, stream);
        summary.seu_stats.add(static_cast<double>(result.total_seus));
    }
    return summary;
}

} // namespace seamap
