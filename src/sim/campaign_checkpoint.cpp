#include "sim/campaign_checkpoint.h"

#include "util/error.h"
#include "util/strings.h"

#include <utility>

namespace seamap {

namespace {

// --- payload encoding -----------------------------------------------
// Fixed payload of 5 + k_fault_site_count lines:
//   shards <count> completed <n>
//   done <hex bitmap>                  # byte j bit k = shard 8j+k
//   total <ExactMomentsState>          # 7 decimal u64 fields
//   site <i> <ExactMomentsState>       # one per fault site
//   cores <csv u64>
//   tasks <csv u64>
constexpr std::size_t k_payload_lines = 5 + k_fault_site_count;
// Every field is an integer, so the round-trip is exact by
// construction — no float rendering is involved anywhere.

std::string hex_of_bitmap(const std::vector<std::uint8_t>& done) {
    static constexpr char digits[] = "0123456789abcdef";
    const std::size_t bytes = (done.size() + 7) / 8;
    std::string out(bytes * 2, '0');
    for (std::size_t i = 0; i < done.size(); ++i) {
        if (done[i] == 0) continue;
        const std::size_t byte = i / 8;
        const unsigned bit = static_cast<unsigned>(i % 8);
        const std::size_t nibble = byte * 2 + (bit < 4 ? 1 : 0);
        const unsigned value =
            static_cast<unsigned>(out[nibble] >= 'a' ? out[nibble] - 'a' + 10
                                                     : out[nibble] - '0');
        out[nibble] = digits[value | (1u << (bit % 4))];
    }
    return out;
}

std::vector<std::uint8_t> bitmap_of_hex(const std::string& path, std::string_view hex,
                                        std::uint64_t shard_count) {
    if (hex.size() != ((shard_count + 7) / 8) * 2)
        throw Error(ErrorCategory::checkpoint_corrupt,
                    "corrupt campaign checkpoint payload: bitmap length mismatch", path);
    std::vector<std::uint8_t> done(shard_count, 0);
    for (std::uint64_t i = 0; i < shard_count; ++i) {
        const std::uint64_t byte = i / 8;
        const unsigned bit = static_cast<unsigned>(i % 8);
        const char c = hex[byte * 2 + (bit < 4 ? 1 : 0)];
        unsigned value = 0;
        if (c >= '0' && c <= '9')
            value = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value = static_cast<unsigned>(c - 'a' + 10);
        else
            throw Error(ErrorCategory::checkpoint_corrupt,
                        "corrupt campaign checkpoint payload: non-hex bitmap", path);
        if ((value >> (bit % 4)) & 1u) done[i] = 1;
    }
    return done;
}

void encode_moments(std::string& out, const ExactMomentsState& s) {
    out += ' ' + std::to_string(s.count);
    out += ' ' + std::to_string(s.min);
    out += ' ' + std::to_string(s.max);
    out += ' ' + std::to_string(s.sum_hi);
    out += ' ' + std::to_string(s.sum_lo);
    out += ' ' + std::to_string(s.sum_sq_hi);
    out += ' ' + std::to_string(s.sum_sq_lo);
}

[[noreturn]] void fail_decode(const std::string& path, const std::string& why) {
    throw Error(ErrorCategory::checkpoint_corrupt,
                "corrupt campaign checkpoint payload: " + why, path);
}

std::uint64_t field_u64(const std::string& path, const std::vector<std::string>& fields,
                        std::size_t at) {
    try {
        return parse_u64(fields.at(at));
    } catch (const std::exception&) {
        fail_decode(path, "non-numeric field");
    }
}

ExactMomentsState decode_moments(const std::string& path,
                                 const std::vector<std::string>& fields, std::size_t at) {
    ExactMomentsState s;
    s.count = field_u64(path, fields, at);
    s.min = field_u64(path, fields, at + 1);
    s.max = field_u64(path, fields, at + 2);
    s.sum_hi = field_u64(path, fields, at + 3);
    s.sum_lo = field_u64(path, fields, at + 4);
    s.sum_sq_hi = field_u64(path, fields, at + 5);
    s.sum_sq_lo = field_u64(path, fields, at + 6);
    return s;
}

std::string csv_of_u64s(const std::vector<std::uint64_t>& xs) {
    std::string out;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(xs[i]);
    }
    return out;
}

std::vector<std::uint64_t> u64s_of_csv(const std::string& path, const std::string& csv) {
    std::vector<std::uint64_t> out;
    if (csv.empty()) return out;
    for (const std::string& field : split(csv, ',')) {
        try {
            out.push_back(parse_u64(field));
        } catch (const std::exception&) {
            fail_decode(path, "non-numeric counter '" + field + "'");
        }
    }
    return out;
}

} // namespace

std::uint64_t campaign_state_hash(const TaskGraph& graph, const Mapping& mapping,
                                  const MpsocArchitecture& arch, const ScalingVector& levels,
                                  const Schedule& schedule, const SerModel& ser,
                                  const CampaignConfig& config) {
    HashStream h;
    h.mix("seamap-campaign-state");

    // Application.
    h.mix(graph.name());
    h.mix(graph.batch_count());
    const RegisterFile& regs = graph.register_file();
    h.mix(regs.size());
    for (std::size_t r = 0; r < regs.size(); ++r) {
        h.mix(regs.name(static_cast<RegisterId>(r)));
        h.mix(regs.bits(static_cast<RegisterId>(r)));
    }
    h.mix(graph.task_count());
    for (std::size_t t = 0; t < graph.task_count(); ++t) {
        const Task& task = graph.task(static_cast<TaskId>(t));
        h.mix(task.name);
        h.mix(task.exec_cycles);
        h.mix(task.registers.count());
        task.registers.for_each([&](RegisterId id) { h.mix(id); });
    }
    h.mix(graph.edge_count());
    for (const Edge& edge : graph.edges()) {
        h.mix(edge.src);
        h.mix(edge.dst);
        h.mix(edge.comm_cycles);
    }

    // Architecture.
    h.mix(arch.core_count());
    const VoltageScalingTable& table = arch.scaling_table();
    h.mix(table.level_count());
    for (std::size_t l = 1; l <= table.level_count(); ++l) {
        const OperatingPoint& op = table.at_level(static_cast<ScalingLevel>(l));
        h.mix_double(op.f_mhz);
        h.mix_double(op.vdd);
    }
    const PowerParams& power = arch.power_model().params();
    h.mix_double(power.c_eff_farads);
    h.mix_double(power.idle_activity);

    // The design under test: mapping, scaling and its exact schedule
    // (the schedule determines every exposure window, so two runs with
    // the same mapping but different schedules must not share a
    // snapshot).
    h.mix(mapping.raw().size());
    for (CoreId core : mapping.raw()) h.mix(core);
    h.mix(levels.size());
    for (ScalingLevel level : levels) h.mix(level);
    h.mix(schedule.entries.size());
    for (const ScheduledTask& entry : schedule.entries) {
        h.mix(entry.task);
        h.mix(entry.core);
        h.mix_double(entry.start_seconds);
        h.mix_double(entry.finish_seconds);
    }
    h.mix_double(schedule.total_time_seconds);

    // SER model.
    const SerParams& sp = ser.params();
    h.mix_double(sp.ser_ref_per_bit_cycle);
    h.mix_double(sp.ref_vdd);
    h.mix_double(sp.ref_f_mhz);
    h.mix_double(sp.voltage_exponent_k);

    // Campaign shape. num_threads is deliberately absent (results are
    // invariant to it); shard_size is present (the bitmap is indexed by
    // shard, so snapshots are bound to the shard size that wrote them).
    h.mix(config.trials);
    h.mix(config.shard_size);
    h.mix(config.seed);
    h.mix(static_cast<std::uint64_t>(config.policy));
    h.mix_double(config.weights.register_file);
    h.mix_double(config.weights.pipeline);
    h.mix_double(config.weights.memory);
    h.mix_double(config.pipeline_bits);
    return h.value();
}

CampaignCheckpointer::CampaignCheckpointer(std::string path, std::uint64_t state_hash)
    : path_(std::move(path)), state_hash_(state_hash) {}

void CampaignCheckpointer::set_cadence(std::uint64_t every_shards, double interval_seconds) {
    std::lock_guard lock(mutex_);
    every_shards_ = every_shards;
    timer_ = IntervalTimer(interval_seconds);
}

std::optional<CampaignResumeInfo> CampaignCheckpointer::load() {
    std::optional<CheckpointLoad> loaded = load_checkpoint(path_, "campaign", state_hash_);
    if (!loaded) return std::nullopt;
    const std::vector<std::string>& lines = loaded->data.lines;
    if (lines.size() != k_payload_lines)
        fail_decode(path_, "expected " + std::to_string(k_payload_lines) +
                               " payload lines");

    const std::vector<std::string> head = split(lines[0], ' ');
    if (head.size() != 4 || head[0] != "shards" || head[2] != "completed")
        fail_decode(path_, "bad header line");
    const std::uint64_t shard_count = field_u64(path_, head, 1);
    const std::uint64_t completed = field_u64(path_, head, 3);
    if (completed > shard_count) fail_decode(path_, "completed exceeds shard count");

    const std::vector<std::string> done_fields = split(lines[1], ' ');
    if (done_fields.size() != 2 || done_fields[0] != "done")
        fail_decode(path_, "bad bitmap line");
    std::vector<std::uint8_t> done = bitmap_of_hex(path_, done_fields[1], shard_count);
    std::uint64_t marked = 0;
    for (const std::uint8_t d : done) marked += d;
    if (marked != completed) fail_decode(path_, "bitmap disagrees with completed count");

    const std::vector<std::string> total_fields = split(lines[2], ' ');
    if (total_fields.size() != 8 || total_fields[0] != "total")
        fail_decode(path_, "bad total line");
    const ExactMomentsState total = decode_moments(path_, total_fields, 1);

    std::array<ExactMomentsState, k_fault_site_count> sites;
    for (std::size_t s = 0; s < k_fault_site_count; ++s) {
        const std::vector<std::string> fields = split(lines[3 + s], ' ');
        if (fields.size() != 9 || fields[0] != "site" ||
            fields[1] != std::to_string(s))
            fail_decode(path_, "bad site line");
        sites[s] = decode_moments(path_, fields, 2);
    }

    const std::vector<std::string> cores_line =
        split(lines[3 + k_fault_site_count], ' ');
    if (cores_line.size() != 2 || cores_line[0] != "cores")
        fail_decode(path_, "bad cores line");
    const std::vector<std::string> tasks_line =
        split(lines[4 + k_fault_site_count], ' ');
    if (tasks_line.size() != 2 || tasks_line[0] != "tasks")
        fail_decode(path_, "bad tasks line");

    std::lock_guard lock(mutex_);
    shaped_ = true;
    shard_count_ = shard_count;
    done_ = std::move(done);
    completed_ = completed;
    total_ = ExactMoments::from_state(total);
    for (std::size_t s = 0; s < k_fault_site_count; ++s)
        per_site_[s] = ExactMoments::from_state(sites[s]);
    hits_per_core_ = u64s_of_csv(path_, cores_line[1]);
    hits_per_task_ = u64s_of_csv(path_, tasks_line[1]);
    flushed_completed_ = completed_;

    CampaignResumeInfo info;
    info.shards_completed = completed_;
    info.shard_count = shard_count_;
    info.from_fallback = loaded->from_fallback;
    return info;
}

void CampaignCheckpointer::initialize(std::uint64_t shard_count, std::size_t core_count,
                                      std::size_t task_count) {
    std::lock_guard lock(mutex_);
    if (shaped_ && completed_ > 0) {
        if (shard_count_ != shard_count || hits_per_core_.size() != core_count ||
            hits_per_task_.size() != task_count)
            throw Error(ErrorCategory::checkpoint_corrupt,
                        "campaign checkpoint shapes disagree with this run", path_);
        return;
    }
    shaped_ = true;
    shard_count_ = shard_count;
    done_.assign(shard_count, 0);
    completed_ = 0;
    total_ = ExactMoments();
    per_site_.fill(ExactMoments());
    hits_per_core_.assign(core_count, 0);
    hits_per_task_.assign(task_count, 0);
}

std::vector<std::uint8_t> CampaignCheckpointer::done_snapshot() const {
    std::lock_guard lock(mutex_);
    return done_;
}

void CampaignCheckpointer::record_shard(
    std::uint64_t shard, const ExactMoments& total,
    const std::array<ExactMoments, k_fault_site_count>& per_site,
    const std::vector<std::uint64_t>& hits_per_core,
    const std::vector<std::uint64_t>& hits_per_task) {
    std::uint64_t now_completed = 0;
    {
        std::lock_guard lock(mutex_);
        if (shard >= done_.size() || done_[shard] != 0) return;
        done_[shard] = 1;
        ++completed_;
        total_.merge(total);
        for (std::size_t s = 0; s < k_fault_site_count; ++s)
            per_site_[s].merge(per_site[s]);
        for (std::size_t c = 0; c < hits_per_core_.size() && c < hits_per_core.size(); ++c)
            hits_per_core_[c] += hits_per_core[c];
        for (std::size_t t = 0; t < hits_per_task_.size() && t < hits_per_task.size(); ++t)
            hits_per_task_[t] += hits_per_task[t];
        now_completed = completed_;
    }
    if (on_shard_recorded) on_shard_recorded(now_completed);
}

void CampaignCheckpointer::export_to(CampaignReport& report) const {
    std::lock_guard lock(mutex_);
    report.total_stats = total_;
    for (std::size_t s = 0; s < k_fault_site_count; ++s)
        report.sites[s].stats = per_site_[s];
    report.hits_per_core = hits_per_core_;
    report.hits_per_task = hits_per_task_;
}

std::uint64_t CampaignCheckpointer::completed() const {
    std::lock_guard lock(mutex_);
    return completed_;
}

void CampaignCheckpointer::maybe_flush() {
    std::lock_guard lock(mutex_);
    if (completed_ == flushed_completed_) return;
    const bool by_count =
        every_shards_ > 0 && completed_ - flushed_completed_ >= every_shards_;
    if (!by_count && !timer_.due()) return;
    flush_locked();
}

void CampaignCheckpointer::flush() {
    std::lock_guard lock(mutex_);
    if (completed_ == flushed_completed_) return;
    flush_locked();
}

void CampaignCheckpointer::remove() {
    std::lock_guard lock(mutex_);
    remove_checkpoint(path_);
    flushed_completed_ = 0;
}

void CampaignCheckpointer::flush_locked() {
    CheckpointData data;
    data.kind = "campaign";
    data.state_hash = state_hash_;
    data.lines.reserve(k_payload_lines);
    data.lines.push_back("shards " + std::to_string(shard_count_) + " completed " +
                         std::to_string(completed_));
    data.lines.push_back("done " + hex_of_bitmap(done_));
    std::string total = "total";
    encode_moments(total, total_.state());
    data.lines.push_back(std::move(total));
    for (std::size_t s = 0; s < k_fault_site_count; ++s) {
        std::string line = "site " + std::to_string(s);
        encode_moments(line, per_site_[s].state());
        data.lines.push_back(std::move(line));
    }
    data.lines.push_back("cores " + csv_of_u64s(hits_per_core_));
    data.lines.push_back("tasks " + csv_of_u64s(hits_per_task_));
    save_checkpoint(path_, data);
    flushed_completed_ = completed_;
    timer_.reset();
}

} // namespace seamap
