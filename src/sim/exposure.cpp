#include "sim/exposure.h"

#include <stdexcept>

namespace seamap {

SimExposurePolicy to_sim_policy(ExposurePolicy policy) {
    switch (policy) {
    case ExposurePolicy::full_duration: return SimExposurePolicy::full_duration;
    case ExposurePolicy::busy_only: return SimExposurePolicy::busy_only;
    }
    throw std::invalid_argument("to_sim_policy: unknown policy");
}

std::vector<ExposureInterval> build_exposure_profile(const TaskGraph& graph,
                                                     const Mapping& mapping,
                                                     const MpsocArchitecture& arch,
                                                     const Schedule& schedule,
                                                     SimExposurePolicy policy) {
    if (!mapping.complete())
        throw std::invalid_argument("build_exposure_profile: mapping is incomplete");
    const std::size_t cores = arch.core_count();
    std::vector<ExposureInterval> profile;

    if (policy == SimExposurePolicy::running_task) {
        // One interval per task: its own registers, live for its summed
        // execution time across all batch iterations.
        const double batches = static_cast<double>(graph.batch_count());
        for (TaskId t = 0; t < graph.task_count(); ++t) {
            const CoreId core = mapping.core_of(t);
            const double per_iter = schedule.entries[t].finish_seconds -
                                    schedule.entries[t].start_seconds;
            ExposureInterval interval;
            interval.core = core;
            interval.duration_seconds = per_iter * batches;
            interval.live = graph.task(t).registers;
            profile.push_back(std::move(interval));
        }
        return profile;
    }

    // Union-based policies: one interval per used core.
    std::vector<RegisterSet> unions(cores, RegisterSet(graph.register_file().size()));
    for (TaskId t = 0; t < graph.task_count(); ++t)
        unions[mapping.core_of(t)] |= graph.task(t).registers;
    for (std::size_t c = 0; c < cores; ++c) {
        if (unions[c].empty()) continue; // unused core: no live state
        ExposureInterval interval;
        interval.core = static_cast<CoreId>(c);
        interval.duration_seconds = policy == SimExposurePolicy::full_duration
                                        ? schedule.total_time_seconds
                                        : schedule.core_busy_seconds[c];
        interval.live = unions[c];
        profile.push_back(std::move(interval));
    }
    return profile;
}

double expected_seus(const std::vector<ExposureInterval>& profile, const TaskGraph& graph,
                     const MpsocArchitecture& arch, const ScalingVector& levels,
                     const SerModel& ser) {
    arch.validate_scaling(levels);
    double total = 0.0;
    for (const auto& interval : profile) {
        if (interval.core >= arch.core_count())
            throw std::out_of_range("expected_seus: bad core id in profile");
        const double rate = ser.ser_per_bit_second(arch.scaling_table().vdd(levels[interval.core]));
        const double bits = static_cast<double>(interval.live.bits_in(graph.register_file()));
        total += bits * interval.duration_seconds * rate;
    }
    return total;
}

} // namespace seamap
