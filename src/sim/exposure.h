// Exposure profiles: how many live register bits each core holds, and
// for how long. This is the bridge between a scheduled design and the
// fault-injection engine — SEUs arrive as a Poisson process whose
// intensity is (live bits) x (SER per bit-second), integrated over the
// profile.
//
// The three policies mirror the modelling choices discussed in
// reliability/seu_estimator.h:
//  - full_duration: every used core's register union is live for the
//    whole run [0, T_M] (paper semantics);
//  - busy_only: the union is live only while the core computes
//    (eq. 7's busy time);
//  - running_task: only the currently executing task's registers are
//    live (the most optimistic reading of eq. 4's time average).
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "reliability/ser_model.h"
#include "reliability/seu_estimator.h"
#include "sched/list_scheduler.h"
#include "sched/mapping.h"
#include "taskgraph/register_file.h"
#include "taskgraph/task_graph.h"

#include <cstdint>
#include <vector>

namespace seamap {

/// Extended policy set for the simulator (the estimator's two policies
/// plus the per-task one).
enum class SimExposurePolicy {
    full_duration,
    busy_only,
    running_task,
};

/// Convert the analytic estimator's policy.
SimExposurePolicy to_sim_policy(ExposurePolicy policy);

/// One piece of a core's exposure: `live` register set held for
/// `duration_seconds` of wall-clock time.
struct ExposureInterval {
    CoreId core = 0;
    double duration_seconds = 0.0;
    RegisterSet live;
};

/// Build the exposure profile of a scheduled design. Durations are
/// whole-run totals (batch-aware); interval placement in time does not
/// affect Poisson counts and is not represented.
std::vector<ExposureInterval> build_exposure_profile(const TaskGraph& graph,
                                                     const Mapping& mapping,
                                                     const MpsocArchitecture& arch,
                                                     const Schedule& schedule,
                                                     SimExposurePolicy policy);

/// Expected SEU count of a profile under an SER model — the analytic
/// value the Poisson sampler fluctuates around (property-tested against
/// SeuEstimator for the matching policies).
double expected_seus(const std::vector<ExposureInterval>& profile, const TaskGraph& graph,
                     const MpsocArchitecture& arch, const ScalingVector& levels,
                     const SerModel& ser);

} // namespace seamap
