// SEU fault-injection engine. The paper injects SEUs into a SystemC
// model via instrumented data types [11]: for a given SER the number of
// SEUs is drawn from a Poisson process and their locations are spread
// over the register space. We sample the identical process over the
// exposure profile of the scheduled design: for every (core, interval,
// register) the hit count is Poisson with mean
//     bits(register) * duration * ser_time(Vdd(core)),
// so the expected total equals the analytic Gamma of eq. (3) exactly
// (property-tested). Campaigns run many seeded trials and report
// mean / stdev / 95% CI.
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "reliability/ser_model.h"
#include "sched/list_scheduler.h"
#include "sched/mapping.h"
#include "sim/exposure.h"
#include "taskgraph/task_graph.h"
#include "util/rng.h"
#include "util/stats.h"

#include <cstdint>
#include <vector>

namespace seamap {

/// Outcome of one injection trial.
struct InjectionResult {
    std::uint64_t total_seus = 0;
    /// Hits per core (indexed by CoreId).
    std::vector<std::uint64_t> per_core;
    /// Hits per register id; only filled when location sampling is on.
    /// A register duplicated on several cores accumulates hits from
    /// every physical copy.
    std::vector<std::uint64_t> per_register;
};

/// Summary of a multi-trial campaign. The promised mean / stdev /
/// 95% CI are surfaced directly (forwarding to the underlying
/// accumulator) so callers and JSON reports need not reach into
/// seu_stats for the headline numbers.
struct CampaignSummary {
    RunningStats seu_stats;     ///< over per-trial totals
    double analytic_gamma = 0.0;///< expected value (eq. 3 under the policy)
    std::uint64_t trials = 0;

    double mean() const { return seu_stats.mean(); }
    double stdev() const { return seu_stats.stdev(); }
    double ci95_halfwidth() const { return seu_stats.ci95_halfwidth(); }
};

/// Poisson SEU injector bound to an SER model and exposure policy.
class FaultInjector {
public:
    FaultInjector(SerModel ser, SimExposurePolicy policy,
                  bool sample_locations = false);

    const SerModel& ser_model() const { return ser_; }
    SimExposurePolicy policy() const { return policy_; }

    /// One trial over a scheduled design.
    InjectionResult inject(const TaskGraph& graph, const Mapping& mapping,
                           const MpsocArchitecture& arch, const ScalingVector& levels,
                           const Schedule& schedule, Rng& rng) const;

    /// One trial over a pre-built exposure profile.
    InjectionResult inject_profile(const std::vector<ExposureInterval>& profile,
                                   const TaskGraph& graph, const MpsocArchitecture& arch,
                                   const ScalingVector& levels, Rng& rng) const;

    /// Campaign-invariant per-core SER rate table: rates[c] =
    /// ser_per_bit_second(vdd(levels[c])). Validates the scaling once;
    /// the per-trial path below then runs lookup-only.
    std::vector<double> core_rate_table(const MpsocArchitecture& arch,
                                        const ScalingVector& levels) const;

    /// One trial against a precomputed rate table (no per-trial
    /// validate_scaling / ser_per_bit_second recomputation). Identical
    /// arithmetic and draw sequence to inject_profile, which is a thin
    /// wrapper over this.
    InjectionResult inject_profile_rates(const std::vector<ExposureInterval>& profile,
                                         const TaskGraph& graph,
                                         const MpsocArchitecture& arch,
                                         const std::vector<double>& core_rates,
                                         Rng& rng) const;

    /// `trials` independent trials. Trial t draws from the
    /// order-invariant stream Rng(seed).fork_at(t); the exposure
    /// profile and per-core rate table are built once per campaign.
    CampaignSummary run_campaign(const TaskGraph& graph, const Mapping& mapping,
                                 const MpsocArchitecture& arch, const ScalingVector& levels,
                                 const Schedule& schedule, std::uint64_t trials,
                                 std::uint64_t seed) const;

private:
    SerModel ser_;
    SimExposurePolicy policy_;
    bool sample_locations_;
};

} // namespace seamap
