// Mapping objectives of the paper's four experiments (Table II):
//   Exp:1  minimize register usage R            (memory-aware [13])
//   Exp:2  minimize execution time T_M          (parallelism [13])
//   Exp:3  minimize the product T_M * R         (joint [13])
//   Exp:4  minimize the SEUs experienced Gamma  (proposed)
// All four consume the shared DesignMetrics, so baselines and the
// proposed optimizer are scored identically.
#pragma once

#include "reliability/design_eval.h"

#include <string>

namespace seamap {

enum class MappingObjective {
    register_usage,
    makespan,
    time_register_product,
    seu_count,
};

/// Scalar cost (lower is better) of a design under an objective.
double objective_value(MappingObjective objective, const DesignMetrics& metrics);

/// Human-readable name ("register_usage", ...).
std::string objective_name(MappingObjective objective);

} // namespace seamap
