#include "baseline/simulated_annealing.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace seamap {

namespace {

/// Penalized scalar cost: objective inflated by the relative deadline
/// violation so the annealer is pulled toward feasibility but can walk
/// through infeasible regions.
double penalized_cost(const SaParams& params, MappingObjective objective,
                      const DesignMetrics& metrics, double deadline_seconds) {
    const double base = objective_value(objective, metrics);
    if (metrics.feasible || deadline_seconds <= 0.0) return base;
    const double violation = metrics.tm_seconds / deadline_seconds - 1.0;
    return base * (1.0 + params.infeasibility_penalty * violation);
}

/// Mutate `mapping` in place; returns the touched tasks so the caller
/// could undo (we copy instead: graphs are small).
void random_neighbor(Mapping& mapping, Rng& rng, double swap_probability,
                     bool require_all_cores) {
    const auto tasks = static_cast<std::int64_t>(mapping.task_count());
    const auto cores = static_cast<std::int64_t>(mapping.core_count());
    if (cores < 2 || tasks < 1) return;
    if (tasks >= 2 && rng.uniform() < swap_probability) {
        // Swap the cores of two tasks on different cores (population-
        // preserving, so always admissible).
        for (int attempt = 0; attempt < 8; ++attempt) {
            const auto a = static_cast<TaskId>(rng.uniform_int(0, tasks - 1));
            const auto b = static_cast<TaskId>(rng.uniform_int(0, tasks - 1));
            if (a == b) continue;
            const CoreId core_a = mapping.core_of(a);
            const CoreId core_b = mapping.core_of(b);
            if (core_a == core_b) continue;
            mapping.assign(a, core_b);
            mapping.assign(b, core_a);
            return;
        }
    }
    // Move one task to a different core.
    for (int attempt = 0; attempt < 8; ++attempt) {
        const auto task = static_cast<TaskId>(rng.uniform_int(0, tasks - 1));
        const CoreId old_core = mapping.core_of(task);
        if (require_all_cores && mapping.task_count_on(old_core) == 1) continue;
        auto target = static_cast<CoreId>(rng.uniform_int(0, cores - 2));
        if (target >= old_core) ++target;
        mapping.assign(task, target);
        return;
    }
}

} // namespace

SimulatedAnnealingMapper::SimulatedAnnealingMapper(SaParams params) : params_(params) {
    if (params_.iterations == 0 && params_.time_budget_seconds <= 0.0)
        throw std::invalid_argument(
            "SimulatedAnnealingMapper: need an iteration or time budget");
    if (params_.initial_temperature <= 0.0 || params_.final_temperature <= 0.0 ||
        params_.final_temperature > params_.initial_temperature)
        throw std::invalid_argument("SimulatedAnnealingMapper: bad temperature range");
    if (params_.swap_probability < 0.0 || params_.swap_probability > 1.0)
        throw std::invalid_argument("SimulatedAnnealingMapper: bad swap probability");
    if (params_.infeasibility_penalty < 0.0)
        throw std::invalid_argument("SimulatedAnnealingMapper: penalty must be >= 0");
}

SaResult SimulatedAnnealingMapper::optimize(const EvaluationContext& ctx,
                                            MappingObjective objective,
                                            const Mapping& initial,
                                            const CancellationToken* cancel) const {
    if (!initial.complete())
        throw std::invalid_argument("SimulatedAnnealingMapper: initial mapping incomplete");

    Rng rng(params_.seed);
    Mapping current = initial;
    DesignMetrics current_metrics = evaluate_design(ctx, current);
    double current_cost =
        penalized_cost(params_, objective, current_metrics, ctx.deadline_seconds);

    SaResult result;
    result.best_mapping = current;
    result.best_metrics = current_metrics;
    result.found_feasible = current_metrics.feasible;
    result.evaluations = 1;

    // Best tracking: feasible designs compare by objective; infeasible
    // ones (only used until the first feasible design appears) by T_M.
    auto better_than_best = [&](const DesignMetrics& metrics) {
        if (metrics.feasible && !result.found_feasible) return true;
        if (metrics.feasible == result.found_feasible) {
            if (result.found_feasible)
                return objective_value(objective, metrics) <
                       objective_value(objective, result.best_metrics);
            return metrics.tm_seconds < result.best_metrics.tm_seconds;
        }
        return false;
    };

    const SearchBudget budget(params_.iterations, params_.time_budget_seconds, cancel);
    const double cooling_exponent =
        std::log(params_.final_temperature / params_.initial_temperature);
    // Cooling progress is measured against the iteration budget; in
    // time-budget-only runs the schedule cycles every 10k iterations.
    const std::uint64_t cooling_segment =
        params_.iterations > 0 ? params_.iterations : 10'000;
    for (std::uint64_t iter = 0; !budget.exhausted(iter); ++iter) {
        const double progress = static_cast<double>(iter % cooling_segment) /
                                static_cast<double>(cooling_segment);
        const double temperature =
            params_.initial_temperature * std::exp(cooling_exponent * progress);

        Mapping neighbor = current;
        random_neighbor(neighbor, rng, params_.swap_probability, params_.require_all_cores);
        if (neighbor == current) continue;
        const DesignMetrics neighbor_metrics = evaluate_design(ctx, neighbor);
        ++result.evaluations;
        const double neighbor_cost =
            penalized_cost(params_, objective, neighbor_metrics, ctx.deadline_seconds);

        const double relative_delta =
            current_cost > 0.0 ? (neighbor_cost - current_cost) / current_cost
                               : neighbor_cost - current_cost;
        const bool accept = relative_delta <= 0.0 ||
                            rng.uniform() < std::exp(-relative_delta / temperature);
        if (accept) {
            current = std::move(neighbor);
            current_metrics = neighbor_metrics;
            current_cost = neighbor_cost;
            ++result.accepted_moves;
            if (better_than_best(current_metrics)) {
                result.best_mapping = current;
                result.best_metrics = current_metrics;
                result.found_feasible |= current_metrics.feasible;
            }
        }
        ++result.iterations_run;
    }
    return result;
}

} // namespace seamap
