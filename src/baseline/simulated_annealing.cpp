#include "baseline/simulated_annealing.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace seamap {

namespace {

/// Penalized scalar cost: objective inflated by the relative deadline
/// violation so the annealer is pulled toward feasibility but can walk
/// through infeasible regions.
double penalized_cost(const SaParams& params, MappingObjective objective,
                      const DesignMetrics& metrics, double deadline_seconds) {
    const double base = objective_value(objective, metrics);
    if (metrics.feasible || deadline_seconds <= 0.0) return base;
    const double violation = metrics.tm_seconds / deadline_seconds - 1.0;
    return base * (1.0 + params.infeasibility_penalty * violation);
}

} // namespace

SimulatedAnnealingMapper::SimulatedAnnealingMapper(SaParams params) : params_(params) {
    if (params_.iterations == 0 && params_.time_budget_seconds <= 0.0)
        throw std::invalid_argument(
            "SimulatedAnnealingMapper: need an iteration or time budget");
    if (params_.initial_temperature <= 0.0 || params_.final_temperature <= 0.0 ||
        params_.final_temperature > params_.initial_temperature)
        throw std::invalid_argument("SimulatedAnnealingMapper: bad temperature range");
    if (params_.swap_probability < 0.0 || params_.swap_probability > 1.0)
        throw std::invalid_argument("SimulatedAnnealingMapper: bad swap probability");
    if (params_.infeasibility_penalty < 0.0)
        throw std::invalid_argument("SimulatedAnnealingMapper: penalty must be >= 0");
}

SaResult SimulatedAnnealingMapper::optimize(const EvaluationContext& ctx,
                                            MappingObjective objective,
                                            const Mapping& initial,
                                            const CancellationToken* cancel) const {
    EvalContext eval(ctx);
    return optimize(eval, objective, initial, cancel);
}

SaResult SimulatedAnnealingMapper::optimize(EvalContext& eval, MappingObjective objective,
                                            const Mapping& initial,
                                            const CancellationToken* cancel) const {
    if (!initial.complete())
        throw std::invalid_argument("SimulatedAnnealingMapper: initial mapping incomplete");
    const double deadline_seconds = eval.problem().deadline_seconds;

    Rng rng(params_.seed);
    Mapping current = initial;
    DesignMetrics current_metrics = eval.rebase(current);
    double current_cost = penalized_cost(params_, objective, current_metrics, deadline_seconds);

    SaResult result;
    result.best_mapping = current;
    result.best_metrics = current_metrics;
    result.found_feasible = current_metrics.feasible;
    result.evaluations = 1;

    // Best tracking: feasible designs compare by objective; infeasible
    // ones (only used until the first feasible design appears) by T_M.
    auto better_than_best = [&](const DesignMetrics& metrics) {
        if (metrics.feasible && !result.found_feasible) return true;
        if (metrics.feasible == result.found_feasible) {
            if (result.found_feasible)
                return objective_value(objective, metrics) <
                       objective_value(objective, result.best_metrics);
            return metrics.tm_seconds < result.best_metrics.tm_seconds;
        }
        return false;
    };

    const SearchBudget budget(params_.iterations, params_.time_budget_seconds, cancel);
    const double cooling_exponent =
        std::log(params_.final_temperature / params_.initial_temperature);
    // Cooling progress is measured against the iteration budget; in
    // time-budget-only runs the schedule cycles every 10k iterations.
    const std::uint64_t cooling_segment =
        params_.iterations > 0 ? params_.iterations : 10'000;
    Mapping neighbor;
    for (std::uint64_t iter = 0; !budget.exhausted(iter); ++iter) {
        const double progress = static_cast<double>(iter % cooling_segment) /
                                static_cast<double>(cooling_segment);
        const double temperature =
            params_.initial_temperature * std::exp(cooling_exponent * progress);

        neighbor = current;
        const NeighborOp op = random_neighbor_op(neighbor, rng, params_.swap_probability,
                                                 params_.require_all_cores);
        if (op.kind == NeighborOp::Kind::none) continue; // mapping unchanged
        const DesignMetrics neighbor_metrics = eval.evaluate_neighbor(op);
        ++result.evaluations;
        const double neighbor_cost =
            penalized_cost(params_, objective, neighbor_metrics, deadline_seconds);

        const double relative_delta =
            current_cost > 0.0 ? (neighbor_cost - current_cost) / current_cost
                               : neighbor_cost - current_cost;
        const bool accept = relative_delta <= 0.0 ||
                            rng.uniform() < std::exp(-relative_delta / temperature);
        if (accept) {
            std::swap(current, neighbor); // keeps neighbor's storage alive for reuse
            current_metrics = neighbor_metrics;
            current_cost = neighbor_cost;
            eval.rebase(current);
            ++result.accepted_moves;
            if (better_than_best(current_metrics)) {
                result.best_mapping = current;
                result.best_metrics = current_metrics;
                result.found_feasible |= current_metrics.feasible;
            }
        }
        ++result.iterations_run;
    }
    return result;
}

} // namespace seamap
