// Simulated-annealing task mapper — the soft-error-unaware baseline the
// paper compares against (Orsila et al. [13], "automated memory-aware
// application distribution"): move/swap neighbourhood over complete
// mappings, geometric cooling, relative-cost acceptance and a deadline
// penalty. Objectives are pluggable so one engine serves Exp:1-3 (and
// an SA-on-Gamma ablation).
#pragma once

#include "baseline/objectives.h"
#include "core/eval_context.h"
#include "reliability/design_eval.h"
#include "sched/mapping.h"
#include "util/cancellation.h"
#include "util/rng.h"

#include <cstdint>

namespace seamap {

/// Annealer knobs; defaults are sized for the paper's graphs (11-100
/// tasks) and run in well under a second per call.
struct SaParams {
    /// Iteration budget; 0 = no cap (a time budget must then be set).
    std::uint64_t iterations = 20'000;
    /// Wall-clock cap on one optimize() call, seconds; 0 = none.
    double time_budget_seconds = 0.0;
    /// Initial/final temperature, relative to the current cost.
    double initial_temperature = 0.30;
    double final_temperature = 1e-4;
    /// Probability that a neighbour is a two-task swap instead of a
    /// single-task move.
    double swap_probability = 0.3;
    /// Relative cost penalty per unit of deadline violation
    /// (cost *= 1 + penalty * violation_fraction).
    double infeasibility_penalty = 10.0;
    /// Reject moves that would leave a populated core without tasks
    /// (the paper's designs keep every core populated).
    bool require_all_cores = false;
    std::uint64_t seed = 1;
};

/// Best design found by one annealing run.
struct SaResult {
    Mapping best_mapping;
    DesignMetrics best_metrics;
    bool found_feasible = false;
    std::uint64_t iterations_run = 0;
    std::uint64_t accepted_moves = 0;
    std::uint64_t evaluations = 0;
};

/// One annealing engine; stateless apart from its parameters.
class SimulatedAnnealingMapper {
public:
    explicit SimulatedAnnealingMapper(SaParams params);

    /// Anneal from `initial` (must be complete). The best *feasible*
    /// design seen is returned; if none is feasible, the design with
    /// the smallest deadline violation. An optional `cancel` token is
    /// checked once per iteration and stops the walk early. Builds a
    /// fresh EvalContext internally (fast path, default EvalOptions).
    SaResult optimize(const EvaluationContext& ctx, MappingObjective objective,
                      const Mapping& initial,
                      const CancellationToken* cancel = nullptr) const;

    /// Anneal on a caller-provided evaluation context (per-scaling
    /// scratch + memo reuse; tests/benches select the naive-reference
    /// path through it). The walk is a pure function of
    /// (ctx, objective, initial, seed) for every EvalOptions choice.
    SaResult optimize(EvalContext& eval, MappingObjective objective, const Mapping& initial,
                      const CancellationToken* cancel = nullptr) const;

private:
    SaParams params_;
};

} // namespace seamap
