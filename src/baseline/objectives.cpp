#include "baseline/objectives.h"

#include <stdexcept>

namespace seamap {

double objective_value(MappingObjective objective, const DesignMetrics& metrics) {
    switch (objective) {
    case MappingObjective::register_usage: return static_cast<double>(metrics.register_bits);
    case MappingObjective::makespan: return metrics.tm_seconds;
    case MappingObjective::time_register_product:
        return metrics.tm_seconds * static_cast<double>(metrics.register_bits);
    case MappingObjective::seu_count: return metrics.gamma;
    }
    throw std::invalid_argument("objective_value: unknown objective");
}

std::string objective_name(MappingObjective objective) {
    switch (objective) {
    case MappingObjective::register_usage: return "register_usage";
    case MappingObjective::makespan: return "makespan";
    case MappingObjective::time_register_product: return "time_register_product";
    case MappingObjective::seu_count: return "seu_count";
    }
    throw std::invalid_argument("objective_name: unknown objective");
}

} // namespace seamap
