// Umbrella header of the seamap public API — one include for the whole
// Fig. 4 flow:
//
//   Problem / ProblemBuilder   (api/problem.h)   what to optimize
//   SearchStrategy + registry  (api/strategy.h)  how to search mappings
//   explore()                  (api/explore.h)   run the exploration
//   ProgressObserver           (api/observer.h)  watch it run
//   CancellationToken          (util/cancellation.h) stop it early
//   to_json / JsonValue        (api/json.h)      machine-readable results
//   seamap::Error              (util/error.h)    structured failures
//   DseCheckpointer            (core/dse_checkpoint.h, via api/explore.h)
//                                                crash-safe resume
//
// Workload builders (taskgraph/, tgff/) and the fault injector (sim/)
// keep their own headers; the core types they produce/consume
// (TaskGraph, MpsocArchitecture, DseResult, ...) arrive transitively.
#pragma once

#include "seamap/version.h" // arch-check: export

#include "api/explore.h" // arch-check: export
#include "api/json.h" // arch-check: export
#include "api/observer.h" // arch-check: export
#include "api/problem.h" // arch-check: export
#include "api/strategy.h" // arch-check: export
#include "util/cancellation.h" // arch-check: export
#include "util/error.h" // arch-check: export
