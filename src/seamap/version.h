// Public re-export of the library version (the definitions live in
// util/version.h so lower layers can use them without an upward
// dependency on seamap/).
#pragma once

#include "util/version.h" // arch-check: export
