// Voltage/frequency operating points of the MPSoC cores (paper
// Table I). A VoltageScalingTable is an ordered list of operating
// points; *scaling level* 1 is the fastest (nominal) point and higher
// levels are progressively slower and lower-voltage. The ARM7TDMI
// voltage law of eq. (2) ties Vdd to frequency:
//     Vdd(f) = 0.1667 + 4.1667 * f_MHz / 1000   [volts]
// which reproduces Table I exactly: 200 MHz -> 1.00 V,
// 100 MHz -> 0.58 V, 66.7 MHz -> 0.44 V.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace seamap {

/// Per-core scaling level; 1-based, 1 = nominal/fastest.
using ScalingLevel = std::uint8_t;

/// One voltage/frequency operating point.
struct OperatingPoint {
    double f_mhz = 0.0;
    double vdd = 0.0;
};

/// ARM7TDMI voltage law, eq. (2) of the paper.
double arm7_vdd_for_frequency(double f_mhz);

/// Ordered operating points; index 0 is scaling level 1 (fastest).
class VoltageScalingTable {
public:
    /// Points must be in strictly decreasing frequency order.
    explicit VoltageScalingTable(std::vector<OperatingPoint> points);

    std::size_t level_count() const { return points_.size(); }
    /// Operating point for a 1-based scaling level.
    const OperatingPoint& at_level(ScalingLevel level) const;
    double frequency_hz(ScalingLevel level) const;
    double frequency_mhz(ScalingLevel level) const;
    double vdd(ScalingLevel level) const;
    /// Slowest level (largest index) — where the paper's enumeration
    /// starts ("lowest voltage scaling on all identical cores").
    ScalingLevel slowest_level() const;

    // --- paper scaling tables -------------------------------------------
    /// Table I: {200 MHz/1.00 V, 100 MHz/0.58 V, 66.7 MHz/0.44 V}.
    static VoltageScalingTable arm7_three_level();
    /// Fig. 11 "2 levels": {200 MHz/1.00 V, 100 MHz/0.58 V}.
    static VoltageScalingTable arm7_two_level();
    /// Fig. 11 "4 levels": Table I plus an overdrive 236 MHz/1.2 V point.
    static VoltageScalingTable arm7_four_level();
    /// ARM7 points derived from eq. (2) for the given frequencies (MHz,
    /// strictly decreasing).
    static VoltageScalingTable from_frequencies(const std::vector<double>& f_mhz);

private:
    std::vector<OperatingPoint> points_;
};

} // namespace seamap
