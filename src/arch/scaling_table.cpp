#include "arch/scaling_table.h"

#include <stdexcept>

namespace seamap {

double arm7_vdd_for_frequency(double f_mhz) {
    if (f_mhz <= 0.0) throw std::invalid_argument("arm7_vdd_for_frequency: frequency must be > 0");
    return 0.1667 + 4.1667 * f_mhz / 1000.0;
}

VoltageScalingTable::VoltageScalingTable(std::vector<OperatingPoint> points)
    : points_(std::move(points)) {
    if (points_.empty())
        throw std::invalid_argument("VoltageScalingTable: need at least one operating point");
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (points_[i].f_mhz <= 0.0 || points_[i].vdd <= 0.0)
            throw std::invalid_argument("VoltageScalingTable: operating point must be positive");
        if (i > 0 && points_[i].f_mhz >= points_[i - 1].f_mhz)
            throw std::invalid_argument(
                "VoltageScalingTable: points must be in strictly decreasing frequency order");
    }
}

const OperatingPoint& VoltageScalingTable::at_level(ScalingLevel level) const {
    if (level == 0 || level > points_.size())
        throw std::out_of_range("VoltageScalingTable: scaling level " + std::to_string(level) +
                                " outside [1, " + std::to_string(points_.size()) + "]");
    return points_[level - 1];
}

double VoltageScalingTable::frequency_hz(ScalingLevel level) const {
    return at_level(level).f_mhz * 1e6;
}

double VoltageScalingTable::frequency_mhz(ScalingLevel level) const {
    return at_level(level).f_mhz;
}

double VoltageScalingTable::vdd(ScalingLevel level) const { return at_level(level).vdd; }

ScalingLevel VoltageScalingTable::slowest_level() const {
    return static_cast<ScalingLevel>(points_.size());
}

VoltageScalingTable VoltageScalingTable::from_frequencies(const std::vector<double>& f_mhz) {
    std::vector<OperatingPoint> points;
    points.reserve(f_mhz.size());
    for (double f : f_mhz) points.push_back(OperatingPoint{f, arm7_vdd_for_frequency(f)});
    return VoltageScalingTable(std::move(points));
}

VoltageScalingTable VoltageScalingTable::arm7_three_level() {
    // Table I of the paper (voltages as printed there).
    return VoltageScalingTable({{200.0, 1.0}, {100.0, 0.58}, {66.7, 0.44}});
}

VoltageScalingTable VoltageScalingTable::arm7_two_level() {
    return VoltageScalingTable({{200.0, 1.0}, {100.0, 0.58}});
}

VoltageScalingTable VoltageScalingTable::arm7_four_level() {
    return VoltageScalingTable({{236.0, 1.2}, {200.0, 1.0}, {100.0, 0.58}, {66.7, 0.44}});
}

} // namespace seamap
