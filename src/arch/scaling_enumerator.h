// The voltage-scaling enumeration of the paper's Fig. 5(a): generate
// every *unique* combination of per-core scaling levels exactly once,
// starting from the lowest voltage (all cores at the slowest level) and
// ending at nominal (all cores at level 1).
//
// Because the MPSoC is homogeneous, any permutation of a level multiset
// is equivalent (the mapper chooses which tasks land on fast cores), so
// the enumerator emits each multiset once as a non-increasing tuple.
// For C cores and L levels that is C(C+L-1, L-1) combinations — 15 for
// the paper's 4 cores / 3 levels (Fig. 5b) instead of 3^4 = 81.
#pragma once

#include "arch/scaling_table.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace seamap {

/// Per-core scaling levels; index = core id; values 1-based.
using ScalingVector = std::vector<ScalingLevel>;

/// Successor of `prev` in the Fig. 5 sequence, or nullopt after the
/// all-nominal combination. `prev` must be a valid non-increasing tuple
/// with levels in [1, level_count].
std::optional<ScalingVector> next_scaling(const ScalingVector& prev, std::size_t level_count);

/// Stateful wrapper that walks the whole sequence.
class ScalingEnumerator {
public:
    ScalingEnumerator(std::size_t core_count, std::size_t level_count);

    /// First call returns the all-slowest combination; subsequent calls
    /// walk the Fig. 5(b) sequence; nullopt when exhausted.
    std::optional<ScalingVector> next();

    /// Restart from the beginning.
    void reset();

    std::size_t core_count() const { return core_count_; }
    std::size_t level_count() const { return level_count_; }

    /// Number of combinations the sequence contains: C(C+L-1, L-1).
    static std::uint64_t combination_count(std::size_t core_count, std::size_t level_count);

private:
    std::size_t core_count_;
    std::size_t level_count_;
    std::optional<ScalingVector> current_;
    bool started_ = false;
};

} // namespace seamap
