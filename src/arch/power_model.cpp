#include "arch/power_model.h"

#include "util/float_compare.h"

#include <stdexcept>

namespace seamap {

PowerModel::PowerModel(VoltageScalingTable table, PowerParams params)
    : table_(std::move(table)), params_(params) {
    if (params_.c_eff_farads <= 0.0)
        throw std::invalid_argument("PowerModel: C_eff must be > 0");
    if (params_.idle_activity < 0.0 || params_.idle_activity > 1.0)
        throw std::invalid_argument("PowerModel: idle_activity must be in [0, 1]");
}

double PowerModel::core_active_power_mw(ScalingLevel level) const {
    const OperatingPoint& op = table_.at_level(level);
    const double watts = params_.c_eff_farads * (op.f_mhz * 1e6) * op.vdd * op.vdd;
    return watts * 1e3;
}

double PowerModel::core_energy_per_cycle_mws(ScalingLevel level) const {
    const OperatingPoint& op = table_.at_level(level);
    return core_active_power_mw(level) / (op.f_mhz * 1e6);
}

double PowerModel::mpsoc_power_mw(std::span<const ScalingLevel> levels,
                                  std::span<const double> utilizations) const {
    if (levels.size() != utilizations.size())
        throw std::invalid_argument("PowerModel: levels/utilizations size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const double util = utilizations[i];
        if (util < 0.0 || util > 1.0 + 1e-9)
            throw std::invalid_argument("PowerModel: utilization outside [0, 1]");
        if (exactly_zero(util)) continue; // power-gated: no tasks mapped
        const double activity = util + params_.idle_activity * (1.0 - util);
        total += core_active_power_mw(levels[i]) * activity;
    }
    return total;
}

double PowerModel::mpsoc_power_mw_precomputed(std::span<const double> core_active_mw,
                                              std::span<const double> utilizations) const {
    if (core_active_mw.size() != utilizations.size())
        throw std::invalid_argument("PowerModel: active-power/utilizations size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < core_active_mw.size(); ++i) {
        const double util = utilizations[i];
        if (util < 0.0 || util > 1.0 + 1e-9)
            throw std::invalid_argument("PowerModel: utilization outside [0, 1]");
        if (exactly_zero(util)) continue; // power-gated: no tasks mapped
        const double activity = util + params_.idle_activity * (1.0 - util);
        total += core_active_mw[i] * activity;
    }
    return total;
}

} // namespace seamap
