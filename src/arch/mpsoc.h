// Homogeneous MPSoC architecture model (paper Fig. 1): C identical
// cores, each with private caches/memory, dedicated inter-core links
// and a clock-tree generator that feeds every core its own
// voltage/frequency pair.
#pragma once

#include "arch/power_model.h"
#include "arch/scaling_enumerator.h"
#include "arch/scaling_table.h"

#include <cstddef>

namespace seamap {

/// Architecture = core count + scaling table + power parameters.
class MpsocArchitecture {
public:
    MpsocArchitecture(std::size_t core_count, VoltageScalingTable table,
                      PowerParams power = PowerParams{});

    std::size_t core_count() const { return core_count_; }
    const VoltageScalingTable& scaling_table() const { return power_.table(); }
    const PowerModel& power_model() const { return power_; }

    /// Frequency (Hz) of a core running at the given level.
    double frequency_hz(ScalingLevel level) const { return scaling_table().frequency_hz(level); }

    /// All cores at the slowest level — the DSE starting point.
    ScalingVector slowest_scaling() const;
    /// All cores at nominal speed.
    ScalingVector nominal_scaling() const;

    /// Throws unless `levels` has one in-range entry per core.
    void validate_scaling(const ScalingVector& levels) const;

private:
    std::size_t core_count_;
    PowerModel power_;
};

} // namespace seamap
