// Dynamic power model of the MPSoC (paper eqs. 1 and 5):
//     P_dyn = alpha * C_L * f * Vdd^2
// We fold the switching activity into an *effective switched
// capacitance* C_eff = alpha * C_L per core. Eq. (5) weights each
// core's power by its utilization alpha_i = busy_time_i / T_M; a
// clocked-but-idle core still burns a fraction of its active power in
// the clock tree and caches (`idle_activity`), and a core with no tasks
// mapped is assumed power-gated (zero).
//
// Absolute milliwatts depend on C_eff, which the authors never publish;
// the default is calibrated so the 4-core MPEG-2 design lands in the
// paper's few-mW range. Ratios between designs — the reproduction
// target — are independent of C_eff.
#pragma once

#include "arch/scaling_table.h"

#include <span>

namespace seamap {

/// Parameters of the dynamic power model.
struct PowerParams {
    /// Effective switched capacitance per core, farads (alpha * C_L).
    double c_eff_farads = 60e-12;
    /// Fraction of active power burned while clocked but idle.
    double idle_activity = 0.3;
};

/// Power model bound to a scaling table.
class PowerModel {
public:
    PowerModel(VoltageScalingTable table, PowerParams params);

    const VoltageScalingTable& table() const { return table_; }
    const PowerParams& params() const { return params_; }

    /// Active power of one core at the given level, in mW (eq. 1).
    double core_active_power_mw(ScalingLevel level) const;

    /// Active energy per clock cycle at the given level, in mW·s/cycle
    /// (core_active_power_mw / frequency_hz — proportional to Vdd^2).
    /// This is the per-level "cost of a cycle" the branch-and-bound
    /// power lower bound (core/scaling_bounds.h) assigns work with: a
    /// feasible design's busy energy can never undercut its cycle count
    /// priced at the cheapest level of the scaling combination.
    double core_energy_per_cycle_mws(ScalingLevel level) const;

    /// MPSoC power (eq. 5): per-core level and utilization in [0, 1].
    /// A utilization of exactly 0 means "no tasks mapped" -> power-gated.
    double mpsoc_power_mw(std::span<const ScalingLevel> levels,
                          std::span<const double> utilizations) const;

    /// Hot-path form of eq. (5) for a fixed scaling: the caller caches
    /// core_active_power_mw(level) per core once (core/eval_context.h
    /// does this per scaling combination) and only the utilizations
    /// vary per candidate. Arithmetic is identical to mpsoc_power_mw —
    /// same sums, same order — so results match bit-for-bit.
    double mpsoc_power_mw_precomputed(std::span<const double> core_active_mw,
                                      std::span<const double> utilizations) const;

private:
    VoltageScalingTable table_;
    PowerParams params_;
};

} // namespace seamap
