#include "arch/mpsoc.h"

#include <stdexcept>

namespace seamap {

MpsocArchitecture::MpsocArchitecture(std::size_t core_count, VoltageScalingTable table,
                                     PowerParams power)
    : core_count_(core_count), power_(std::move(table), power) {
    if (core_count_ == 0)
        throw std::invalid_argument("MpsocArchitecture: need at least one core");
}

ScalingVector MpsocArchitecture::slowest_scaling() const {
    return ScalingVector(core_count_, scaling_table().slowest_level());
}

ScalingVector MpsocArchitecture::nominal_scaling() const {
    return ScalingVector(core_count_, 1);
}

void MpsocArchitecture::validate_scaling(const ScalingVector& levels) const {
    if (levels.size() != core_count_)
        throw std::invalid_argument("MpsocArchitecture: scaling vector size != core count");
    for (ScalingLevel level : levels)
        (void)scaling_table().at_level(level); // throws if out of range
}

} // namespace seamap
