#include "arch/scaling_enumerator.h"

#include <stdexcept>

namespace seamap {

namespace {

void check_vector(const ScalingVector& levels, std::size_t level_count) {
    if (levels.empty()) throw std::invalid_argument("next_scaling: empty scaling vector");
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (levels[i] < 1 || levels[i] > level_count)
            throw std::invalid_argument("next_scaling: level outside [1, level_count]");
        if (i > 0 && levels[i] > levels[i - 1])
            throw std::invalid_argument("next_scaling: vector must be non-increasing");
    }
}

} // namespace

std::optional<ScalingVector> next_scaling(const ScalingVector& prev, std::size_t level_count) {
    check_vector(prev, level_count);
    // Find the rightmost core that can still speed up (level > 1);
    // speed it up one notch and drag every core to its right along to
    // the same level. This walks all non-increasing tuples in
    // descending lexicographic order — the Fig. 5(b) sequence.
    ScalingVector next = prev;
    for (std::size_t j = next.size(); j-- > 0;) {
        if (next[j] > 1) {
            const ScalingLevel value = static_cast<ScalingLevel>(next[j] - 1);
            for (std::size_t k = j; k < next.size(); ++k) next[k] = value;
            return next;
        }
    }
    return std::nullopt; // prev was all-nominal
}

ScalingEnumerator::ScalingEnumerator(std::size_t core_count, std::size_t level_count)
    : core_count_(core_count), level_count_(level_count) {
    if (core_count_ == 0) throw std::invalid_argument("ScalingEnumerator: need at least one core");
    if (level_count_ == 0 || level_count_ > 255)
        throw std::invalid_argument("ScalingEnumerator: level count must be in [1, 255]");
}

std::optional<ScalingVector> ScalingEnumerator::next() {
    if (!started_) {
        started_ = true;
        current_ = ScalingVector(core_count_, static_cast<ScalingLevel>(level_count_));
        return current_;
    }
    if (!current_) return std::nullopt;
    current_ = next_scaling(*current_, level_count_);
    return current_;
}

void ScalingEnumerator::reset() {
    started_ = false;
    current_.reset();
}

std::uint64_t ScalingEnumerator::combination_count(std::size_t core_count,
                                                   std::size_t level_count) {
    if (core_count == 0 || level_count == 0) return 0;
    // C(core_count + level_count - 1, level_count - 1), computed
    // multiplicatively to avoid overflow for the sizes we care about.
    const std::uint64_t n = core_count + level_count - 1;
    const std::uint64_t k = level_count - 1;
    std::uint64_t result = 1;
    for (std::uint64_t i = 1; i <= k; ++i) result = result * (n - k + i) / i;
    return result;
}

} // namespace seamap
