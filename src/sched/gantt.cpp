#include "sched/gantt.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

namespace seamap {

void write_gantt(std::ostream& os, const TaskGraph& graph, const Schedule& schedule,
                 std::size_t width) {
    if (schedule.entries.empty() || width == 0) return;
    const double horizon = schedule.latency_seconds;
    if (horizon <= 0.0) return;

    std::size_t cores = 0;
    for (const auto& entry : schedule.entries)
        cores = std::max<std::size_t>(cores, entry.core + 1);

    std::vector<std::string> rows(cores, std::string(width, '.'));
    for (const auto& entry : schedule.entries) {
        const auto begin = static_cast<std::size_t>(entry.start_seconds / horizon *
                                                    static_cast<double>(width));
        auto end = static_cast<std::size_t>(entry.finish_seconds / horizon *
                                            static_cast<double>(width));
        end = std::min(end, width);
        const char mark = graph.task(entry.task).name.empty()
                              ? '#'
                              : graph.task(entry.task).name.front();
        for (std::size_t i = begin; i < std::max(end, begin + 1) && i < width; ++i)
            rows[entry.core][i] = mark;
    }
    os << "one-iteration schedule, horizon " << horizon << " s\n";
    for (std::size_t c = 0; c < cores; ++c) os << "core " << c << " |" << rows[c] << "|\n";
}

void write_schedule_csv(std::ostream& os, const TaskGraph& graph, const Schedule& schedule) {
    os << "task,name,core,start_seconds,finish_seconds\n";
    for (const auto& entry : schedule.entries)
        os << entry.task << ',' << graph.task(entry.task).name << ',' << entry.core << ','
           << entry.start_seconds << ',' << entry.finish_seconds << '\n';
}

std::string gantt_to_string(const TaskGraph& graph, const Schedule& schedule, std::size_t width) {
    std::ostringstream os;
    write_gantt(os, graph, schedule, width);
    return os.str();
}

} // namespace seamap
