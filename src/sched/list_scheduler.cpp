#include "sched/list_scheduler.h"

#include "util/float_compare.h"

#include <algorithm>
#include <stdexcept>

// The tm_* bound functions at the bottom of this file run once per
// scaling combination inside the explorer's enumeration/planning loop
// and must stay allocation-free; the marker arms seamap_lint's
// hot-path-alloc rule for the whole file. The naive reference
// scheduler and the per-scaling precomputation allocate by design and
// sit in explicitly allowed regions.
// seamap-lint: hot-path

namespace seamap {

namespace {

// seamap-lint: push-allow(hot-path-alloc) -- b_levels through schedule()
// are per-scaling precomputation and the naive *reference* evaluation
// path the EvalContext equivalence harness pins against; neither runs
// in the steady-state candidate-evaluation loop
/// Static b-levels in cycles (exec + comm along the longest path to a
/// sink), frequency-independent.
std::vector<std::uint64_t> b_levels(const TaskGraph& graph) {
    const auto order = graph.topological_order();
    std::vector<std::uint64_t> level(graph.task_count(), 0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const TaskId id = *it;
        std::uint64_t best_child = 0;
        for (std::size_t idx : graph.out_edge_indices(id)) {
            const Edge& e = graph.edge(idx);
            best_child = std::max(best_child, e.comm_cycles + level[e.dst]);
        }
        level[id] = graph.task(id).exec_cycles + best_child;
    }
    return level;
}

void check_inputs(const TaskGraph& graph, const Mapping& mapping, const MpsocArchitecture& arch,
                  const ScalingVector& levels) {
    if (mapping.task_count() != graph.task_count())
        throw std::invalid_argument("ListScheduler: mapping task count != graph task count");
    if (mapping.core_count() != arch.core_count())
        throw std::invalid_argument("ListScheduler: mapping core count != architecture");
    if (!mapping.complete())
        throw std::invalid_argument("ListScheduler: mapping is incomplete");
    arch.validate_scaling(levels);
}

} // namespace

CalendarReadyQueue::CalendarReadyQueue(std::size_t slot_count) : slot_count_(slot_count) {
    bits_.assign((slot_count + 63) / 64, 0);
    summary_.assign((bits_.size() + 63) / 64, 0);
}

void CalendarReadyQueue::push(std::size_t slot) {
    if (slot >= slot_count_) throw std::out_of_range("CalendarReadyQueue: slot out of range");
    const std::size_t word = slot / 64;
    const std::uint64_t bit = std::uint64_t{1} << (slot % 64);
    if ((bits_[word] & bit) != 0) return;
    bits_[word] |= bit;
    summary_[word / 64] |= std::uint64_t{1} << (word % 64);
    ++size_;
}

std::size_t CalendarReadyQueue::pop_min() {
    if (size_ == 0) throw std::logic_error("CalendarReadyQueue: pop_min on empty queue");
    std::size_t s = 0;
    while (summary_[s] == 0) ++s;
    const std::size_t word =
        s * 64 + static_cast<std::size_t>(__builtin_ctzll(summary_[s]));
    const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits_[word]));
    const std::size_t slot = word * 64 + bit;
    bits_[word] &= bits_[word] - 1;
    if (bits_[word] == 0) summary_[s] &= summary_[s] - 1;
    --size_;
    return slot;
}

// Keeps schedule()'s selection *rule* without sharing its loop:
// schedule() is the naive *reference* the EvalContext equivalence
// harness pins the fast path against, so the two must not share
// machinery. This copy pre-ranks tasks by the rule's total order
// (b-level descending, ties by id) and extracts through the calendar
// queue, whose slot order makes pop_min identical to schedule()'s
// min_element scan — changing the tie-break or ready-push order in
// either copy fails tests/core/eval_context_equivalence_test.
std::vector<TaskId> static_schedule_order(const TaskGraph& graph) {
    const std::size_t n = graph.task_count();
    const auto priority = b_levels(graph);
    // Rank r = position in the selection order: the ready task with the
    // minimum rank is exactly the min_element pick.
    std::vector<TaskId> task_of_rank(n);
    for (TaskId t = 0; t < n; ++t) task_of_rank[t] = t;
    std::sort(task_of_rank.begin(), task_of_rank.end(), [&](TaskId a, TaskId b) {
        if (priority[a] != priority[b]) return priority[a] > priority[b];
        return a < b;
    });
    std::vector<std::size_t> rank_of(n);
    for (std::size_t r = 0; r < n; ++r) rank_of[task_of_rank[r]] = r;

    std::vector<std::size_t> unscheduled_preds(n, 0);
    for (TaskId t = 0; t < n; ++t) unscheduled_preds[t] = graph.in_edge_indices(t).size();
    CalendarReadyQueue ready(n);
    for (TaskId t = 0; t < n; ++t)
        if (unscheduled_preds[t] == 0) ready.push(rank_of[t]);

    std::vector<TaskId> order;
    order.reserve(n);
    while (!ready.empty()) {
        const TaskId t = task_of_rank[ready.pop_min()];
        order.push_back(t);
        for (std::size_t idx : graph.out_edge_indices(t)) {
            const Edge& e = graph.edge(idx);
            if (--unscheduled_preds[e.dst] == 0) ready.push(rank_of[e.dst]);
        }
    }
    if (order.size() != n)
        throw std::logic_error("static_schedule_order: graph not fully ordered");
    return order;
}

std::vector<std::uint64_t> per_core_busy_cycles(const TaskGraph& graph, const Mapping& mapping,
                                                std::size_t core_count) {
    if (mapping.task_count() != graph.task_count())
        throw std::invalid_argument("per_core_busy_cycles: mapping/graph size mismatch");
    std::vector<std::uint64_t> busy(core_count, 0);
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        if (!mapping.is_assigned(t)) continue;
        const CoreId core = mapping.core_of(t);
        if (core >= core_count) throw std::out_of_range("per_core_busy_cycles: bad core id");
        busy[core] += graph.task(t).exec_cycles;
        for (std::size_t idx : graph.out_edge_indices(t)) {
            const Edge& e = graph.edge(idx);
            // Producer pays the transfer when the consumer is on another
            // core (or not yet placed — pessimistic for partial mappings).
            if (!mapping.is_assigned(e.dst) || mapping.core_of(e.dst) != core)
                busy[core] += e.comm_cycles;
        }
    }
    return busy;
}

Schedule ListScheduler::schedule(const TaskGraph& graph, const Mapping& mapping,
                                 const MpsocArchitecture& arch,
                                 const ScalingVector& levels) const {
    check_inputs(graph, mapping, arch, levels);
    const std::size_t n = graph.task_count();
    const std::size_t cores = arch.core_count();
    const double batches = static_cast<double>(graph.batch_count());

    const auto priority = b_levels(graph);

    // Per-iteration durations in seconds.
    std::vector<double> core_freq(cores);
    for (std::size_t c = 0; c < cores; ++c) core_freq[c] = arch.frequency_hz(levels[c]);
    auto exec_seconds = [&](TaskId t) {
        return static_cast<double>(graph.task(t).exec_cycles) / batches /
               core_freq[mapping.core_of(t)];
    };
    auto comm_seconds = [&](const Edge& e) {
        return static_cast<double>(e.comm_cycles) / batches / core_freq[mapping.core_of(e.src)];
    };

    // Event-driven list scheduling: repeatedly pick, among dependency-
    // ready tasks, the highest-priority one, and place it on its mapped
    // core at the earliest feasible time.
    std::vector<std::size_t> unscheduled_preds(n, 0);
    for (TaskId t = 0; t < n; ++t) unscheduled_preds[t] = graph.in_edge_indices(t).size();
    std::vector<TaskId> ready;
    for (TaskId t = 0; t < n; ++t)
        if (unscheduled_preds[t] == 0) ready.push_back(t);

    Schedule result;
    result.entries.resize(n);
    std::vector<double> core_free(cores, 0.0);
    std::vector<double> data_ready(n, 0.0);
    std::size_t scheduled = 0;
    while (!ready.empty()) {
        // Highest b-level first; ties by id for determinism.
        const auto best = std::min_element(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
            if (priority[a] != priority[b]) return priority[a] > priority[b];
            return a < b;
        });
        const TaskId t = *best;
        ready.erase(best);

        const CoreId core = mapping.core_of(t);
        const double start = std::max(core_free[core], data_ready[t]);
        const double finish = start + exec_seconds(t);
        result.entries[t] = ScheduledTask{t, core, start, finish};
        ++scheduled;

        // Outbound cross-core transfers occupy the producer core after
        // the task body (eq. 7 charges d_jk to the producer), serialized
        // in edge order over its dedicated links.
        double cursor = finish;
        for (std::size_t idx : graph.out_edge_indices(t)) {
            const Edge& e = graph.edge(idx);
            const bool cross = mapping.core_of(e.dst) != core;
            double arrival = finish;
            if (cross) {
                cursor += comm_seconds(e);
                arrival = cursor;
            }
            data_ready[e.dst] = std::max(data_ready[e.dst], arrival);
            if (--unscheduled_preds[e.dst] == 0) ready.push_back(e.dst);
        }
        core_free[core] = cursor;
    }
    if (scheduled != n)
        throw std::logic_error("ListScheduler: internal error, graph not fully scheduled");

    // Latency of one iteration.
    double latency = 0.0;
    for (const auto& entry : result.entries) latency = std::max(latency, entry.finish_seconds);
    result.latency_seconds = latency;

    // Whole-run busy accounting (eq. 7) and pipelined completion time.
    result.core_busy_cycles = per_core_busy_cycles(graph, mapping, cores);
    result.core_busy_seconds.resize(cores);
    double ii = 0.0;
    for (std::size_t c = 0; c < cores; ++c) {
        result.core_busy_seconds[c] =
            static_cast<double>(result.core_busy_cycles[c]) / core_freq[c];
        ii = std::max(ii, result.core_busy_seconds[c] / batches);
    }
    result.initiation_interval_seconds = ii;
    result.total_time_seconds = latency + (batches - 1.0) * ii;

    result.utilization.resize(cores);
    for (std::size_t c = 0; c < cores; ++c) {
        result.utilization[c] = result.total_time_seconds > 0.0
                                    ? std::min(1.0, result.core_busy_seconds[c] /
                                                        result.total_time_seconds)
                                    : 0.0;
    }
    return result;
}
// seamap-lint: pop-allow(hot-path-alloc)

double tm_estimate_eq6_seconds(const TaskGraph& graph, const Mapping& mapping,
                               const MpsocArchitecture& arch, const ScalingVector& levels) {
    arch.validate_scaling(levels);
    const auto busy = per_core_busy_cycles(graph, mapping, arch.core_count());
    std::uint64_t total_cycles = 0;
    double total_rate = 0.0;
    for (std::size_t c = 0; c < arch.core_count(); ++c) {
        total_cycles += busy[c];
        if (busy[c] > 0) total_rate += arch.frequency_hz(levels[c]);
    }
    if (exactly_zero(total_rate)) return 0.0;
    return static_cast<double>(total_cycles) / total_rate;
}

double tm_lower_bound_seconds(const TaskGraph& graph, const MpsocArchitecture& arch,
                              const ScalingVector& levels) {
    arch.validate_scaling(levels);
    const double batches = static_cast<double>(graph.batch_count());
    double fastest = 0.0;
    double total_rate = 0.0;
    for (std::size_t c = 0; c < arch.core_count(); ++c) {
        const double f = arch.frequency_hz(levels[c]);
        fastest = std::max(fastest, f);
        total_rate += f;
    }
    std::uint64_t biggest_task = 0;
    for (TaskId t = 0; t < graph.task_count(); ++t)
        biggest_task = std::max(biggest_task, graph.task(t).exec_cycles);
    return tm_lower_bound_from_aggregates(
        static_cast<double>(graph.critical_path_cycles(false)),
        static_cast<double>(graph.total_exec_cycles()), static_cast<double>(biggest_task),
        batches, fastest, total_rate);
}

double tm_lower_bound_from_aggregates(double critical_path_cycles, double total_exec_cycles,
                                      double biggest_task_cycles, double batches,
                                      double fastest_hz, double total_rate_hz) {
    // Latency bound: the no-communication critical path of one
    // iteration cannot beat the fastest core's clock...
    const double latency_bound = critical_path_cycles / batches / fastest_hz;
    // ...and throughput cannot beat all cores working flat out.
    const double work_bound = total_exec_cycles / total_rate_hz;
    // Pipelined completion combines both: latency for the first
    // iteration, bottleneck throughput for the rest. The initiation
    // interval is floored by the biggest single task (atomic, on the
    // fastest core) and by the per-iteration work spread over every
    // core working flat out — the latter is what work_bound measures,
    // but adding the first iteration's latency on top of (B-1)
    // intervals is strictly stronger than B intervals alone whenever
    // the critical path exceeds one balanced interval.
    const double ii_bound =
        std::max(biggest_task_cycles / batches / fastest_hz, work_bound / batches);
    return std::max({latency_bound + (batches - 1.0) * ii_bound, work_bound, latency_bound});
}

} // namespace seamap
