// Text rendering of schedules: a per-core Gantt chart for terminals
// and a CSV dump for plotting, both over the single-iteration schedule.
#pragma once

#include "sched/list_scheduler.h"
#include "taskgraph/task_graph.h"

#include <iosfwd>
#include <string>

namespace seamap {

/// Render an ASCII Gantt chart, one row per core, `width` characters of
/// timeline. Tasks are labelled by the first letters of their names.
void write_gantt(std::ostream& os, const TaskGraph& graph, const Schedule& schedule,
                 std::size_t width = 72);

/// CSV rows: task,name,core,start_seconds,finish_seconds.
void write_schedule_csv(std::ostream& os, const TaskGraph& graph, const Schedule& schedule);

/// Convenience: Gantt chart as a string.
std::string gantt_to_string(const TaskGraph& graph, const Schedule& schedule,
                            std::size_t width = 72);

} // namespace seamap
