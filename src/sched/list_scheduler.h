// List scheduling of a mapped task graph on the MPSoC, and the paper's
// execution-time model.
//
// Execution model
// ---------------
// The graph's costs are whole-run totals over `batch_count` iterations
// (437 frames for the MPEG-2 decoder). The system processes iterations
// in a pipeline: iteration n+1 of a task can start as soon as the core
// is free, so steady-state throughput is set by the *bottleneck core*
// while single-iteration latency comes from the DAG schedule. The
// completion time reported as the paper's multiprocessor execution time
// T_M is therefore
//     T_M = L + (B - 1) * II
// where L  = list-schedule makespan of one iteration (seconds),
//       II = max_i (per-iteration busy time of core i), and
//       B  = batch_count. For B = 1 this degenerates to the plain DAG
// makespan. This is the model under which the paper's observations
// cohere: task distribution must buy real throughput for DVS to exploit
// (Section III), and eq. (7)'s per-core busy time is what the
// InitialSEAMapping deadline test consumes.
//
// Communication: an edge (j, k) costs cycles only when j and k map to
// different cores (dedicated point-to-point links, Fig. 1); the
// *producer's* core pays the transfer at its own clock, per eq. (7)'s
// attribution of d_jk to the core j is mapped on. Transfers occupy the
// producer core after the task body (serialized in edge order), so the
// schedule timeline and eq. (7)'s busy accounting agree exactly:
// latency L >= every core's per-iteration busy time.
//
// Priorities: static b-level (longest exec+comm path from the task to
// any sink, in cycles) — ties broken by task id for determinism.
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "sched/mapping.h"
#include "taskgraph/task_graph.h"

#include <cstdint>
#include <vector>

namespace seamap {

/// One scheduled task instance (single iteration).
struct ScheduledTask {
    TaskId task = 0;
    CoreId core = 0;
    double start_seconds = 0.0;
    double finish_seconds = 0.0;
};

/// Result of scheduling a complete mapping.
struct Schedule {
    /// Per-task entries, indexed by TaskId.
    std::vector<ScheduledTask> entries;
    /// Single-iteration DAG makespan L, seconds.
    double latency_seconds = 0.0;
    /// Steady-state initiation interval II (bottleneck core), seconds.
    double initiation_interval_seconds = 0.0;
    /// Pipelined completion time T_M = L + (B-1)*II, seconds.
    double total_time_seconds = 0.0;
    /// Whole-run busy cycles per core: eq. (7)'s T_i (exec + outbound
    /// cross-core communication).
    std::vector<std::uint64_t> core_busy_cycles;
    /// Whole-run busy time per core, seconds (busy cycles / core clock).
    std::vector<double> core_busy_seconds;
    /// busy_seconds_i / total_time — the alpha_i of eq. (5).
    std::vector<double> utilization;

    /// Convenience: does the schedule meet a deadline (with a relative
    /// tolerance for floating-point round-off)?
    bool meets_deadline(double deadline_seconds) const {
        return total_time_seconds <= deadline_seconds * (1.0 + 1e-9);
    }
};

/// Deterministic list scheduler.
class ListScheduler {
public:
    /// Schedule `mapping` (must be complete) on `arch` at the per-core
    /// scaling `levels`. Throws std::invalid_argument on incomplete
    /// mappings or mismatched sizes.
    Schedule schedule(const TaskGraph& graph, const Mapping& mapping,
                      const MpsocArchitecture& arch, const ScalingVector& levels) const;
};

/// The exact sequence in which ListScheduler::schedule places tasks.
/// The scheduler picks, among dependency-ready tasks, the highest
/// static b-level (ties by task id) — a strict total order on a set
/// that evolves purely from the graph structure, so the sequence is a
/// pure function of the graph: independent of the mapping and of the
/// scaling levels. core/eval_context.h precomputes it once per scaling
/// search and replays only timing arithmetic per candidate.
std::vector<TaskId> static_schedule_order(const TaskGraph& graph);

/// Calendar-style ready list over a fixed slot universe [0, slot_count):
/// a hierarchical bitmap (one summary bit per 64-slot word) whose
/// pop_min() returns the smallest present slot in O(1) amortized time —
/// find-first-set over at most slot_count/4096 summary words, then two
/// ctz steps — versus the O(ready) min_element scan it replaces in
/// static_schedule_order, which is quadratic at 1k+ tasks. Callers
/// pre-rank their elements so that slot order IS the selection order
/// (static_schedule_order ranks by descending b-level, ties by id),
/// making pop_min bit-identical to the linear-scan selection.
class CalendarReadyQueue {
public:
    explicit CalendarReadyQueue(std::size_t slot_count);

    /// Mark `slot` present. Pushing a present slot is a no-op.
    void push(std::size_t slot);
    /// Remove and return the smallest present slot; throws
    /// std::logic_error when empty.
    std::size_t pop_min();
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

private:
    std::size_t slot_count_ = 0;
    std::size_t size_ = 0;
    std::vector<std::uint64_t> bits_;    ///< slot presence, 64 per word
    std::vector<std::uint64_t> summary_; ///< bit w: bits_[w] != 0
};

/// Whole-run busy cycles per core (eq. 7) without building a schedule;
/// tolerates partial mappings (unassigned tasks contribute nothing).
/// Cross-core edges whose consumer is still unmapped are charged to the
/// producer (pessimistic, matches the greedy's incremental use).
std::vector<std::uint64_t> per_core_busy_cycles(const TaskGraph& graph, const Mapping& mapping,
                                                std::size_t core_count);

/// The paper's eq. (6) estimate of T_M in seconds: total mapped cycles
/// (exec + cross-core comm) divided by the summed clock rate of the
/// cores that have tasks.
double tm_estimate_eq6_seconds(const TaskGraph& graph, const Mapping& mapping,
                               const MpsocArchitecture& arch, const ScalingVector& levels);

/// Lower bound on achievable T_M at a given scaling, over all mappings:
/// max(critical-path latency on the fastest used core, total work
/// spread over all cores, pipelined latency + (B-1) initiation
/// intervals). Used by the DSE to skip hopeless scalings.
double tm_lower_bound_seconds(const TaskGraph& graph, const MpsocArchitecture& arch,
                              const ScalingVector& levels);

/// The same bound from pre-aggregated scalars — one formula shared by
/// the feasibility gate above and the branch-and-bound bounds
/// (core/scaling_bounds.cpp evaluates it per powered-core case, where
/// only the chosen cores' rates count), so gate and bound model can
/// never drift apart. Cycle quantities are whole-run totals; rates in
/// Hz. `fastest_hz` / `total_rate_hz` must be positive.
double tm_lower_bound_from_aggregates(double critical_path_cycles, double total_exec_cycles,
                                      double biggest_task_cycles, double batches,
                                      double fastest_hz, double total_rate_hz);

} // namespace seamap
