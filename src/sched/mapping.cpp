#include "sched/mapping.h"

#include <stdexcept>

namespace seamap {

Mapping::Mapping(std::size_t task_count, std::size_t core_count)
    : core_of_(task_count, k_unassigned), core_count_(core_count) {
    if (core_count_ == 0) throw std::invalid_argument("Mapping: need at least one core");
}

void Mapping::assign(TaskId task, CoreId core) {
    check_task(task);
    if (core >= core_count_) throw std::out_of_range("Mapping: core id out of range");
    if (core_of_[task] == k_unassigned) ++assigned_count_;
    core_of_[task] = core;
}

void Mapping::unassign(TaskId task) {
    check_task(task);
    if (core_of_[task] != k_unassigned) {
        core_of_[task] = k_unassigned;
        --assigned_count_;
    }
}

bool Mapping::is_assigned(TaskId task) const {
    check_task(task);
    return core_of_[task] != k_unassigned;
}

CoreId Mapping::core_of(TaskId task) const {
    check_task(task);
    if (core_of_[task] == k_unassigned)
        throw std::logic_error("Mapping: task " + std::to_string(task) + " is unassigned");
    return core_of_[task];
}

bool Mapping::complete() const { return assigned_count_ == core_of_.size(); }

std::vector<TaskId> Mapping::tasks_on(CoreId core) const {
    std::vector<TaskId> out;
    for (TaskId t = 0; t < core_of_.size(); ++t)
        if (core_of_[t] == core) out.push_back(t);
    return out;
}

std::size_t Mapping::task_count_on(CoreId core) const {
    std::size_t n = 0;
    for (CoreId c : core_of_)
        if (c == core) ++n;
    return n;
}

std::size_t Mapping::used_core_count() const {
    std::vector<bool> used(core_count_, false);
    for (CoreId c : core_of_)
        if (c != k_unassigned) used[c] = true;
    std::size_t n = 0;
    for (bool u : used)
        if (u) ++n;
    return n;
}

void Mapping::check_task(TaskId task) const {
    if (task >= core_of_.size()) throw std::out_of_range("Mapping: task id out of range");
}

Mapping round_robin_mapping(const TaskGraph& graph, std::size_t core_count) {
    Mapping mapping(graph.task_count(), core_count);
    const auto order = graph.topological_order();
    for (std::size_t i = 0; i < order.size(); ++i)
        mapping.assign(order[i], static_cast<CoreId>(i % core_count));
    return mapping;
}

Mapping single_core_mapping(const TaskGraph& graph, std::size_t core_count) {
    Mapping mapping(graph.task_count(), core_count);
    for (TaskId t = 0; t < graph.task_count(); ++t) mapping.assign(t, 0);
    return mapping;
}

} // namespace seamap
