// Task-to-core mapping: the decision variable of the whole paper. A
// Mapping assigns every task of a graph to one core of the MPSoC;
// partial mappings occur during greedy construction.
#pragma once

#include "taskgraph/task_graph.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace seamap {

using CoreId = std::uint32_t;

/// Assignment of tasks to cores. Starts fully unassigned.
class Mapping {
public:
    Mapping() = default;
    Mapping(std::size_t task_count, std::size_t core_count);

    std::size_t task_count() const { return core_of_.size(); }
    std::size_t core_count() const { return core_count_; }

    void assign(TaskId task, CoreId core);
    /// Remove an assignment (used by search backtracking).
    void unassign(TaskId task);

    bool is_assigned(TaskId task) const;
    /// Core of a task; throws std::logic_error if unassigned.
    CoreId core_of(TaskId task) const;

    /// True when every task has a core.
    bool complete() const;
    std::size_t assigned_count() const { return assigned_count_; }

    /// Task ids mapped to `core`, ascending.
    std::vector<TaskId> tasks_on(CoreId core) const;
    /// Number of tasks mapped to `core`.
    std::size_t task_count_on(CoreId core) const;
    /// Number of cores with at least one task.
    std::size_t used_core_count() const;

    bool operator==(const Mapping& other) const = default;

    /// Raw per-task core array (k_unassigned where unset) — handy for
    /// exports and hashing.
    static constexpr CoreId k_unassigned = 0xffffffffu;
    const std::vector<CoreId>& raw() const { return core_of_; }

private:
    void check_task(TaskId task) const;

    std::vector<CoreId> core_of_;
    std::size_t core_count_ = 0;
    std::size_t assigned_count_ = 0;
};

/// Tasks dealt to cores in topological order, round-robin. Complete by
/// construction; a common search seed and test fixture.
Mapping round_robin_mapping(const TaskGraph& graph, std::size_t core_count);

/// Everything on core 0 (the fully localized extreme).
Mapping single_core_mapping(const TaskGraph& graph, std::size_t core_count);

} // namespace seamap
