#include "tgff/random_graph.h"

#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace seamap {

namespace {

void check_params(const TgffParams& p) {
    if (p.task_count == 0) throw std::invalid_argument("TgffParams: task_count must be >= 1");
    if (p.cost_unit == 0) throw std::invalid_argument("TgffParams: cost_unit must be >= 1");
    if (p.comp_cost_min == 0 || p.comp_cost_min > p.comp_cost_max)
        throw std::invalid_argument("TgffParams: bad computation cost range");
    if (p.comm_cost_min == 0 || p.comm_cost_min > p.comm_cost_max)
        throw std::invalid_argument("TgffParams: bad communication cost range");
    if (p.register_bits_min == 0 || p.register_bits_min > p.register_bits_max)
        throw std::invalid_argument("TgffParams: bad register budget range");
    if (p.out_degree_mean < 0.0)
        throw std::invalid_argument("TgffParams: out_degree_mean must be >= 0");
    if (p.max_out_degree_fraction < 0.0 || p.max_out_degree_fraction > 1.0)
        throw std::invalid_argument("TgffParams: max_out_degree_fraction must be in [0, 1]");
    if (p.output_buffer_fraction < 0.0 || p.output_buffer_fraction >= 1.0)
        throw std::invalid_argument("TgffParams: output_buffer_fraction must be in [0, 1)");
    if (p.batch_count == 0) throw std::invalid_argument("TgffParams: batch_count must be >= 1");
}

} // namespace

TaskGraph generate_tgff_graph(const TgffParams& params, std::uint64_t seed) {
    check_params(params);
    Rng rng(seed);
    const std::size_t n = params.task_count;

    // Per-task register budgets, split into a shared output buffer and
    // private local state. Every register gets at least one bit.
    RegisterFile regs;
    std::vector<RegisterId> out_buffer(n);
    std::vector<RegisterId> local_state(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto budget = static_cast<std::uint64_t>(rng.uniform_int(
            static_cast<std::int64_t>(params.register_bits_min),
            static_cast<std::int64_t>(params.register_bits_max)));
        auto buffer_bits = static_cast<std::uint64_t>(
            std::llround(params.output_buffer_fraction * static_cast<double>(budget)));
        buffer_bits = std::clamp<std::uint64_t>(buffer_bits, 1, budget > 1 ? budget - 1 : 1);
        const std::uint64_t local_bits = std::max<std::uint64_t>(1, budget - buffer_bits);
        out_buffer[i] = regs.add_register("out_" + std::to_string(i), buffer_bits);
        local_state[i] = regs.add_register("loc_" + std::to_string(i), local_bits);
    }

    // Topology: forward edges only.
    const auto max_out_degree = static_cast<std::size_t>(
        params.max_out_degree_fraction * static_cast<double>(n));
    std::vector<std::vector<std::size_t>> successors(n);
    std::vector<bool> has_predecessor(n, false);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const std::size_t forward = n - 1 - i;
        std::size_t degree = 0;
        if (params.out_degree_mean > 0.0)
            degree = static_cast<std::size_t>(std::llround(rng.exponential(params.out_degree_mean)));
        degree = std::min({degree, max_out_degree, forward});
        // Sample `degree` distinct targets among tasks i+1..n-1.
        std::vector<std::size_t> candidates(forward);
        for (std::size_t k = 0; k < forward; ++k) candidates[k] = i + 1 + k;
        for (std::size_t d = 0; d < degree; ++d) {
            const auto pick = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1));
            const std::size_t target = candidates[pick];
            candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
            successors[i].push_back(target);
            has_predecessor[target] = true;
        }
    }
    // Connectivity: attach orphans (other than task 0) to a random
    // earlier task that still has out-degree headroom under the N/2
    // cap; if every earlier task is saturated (only possible in tiny
    // graphs), fall back to the least-loaded one.
    for (std::size_t j = 1; j < n; ++j) {
        if (has_predecessor[j]) continue;
        std::vector<std::size_t> with_headroom;
        for (std::size_t i = 0; i < j; ++i)
            if (successors[i].size() < std::max<std::size_t>(max_out_degree, 1))
                with_headroom.push_back(i);
        std::size_t parent;
        if (!with_headroom.empty()) {
            parent = with_headroom[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(with_headroom.size()) - 1))];
        } else {
            parent = 0;
            for (std::size_t i = 1; i < j; ++i)
                if (successors[i].size() < successors[parent].size()) parent = i;
        }
        successors[parent].push_back(j);
        has_predecessor[j] = true;
    }
    for (auto& list : successors) std::sort(list.begin(), list.end());

    // Materialize the graph. A task uses its own buffer + local state
    // plus the output buffers of all its producers.
    std::vector<std::vector<std::size_t>> predecessors(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j : successors[i]) predecessors[j].push_back(i);

    TaskGraph graph(params.name + "_" + std::to_string(n), std::move(regs));
    graph.set_batch_count(params.batch_count);
    for (std::size_t i = 0; i < n; ++i) {
        const auto cost_units = static_cast<std::uint64_t>(rng.uniform_int(
            static_cast<std::int64_t>(params.comp_cost_min),
            static_cast<std::int64_t>(params.comp_cost_max)));
        std::vector<RegisterId> used = {out_buffer[i], local_state[i]};
        for (std::size_t p : predecessors[i]) used.push_back(out_buffer[p]);
        std::string task_name = "t";
        task_name += std::to_string(i);
        graph.add_task(std::move(task_name), cost_units * params.cost_unit, used);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j : successors[i]) {
            const auto comm_units = static_cast<std::uint64_t>(rng.uniform_int(
                static_cast<std::int64_t>(params.comm_cost_min),
                static_cast<std::int64_t>(params.comm_cost_max)));
            graph.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(j),
                           comm_units * params.cost_unit);
        }
    }
    graph.validate();
    return graph;
}

double paper_tgff_deadline_seconds(std::size_t task_count) {
    // 1000 * N/2 milliseconds.
    return 0.5 * static_cast<double>(task_count);
}

} // namespace seamap
