// TGFF-style random task-graph generator, reproducing the paper's
// random-workload recipe (Section V):
//   - computation cost  ~ U[1, 30]  (x 3.5e6 clock cycles),
//   - communication cost ~ U[1, 10] (x 3.5e6 clock cycles),
//   - per-task register usage ~ U[1 kbit, 5 kbit],
//   - number of dependents ~ exponential, clamped to [0, N/2].
//
// Topology: tasks are created in topological index order and edges only
// point forward, so the result is a DAG by construction; orphaned tasks
// are attached to a random earlier task to keep the graph connected.
//
// Register overlap (the paper never spells out its generator's sharing
// structure, but without sharing the mapping/reliability trade-off
// disappears): each task owns an *output buffer* register that is also
// used by every consumer of its data, plus private local state. The
// buffer fraction is a parameter; co-locating a producer with its
// consumers therefore shares the buffer, while splitting them
// duplicates it — exactly the localize-vs-distribute tension of
// Section III.
#pragma once

#include "taskgraph/task_graph.h"

#include <cstdint>
#include <string>

namespace seamap {

/// Knobs of the generator; defaults reproduce the paper's recipe.
struct TgffParams {
    std::size_t task_count = 20;
    /// Fig. 2-style cost quantum.
    std::uint64_t cost_unit = 3'500'000;
    std::uint32_t comp_cost_min = 1;
    std::uint32_t comp_cost_max = 30;
    std::uint32_t comm_cost_min = 1;
    std::uint32_t comm_cost_max = 10;
    /// Per-task total register budget, bits (1 kbit = 1000 bits).
    std::uint64_t register_bits_min = 1'000;
    std::uint64_t register_bits_max = 5'000;
    /// Mean of the exponential out-degree distribution.
    double out_degree_mean = 2.0;
    /// Hard cap on out-degree as a fraction of N (paper: N/2).
    double max_out_degree_fraction = 0.5;
    /// Fraction of a task's register budget devoted to its shared
    /// output buffer (the rest is private).
    double output_buffer_fraction = 0.5;
    /// Iterations of the graph flowing through the system.
    std::uint64_t batch_count = 1;
    std::string name = "tgff";
};

/// Generate a graph; identical (params, seed) pairs produce identical
/// graphs. Throws std::invalid_argument on inconsistent parameters.
TaskGraph generate_tgff_graph(const TgffParams& params, std::uint64_t seed);

/// The paper's deadline rule for random graphs: 1000 * N/2 ms.
double paper_tgff_deadline_seconds(std::size_t task_count);

} // namespace seamap
