// Architecture-allocation sweep on synthetic workloads — the
// random-task-graph half of the paper's Table III, as a reusable tool:
// generate TGFF-style graphs of several sizes, explore 2..C_max cores
// each through the public API, and report the power and SEUs of the
// chosen design. The search strategy is selectable from the registry,
// so the same sweep compares the Fig. 7 search against the SA baseline.
//
// Usage: random_taskgraph_sweep [max_cores] [seed] [search_iterations] [strategy]
#include "seamap/seamap.h"

#include "tgff/random_graph.h"
#include "util/strings.h"
#include "util/table.h"

#include <iostream>

using namespace seamap;

namespace {

/// Deadline normalization used for random graphs throughout this
/// repository: 1.5x the two-core nominal-speed capacity, which lands
/// the DSE in the paper's regime (2 cores near nominal voltage, 6
/// cores deeply scaled). See EXPERIMENTS.md.
double normalized_deadline_seconds(const TaskGraph& graph) {
    const double two_core_seconds =
        static_cast<double>(graph.total_exec_cycles()) / (2.0 * 200e6);
    return 1.5 * two_core_seconds;
}

} // namespace

int main(int argc, char** argv) {
    const std::size_t max_cores = argc > 1 ? parse_u64(argv[1]) : 6;
    const std::uint64_t seed = argc > 2 ? parse_u64(argv[2]) : 7;
    const std::uint64_t iterations = argc > 3 ? parse_u64(argv[3]) : 2'000;
    const std::string strategy = argc > 4 ? argv[4] : "optimized";

    ExploreOptions options;
    options.strategy = strategy;
    options.dse.search.max_iterations = iterations;
    options.dse.search.seed = seed;

    TableWriter table({"tasks", "cores", "P (mW)", "Gamma", "T_M (s)", "deadline (s)"});
    for (const std::size_t tasks : {20u, 40u, 60u}) {
        TgffParams tgff;
        tgff.task_count = tasks;
        const TaskGraph graph = generate_tgff_graph(tgff, seed);
        const double deadline = normalized_deadline_seconds(graph);
        for (std::size_t cores = 2; cores <= max_cores; ++cores) {
            const Problem problem =
                ProblemBuilder()
                    .graph(graph)
                    .architecture(cores, VoltageScalingTable::arm7_three_level())
                    .deadline_seconds(deadline)
                    .build();
            const DseResult result = explore(problem, options);
            if (!result.best) {
                table.add_row({std::to_string(tasks), std::to_string(cores), "-", "-", "-",
                               fmt_double(deadline, 2)});
                continue;
            }
            table.add_row({std::to_string(tasks), std::to_string(cores),
                           fmt_double(result.best->metrics.power_mw, 2),
                           fmt_sci(result.best->metrics.gamma, 3),
                           fmt_double(result.best->metrics.tm_seconds, 2),
                           fmt_double(deadline, 2)});
        }
    }
    std::cout << "architecture-allocation sweep (seed " << seed << ", " << iterations
              << " search iterations per scaling, strategy " << strategy << ")\n\n";
    table.print_text(std::cout);
    std::cout << "\nexpected shape (paper Table III): power is minimized at an\n"
                 "application-dependent middle core count, while the SEUs\n"
                 "experienced grow monotonically with the number of cores.\n";
    return 0;
}
