// Fault-injection campaign on a chosen MPEG-2 decoder design — the
// measurement half of the paper's methodology (Section II-B): SEUs
// arrive as a Poisson process over the live register space; the
// campaign reports per-trial statistics, the analytic expectation they
// fluctuate around, and where the hits land (per core and per
// register). The design under test comes from the public API: a
// Problem plus a registry search strategy.
//
// The sharded engine (sim/campaign.h) then scales the same process to
// large trial counts across differentiated fault sites (register file
// / pipeline / memory residency) with per-task, per-core and per-site
// attribution — and validates the analytic Γ of eq. (3) against the
// campaign's own 95% confidence interval. Results are byte-identical
// for every thread count and shard size.
//
// Usage: fault_injection_campaign [trials] [seed] [policy] [threads]
//   policy: full (default) | busy | task
#include "reliability/register_usage.h"
#include "seamap/seamap.h"

#include "core/initial_mapping.h"
#include "sim/campaign.h"
#include "sim/fault_injection.h"
#include "taskgraph/mpeg2.h"
#include "util/strings.h"
#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

using namespace seamap;

namespace {

SimExposurePolicy parse_policy(const std::string& text) {
    if (text == "full") return SimExposurePolicy::full_duration;
    if (text == "busy") return SimExposurePolicy::busy_only;
    if (text == "task") return SimExposurePolicy::running_task;
    throw std::invalid_argument("unknown policy '" + text + "' (full|busy|task)");
}

} // namespace

int main(int argc, char** argv) {
    const std::uint64_t trials = argc > 1 ? parse_u64(argv[1]) : 500;
    const std::uint64_t seed = argc > 2 ? parse_u64(argv[2]) : 42;
    const SimExposurePolicy policy = parse_policy(argc > 3 ? argv[3] : "full");
    const std::uint64_t threads = argc > 4 ? parse_u64(argv[4]) : 0; // 0 = hardware

    // Build a representative design: MPEG-2 on 4 cores at Table II's
    // scaling, mapped with the proposed two-stage optimizer.
    const Problem problem = ProblemBuilder()
                                .graph(mpeg2_decoder_graph())
                                .architecture(4, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(mpeg2_deadline_seconds())
                                .build();
    const TaskGraph& graph = problem.graph();
    const MpsocArchitecture& arch = problem.architecture();
    const ScalingVector levels = {2, 2, 3, 2};
    const EvaluationContext ctx = problem.evaluation_context(levels);
    const auto strategy = make_search_strategy("optimized", {.max_iterations = 3'000});
    const LocalSearchResult design = strategy->search(ctx, initial_sea_mapping(ctx), seed);
    const Mapping& mapping = design.best_mapping;
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);

    std::cout << "design  : MPEG-2 on 4 cores, scaling (2,2,3,2), "
              << (design.found_feasible ? "meets" : "MISSES") << " 29.97 fps deadline\n";
    std::cout << "policy  : "
              << (policy == SimExposurePolicy::full_duration ? "full_duration"
                  : policy == SimExposurePolicy::busy_only   ? "busy_only"
                                                             : "running_task")
              << ", SER 1e-9 SEU/bit/cycle at (1 V, 200 MHz)\n";
    std::cout << "trials  : " << trials << " (seed " << seed << ")\n\n";

    // Aggregate campaign.
    const FaultInjector injector(problem.ser_model(), policy);
    const auto campaign =
        injector.run_campaign(graph, mapping, arch, levels, schedule, trials, seed);
    std::cout << "analytic Gamma (eq. 3): " << fmt_sci(campaign.analytic_gamma, 4) << '\n';
    std::cout << "measured mean         : " << fmt_sci(campaign.seu_stats.mean(), 4)
              << " +/- " << fmt_sci(campaign.seu_stats.ci95_halfwidth(), 2)
              << " (95% CI)\n";
    std::cout << "measured stdev        : " << fmt_sci(campaign.seu_stats.stdev(), 4)
              << "  (Poisson predicts " << fmt_sci(std::sqrt(campaign.analytic_gamma), 4)
              << ")\n";
    std::cout << "min / max trial       : " << campaign.seu_stats.min() << " / "
              << campaign.seu_stats.max() << "\n\n";

    // One located trial for the breakdown tables.
    const FaultInjector located(problem.ser_model(), policy, /*sample_locations=*/true);
    Rng rng(seed);
    const InjectionResult hits =
        located.inject(graph, mapping, arch, levels, schedule, rng);

    TableWriter per_core({"core", "scaling", "Vdd (V)", "register bits", "SEU hits"});
    const auto bits = per_core_register_bits(graph, mapping, arch.core_count());
    for (std::size_t c = 0; c < arch.core_count(); ++c)
        per_core.add_row({std::to_string(c), std::to_string(levels[c]),
                          fmt_double(arch.scaling_table().vdd(levels[c]), 2),
                          fmt_grouped(bits[c]), fmt_grouped(hits.per_core[c])});
    per_core.print_text(std::cout);

    std::cout << "\ntop registers by hits (one trial):\n";
    std::vector<RegisterId> order(graph.register_file().size());
    for (RegisterId r = 0; r < order.size(); ++r) order[r] = r;
    std::sort(order.begin(), order.end(), [&](RegisterId a, RegisterId b) {
        return hits.per_register[a] > hits.per_register[b];
    });
    TableWriter per_reg({"register", "bits", "hits"});
    for (std::size_t i = 0; i < std::min<std::size_t>(8, order.size()); ++i) {
        const RegisterId r = order[i];
        per_reg.add_row({graph.register_file().name(r),
                         fmt_grouped(graph.register_file().bits(r)),
                         fmt_grouped(hits.per_register[r])});
    }
    per_reg.print_text(std::cout);

    // Sharded campaign across differentiated fault sites, at 40x the
    // serial trial count: per-site statistics plus per-task/per-core
    // attribution, byte-identical for any thread count / shard size.
    CampaignConfig config;
    config.trials = trials * 40;
    config.shard_size = 1024;
    config.num_threads = static_cast<std::size_t>(threads);
    config.seed = seed;
    config.policy = policy;
    const CampaignEngine engine(problem.ser_model(), config);
    const CampaignReport report =
        engine.run(graph, mapping, arch, levels, schedule);

    std::cout << "\nsharded campaign      : " << report.trials << " trials in "
              << report.shards << " shards of " << report.shard_size << '\n';
    std::cout << "weighted analytic     : " << fmt_sci(report.analytic_gamma, 4)
              << "  measured " << fmt_sci(report.total_stats.mean(), 4) << " +/- "
              << fmt_sci(report.total_stats.ci95_halfwidth(), 2) << " (95% CI)\n";
    const SiteReport& reg_site = report.site(FaultSite::register_file);
    std::cout << "eq. 3 validation      : analytic "
              << fmt_sci(reg_site.analytic_gamma, 4) << " vs measured "
              << fmt_sci(reg_site.stats.mean(), 4) << " — "
              << (std::abs(reg_site.stats.mean() - reg_site.analytic_gamma) <=
                          reg_site.stats.ci95_halfwidth()
                      ? "inside"
                      : "OUTSIDE")
              << " the campaign 95% CI\n\n";

    TableWriter site_table({"site", "analytic", "mean", "stdev", "95% CI", "hits"});
    for (std::size_t s = 0; s < k_fault_site_count; ++s) {
        const FaultSite site = static_cast<FaultSite>(s);
        const SiteReport& sr = report.site(site);
        site_table.add_row({std::string(fault_site_name(site)),
                            fmt_sci(sr.analytic_gamma, 3), fmt_sci(sr.stats.mean(), 3),
                            fmt_sci(sr.stats.stdev(), 2),
                            fmt_sci(sr.stats.ci95_halfwidth(), 2),
                            fmt_grouped(sr.stats.sum())});
    }
    site_table.print_text(std::cout);

    std::cout << "\nmost vulnerable tasks (pipeline+memory hits):\n";
    std::vector<TaskId> task_order(graph.task_count());
    for (TaskId t = 0; t < task_order.size(); ++t) task_order[t] = t;
    std::sort(task_order.begin(), task_order.end(), [&](TaskId a, TaskId b) {
        if (report.hits_per_task[a] != report.hits_per_task[b])
            return report.hits_per_task[a] > report.hits_per_task[b];
        return a < b;
    });
    TableWriter task_table({"task", "core", "hits"});
    for (std::size_t i = 0; i < std::min<std::size_t>(6, task_order.size()); ++i) {
        const TaskId t = task_order[i];
        task_table.add_row({graph.task(t).name, std::to_string(mapping.core_of(t)),
                            fmt_grouped(report.hits_per_task[t])});
    }
    task_table.print_text(std::cout);
    return 0;
}
