// Fault-injection campaign on a chosen MPEG-2 decoder design — the
// measurement half of the paper's methodology (Section II-B): SEUs
// arrive as a Poisson process over the live register space; the
// campaign reports per-trial statistics, the analytic expectation they
// fluctuate around, and where the hits land (per core and per
// register). The design under test comes from the public API: a
// Problem plus a registry search strategy.
//
// Usage: fault_injection_campaign [trials] [seed] [policy]
//   policy: full (default) | busy | task
#include "reliability/register_usage.h"
#include "seamap/seamap.h"

#include "core/initial_mapping.h"
#include "sim/fault_injection.h"
#include "taskgraph/mpeg2.h"
#include "util/strings.h"
#include "util/table.h"

#include <iostream>
#include <string>

using namespace seamap;

namespace {

SimExposurePolicy parse_policy(const std::string& text) {
    if (text == "full") return SimExposurePolicy::full_duration;
    if (text == "busy") return SimExposurePolicy::busy_only;
    if (text == "task") return SimExposurePolicy::running_task;
    throw std::invalid_argument("unknown policy '" + text + "' (full|busy|task)");
}

} // namespace

int main(int argc, char** argv) {
    const std::uint64_t trials = argc > 1 ? parse_u64(argv[1]) : 500;
    const std::uint64_t seed = argc > 2 ? parse_u64(argv[2]) : 42;
    const SimExposurePolicy policy = parse_policy(argc > 3 ? argv[3] : "full");

    // Build a representative design: MPEG-2 on 4 cores at Table II's
    // scaling, mapped with the proposed two-stage optimizer.
    const Problem problem = ProblemBuilder()
                                .graph(mpeg2_decoder_graph())
                                .architecture(4, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(mpeg2_deadline_seconds())
                                .build();
    const TaskGraph& graph = problem.graph();
    const MpsocArchitecture& arch = problem.architecture();
    const ScalingVector levels = {2, 2, 3, 2};
    const EvaluationContext ctx = problem.evaluation_context(levels);
    const auto strategy = make_search_strategy("optimized", {.max_iterations = 3'000});
    const LocalSearchResult design = strategy->search(ctx, initial_sea_mapping(ctx), seed);
    const Mapping& mapping = design.best_mapping;
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);

    std::cout << "design  : MPEG-2 on 4 cores, scaling (2,2,3,2), "
              << (design.found_feasible ? "meets" : "MISSES") << " 29.97 fps deadline\n";
    std::cout << "policy  : "
              << (policy == SimExposurePolicy::full_duration ? "full_duration"
                  : policy == SimExposurePolicy::busy_only   ? "busy_only"
                                                             : "running_task")
              << ", SER 1e-9 SEU/bit/cycle at (1 V, 200 MHz)\n";
    std::cout << "trials  : " << trials << " (seed " << seed << ")\n\n";

    // Aggregate campaign.
    const FaultInjector injector(problem.ser_model(), policy);
    const auto campaign =
        injector.run_campaign(graph, mapping, arch, levels, schedule, trials, seed);
    std::cout << "analytic Gamma (eq. 3): " << fmt_sci(campaign.analytic_gamma, 4) << '\n';
    std::cout << "measured mean         : " << fmt_sci(campaign.seu_stats.mean(), 4)
              << " +/- " << fmt_sci(campaign.seu_stats.ci95_halfwidth(), 2)
              << " (95% CI)\n";
    std::cout << "measured stdev        : " << fmt_sci(campaign.seu_stats.stdev(), 4)
              << "  (Poisson predicts " << fmt_sci(std::sqrt(campaign.analytic_gamma), 4)
              << ")\n";
    std::cout << "min / max trial       : " << campaign.seu_stats.min() << " / "
              << campaign.seu_stats.max() << "\n\n";

    // One located trial for the breakdown tables.
    const FaultInjector located(problem.ser_model(), policy, /*sample_locations=*/true);
    Rng rng(seed);
    const InjectionResult hits =
        located.inject(graph, mapping, arch, levels, schedule, rng);

    TableWriter per_core({"core", "scaling", "Vdd (V)", "register bits", "SEU hits"});
    const auto bits = per_core_register_bits(graph, mapping, arch.core_count());
    for (std::size_t c = 0; c < arch.core_count(); ++c)
        per_core.add_row({std::to_string(c), std::to_string(levels[c]),
                          fmt_double(arch.scaling_table().vdd(levels[c]), 2),
                          fmt_grouped(bits[c]), fmt_grouped(hits.per_core[c])});
    per_core.print_text(std::cout);

    std::cout << "\ntop registers by hits (one trial):\n";
    std::vector<RegisterId> order(graph.register_file().size());
    for (RegisterId r = 0; r < order.size(); ++r) order[r] = r;
    std::sort(order.begin(), order.end(), [&](RegisterId a, RegisterId b) {
        return hits.per_register[a] > hits.per_register[b];
    });
    TableWriter per_reg({"register", "bits", "hits"});
    for (std::size_t i = 0; i < std::min<std::size_t>(8, order.size()); ++i) {
        const RegisterId r = order[i];
        per_reg.add_row({graph.register_file().name(r),
                         fmt_grouped(graph.register_file().bits(r)),
                         fmt_grouped(hits.per_register[r])});
    }
    per_reg.print_text(std::cout);
    return 0;
}
