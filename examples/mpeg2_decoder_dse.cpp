// Full design-space exploration of the paper's motivating workload: the
// MPEG-2 decoder (Fig. 2) decoding the 437-frame tennis bitstream at
// 29.97 fps on a homogeneous ARM7 MPSoC.
//
// Runs the complete Fig. 4 loop — voltage-scaling enumeration, two-
// stage soft error-aware mapping, iterative assessment — and prints the
// chosen design, the (P, Gamma) Pareto front, and a per-core summary.
// Optionally dumps the mapped task graph as Graphviz DOT.
//
// Usage: mpeg2_decoder_dse [cores] [search_iterations] [dot_file]
#include "core/dse.h"
#include "sched/gantt.h"
#include "taskgraph/dot.h"
#include "taskgraph/mpeg2.h"
#include "util/strings.h"
#include "util/table.h"

#include <fstream>
#include <iostream>

using namespace seamap;

int main(int argc, char** argv) {
    const std::size_t cores = argc > 1 ? parse_u64(argv[1]) : 4;
    const std::uint64_t iterations = argc > 2 ? parse_u64(argv[2]) : 4'000;
    const std::string dot_path = argc > 3 ? argv[3] : "";

    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(cores, VoltageScalingTable::arm7_three_level());
    const double deadline = mpeg2_deadline_seconds();

    std::cout << "workload : " << graph.name() << ", " << graph.task_count() << " tasks, "
              << graph.batch_count() << " frames\n";
    std::cout << "platform : " << cores << " cores, "
              << arch.scaling_table().level_count() << " scaling levels\n";
    std::cout << "deadline : " << fmt_double(deadline, 3) << " s (29.97 fps)\n";
    std::cout << "scalings : "
              << ScalingEnumerator::combination_count(cores,
                                                      arch.scaling_table().level_count())
              << " unique combinations (nextScaling, Fig. 5)\n\n";

    DseParams params;
    params.search.max_iterations = iterations;
    params.search.seed = 1;
    const DesignSpaceExplorer explorer{SerModel{}};
    const DseResult result = explorer.explore(graph, arch, deadline, params);

    std::cout << "explored " << result.scalings_searched << " scalings ("
              << result.scalings_skipped_infeasible << " skipped as infeasible)\n\n";
    if (!result.best) {
        std::cerr << "no feasible design: deadline too tight for this platform\n";
        return 1;
    }

    // The paper's pick: minimum power, Gamma tie-break.
    const DsePoint& best = *result.best;
    std::cout << "=== chosen design (min power, Gamma tie-break) ===\n";
    TableWriter per_core({"core", "scaling", "f (MHz)", "Vdd (V)", "tasks"});
    for (std::size_t c = 0; c < cores; ++c) {
        std::vector<std::string> names;
        for (TaskId t : best.mapping.tasks_on(static_cast<CoreId>(c)))
            names.push_back("t" + std::to_string(t + 1));
        per_core.add_row({std::to_string(c + 1), std::to_string(best.levels[c]),
                          fmt_double(arch.scaling_table().frequency_mhz(best.levels[c]), 1),
                          fmt_double(arch.scaling_table().vdd(best.levels[c]), 2),
                          join(names, " ")});
    }
    per_core.print_text(std::cout);
    std::cout << "\nP = " << fmt_double(best.metrics.power_mw, 2)
              << " mW, Gamma = " << fmt_sci(best.metrics.gamma, 3)
              << " SEUs, R = "
              << fmt_double(static_cast<double>(best.metrics.register_bits) / 1000.0, 0)
              << " kbit, T_M = " << fmt_double(best.metrics.tm_seconds, 2) << " s\n\n";

    std::cout << "=== (P, Gamma) Pareto front over feasible scalings ===\n";
    TableWriter front({"levels", "P (mW)", "Gamma", "T_M (s)"});
    for (const DsePoint& point : result.pareto_front) {
        std::string levels_text;
        for (ScalingLevel level : point.levels) {
            if (!levels_text.empty()) levels_text += ",";
            levels_text += std::to_string(level);
        }
        front.add_row({levels_text, fmt_double(point.metrics.power_mw, 2),
                       fmt_sci(point.metrics.gamma, 3),
                       fmt_double(point.metrics.tm_seconds, 2)});
    }
    front.print_text(std::cout);

    if (!dot_path.empty()) {
        std::ofstream dot(dot_path);
        if (!dot) {
            std::cerr << "cannot write " << dot_path << '\n';
            return 1;
        }
        std::vector<std::uint32_t> core_of(graph.task_count());
        for (TaskId t = 0; t < graph.task_count(); ++t) core_of[t] = best.mapping.core_of(t);
        write_dot_mapped(dot, graph, core_of);
        std::cout << "\nmapped task graph written to " << dot_path << '\n';
    }
    return 0;
}
