// Full design-space exploration of the paper's motivating workload: the
// MPEG-2 decoder (Fig. 2) decoding the 437-frame tennis bitstream at
// 29.97 fps on a homogeneous ARM7 MPSoC — through the public API:
// ProblemBuilder -> explore() with a named strategy, a ProgressObserver
// streaming per-scaling progress, and the chosen design, (P, Gamma)
// Pareto front and per-core summary printed at the end. Optionally
// dumps the mapped task graph as Graphviz DOT.
//
// Usage: mpeg2_decoder_dse [cores] [search_iterations] [dot_file] [strategy]
#include "seamap/seamap.h"

#include "taskgraph/dot.h"
#include "taskgraph/mpeg2.h"
#include "util/strings.h"
#include "util/table.h"

#include <fstream>
#include <iostream>

using namespace seamap;

namespace {

/// Streams one line per completed scaling and each new incumbent.
class ConsoleProgress : public ProgressObserver {
public:
    void on_scaling_done(const ScalingProgress& progress) override {
        std::cout << "  [" << progress.index + 1 << "/" << progress.total << "] scaling (";
        for (std::size_t c = 0; c < progress.levels.size(); ++c)
            std::cout << (c > 0 ? "," : "") << static_cast<int>(progress.levels[c]);
        std::cout << ") ";
        switch (progress.outcome) {
        case ScalingProgress::Outcome::skipped_infeasible:
            std::cout << "skipped (T_M lower bound misses deadline)\n";
            break;
        case ScalingProgress::Outcome::pruned:
            std::cout << "pruned (bounds dominated by an incumbent design)\n";
            break;
        case ScalingProgress::Outcome::searched_no_design:
            std::cout << "searched, no feasible mapping\n";
            break;
        case ScalingProgress::Outcome::feasible:
            std::cout << "P = " << fmt_double(progress.metrics.power_mw, 2)
                      << " mW, Gamma = " << fmt_sci(progress.metrics.gamma, 3) << '\n';
            break;
        }
    }

    void on_incumbent(const DsePoint& incumbent) override {
        std::cout << "  new incumbent: P = "
                  << fmt_double(incumbent.metrics.power_mw, 2)
                  << " mW, Gamma = " << fmt_sci(incumbent.metrics.gamma, 3) << '\n';
    }
};

} // namespace

int main(int argc, char** argv) {
    const std::size_t cores = argc > 1 ? parse_u64(argv[1]) : 4;
    const std::uint64_t iterations = argc > 2 ? parse_u64(argv[2]) : 4'000;
    const std::string dot_path = argc > 3 ? argv[3] : "";
    const std::string strategy = argc > 4 ? argv[4] : "optimized";

    const Problem problem = ProblemBuilder()
                                .graph(mpeg2_decoder_graph())
                                .architecture(cores, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(mpeg2_deadline_seconds())
                                .build();
    const TaskGraph& graph = problem.graph();
    const MpsocArchitecture& arch = problem.architecture();

    std::cout << "workload : " << graph.name() << ", " << graph.task_count() << " tasks, "
              << graph.batch_count() << " frames\n";
    std::cout << "platform : " << cores << " cores, "
              << arch.scaling_table().level_count() << " scaling levels\n";
    std::cout << "deadline : " << fmt_double(problem.deadline_seconds(), 3)
              << " s (29.97 fps)\n";
    std::cout << "strategy : " << strategy << " (available: "
              << join(search_strategy_names(), ", ") << ")\n\n";

    ExploreOptions options;
    options.strategy = strategy;
    options.dse.search.max_iterations = iterations;
    options.dse.search.seed = 1;
    ConsoleProgress progress;
    const DseResult result = explore(problem, options, &progress);

    std::cout << "\nexplored " << result.scalings_searched << " scalings ("
              << result.scalings_skipped_infeasible << " skipped as infeasible)\n\n";
    if (!result.best) {
        std::cerr << "no feasible design: deadline too tight for this platform\n";
        return 1;
    }

    // The paper's pick: minimum power, Gamma tie-break.
    const DsePoint& best = *result.best;
    std::cout << "=== chosen design (min power, Gamma tie-break) ===\n";
    TableWriter per_core({"core", "scaling", "f (MHz)", "Vdd (V)", "tasks"});
    for (std::size_t c = 0; c < cores; ++c) {
        std::vector<std::string> names;
        for (TaskId t : best.mapping.tasks_on(static_cast<CoreId>(c)))
            names.push_back("t" + std::to_string(t + 1));
        per_core.add_row({std::to_string(c + 1), std::to_string(best.levels[c]),
                          fmt_double(arch.scaling_table().frequency_mhz(best.levels[c]), 1),
                          fmt_double(arch.scaling_table().vdd(best.levels[c]), 2),
                          join(names, " ")});
    }
    per_core.print_text(std::cout);
    std::cout << "\nP = " << fmt_double(best.metrics.power_mw, 2)
              << " mW, Gamma = " << fmt_sci(best.metrics.gamma, 3)
              << " SEUs, R = "
              << fmt_double(static_cast<double>(best.metrics.register_bits) / 1000.0, 0)
              << " kbit, T_M = " << fmt_double(best.metrics.tm_seconds, 2) << " s\n\n";

    std::cout << "=== (P, Gamma) Pareto front over feasible scalings ===\n";
    TableWriter front({"levels", "P (mW)", "Gamma", "T_M (s)"});
    for (const DsePoint& point : result.pareto_front) {
        std::string levels_text;
        for (ScalingLevel level : point.levels) {
            if (!levels_text.empty()) levels_text += ",";
            levels_text += std::to_string(level);
        }
        front.add_row({levels_text, fmt_double(point.metrics.power_mw, 2),
                       fmt_sci(point.metrics.gamma, 3),
                       fmt_double(point.metrics.tm_seconds, 2)});
    }
    front.print_text(std::cout);

    if (!dot_path.empty()) {
        std::ofstream dot(dot_path);
        if (!dot) {
            std::cerr << "cannot write " << dot_path << '\n';
            return 1;
        }
        std::vector<std::uint32_t> core_of(graph.task_count());
        for (TaskId t = 0; t < graph.task_count(); ++t) core_of[t] = best.mapping.core_of(t);
        write_dot_mapped(dot, graph, core_of);
        std::cout << "\nmapped task graph written to " << dot_path << '\n';
    }
    return 0;
}
