// Quickstart: the public API (seamap/seamap.h) on one page.
//
// Reproduces the paper's Fig. 8 worked example: a six-task application
// mapped onto three cores running at voltage scalings (1, 2, 2) with a
// 75 ms deadline. Shows the problem description (ProblemBuilder), the
// two-stage soft error-aware mapping (greedy construction + a registry
// search strategy), the resulting schedule as a Gantt chart, and a
// fault-injection measurement of the final design.
//
// Usage: quickstart [seed]
#include "seamap/seamap.h"

#include "core/initial_mapping.h"
#include "sched/gantt.h"
#include "sim/fault_injection.h"
#include "taskgraph/fig8.h"
#include "util/strings.h"
#include "util/table.h"

#include <iostream>

using namespace seamap;

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? parse_u64(argv[1]) : 8;

    // 1. The problem: Fig. 8's six-task graph with its published
    //    register table, on three ARM7-class cores with the Table I
    //    scaling options, under the 75 ms real-time constraint. The SER
    //    model defaults reproduce the paper; build() validates.
    const Problem problem = ProblemBuilder()
                                .graph(fig8_example_graph())
                                .architecture(3, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(k_fig8_deadline_seconds)
                                .build();
    const TaskGraph& graph = problem.graph();
    std::cout << "application: " << graph.name() << " (" << graph.task_count() << " tasks, "
              << graph.edge_count() << " edges)\n";

    // 2. The example fixes the voltage scalings at (1, 2, 2); the
    //    evaluation context scores candidate mappings under them.
    const ScalingVector levels = {1, 2, 2};
    const EvaluationContext ctx = problem.evaluation_context(levels);

    // 3. Stage 1 — greedy soft error-aware construction (Fig. 6).
    const Mapping initial = initial_sea_mapping(ctx);
    const DesignMetrics initial_metrics = evaluate_design(ctx, initial);
    std::cout << "\nstage 1 (InitialSEAMapping): T_M = " << initial_metrics.tm_seconds * 1e3
              << " ms, Gamma = " << initial_metrics.gamma
              << (initial_metrics.feasible ? "  [meets deadline]" : "  [misses deadline]")
              << '\n';

    // 4. Stage 2 — the Fig. 7 local search, through the strategy
    //    registry ("annealing" would drop in the SA baseline instead).
    const auto strategy = make_search_strategy("optimized", {.max_iterations = 4'000});
    const LocalSearchResult result = strategy->search(ctx, initial, seed);
    if (!result.found_feasible) {
        std::cerr << "no feasible mapping found — loosen the deadline\n";
        return 1;
    }

    Schedule schedule;
    const DesignMetrics metrics = evaluate_design(ctx, result.best_mapping, schedule);
    const MpsocArchitecture& arch = problem.architecture();
    TableWriter table({"core", "scaling", "f (MHz)", "Vdd (V)", "tasks", "busy (ms)"});
    for (std::size_t c = 0; c < arch.core_count(); ++c) {
        std::vector<std::string> names;
        for (TaskId t : result.best_mapping.tasks_on(static_cast<CoreId>(c)))
            names.push_back(graph.task(t).name);
        table.add_row({std::to_string(c), std::to_string(levels[c]),
                       fmt_double(arch.scaling_table().frequency_mhz(levels[c]), 1),
                       fmt_double(arch.scaling_table().vdd(levels[c]), 2), join(names, " "),
                       fmt_double(schedule.core_busy_seconds[c] * 1e3, 1)});
    }
    std::cout << "\nstage 2 (" << strategy->name() << " strategy) after "
              << result.iterations_run << " iterations:\n\n";
    table.print_text(std::cout);
    std::cout << "\nT_M = " << metrics.tm_seconds * 1e3 << " ms (deadline "
              << k_fig8_deadline_seconds * 1e3 << " ms), Gamma = " << metrics.gamma
              << ", P = " << fmt_double(metrics.power_mw, 2) << " mW, R = "
              << fmt_double(static_cast<double>(metrics.register_bits) / 1000.0, 1)
              << " kbit\n\n";
    write_gantt(std::cout, graph, schedule);

    // 5. Measure the design with the Poisson SEU injector.
    const FaultInjector injector(problem.ser_model(), SimExposurePolicy::full_duration);
    const auto campaign = injector.run_campaign(graph, result.best_mapping, arch, levels,
                                                schedule, 200, seed);
    std::cout << "\nfault injection (200 trials): mean " << campaign.seu_stats.mean()
              << " SEUs (+/- " << fmt_double(campaign.seu_stats.ci95_halfwidth(), 3)
              << " @95%), analytic Gamma " << campaign.analytic_gamma << '\n';

    // 6. The same design, machine-readable.
    std::cout << "\nmetrics as JSON: " << to_json(metrics).dump() << '\n';
    return 0;
}
