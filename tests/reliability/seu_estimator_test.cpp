#include "reliability/seu_estimator.h"

#include "taskgraph/mpeg2.h"

#include <gtest/gtest.h>

#include <array>

namespace seamap {
namespace {

TaskGraph make_two_task_graph() {
    RegisterFile regs;
    const RegisterId ra = regs.add_register("ra", 1000);
    const RegisterId rb = regs.add_register("rb", 2000);
    TaskGraph graph("two", std::move(regs));
    graph.add_task("a", 100'000'000, std::array{ra});
    graph.add_task("b", 100'000'000, std::array{rb});
    graph.add_edge(0, 1, 0);
    return graph;
}

TEST(SeuEstimator, FullDurationHandComputed) {
    const TaskGraph graph = make_two_task_graph();
    const MpsocArchitecture arch(2, VoltageScalingTable::arm7_three_level());
    Mapping mapping(2, 2);
    mapping.assign(0, 0);
    mapping.assign(1, 1);
    const ScalingVector levels = {1, 1};
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    ASSERT_NEAR(schedule.total_time_seconds, 1.0, 1e-12); // 0.5 s + 0.5 s chain

    const SeuEstimator estimator{SerModel{}, ExposurePolicy::full_duration};
    const SeuBreakdown breakdown = estimator.estimate(graph, mapping, arch, levels, schedule);
    // Gamma_i = R_i * T_M * ser_time(1 V) = bits * 1.0 s * 0.2.
    EXPECT_NEAR(breakdown.per_core[0], 1000.0 * 1.0 * 0.2, 1e-9);
    EXPECT_NEAR(breakdown.per_core[1], 2000.0 * 1.0 * 0.2, 1e-9);
    EXPECT_NEAR(breakdown.total, 600.0, 1e-9);
}

TEST(SeuEstimator, BusyOnlyUsesCoreBusyTime) {
    const TaskGraph graph = make_two_task_graph();
    const MpsocArchitecture arch(2, VoltageScalingTable::arm7_three_level());
    Mapping mapping(2, 2);
    mapping.assign(0, 0);
    mapping.assign(1, 1);
    const ScalingVector levels = {1, 1};
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);

    const SeuEstimator estimator{SerModel{}, ExposurePolicy::busy_only};
    const SeuBreakdown breakdown = estimator.estimate(graph, mapping, arch, levels, schedule);
    // Each core is busy 0.5 s.
    EXPECT_NEAR(breakdown.per_core[0], 1000.0 * 0.5 * 0.2, 1e-9);
    EXPECT_NEAR(breakdown.per_core[1], 2000.0 * 0.5 * 0.2, 1e-9);
}

TEST(SeuEstimator, UnusedCoreContributesNothing) {
    const TaskGraph graph = make_two_task_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = single_core_mapping(graph, 3);
    const ScalingVector levels = {1, 1, 1};
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    const SeuEstimator estimator{SerModel{}};
    const SeuBreakdown breakdown = estimator.estimate(graph, mapping, arch, levels, schedule);
    EXPECT_GT(breakdown.per_core[0], 0.0);
    EXPECT_EQ(breakdown.per_core[1], 0.0);
    EXPECT_EQ(breakdown.per_core[2], 0.0);
}

TEST(SeuEstimator, LowerVoltageCoreExperiencesMore) {
    const TaskGraph graph = make_two_task_graph();
    const MpsocArchitecture arch(2, VoltageScalingTable::arm7_three_level());
    Mapping mapping(2, 2);
    mapping.assign(0, 0);
    mapping.assign(1, 1);
    const SeuEstimator estimator{SerModel{}};
    const ScalingVector nominal = {1, 1};
    const ScalingVector scaled = {1, 3}; // core 1 at 0.44 V
    const Schedule sched_nominal = ListScheduler{}.schedule(graph, mapping, arch, nominal);
    const Schedule sched_scaled = ListScheduler{}.schedule(graph, mapping, arch, scaled);
    const auto g_nominal = estimator.estimate(graph, mapping, arch, nominal, sched_nominal);
    const auto g_scaled = estimator.estimate(graph, mapping, arch, scaled, sched_scaled);
    // Per unit of exposure, core 1's rate grows by e^{k*0.56}; exposure
    // also grows because T_M stretches.
    EXPECT_GT(g_scaled.per_core[1] / g_scaled.total, g_nominal.per_core[1] / g_nominal.total);
    EXPECT_GT(g_scaled.total, g_nominal.total);
}

TEST(SeuEstimator, CoreGammaPrimitive) {
    const SeuEstimator estimator{SerModel{}};
    EXPECT_NEAR(estimator.core_gamma(1000, 2.0, 1.0), 1000.0 * 2.0 * 0.2, 1e-9);
    EXPECT_NEAR(estimator.core_gamma(0, 2.0, 1.0), 0.0, 1e-12);
}

// The calibration reproduction of Observation 3 / Fig. 3(b)->(c):
// scaling every core 1 -> 2 doubles T_M and multiplies Gamma by ~2.5.
TEST(SeuEstimator, Observation3ScalingAllCoresBy2) {
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 4);
    const SeuEstimator estimator{SerModel{}};

    const ScalingVector all1 = {1, 1, 1, 1};
    const ScalingVector all2 = {2, 2, 2, 2};
    const Schedule s1 = ListScheduler{}.schedule(graph, mapping, arch, all1);
    const Schedule s2 = ListScheduler{}.schedule(graph, mapping, arch, all2);
    EXPECT_NEAR(s2.total_time_seconds / s1.total_time_seconds, 2.0, 1e-9);

    const double g1 = estimator.estimate(graph, mapping, arch, all1, s1).total;
    const double g2 = estimator.estimate(graph, mapping, arch, all2, s2).total;
    EXPECT_NEAR(g2 / g1, 2.5, 1e-3);
}

} // namespace
} // namespace seamap
