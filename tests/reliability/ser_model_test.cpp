#include "reliability/ser_model.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

TEST(SerModel, ReferencePointPerBitSecond) {
    const SerModel model;
    // 1e-9 SEU/bit/cycle at 200 MHz -> 0.2 SEU/bit/s at 1 V.
    EXPECT_NEAR(model.ser_per_bit_second(1.0), 0.2, 1e-12);
}

TEST(SerModel, PaperQuoteOneSeuPer10msPerKbit) {
    // The paper glosses SER 1e-9 as "1 SEU per 10 ms for 1 kbit
    // register bank" (at the 100 MHz operating point): check the order
    // of magnitude: 1000 bits * 0.01 s * rate(V) ~ O(1).
    const SerModel model;
    const double seus = 1000.0 * 0.01 * model.ser_per_bit_second(0.58);
    EXPECT_GT(seus, 1.0);
    EXPECT_LT(seus, 5.0);
}

TEST(SerModel, VoltageAccelerationCalibratedToObservation3) {
    const SerModel model;
    // k = ln(1.25)/0.42: dropping 1.0 V -> 0.58 V raises the rate 1.25x.
    EXPECT_NEAR(model.ser_per_bit_second(0.58) / model.ser_per_bit_second(1.0), 1.25, 1e-4);
}

TEST(SerModel, LambdaPerCycleAtReferenceIsSerRef) {
    const SerModel model;
    EXPECT_NEAR(model.lambda_per_bit_cycle(OperatingPoint{200.0, 1.0}), 1e-9, 1e-18);
}

TEST(SerModel, Observation3PerCycleRatioIs2_5) {
    // Scaling 1 -> 2 (Table I): per-cycle SER grows by 2 (frequency)
    // x 1.25 (voltage) = 2.5 — the paper's Fig. 3(b) -> (c) jump.
    const SerModel model;
    const double nominal = model.lambda_per_bit_cycle(OperatingPoint{200.0, 1.0});
    const double scaled = model.lambda_per_bit_cycle(OperatingPoint{100.0, 0.58});
    EXPECT_NEAR(scaled / nominal, 2.5, 1e-3);
}

TEST(SerModel, LowerVoltageAlwaysWorse) {
    const SerModel model;
    EXPECT_GT(model.ser_per_bit_second(0.44), model.ser_per_bit_second(0.58));
    EXPECT_GT(model.ser_per_bit_second(0.58), model.ser_per_bit_second(1.0));
    EXPECT_LT(model.ser_per_bit_second(1.2), model.ser_per_bit_second(1.0));
}

TEST(SerModel, CustomParameters) {
    SerParams params;
    params.ser_ref_per_bit_cycle = 2e-9;
    params.voltage_exponent_k = 0.0; // voltage-independent
    const SerModel model(params);
    EXPECT_NEAR(model.ser_per_bit_second(0.5), model.ser_per_bit_second(1.0), 1e-15);
    EXPECT_NEAR(model.lambda_per_bit_cycle(OperatingPoint{200.0, 1.0}), 2e-9, 1e-18);
}

TEST(SerModel, Validation) {
    SerParams bad;
    bad.ser_ref_per_bit_cycle = -1.0;
    EXPECT_THROW(SerModel{bad}, std::invalid_argument);
    bad = SerParams{};
    bad.ref_vdd = 0.0;
    EXPECT_THROW(SerModel{bad}, std::invalid_argument);
    bad = SerParams{};
    bad.voltage_exponent_k = -0.1;
    EXPECT_THROW(SerModel{bad}, std::invalid_argument);
    const SerModel model;
    EXPECT_THROW((void)model.ser_per_bit_second(0.0), std::invalid_argument);
}

} // namespace
} // namespace seamap
