#include "reliability/design_eval.h"
#include "reliability/register_usage.h"

#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

TEST(DesignEval, MetricsAreInternallyConsistent) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {1, 2, 2}, SeuEstimator{SerModel{}},
                                k_fig8_deadline_seconds};
    const Mapping mapping = round_robin_mapping(graph, 3);

    Schedule schedule;
    const DesignMetrics metrics = evaluate_design(ctx, mapping, schedule);

    EXPECT_DOUBLE_EQ(metrics.tm_seconds, schedule.total_time_seconds);
    EXPECT_DOUBLE_EQ(metrics.latency_seconds, schedule.latency_seconds);
    EXPECT_EQ(metrics.register_bits, total_register_bits(graph, mapping, 3));
    EXPECT_EQ(metrics.feasible, schedule.meets_deadline(k_fig8_deadline_seconds));
    EXPECT_DOUBLE_EQ(
        metrics.power_mw,
        arch.power_model().mpsoc_power_mw(ctx.levels, schedule.utilization));
    const double gamma =
        ctx.estimator.estimate(graph, mapping, arch, ctx.levels, schedule).total;
    EXPECT_DOUBLE_EQ(metrics.gamma, gamma);
    EXPECT_GT(metrics.gamma, 0.0);
    EXPECT_GT(metrics.power_mw, 0.0);
}

TEST(DesignEval, ImpossibleDeadlineIsInfeasible) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {1, 2, 2}, SeuEstimator{SerModel{}}, 1e-6};
    const DesignMetrics metrics = evaluate_design(ctx, round_robin_mapping(graph, 3));
    EXPECT_FALSE(metrics.feasible);
}

TEST(DesignEval, IncompleteMappingThrows) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {1, 2, 2}, SeuEstimator{SerModel{}}, 1.0};
    const Mapping incomplete(graph.task_count(), 3);
    EXPECT_THROW((void)evaluate_design(ctx, incomplete), std::invalid_argument);
}

TEST(DesignEval, FasterScalingIsMorePowerHungryAndMoreReliable) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 3);
    const EvaluationContext fast{graph, arch, {1, 1, 1}, SeuEstimator{SerModel{}}, 1.0};
    const EvaluationContext slow{graph, arch, {3, 3, 3}, SeuEstimator{SerModel{}}, 1.0};
    const DesignMetrics fast_metrics = evaluate_design(fast, mapping);
    const DesignMetrics slow_metrics = evaluate_design(slow, mapping);
    EXPECT_GT(fast_metrics.power_mw, slow_metrics.power_mw);
    EXPECT_LT(fast_metrics.gamma, slow_metrics.gamma);
    EXPECT_LT(fast_metrics.tm_seconds, slow_metrics.tm_seconds);
}

} // namespace
} // namespace seamap
