#include "reliability/register_usage.h"

#include "taskgraph/mpeg2.h"

#include <gtest/gtest.h>

#include <array>

namespace seamap {
namespace {

/// Two tasks sharing one register, one private each.
TaskGraph make_shared_pair() {
    RegisterFile regs;
    const RegisterId shared = regs.add_register("shared", 1000);
    const RegisterId pa = regs.add_register("pa", 100);
    const RegisterId pb = regs.add_register("pb", 200);
    TaskGraph graph("pair", std::move(regs));
    graph.add_task("a", 10, std::array{shared, pa});
    graph.add_task("b", 10, std::array{shared, pb});
    graph.add_edge(0, 1, 1);
    return graph;
}

TEST(RegisterUsage, CoLocationSharesRegisters) {
    const TaskGraph graph = make_shared_pair();
    Mapping together(2, 2);
    together.assign(0, 0);
    together.assign(1, 0);
    const auto bits = per_core_register_bits(graph, together, 2);
    EXPECT_EQ(bits[0], 1300u); // shared counted once
    EXPECT_EQ(bits[1], 0u);
    EXPECT_EQ(total_register_bits(graph, together, 2), 1300u);
}

TEST(RegisterUsage, SplittingDuplicatesSharedState) {
    const TaskGraph graph = make_shared_pair();
    Mapping split(2, 2);
    split.assign(0, 0);
    split.assign(1, 1);
    const auto bits = per_core_register_bits(graph, split, 2);
    EXPECT_EQ(bits[0], 1100u);
    EXPECT_EQ(bits[1], 1200u);
    EXPECT_EQ(total_register_bits(graph, split, 2), 2300u); // 1000 duplicated
}

TEST(RegisterUsage, PartialMappingCountsOnlyAssigned) {
    const TaskGraph graph = make_shared_pair();
    Mapping partial(2, 2);
    partial.assign(0, 1);
    const auto bits = per_core_register_bits(graph, partial, 2);
    EXPECT_EQ(bits[0], 0u);
    EXPECT_EQ(bits[1], 1100u);
}

TEST(RegisterUsage, SizeMismatchThrows) {
    const TaskGraph graph = make_shared_pair();
    const Mapping wrong(5, 2);
    EXPECT_THROW((void)per_core_register_bits(graph, wrong, 2), std::invalid_argument);
    Mapping mapping(2, 4);
    mapping.assign(0, 3);
    mapping.assign(1, 3);
    EXPECT_THROW((void)per_core_register_bits(graph, mapping, 2), std::out_of_range);
}

TEST(RegisterUsage, CandidateIncrementMatchesUnion) {
    const TaskGraph graph = make_shared_pair();
    RegisterSet current(graph.register_file().size());
    current |= graph.task(0).registers;
    EXPECT_EQ(register_bits_with_candidate(graph, current, 1), 1300u);
    const RegisterSet empty(graph.register_file().size());
    EXPECT_EQ(register_bits_with_candidate(graph, empty, 1), 1200u);
}

TEST(RegisterUsage, Mpeg2MoreCoresNeverReducesTotal) {
    // Duplication monotonicity on the real workload: spreading the
    // same tasks over more cores cannot reduce the summed usage.
    const TaskGraph graph = mpeg2_decoder_graph();
    const std::uint64_t one_core =
        total_register_bits(graph, single_core_mapping(graph, 1), 1);
    const std::uint64_t two_cores =
        total_register_bits(graph, round_robin_mapping(graph, 2), 2);
    const std::uint64_t four_cores =
        total_register_bits(graph, round_robin_mapping(graph, 4), 4);
    EXPECT_LE(one_core, two_cores);
    EXPECT_LE(two_cores, four_cores);
}

} // namespace
} // namespace seamap
