// Tests for the eq. (4) measured register usage: the execution-time-
// weighted average of live bits, versus the eq. (8) union the optimizer
// uses.
#include "reliability/register_usage.h"

#include "sched/list_scheduler.h"
#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

#include <array>

namespace seamap {
namespace {

TEST(TimeWeightedUsage, HandComputedTwoTasks) {
    RegisterFile regs;
    const RegisterId ra = regs.add_register("ra", 1000);
    const RegisterId rb = regs.add_register("rb", 3000);
    TaskGraph graph("two", std::move(regs));
    graph.add_task("a", 100, std::array{ra});
    graph.add_task("b", 100, std::array{rb});
    graph.add_edge(0, 1, 0);
    Mapping mapping(2, 1);
    mapping.assign(0, 0);
    mapping.assign(1, 0);
    // a runs 1 s, b runs 3 s: average = (1000*1 + 3000*3) / 4 = 2500.
    const std::array<double, 2> exec = {1.0, 3.0};
    const auto avg = time_weighted_register_bits(graph, mapping, exec, 1);
    ASSERT_EQ(avg.size(), 1u);
    EXPECT_NEAR(avg[0], 2500.0, 1e-9);
}

TEST(TimeWeightedUsage, NeverExceedsUnion) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 3);
    const Schedule schedule =
        ListScheduler{}.schedule(graph, mapping, arch, {1, 2, 2});
    std::vector<double> exec(graph.task_count());
    for (TaskId t = 0; t < graph.task_count(); ++t)
        exec[t] = schedule.entries[t].finish_seconds - schedule.entries[t].start_seconds;
    const auto average = time_weighted_register_bits(graph, mapping, exec, 3);
    const auto unions = per_core_register_bits(graph, mapping, 3);
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_LE(average[c], static_cast<double>(unions[c]) + 1e-9) << "core " << c;
        EXPECT_GT(average[c], 0.0) << "core " << c;
    }
}

TEST(TimeWeightedUsage, EqualsUnionWhenTasksShareEverything) {
    RegisterFile regs;
    const RegisterId shared = regs.add_register("shared", 2048);
    TaskGraph graph("same", std::move(regs));
    graph.add_task("a", 100, std::array{shared});
    graph.add_task("b", 200, std::array{shared});
    graph.add_edge(0, 1, 0);
    Mapping mapping(2, 1);
    mapping.assign(0, 0);
    mapping.assign(1, 0);
    const std::array<double, 2> exec = {0.5, 1.0};
    const auto average = time_weighted_register_bits(graph, mapping, exec, 1);
    EXPECT_NEAR(average[0], 2048.0, 1e-9);
}

TEST(TimeWeightedUsage, EmptyCoreReportsZero) {
    const TaskGraph graph = fig8_example_graph();
    const Mapping mapping = single_core_mapping(graph, 3);
    const std::vector<double> exec(graph.task_count(), 1.0);
    const auto average = time_weighted_register_bits(graph, mapping, exec, 3);
    EXPECT_GT(average[0], 0.0);
    EXPECT_EQ(average[1], 0.0);
    EXPECT_EQ(average[2], 0.0);
}

TEST(TimeWeightedUsage, Validation) {
    const TaskGraph graph = fig8_example_graph();
    const Mapping mapping = single_core_mapping(graph, 2);
    const std::vector<double> wrong_size(3, 1.0);
    EXPECT_THROW((void)time_weighted_register_bits(graph, mapping, wrong_size, 2),
                 std::invalid_argument);
    std::vector<double> negative(graph.task_count(), 1.0);
    negative[0] = -1.0;
    EXPECT_THROW((void)time_weighted_register_bits(graph, mapping, negative, 2),
                 std::invalid_argument);
}

} // namespace
} // namespace seamap
