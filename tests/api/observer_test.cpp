// ProgressObserver / CancellationToken contract with the thread-pooled
// explorer: every finished scaling is reported exactly once, the
// streamed incumbent follows the paper's selection rule (and equals
// the final best when completion order is enumeration order, i.e. one
// thread), callbacks never run concurrently, and cancellation stops
// the exploration cooperatively with a well-formed partial result.
#include "seamap/seamap.h"

#include "taskgraph/fig8.h"

#include <chrono>
#include <cstddef>
#include <gtest/gtest.h>
#include <mutex>
#include <vector>

namespace seamap {
namespace {

Problem fig8_problem() {
    return ProblemBuilder()
        .graph(fig8_example_graph())
        .architecture(3, VoltageScalingTable::arm7_three_level())
        .deadline_seconds(0.5)
        .build();
}

ExploreOptions quick_options(std::size_t threads) {
    ExploreOptions options;
    options.dse.search.max_iterations = 400;
    options.dse.search.seed = 7;
    options.dse.num_threads = threads;
    return options;
}

class RecordingObserver : public ProgressObserver {
public:
    void on_explore_begin(std::size_t total_scalings) override {
        ++begin_calls;
        total = total_scalings;
    }
    void on_scaling_done(const ScalingProgress& progress) override {
        // The explorer serializes callbacks; try_lock failing would
        // mean two ran concurrently.
        std::unique_lock lock(mutex_, std::try_to_lock);
        ASSERT_TRUE(lock.owns_lock());
        done.push_back(progress);
    }
    void on_incumbent(const DsePoint& point) override {
        std::unique_lock lock(mutex_, std::try_to_lock);
        ASSERT_TRUE(lock.owns_lock());
        incumbents.push_back(point);
    }
    void on_explore_end(const DseResult& result) override {
        ++end_calls;
        final_feasible_count = result.feasible_points.size();
    }

    int begin_calls = 0;
    int end_calls = 0;
    std::size_t total = 0;
    std::vector<ScalingProgress> done;
    std::vector<DsePoint> incumbents;
    std::size_t final_feasible_count = 0;

private:
    std::mutex mutex_;
};

TEST(ProgressObserver, SeesEveryScalingExactlyOnce) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        RecordingObserver observer;
        const DseResult result =
            explore(fig8_problem(), quick_options(threads), &observer);
        EXPECT_EQ(observer.begin_calls, 1);
        EXPECT_EQ(observer.end_calls, 1);
        EXPECT_EQ(observer.total, 10u); // C(3+3-1, 2) combinations
        EXPECT_EQ(observer.done.size(), result.scalings_enumerated);
        std::vector<bool> seen(observer.total, false);
        std::size_t feasible = 0;
        for (const ScalingProgress& progress : observer.done) {
            ASSERT_LT(progress.index, seen.size());
            EXPECT_FALSE(seen[progress.index]) << "duplicate index " << progress.index;
            seen[progress.index] = true;
            EXPECT_EQ(progress.total, observer.total);
            if (progress.outcome == ScalingProgress::Outcome::feasible) ++feasible;
        }
        EXPECT_EQ(feasible, result.feasible_points.size());
        EXPECT_EQ(observer.final_feasible_count, result.feasible_points.size());
    }
}

TEST(ProgressObserver, SerialIncumbentStreamEndsAtTheFinalBest) {
    RecordingObserver observer;
    const DseResult result = explore(fig8_problem(), quick_options(1), &observer);
    ASSERT_TRUE(result.best.has_value());
    ASSERT_FALSE(observer.incumbents.empty());
    // With one thread, completion order is enumeration order, so the
    // streamed incumbent fold is the final fold: bit-identical design.
    const DsePoint& last = observer.incumbents.back();
    EXPECT_EQ(last.levels, result.best->levels);
    EXPECT_EQ(last.mapping, result.best->mapping);
    EXPECT_EQ(last.metrics.power_mw, result.best->metrics.power_mw);
    EXPECT_EQ(last.metrics.gamma, result.best->metrics.gamma);
}

TEST(Cancellation, PreCancelledExploreRunsNothing) {
    CancellationToken cancel;
    cancel.request_stop();
    RecordingObserver observer;
    const DseResult result =
        explore(fig8_problem(), quick_options(4), &observer, &cancel);
    EXPECT_EQ(result.scalings_enumerated, 0u);
    EXPECT_EQ(result.scalings_total, 10u); // the full sequence is still reported
    EXPECT_FALSE(result.best.has_value());
    EXPECT_TRUE(result.feasible_points.empty());
    EXPECT_EQ(observer.begin_calls, 1);
    EXPECT_EQ(observer.end_calls, 1); // partial result still reported
}

/// Cancels the exploration from inside the first completion callback.
class CancellingObserver : public ProgressObserver {
public:
    explicit CancellingObserver(CancellationToken& token) : token_(token) {}
    void on_scaling_done(const ScalingProgress&) override {
        ++done_count;
        token_.request_stop();
    }
    int done_count = 0;

private:
    CancellationToken& token_;
};

TEST(Cancellation, MidExploreCancellationYieldsAPartialResult) {
    CancellationToken cancel;
    CancellingObserver observer(cancel);
    const DseResult result =
        explore(fig8_problem(), quick_options(1), &observer, &cancel);
    EXPECT_GT(observer.done_count, 0);
    // Serial exploration: after the first slot cancels the token, every
    // later slot is skipped before starting.
    EXPECT_LT(result.scalings_enumerated, 10u);
    EXPECT_EQ(result.scalings_enumerated,
              static_cast<std::uint64_t>(observer.done_count));
}

TEST(Cancellation, TokenDeadlineAndParentChainWork) {
    CancellationToken parent;
    CancellationToken child(&parent);
    EXPECT_FALSE(child.stop_requested());
    parent.request_stop();
    EXPECT_TRUE(child.stop_requested());
    EXPECT_TRUE(child.cancel_requested());

    CancellationToken expired;
    expired.set_deadline(CancellationToken::Clock::now() -
                         std::chrono::milliseconds(1));
    EXPECT_TRUE(expired.stop_requested());
    EXPECT_FALSE(expired.cancel_requested()); // deadline, not a request
    expired.set_budget_seconds(0.0);          // <= 0 clears the deadline
    EXPECT_FALSE(expired.stop_requested());
}

} // namespace
} // namespace seamap
