// SearchStrategy registry contract: the two built-in engines sit
// behind the same interface, both are reachable by name, custom
// strategies plug into the explorer with one registration, and — the
// acceptance bar — both built-ins produce feasible designs on the
// paper's fig8 and mpeg2 graphs through the public explore() facade.
#include "seamap/seamap.h"

#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"

#include <algorithm>
#include <chrono>
#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>

namespace seamap {
namespace {

Problem fig8_problem() {
    return ProblemBuilder()
        .graph(fig8_example_graph())
        .architecture(3, VoltageScalingTable::arm7_three_level())
        .deadline_seconds(k_fig8_deadline_seconds)
        .build();
}

Problem mpeg2_problem() {
    return ProblemBuilder()
        .graph(mpeg2_decoder_graph())
        .architecture(4, VoltageScalingTable::arm7_three_level())
        .deadline_seconds(mpeg2_deadline_seconds())
        .build();
}

TEST(StrategyRegistry, ListsBothBuiltins) {
    const auto names = search_strategy_names();
    EXPECT_NE(std::find(names.begin(), names.end(), "optimized"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "annealing"), names.end());
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(StrategyRegistry, UnknownNameThrowsAndNamesTheKnownOnes) {
    try {
        (void)make_search_strategy("no_such_engine");
        FAIL() << "should have thrown";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no_such_engine"), std::string::npos);
        EXPECT_NE(what.find("optimized"), std::string::npos);
        EXPECT_NE(what.find("annealing"), std::string::npos);
    }
}

TEST(StrategyRegistry, BuiltinNamesCannotBeOverwritten) {
    EXPECT_FALSE(register_search_strategy(
        "optimized", [](const StrategyOptions&) -> std::unique_ptr<SearchStrategy> {
            return nullptr;
        }));
}

TEST(StrategyRegistry, NullFactoryResultIsDiagnosedNotDereferenced) {
    ASSERT_TRUE(register_search_strategy(
        "broken_factory", [](const StrategyOptions&) -> std::unique_ptr<SearchStrategy> {
            return nullptr;
        }));
    EXPECT_THROW((void)make_search_strategy("broken_factory"), std::invalid_argument);
    // And therefore explore() reports it instead of crashing.
    ExploreOptions options;
    options.strategy = "broken_factory";
    EXPECT_THROW((void)explore(fig8_problem(), options), std::invalid_argument);
}

TEST(StrategyRegistry, BothBuiltinsFindFeasibleDesignsOnFig8) {
    for (const char* name : {"optimized", "annealing"}) {
        ExploreOptions options;
        options.strategy = name;
        options.dse.search.max_iterations = 2'000;
        options.dse.search.seed = 5;
        const DseResult result = explore(fig8_problem(), options);
        ASSERT_TRUE(result.best.has_value()) << name;
        EXPECT_TRUE(result.best->metrics.feasible) << name;
        EXPECT_GT(result.scalings_searched, 0u) << name;
    }
}

TEST(StrategyRegistry, BothBuiltinsFindFeasibleDesignsOnMpeg2) {
    for (const char* name : {"optimized", "annealing"}) {
        ExploreOptions options;
        options.strategy = name;
        options.dse.search.max_iterations = 2'000;
        options.dse.search.seed = 5;
        const DseResult result = explore(mpeg2_problem(), options);
        ASSERT_TRUE(result.best.has_value()) << name;
        EXPECT_TRUE(result.best->metrics.feasible) << name;
    }
}

TEST(StrategyRegistry, StrategiesAreDeterministicGivenTheSameSeed) {
    const Problem problem = fig8_problem();
    const EvaluationContext ctx = problem.evaluation_context({1, 2, 2});
    const Mapping initial = round_robin_mapping(problem.graph(), 3);
    for (const char* name : {"optimized", "annealing"}) {
        const auto strategy = make_search_strategy(name, {.max_iterations = 1'000});
        const LocalSearchResult a = strategy->search(ctx, initial, 11);
        const LocalSearchResult b = strategy->search(ctx, initial, 11);
        EXPECT_EQ(a.best_mapping, b.best_mapping) << name;
        EXPECT_EQ(a.best_metrics.gamma, b.best_metrics.gamma) << name;
        EXPECT_EQ(a.evaluations, b.evaluations) << name;
    }
}

/// A trivial engine: score the initial mapping, move nothing. Good
/// enough to prove a registered third-party strategy drives the full
/// explorer.
class InitialOnlyStrategy final : public SearchStrategy {
public:
    std::string name() const override { return "initial_only"; }

    LocalSearchResult search(const EvaluationContext& ctx, const Mapping& initial,
                             std::uint64_t /*seed*/,
                             const CancellationToken* /*cancel*/) const override {
        LocalSearchResult result;
        result.best_mapping = initial;
        result.best_metrics = evaluate_design(ctx, initial);
        result.found_feasible = result.best_metrics.feasible;
        result.evaluations = 1;
        return result;
    }
};

TEST(StrategyRegistry, CustomStrategyPlugsIntoTheExplorer) {
    ASSERT_TRUE(register_search_strategy(
        "initial_only", [](const StrategyOptions&) -> std::unique_ptr<SearchStrategy> {
            return std::make_unique<InitialOnlyStrategy>();
        }));
    ExploreOptions options;
    options.strategy = "initial_only";
    const Problem problem = fig8_problem();
    const DseResult result = explore(problem, options);
    // The stage-1 greedy mapping is feasible for at least one scaling
    // even without any local search.
    ASSERT_TRUE(result.best.has_value());
    EXPECT_TRUE(result.best->metrics.feasible);
    // Exactly one evaluation per searched scaling — the custom engine
    // really ran (the built-ins evaluate thousands of designs).
    EXPECT_EQ(result.scalings_searched + result.scalings_skipped_infeasible,
              result.scalings_enumerated);
}

TEST(StrategyRegistry, AnnealingHonorsTimeBudgets) {
    // A huge iteration budget capped by a tiny wall-clock budget must
    // terminate promptly — the factory forwards time_budget_seconds.
    ExploreOptions options;
    options.strategy = "annealing";
    options.dse.search.max_iterations = 50'000'000;
    options.dse.search.time_budget_seconds = 0.02;
    options.dse.total_time_budget_seconds = 0.05;
    const auto start = std::chrono::steady_clock::now();
    const DseResult result = explore(fig8_problem(), options);
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed.count(), 5.0);
    EXPECT_LE(result.scalings_searched, result.scalings_enumerated);
}

TEST(StrategyRegistry, ZeroIterationsMeansTimeBudgetOnlyForBothBuiltins) {
    const Problem problem = fig8_problem();
    const EvaluationContext ctx = problem.evaluation_context({1, 2, 2});
    const Mapping initial = round_robin_mapping(problem.graph(), 3);
    for (const char* name : {"optimized", "annealing"}) {
        StrategyOptions options;
        options.max_iterations = 0;
        options.time_budget_seconds = 0.01;
        const auto strategy = make_search_strategy(name, options);
        const LocalSearchResult result = strategy->search(ctx, initial, 1);
        EXPECT_GT(result.evaluations, 0u) << name;
        // And with no budget at all, construction must refuse.
        StrategyOptions unbounded;
        unbounded.max_iterations = 0;
        EXPECT_THROW((void)make_search_strategy(name, unbounded), std::invalid_argument)
            << name;
    }
}

TEST(StrategyRegistry, AnnealingHonorsCancellation) {
    const Problem problem = mpeg2_problem();
    const EvaluationContext ctx = problem.evaluation_context({1, 1, 1, 1});
    const Mapping initial = round_robin_mapping(problem.graph(), 4);
    CancellationToken cancel;
    cancel.request_stop();
    const auto strategy = make_search_strategy("annealing", {.max_iterations = 1'000'000});
    const LocalSearchResult result = strategy->search(ctx, initial, 1, &cancel);
    // Pre-cancelled: the walk stops immediately after scoring the
    // start point instead of burning a million iterations.
    EXPECT_EQ(result.iterations_run, 0u);
}

} // namespace
} // namespace seamap
