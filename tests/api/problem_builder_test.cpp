// ProblemBuilder contract: validation happens once at build(), the
// built Problem is immutable and cheaply copyable, and the evaluation
// context it hands out scores designs exactly like the hand-assembled
// EvaluationContext the internals use.
#include "seamap/seamap.h"

#include "taskgraph/fig8.h"

#include <gtest/gtest.h>
#include <stdexcept>

namespace seamap {
namespace {

Problem fig8_problem() {
    return ProblemBuilder()
        .graph(fig8_example_graph())
        .architecture(3, VoltageScalingTable::arm7_three_level())
        .deadline_seconds(k_fig8_deadline_seconds)
        .build();
}

TEST(ProblemBuilder, BuildsACompleteProblem) {
    const Problem problem = fig8_problem();
    EXPECT_EQ(problem.graph().task_count(), 6u);
    EXPECT_EQ(problem.architecture().core_count(), 3u);
    EXPECT_DOUBLE_EQ(problem.deadline_seconds(), k_fig8_deadline_seconds);
    EXPECT_EQ(problem.exposure_policy(), ExposurePolicy::full_duration);
    EXPECT_DOUBLE_EQ(problem.ser_model().params().ser_ref_per_bit_cycle, 1e-9);
}

TEST(ProblemBuilder, EvaluationContextMatchesHandAssembledOne) {
    const Problem problem = fig8_problem();
    const EvaluationContext from_api = problem.evaluation_context({1, 2, 2});
    const EvaluationContext by_hand{problem.graph(), problem.architecture(), {1, 2, 2},
                                    SeuEstimator{SerModel{}}, k_fig8_deadline_seconds};
    const Mapping mapping = round_robin_mapping(problem.graph(), 3);
    const DesignMetrics a = evaluate_design(from_api, mapping);
    const DesignMetrics b = evaluate_design(by_hand, mapping);
    EXPECT_EQ(a.tm_seconds, b.tm_seconds);
    EXPECT_EQ(a.gamma, b.gamma);
    EXPECT_EQ(a.power_mw, b.power_mw);
    EXPECT_EQ(a.register_bits, b.register_bits);
}

TEST(ProblemBuilder, EvaluationContextValidatesScaling) {
    const Problem problem = fig8_problem();
    EXPECT_THROW((void)problem.evaluation_context({1, 2}), std::exception);
    EXPECT_THROW((void)problem.evaluation_context({1, 2, 9}), std::exception);
}

TEST(ProblemBuilder, MissingPiecesAreAllReported) {
    try {
        (void)ProblemBuilder().build();
        FAIL() << "build() should have thrown";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("graph not set"), std::string::npos);
        EXPECT_NE(what.find("architecture not set"), std::string::npos);
        EXPECT_NE(what.find("deadline not set"), std::string::npos);
    }
}

TEST(ProblemBuilder, RejectsNonPositiveDeadline) {
    ProblemBuilder builder;
    builder.graph(fig8_example_graph())
        .architecture(3, VoltageScalingTable::arm7_three_level());
    EXPECT_THROW((void)builder.deadline_seconds(0.0).build(), std::invalid_argument);
    EXPECT_THROW((void)builder.deadline_seconds(-1.0).build(), std::invalid_argument);
    EXPECT_NO_THROW((void)builder.deadline_seconds(0.075).build());
}

TEST(ProblemBuilder, RejectsAnInvalidGraphAtBuildTime) {
    TaskGraph cyclic("cycle", RegisterFile{});
    const TaskId a = cyclic.add_task("a", 100);
    const TaskId b = cyclic.add_task("b", 100);
    cyclic.add_edge(a, b, 1);
    cyclic.add_edge(b, a, 1);
    ProblemBuilder builder;
    builder.graph(std::move(cyclic))
        .architecture(2, VoltageScalingTable::arm7_three_level())
        .deadline_seconds(1.0);
    try {
        (void)builder.build();
        FAIL() << "build() should have rejected the cyclic graph";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("invalid graph"), std::string::npos);
    }
}

TEST(Problem, CopiesShareTheImmutableState) {
    const Problem original = fig8_problem();
    const Problem copy = original;
    // Same underlying state, not a deep copy: the accessors must return
    // the very same objects, so references stay valid across copies.
    EXPECT_EQ(&original.graph(), &copy.graph());
    EXPECT_EQ(&original.architecture(), &copy.architecture());
}

} // namespace
} // namespace seamap
