// JSON output contract, in two halves:
//  1. Golden tests: the util/json.h writer and the api/json.h result
//     documents render to exactly known bytes (insertion order,
//     escaping, shortest round-trip numbers).
//  2. Determinism: the full `optimize --json` document built from a
//     real exploration is byte-identical across thread counts, for
//     both built-in strategies — the CLI prints exactly this string.
#include "seamap/seamap.h"

#include "taskgraph/fig8.h"

#include <gtest/gtest.h>
#include <limits>
#include <stdexcept>
#include <string>

namespace seamap {
namespace {

TEST(JsonWriter, ScalarsAndEscaping) {
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue(std::int64_t{-7}).dump(), "-7");
    EXPECT_EQ(JsonValue(std::uint64_t{18446744073709551615ULL}).dump(),
              "18446744073709551615");
    EXPECT_EQ(JsonValue(0.075).dump(), "0.075");
    EXPECT_EQ(JsonValue(96.25).dump(), "96.25");
    EXPECT_EQ(JsonValue("plain").dump(), "\"plain\"");
    EXPECT_EQ(JsonValue("a\"b\\c\nd\te").dump(), "\"a\\\"b\\\\c\\nd\\te\"");
    EXPECT_EQ(JsonValue(std::string(1, '\x01')).dump(), "\"\\u0001\"");
    // Non-finite doubles have no JSON spelling; they become null.
    EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, NumbersRoundTripThroughShortestForm) {
    for (const double value : {0.1, 1.0 / 3.0, 29.97, 6.626e-34, 1e300, -0.0}) {
        const std::string text = json_number(value);
        EXPECT_EQ(std::stod(text), value) << text;
    }
}

TEST(JsonWriter, CompactAndPrettyContainers) {
    JsonValue doc = JsonValue::object();
    doc["name"] = "fig8";
    JsonValue levels = JsonValue::array();
    levels.push_back(1);
    levels.push_back(2);
    doc["levels"] = std::move(levels);
    doc["empty_list"] = JsonValue::array();
    doc["nested"] = JsonValue::object();
    doc["nested"]["ok"] = true;
    EXPECT_EQ(doc.dump(),
              "{\"name\":\"fig8\",\"levels\":[1,2],\"empty_list\":[],"
              "\"nested\":{\"ok\":true}}");
    EXPECT_EQ(doc.dump(2), "{\n"
                           "  \"name\": \"fig8\",\n"
                           "  \"levels\": [\n"
                           "    1,\n"
                           "    2\n"
                           "  ],\n"
                           "  \"empty_list\": [],\n"
                           "  \"nested\": {\n"
                           "    \"ok\": true\n"
                           "  }\n"
                           "}");
}

TEST(JsonWriter, ObjectOperationsKeepInsertionOrder) {
    JsonValue doc = JsonValue::object();
    doc["z"] = 1;
    doc["a"] = 2;
    doc["z"] = 3; // overwrite keeps the original position
    EXPECT_EQ(doc.dump(), "{\"z\":3,\"a\":2}");
    EXPECT_THROW(doc.push_back(1), std::logic_error);
    EXPECT_THROW(JsonValue(1).size(), std::logic_error);
    EXPECT_THROW(JsonValue::array()["key"], std::logic_error);
}

TEST(JsonResults, DesignMetricsGolden) {
    DesignMetrics metrics;
    metrics.tm_seconds = 0.06;
    metrics.latency_seconds = 0.0625;
    metrics.register_bits = 14592;
    metrics.gamma = 1.5e-05;
    metrics.power_mw = 96.25;
    metrics.feasible = true;
    EXPECT_EQ(to_json(metrics).dump(),
              "{\"tm_seconds\":0.06,\"latency_seconds\":0.0625,"
              "\"register_bits\":14592,\"gamma\":1.5e-05,\"power_mw\":96.25,"
              "\"feasible\":true}");
}

TEST(JsonResults, DseResultGolden) {
    DsePoint point;
    point.levels = {1, 2};
    point.mapping = Mapping(3, 2);
    point.mapping.assign(0, 0);
    point.mapping.assign(1, 1);
    point.mapping.assign(2, 1);
    point.metrics.tm_seconds = 0.5;
    point.metrics.latency_seconds = 0.5;
    point.metrics.register_bits = 1024;
    point.metrics.gamma = 0.25;
    point.metrics.power_mw = 50.5;
    point.metrics.feasible = true;

    DseResult result;
    result.best = point;
    result.feasible_points = {point};
    result.pareto_front = {point};
    result.scalings_total = 4;
    result.scalings_enumerated = 4;
    result.scalings_emitted = 3;
    result.scalings_searched = 2;
    result.scalings_skipped_infeasible = 1;
    result.scalings_pruned = 1;

    const std::string point_json =
        "{\"levels\":[1,2],\"core_of\":[0,1,1],\"metrics\":"
        "{\"tm_seconds\":0.5,\"latency_seconds\":0.5,\"register_bits\":1024,"
        "\"gamma\":0.25,\"power_mw\":50.5,\"feasible\":true}}";
    EXPECT_EQ(to_json(result).dump(),
              "{\"scalings\":{\"total\":4,\"enumerated\":4,\"emitted\":3,\"searched\":2,"
              "\"skipped_infeasible\":1,\"pruned\":1},\"best\":" +
                  point_json + ",\"feasible_count\":1,\"pareto_front\":[" + point_json +
                  "]}");
}

std::string fig8_report(const std::string& strategy, std::size_t threads) {
    const Problem problem = ProblemBuilder()
                                .graph(fig8_example_graph())
                                .architecture(3, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(k_fig8_deadline_seconds)
                                .build();
    ExploreOptions options;
    options.strategy = strategy;
    options.dse.search.max_iterations = 800;
    options.dse.search.seed = 3;
    options.dse.num_threads = threads;
    const DseResult result = explore(problem, options);
    return optimize_report_json(problem, options.strategy, result).dump(2);
}

TEST(JsonResults, OptimizeReportIsByteIdenticalAcrossThreadCounts) {
    for (const char* strategy : {"optimized", "annealing"}) {
        const std::string serial = fig8_report(strategy, 1);
        const std::string parallel = fig8_report(strategy, 8);
        const std::string automatic = fig8_report(strategy, 0);
        EXPECT_EQ(serial, parallel) << strategy;
        EXPECT_EQ(serial, automatic) << strategy;
    }
}

TEST(JsonResults, OptimizeReportCarriesTheDocumentedSchema) {
    const std::string report = fig8_report("optimized", 1);
    for (const char* key :
         {"\"seamap_version\": \"" SEAMAP_VERSION_STRING "\"",
          "\"strategy\": \"optimized\"", "\"problem\": {", "\"graph\": {",
          "\"name\": \"fig8_example\"", "\"architecture\": {", "\"cores\": 3",
          "\"deadline_seconds\": 0.075", "\"exposure_policy\": \"full_duration\"",
          "\"result\": {", "\"scalings\": {", "\"total\": 10", "\"enumerated\": 10",
          "\"best\": {",
          "\"levels\": [", "\"core_of\": [", "\"pareto_front\": ["})
        EXPECT_NE(report.find(key), std::string::npos) << key;
}

} // namespace
} // namespace seamap
