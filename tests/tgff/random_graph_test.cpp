#include "tgff/random_graph.h"

#include <gtest/gtest.h>

#include <set>

namespace seamap {
namespace {

TEST(Tgff, DeterministicForSameSeed) {
    const TgffParams params;
    const TaskGraph a = generate_tgff_graph(params, 42);
    const TaskGraph b = generate_tgff_graph(params, 42);
    ASSERT_EQ(a.task_count(), b.task_count());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    for (TaskId t = 0; t < a.task_count(); ++t) {
        EXPECT_EQ(a.task(t).exec_cycles, b.task(t).exec_cycles);
        EXPECT_EQ(a.task(t).registers, b.task(t).registers);
    }
    for (std::size_t e = 0; e < a.edge_count(); ++e) {
        EXPECT_EQ(a.edge(e).src, b.edge(e).src);
        EXPECT_EQ(a.edge(e).dst, b.edge(e).dst);
        EXPECT_EQ(a.edge(e).comm_cycles, b.edge(e).comm_cycles);
    }
}

TEST(Tgff, DifferentSeedsDiffer) {
    const TgffParams params;
    const TaskGraph a = generate_tgff_graph(params, 1);
    const TaskGraph b = generate_tgff_graph(params, 2);
    bool any_difference = a.edge_count() != b.edge_count();
    for (TaskId t = 0; !any_difference && t < a.task_count(); ++t)
        any_difference = a.task(t).exec_cycles != b.task(t).exec_cycles;
    EXPECT_TRUE(any_difference);
}

/// Parameterized over graph size: structural invariants of the
/// generator for the paper's 20..100-task range.
class TgffSizes : public testing::TestWithParam<std::size_t> {};

TEST_P(TgffSizes, StructuralInvariants) {
    TgffParams params;
    params.task_count = GetParam();
    const TaskGraph graph = generate_tgff_graph(params, 7);

    ASSERT_EQ(graph.task_count(), params.task_count);
    EXPECT_NO_THROW(graph.validate()); // acyclic, nonempty

    // Costs are in-range multiples of the cost unit.
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        const std::uint64_t units = graph.task(t).exec_cycles / params.cost_unit;
        EXPECT_EQ(graph.task(t).exec_cycles % params.cost_unit, 0u);
        EXPECT_GE(units, params.comp_cost_min);
        EXPECT_LE(units, params.comp_cost_max);
    }
    for (const Edge& e : graph.edges()) {
        const std::uint64_t units = e.comm_cycles / params.cost_unit;
        EXPECT_EQ(e.comm_cycles % params.cost_unit, 0u);
        EXPECT_GE(units, params.comm_cost_min);
        EXPECT_LE(units, params.comm_cost_max);
        EXPECT_LT(e.src, e.dst); // forward edges only
    }

    // Connectivity: every non-root task has a predecessor.
    for (TaskId t = 1; t < graph.task_count(); ++t)
        EXPECT_FALSE(graph.predecessors(t).empty()) << "orphan task " << t;

    // Out-degree cap N/2.
    const std::size_t cap = params.task_count / 2;
    for (TaskId t = 0; t < graph.task_count(); ++t)
        EXPECT_LE(graph.successors(t).size(), cap);

    // Per-task register budget: buffer + local within [min, max].
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        std::uint64_t own_bits = graph.register_file().bits(2 * t) +
                                 graph.register_file().bits(2 * t + 1);
        EXPECT_GE(own_bits, params.register_bits_min);
        EXPECT_LE(own_bits, params.register_bits_max);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, TgffSizes,
                         testing::Values<std::size_t>(5, 20, 40, 60, 80, 100),
                         [](const testing::TestParamInfo<std::size_t>& param_info) {
                             std::string label; label += "n"; label += std::to_string(param_info.param); return label;
                         });

TEST(Tgff, ProducerConsumerShareOutputBuffer) {
    TgffParams params;
    params.task_count = 30;
    const TaskGraph graph = generate_tgff_graph(params, 11);
    for (const Edge& e : graph.edges())
        EXPECT_GT(graph.shared_register_bits(e.src, e.dst), 0u)
            << "edge " << e.src << "->" << e.dst << " shares no registers";
}

TEST(Tgff, SiblingsShareTheProducersBuffer) {
    TgffParams params;
    params.task_count = 40;
    params.out_degree_mean = 3.0;
    const TaskGraph graph = generate_tgff_graph(params, 3);
    // Find a task with >= 2 consumers; they must overlap pairwise via
    // the producer's output buffer.
    bool found = false;
    for (TaskId t = 0; t < graph.task_count() && !found; ++t) {
        const auto succ = graph.successors(t);
        if (succ.size() >= 2) {
            EXPECT_GT(graph.shared_register_bits(succ[0], succ[1]), 0u);
            found = true;
        }
    }
    EXPECT_TRUE(found) << "generator produced no fan-out at mean degree 3";
}

TEST(Tgff, ZeroOutDegreeMeanYieldsChainlikeFallback) {
    TgffParams params;
    params.task_count = 10;
    params.out_degree_mean = 0.0; // only connectivity edges remain
    const TaskGraph graph = generate_tgff_graph(params, 9);
    EXPECT_EQ(graph.edge_count(), 9u); // one parent per non-root task
    EXPECT_NO_THROW(graph.validate());
}

TEST(Tgff, BatchCountPropagates) {
    TgffParams params;
    params.batch_count = 25;
    const TaskGraph graph = generate_tgff_graph(params, 1);
    EXPECT_EQ(graph.batch_count(), 25u);
}

TEST(Tgff, ParameterValidation) {
    TgffParams params;
    params.task_count = 0;
    EXPECT_THROW((void)generate_tgff_graph(params, 1), std::invalid_argument);
    params = TgffParams{};
    params.comp_cost_min = 10;
    params.comp_cost_max = 5;
    EXPECT_THROW((void)generate_tgff_graph(params, 1), std::invalid_argument);
    params = TgffParams{};
    params.comm_cost_min = 0;
    EXPECT_THROW((void)generate_tgff_graph(params, 1), std::invalid_argument);
    params = TgffParams{};
    params.register_bits_min = 0;
    EXPECT_THROW((void)generate_tgff_graph(params, 1), std::invalid_argument);
    params = TgffParams{};
    params.out_degree_mean = -1.0;
    EXPECT_THROW((void)generate_tgff_graph(params, 1), std::invalid_argument);
    params = TgffParams{};
    params.max_out_degree_fraction = 1.5;
    EXPECT_THROW((void)generate_tgff_graph(params, 1), std::invalid_argument);
    params = TgffParams{};
    params.output_buffer_fraction = 1.0;
    EXPECT_THROW((void)generate_tgff_graph(params, 1), std::invalid_argument);
    params = TgffParams{};
    params.batch_count = 0;
    EXPECT_THROW((void)generate_tgff_graph(params, 1), std::invalid_argument);
}

TEST(Tgff, PaperDeadlineRule) {
    // 1000 * N/2 ms.
    EXPECT_DOUBLE_EQ(paper_tgff_deadline_seconds(20), 10.0);
    EXPECT_DOUBLE_EQ(paper_tgff_deadline_seconds(100), 50.0);
}

TEST(Tgff, SingleTaskGraphIsValid) {
    TgffParams params;
    params.task_count = 1;
    const TaskGraph graph = generate_tgff_graph(params, 4);
    EXPECT_EQ(graph.task_count(), 1u);
    EXPECT_EQ(graph.edge_count(), 0u);
    EXPECT_NO_THROW(graph.validate());
}

} // namespace
} // namespace seamap
