#include "baseline/simulated_annealing.h"

#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

struct Fixture {
    TaskGraph graph = mpeg2_decoder_graph();
    MpsocArchitecture arch{4, VoltageScalingTable::arm7_three_level()};
    ScalingVector levels = {2, 2, 3, 2}; // Table II's Exp:4 scaling
    SeuEstimator estimator{SerModel{}};
    EvaluationContext ctx{graph, arch, levels, estimator, mpeg2_deadline_seconds()};
};

SaParams quick_params(std::uint64_t seed = 1) {
    SaParams params;
    params.iterations = 3'000;
    params.seed = seed;
    return params;
}

TEST(SimulatedAnnealing, FindsFeasibleDesignOnMpeg2) {
    Fixture f;
    const SimulatedAnnealingMapper mapper(quick_params());
    const SaResult result =
        mapper.optimize(f.ctx, MappingObjective::makespan, round_robin_mapping(f.graph, 4));
    EXPECT_TRUE(result.found_feasible);
    EXPECT_TRUE(result.best_metrics.feasible);
    EXPECT_TRUE(result.best_mapping.complete());
    EXPECT_EQ(result.iterations_run, 3'000u);
    EXPECT_GT(result.accepted_moves, 0u);
}

TEST(SimulatedAnnealing, ImprovesObjectiveOverInitial) {
    Fixture f;
    const Mapping initial = round_robin_mapping(f.graph, 4);
    const DesignMetrics initial_metrics = evaluate_design(f.ctx, initial);
    const SimulatedAnnealingMapper mapper(quick_params());
    for (const MappingObjective objective :
         {MappingObjective::register_usage, MappingObjective::makespan,
          MappingObjective::time_register_product, MappingObjective::seu_count}) {
        const SaResult result = mapper.optimize(f.ctx, objective, initial);
        ASSERT_TRUE(result.found_feasible) << objective_name(objective);
        EXPECT_LE(objective_value(objective, result.best_metrics),
                  objective_value(objective, initial_metrics))
            << objective_name(objective);
    }
}

TEST(SimulatedAnnealing, ObjectivesPullInTheirOwnDirections) {
    // Minimizing R must land at (weakly) lower R than minimizing T_M,
    // and vice versa — the Exp:1 vs Exp:2 contrast of Table II.
    Fixture f;
    const Mapping initial = round_robin_mapping(f.graph, 4);
    SaParams params = quick_params(3);
    params.iterations = 8'000;
    const SimulatedAnnealingMapper mapper(params);
    const SaResult min_r = mapper.optimize(f.ctx, MappingObjective::register_usage, initial);
    const SaResult min_tm = mapper.optimize(f.ctx, MappingObjective::makespan, initial);
    ASSERT_TRUE(min_r.found_feasible);
    ASSERT_TRUE(min_tm.found_feasible);
    EXPECT_LE(min_r.best_metrics.register_bits, min_tm.best_metrics.register_bits);
    EXPECT_LE(min_tm.best_metrics.tm_seconds, min_r.best_metrics.tm_seconds);
}

TEST(SimulatedAnnealing, DeterministicGivenSeed) {
    Fixture f;
    const SimulatedAnnealingMapper mapper(quick_params(17));
    const Mapping initial = round_robin_mapping(f.graph, 4);
    const SaResult a = mapper.optimize(f.ctx, MappingObjective::seu_count, initial);
    const SaResult b = mapper.optimize(f.ctx, MappingObjective::seu_count, initial);
    EXPECT_EQ(a.best_mapping, b.best_mapping);
    EXPECT_DOUBLE_EQ(a.best_metrics.gamma, b.best_metrics.gamma);
}

TEST(SimulatedAnnealing, ImpossibleDeadlineReportsClosestDesign) {
    Fixture f;
    EvaluationContext tight{f.graph, f.arch, f.levels, f.estimator, 1e-6};
    const SimulatedAnnealingMapper mapper(quick_params());
    const SaResult result =
        mapper.optimize(tight, MappingObjective::seu_count, round_robin_mapping(f.graph, 4));
    EXPECT_FALSE(result.found_feasible);
    EXPECT_FALSE(result.best_metrics.feasible);
    EXPECT_GT(result.best_metrics.tm_seconds, 0.0);
}

TEST(SimulatedAnnealing, SmallRandomGraphAcrossObjectives) {
    TgffParams params;
    params.task_count = 12;
    const TaskGraph graph = generate_tgff_graph(params, 5);
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {1, 1, 1}, SeuEstimator{SerModel{}}, 1e9};
    const SimulatedAnnealingMapper mapper(quick_params(9));
    const SaResult result =
        mapper.optimize(ctx, MappingObjective::seu_count, round_robin_mapping(graph, 3));
    EXPECT_TRUE(result.found_feasible); // deadline effectively unconstrained
}

TEST(SimulatedAnnealing, IncompleteInitialThrows) {
    Fixture f;
    const SimulatedAnnealingMapper mapper(quick_params());
    const Mapping incomplete(f.graph.task_count(), 4);
    EXPECT_THROW((void)mapper.optimize(f.ctx, MappingObjective::seu_count, incomplete),
                 std::invalid_argument);
}

TEST(SimulatedAnnealing, ParameterValidation) {
    SaParams params;
    params.iterations = 0;
    EXPECT_THROW(SimulatedAnnealingMapper{params}, std::invalid_argument);
    params = SaParams{};
    params.final_temperature = 1.0;
    params.initial_temperature = 0.1;
    EXPECT_THROW(SimulatedAnnealingMapper{params}, std::invalid_argument);
    params = SaParams{};
    params.swap_probability = 1.5;
    EXPECT_THROW(SimulatedAnnealingMapper{params}, std::invalid_argument);
    params = SaParams{};
    params.infeasibility_penalty = -1.0;
    EXPECT_THROW(SimulatedAnnealingMapper{params}, std::invalid_argument);
}

} // namespace
} // namespace seamap
