#include "baseline/objectives.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

DesignMetrics make_metrics() {
    DesignMetrics m;
    m.tm_seconds = 2.0;
    m.register_bits = 50'000;
    m.gamma = 1234.5;
    m.power_mw = 6.0;
    m.feasible = true;
    return m;
}

TEST(Objectives, ValuesPickTheRightMetric) {
    const DesignMetrics m = make_metrics();
    EXPECT_DOUBLE_EQ(objective_value(MappingObjective::register_usage, m), 50'000.0);
    EXPECT_DOUBLE_EQ(objective_value(MappingObjective::makespan, m), 2.0);
    EXPECT_DOUBLE_EQ(objective_value(MappingObjective::time_register_product, m), 100'000.0);
    EXPECT_DOUBLE_EQ(objective_value(MappingObjective::seu_count, m), 1234.5);
}

TEST(Objectives, Names) {
    EXPECT_EQ(objective_name(MappingObjective::register_usage), "register_usage");
    EXPECT_EQ(objective_name(MappingObjective::makespan), "makespan");
    EXPECT_EQ(objective_name(MappingObjective::time_register_product), "time_register_product");
    EXPECT_EQ(objective_name(MappingObjective::seu_count), "seu_count");
}

} // namespace
} // namespace seamap
