#include "sched/gantt.h"

#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

#include <sstream>

namespace seamap {
namespace {

Schedule make_schedule() {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    return ListScheduler{}.schedule(graph, round_robin_mapping(graph, 3), arch, {1, 2, 2});
}

TEST(Gantt, OneRowPerCore) {
    const TaskGraph graph = fig8_example_graph();
    const std::string out = gantt_to_string(graph, make_schedule());
    EXPECT_NE(out.find("core 0 |"), std::string::npos);
    EXPECT_NE(out.find("core 1 |"), std::string::npos);
    EXPECT_NE(out.find("core 2 |"), std::string::npos);
    EXPECT_NE(out.find("horizon"), std::string::npos);
}

TEST(Gantt, TaskMarksAppear) {
    const TaskGraph graph = fig8_example_graph();
    const std::string out = gantt_to_string(graph, make_schedule(), 60);
    // Fig-8 task names all start with 't'; the timeline must contain
    // executed spans, not only idle dots.
    EXPECT_NE(out.find('t'), std::string::npos);
    EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(Gantt, EmptyScheduleProducesNothing) {
    const TaskGraph graph = fig8_example_graph();
    Schedule empty;
    std::ostringstream os;
    write_gantt(os, graph, empty);
    EXPECT_TRUE(os.str().empty());
}

TEST(ScheduleCsv, OneLinePerTaskPlusHeader) {
    const TaskGraph graph = fig8_example_graph();
    std::ostringstream os;
    write_schedule_csv(os, graph, make_schedule());
    const std::string out = os.str();
    std::size_t lines = 0;
    for (char ch : out)
        if (ch == '\n') ++lines;
    EXPECT_EQ(lines, graph.task_count() + 1);
    EXPECT_NE(out.find("task,name,core,start_seconds,finish_seconds"), std::string::npos);
}

} // namespace
} // namespace seamap
