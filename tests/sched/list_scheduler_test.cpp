#include "sched/list_scheduler.h"

#include "taskgraph/mpeg2.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace seamap {
namespace {

constexpr double k_tol = 1e-12;

/// a(1e8) --2e7--> b(1e8)
TaskGraph make_chain() {
    RegisterFile regs;
    TaskGraph graph("chain", std::move(regs));
    const TaskId a = graph.add_task("a", 100'000'000);
    const TaskId b = graph.add_task("b", 100'000'000);
    graph.add_edge(a, b, 20'000'000);
    return graph;
}

MpsocArchitecture make_arch(std::size_t cores) {
    return MpsocArchitecture(cores, VoltageScalingTable::arm7_three_level());
}

TEST(ListScheduler, SingleTaskSingleCore) {
    RegisterFile regs;
    TaskGraph graph("one", std::move(regs));
    graph.add_task("t", 200'000'000);
    const MpsocArchitecture arch = make_arch(1);
    const Mapping mapping = single_core_mapping(graph, 1);
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, {1});
    EXPECT_NEAR(schedule.latency_seconds, 1.0, k_tol); // 2e8 cycles @ 200 MHz
    EXPECT_NEAR(schedule.total_time_seconds, 1.0, k_tol);
    EXPECT_EQ(schedule.core_busy_cycles[0], 200'000'000u);
    EXPECT_NEAR(schedule.utilization[0], 1.0, k_tol);
}

TEST(ListScheduler, ChainSameCoreHasNoCommCost) {
    const TaskGraph graph = make_chain();
    const MpsocArchitecture arch = make_arch(2);
    Mapping mapping(2, 2);
    mapping.assign(0, 0);
    mapping.assign(1, 0);
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, {1, 1});
    EXPECT_NEAR(schedule.entries[0].finish_seconds, 0.5, k_tol);
    EXPECT_NEAR(schedule.entries[1].start_seconds, 0.5, k_tol); // no comm delay
    EXPECT_NEAR(schedule.latency_seconds, 1.0, k_tol);
    EXPECT_EQ(schedule.core_busy_cycles[0], 200'000'000u); // comm not charged
    EXPECT_EQ(schedule.core_busy_cycles[1], 0u);
}

TEST(ListScheduler, ChainCrossCorePaysProducerClockedComm) {
    const TaskGraph graph = make_chain();
    const MpsocArchitecture arch = make_arch(2);
    Mapping mapping(2, 2);
    mapping.assign(0, 0);
    mapping.assign(1, 1);
    // Both cores nominal: comm = 2e7 / 200 MHz = 0.1 s.
    Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, {1, 1});
    EXPECT_NEAR(schedule.entries[1].start_seconds, 0.6, k_tol);
    EXPECT_NEAR(schedule.latency_seconds, 1.1, k_tol);
    // eq. (7): producer pays the transfer.
    EXPECT_EQ(schedule.core_busy_cycles[0], 120'000'000u);
    EXPECT_EQ(schedule.core_busy_cycles[1], 100'000'000u);

    // Slow the producer to level 2 (100 MHz): its exec and the comm
    // transfer both stretch 2x.
    schedule = ListScheduler{}.schedule(graph, mapping, arch, {2, 1});
    EXPECT_NEAR(schedule.entries[0].finish_seconds, 1.0, k_tol);
    EXPECT_NEAR(schedule.entries[1].start_seconds, 1.0 + 0.2, k_tol);
    EXPECT_NEAR(schedule.latency_seconds, 1.7, k_tol);
}

TEST(ListScheduler, DiamondHandComputed) {
    // a(1e8) -> b(1e8), c(2e8); b,c -> d(1e8); comm 2e7 each edge.
    RegisterFile regs;
    TaskGraph graph("diamond", std::move(regs));
    const TaskId a = graph.add_task("a", 100'000'000);
    const TaskId b = graph.add_task("b", 100'000'000);
    const TaskId c = graph.add_task("c", 200'000'000);
    const TaskId d = graph.add_task("d", 100'000'000);
    graph.add_edge(a, b, 20'000'000);
    graph.add_edge(a, c, 20'000'000);
    graph.add_edge(b, d, 20'000'000);
    graph.add_edge(c, d, 20'000'000);

    const MpsocArchitecture arch = make_arch(2);
    Mapping mapping(4, 2);
    mapping.assign(a, 0);
    mapping.assign(b, 0);
    mapping.assign(c, 1);
    mapping.assign(d, 0);
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, {1, 1});
    // a: 0..0.5 on core0, then the a->c transfer occupies core0 until
    // 0.6. c starts at 0.6, runs 1.0 s -> 1.6, then transfers to d
    // until 1.7. b runs 0.6..1.1 on core0 (no transfer for a->b).
    // d waits for c's data: 1.7..2.2.
    EXPECT_NEAR(schedule.entries[a].finish_seconds, 0.5, k_tol);
    EXPECT_NEAR(schedule.entries[c].start_seconds, 0.6, k_tol);
    EXPECT_NEAR(schedule.entries[b].start_seconds, 0.6, k_tol);
    EXPECT_NEAR(schedule.entries[d].start_seconds, 1.7, k_tol);
    EXPECT_NEAR(schedule.latency_seconds, 2.2, k_tol);
}

TEST(ListScheduler, PriorityPrefersCriticalPath) {
    // Two ready tasks on one core: x feeds a long chain, y is a leaf.
    // x must run first even though y has a smaller id... (ids reversed
    // here so priority, not id order, decides).
    RegisterFile regs;
    TaskGraph graph("prio", std::move(regs));
    const TaskId y = graph.add_task("y", 100'000'000); // leaf
    const TaskId x = graph.add_task("x", 100'000'000); // feeds long chain
    const TaskId tail = graph.add_task("tail", 400'000'000);
    graph.add_edge(x, tail, 0);
    const MpsocArchitecture arch = make_arch(2);
    Mapping mapping(3, 2);
    mapping.assign(y, 0);
    mapping.assign(x, 0);
    mapping.assign(tail, 1);
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, {1, 1});
    EXPECT_LT(schedule.entries[x].start_seconds, schedule.entries[y].start_seconds);
}

TEST(ListScheduler, BatchPipeliningUsesBottleneckThroughput) {
    TaskGraph graph = make_chain();
    graph.set_batch_count(10);
    const MpsocArchitecture arch = make_arch(2);
    Mapping mapping(2, 2);
    mapping.assign(0, 0);
    mapping.assign(1, 0);
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, {1, 1});
    // Per-iteration: a 0.05 s + b 0.05 s on one core -> L = 0.1 s,
    // II = busy/B = 1.0/10 = 0.1 s, total = L + 9*II = 1.0 s.
    EXPECT_NEAR(schedule.latency_seconds, 0.1, k_tol);
    EXPECT_NEAR(schedule.initiation_interval_seconds, 0.1, k_tol);
    EXPECT_NEAR(schedule.total_time_seconds, 1.0, k_tol);
    EXPECT_NEAR(schedule.utilization[0], 1.0, k_tol);
}

TEST(ListScheduler, BatchPipeliningBeatsSerialWhenSplit) {
    TaskGraph graph = make_chain();
    graph.set_batch_count(100);
    const MpsocArchitecture arch = make_arch(2);
    Mapping split(2, 2);
    split.assign(0, 0);
    split.assign(1, 1);
    Mapping together(2, 2);
    together.assign(0, 0);
    together.assign(1, 0);
    const Schedule split_schedule = ListScheduler{}.schedule(graph, split, arch, {1, 1});
    const Schedule serial_schedule = ListScheduler{}.schedule(graph, together, arch, {1, 1});
    // Splitting the pipeline stages halves the initiation interval
    // (bottleneck 0.6 s/100 vs 1.0 s/100) despite the comm overhead.
    EXPECT_LT(split_schedule.total_time_seconds, serial_schedule.total_time_seconds);
}

TEST(ListScheduler, RejectsIncompleteMappingAndBadSizes) {
    const TaskGraph graph = make_chain();
    const MpsocArchitecture arch = make_arch(2);
    Mapping incomplete(2, 2);
    incomplete.assign(0, 0);
    EXPECT_THROW((void)ListScheduler{}.schedule(graph, incomplete, arch, {1, 1}),
                 std::invalid_argument);
    Mapping wrong_cores(2, 3);
    wrong_cores.assign(0, 0);
    wrong_cores.assign(1, 1);
    EXPECT_THROW((void)ListScheduler{}.schedule(graph, wrong_cores, arch, {1, 1}),
                 std::invalid_argument);
    const Mapping complete = single_core_mapping(graph, 2);
    EXPECT_THROW((void)ListScheduler{}.schedule(graph, complete, arch, {1}),
                 std::invalid_argument);
    EXPECT_THROW((void)ListScheduler{}.schedule(graph, complete, arch, {9, 1}),
                 std::out_of_range);
}

TEST(ListScheduler, MeetsDeadlineTolerance) {
    Schedule schedule;
    schedule.total_time_seconds = 1.0;
    EXPECT_TRUE(schedule.meets_deadline(1.0));
    EXPECT_TRUE(schedule.meets_deadline(1.0 + 1e-6));
    EXPECT_FALSE(schedule.meets_deadline(0.999));
}

TEST(PerCoreBusyCycles, PartialMappingIsPessimisticAboutComm) {
    const TaskGraph graph = make_chain();
    Mapping partial(2, 2);
    partial.assign(0, 0); // consumer unmapped -> comm charged
    const auto busy = per_core_busy_cycles(graph, partial, 2);
    EXPECT_EQ(busy[0], 120'000'000u);
    EXPECT_EQ(busy[1], 0u);
}

TEST(TmEstimateEq6, HandComputed) {
    const TaskGraph graph = make_chain();
    const MpsocArchitecture arch = make_arch(2);
    Mapping split(2, 2);
    split.assign(0, 0);
    split.assign(1, 1);
    // Total mapped cycles: 1.2e8 + 1e8 = 2.2e8; rate: 2 x 200 MHz.
    EXPECT_NEAR(tm_estimate_eq6_seconds(graph, split, arch, {1, 1}), 0.55, k_tol);
    // Single core: 2e8 cycles at 200 MHz (unused core contributes no rate).
    const Mapping localized = single_core_mapping(graph, 2);
    EXPECT_NEAR(tm_estimate_eq6_seconds(graph, localized, arch, {1, 1}), 1.0, k_tol);
}

TEST(CalendarReadyQueue, PopsSlotsInAscendingOrder) {
    CalendarReadyQueue queue(300);
    const std::array<std::size_t, 7> slots = {255, 0, 64, 299, 63, 128, 1};
    for (std::size_t s : slots) queue.push(s);
    EXPECT_EQ(queue.size(), slots.size());
    std::array<std::size_t, 7> sorted = slots;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t s : sorted) EXPECT_EQ(queue.pop_min(), s);
    EXPECT_TRUE(queue.empty());
}

TEST(CalendarReadyQueue, DuplicatePushIsANoOp) {
    CalendarReadyQueue queue(70);
    queue.push(65);
    queue.push(65);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.pop_min(), 65u);
    EXPECT_TRUE(queue.empty());
}

TEST(CalendarReadyQueue, InterleavedPushPopTracksTheMinimum) {
    CalendarReadyQueue queue(1000);
    queue.push(500);
    queue.push(700);
    EXPECT_EQ(queue.pop_min(), 500u);
    queue.push(3); // below the previous minimum, different summary word
    queue.push(999);
    EXPECT_EQ(queue.pop_min(), 3u);
    EXPECT_EQ(queue.pop_min(), 700u);
    EXPECT_EQ(queue.pop_min(), 999u);
    EXPECT_TRUE(queue.empty());
}

TEST(CalendarReadyQueue, RejectsBadSlotsAndEmptyPop) {
    CalendarReadyQueue queue(10);
    EXPECT_THROW(queue.push(10), std::out_of_range);
    EXPECT_THROW(queue.pop_min(), std::logic_error);
}

TEST(CalendarReadyQueue, MatchesSortOnDenseAndSparseUniverses) {
    // Exhaustive cross-check against std::sort over a deterministic
    // pseudo-random slot set spanning multiple summary words.
    for (const std::size_t universe : {64u, 65u, 4096u, 5000u}) {
        CalendarReadyQueue queue(universe);
        std::vector<std::size_t> present;
        std::uint64_t state = 0x9e3779b97f4a7c15ULL + universe;
        for (int i = 0; i < 200; ++i) {
            state = state * 6364136223846793005ULL + 1442695040888963407ULL;
            const std::size_t slot = static_cast<std::size_t>(state >> 33) % universe;
            queue.push(slot);
            present.push_back(slot);
        }
        std::sort(present.begin(), present.end());
        present.erase(std::unique(present.begin(), present.end()), present.end());
        ASSERT_EQ(queue.size(), present.size());
        for (std::size_t s : present) EXPECT_EQ(queue.pop_min(), s);
        EXPECT_TRUE(queue.empty());
    }
}

TEST(StaticScheduleOrder, MatchesNaiveMinElementSelectionOnMpeg2) {
    // The calendar-queue extraction must reproduce the reference
    // selection rule (max b-level, ties by id) exactly; replay it here
    // with the plain min_element scan the production path no longer
    // uses, b-levels recomputed from scratch.
    const TaskGraph graph = mpeg2_decoder_graph();
    const std::size_t n = graph.task_count();

    const auto topo = graph.topological_order();
    std::vector<std::uint64_t> priority(n, 0);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        std::uint64_t best_child = 0;
        for (std::size_t idx : graph.out_edge_indices(*it)) {
            const Edge& e = graph.edge(idx);
            best_child = std::max(best_child, e.comm_cycles + priority[e.dst]);
        }
        priority[*it] = graph.task(*it).exec_cycles + best_child;
    }

    std::vector<std::size_t> preds(n, 0);
    for (TaskId t = 0; t < n; ++t) preds[t] = graph.in_edge_indices(t).size();
    std::vector<TaskId> ready;
    for (TaskId t = 0; t < n; ++t)
        if (preds[t] == 0) ready.push_back(t);
    std::vector<TaskId> naive;
    while (!ready.empty()) {
        const auto best =
            std::min_element(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
                if (priority[a] != priority[b]) return priority[a] > priority[b];
                return a < b;
            });
        const TaskId t = *best;
        ready.erase(best);
        naive.push_back(t);
        for (std::size_t idx : graph.out_edge_indices(t)) {
            const Edge& e = graph.edge(idx);
            if (--preds[e.dst] == 0) ready.push_back(e.dst);
        }
    }

    EXPECT_EQ(static_schedule_order(graph), naive);
}

TEST(TmLowerBound, NeverExceedsAchievedScheduleOnMpeg2) {
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch = make_arch(4);
    const ScalingVector levels = {2, 2, 2, 1};
    const double bound = tm_lower_bound_seconds(graph, arch, levels);
    const Schedule rr = ListScheduler{}.schedule(graph, round_robin_mapping(graph, 4), arch,
                                                 levels);
    const Schedule local = ListScheduler{}.schedule(graph, single_core_mapping(graph, 4), arch,
                                                    levels);
    EXPECT_LE(bound, rr.total_time_seconds * (1.0 + 1e-9));
    EXPECT_LE(bound, local.total_time_seconds * (1.0 + 1e-9));
}

} // namespace
} // namespace seamap
