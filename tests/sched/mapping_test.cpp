#include "sched/mapping.h"

#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

TEST(Mapping, StartsUnassigned) {
    const Mapping mapping(5, 3);
    EXPECT_EQ(mapping.task_count(), 5u);
    EXPECT_EQ(mapping.core_count(), 3u);
    EXPECT_FALSE(mapping.complete());
    EXPECT_EQ(mapping.assigned_count(), 0u);
    EXPECT_FALSE(mapping.is_assigned(0));
    EXPECT_THROW((void)mapping.core_of(0), std::logic_error);
}

TEST(Mapping, AssignAndReassign) {
    Mapping mapping(3, 2);
    mapping.assign(0, 1);
    EXPECT_TRUE(mapping.is_assigned(0));
    EXPECT_EQ(mapping.core_of(0), 1u);
    EXPECT_EQ(mapping.assigned_count(), 1u);
    mapping.assign(0, 0); // reassign must not double-count
    EXPECT_EQ(mapping.core_of(0), 0u);
    EXPECT_EQ(mapping.assigned_count(), 1u);
}

TEST(Mapping, Unassign) {
    Mapping mapping(2, 2);
    mapping.assign(1, 1);
    mapping.unassign(1);
    EXPECT_FALSE(mapping.is_assigned(1));
    EXPECT_EQ(mapping.assigned_count(), 0u);
    mapping.unassign(1); // idempotent
    EXPECT_EQ(mapping.assigned_count(), 0u);
}

TEST(Mapping, CompleteDetection) {
    Mapping mapping(2, 2);
    mapping.assign(0, 0);
    EXPECT_FALSE(mapping.complete());
    mapping.assign(1, 1);
    EXPECT_TRUE(mapping.complete());
}

TEST(Mapping, TasksOnAndUsedCores) {
    Mapping mapping(4, 3);
    mapping.assign(0, 0);
    mapping.assign(1, 2);
    mapping.assign(2, 0);
    mapping.assign(3, 2);
    EXPECT_EQ(mapping.tasks_on(0), (std::vector<TaskId>{0, 2}));
    EXPECT_TRUE(mapping.tasks_on(1).empty());
    EXPECT_EQ(mapping.task_count_on(2), 2u);
    EXPECT_EQ(mapping.used_core_count(), 2u);
}

TEST(Mapping, BoundsChecked) {
    Mapping mapping(2, 2);
    EXPECT_THROW(mapping.assign(5, 0), std::out_of_range);
    EXPECT_THROW(mapping.assign(0, 5), std::out_of_range);
    EXPECT_THROW((void)mapping.is_assigned(9), std::out_of_range);
    EXPECT_THROW(Mapping(2, 0), std::invalid_argument);
}

TEST(Mapping, Equality) {
    Mapping a(2, 2), b(2, 2);
    a.assign(0, 1);
    EXPECT_NE(a, b);
    b.assign(0, 1);
    EXPECT_EQ(a, b);
}

TEST(MappingHelpers, RoundRobinIsCompleteAndBalanced) {
    const TaskGraph graph = fig8_example_graph();
    const Mapping mapping = round_robin_mapping(graph, 3);
    EXPECT_TRUE(mapping.complete());
    EXPECT_EQ(mapping.task_count_on(0), 2u);
    EXPECT_EQ(mapping.task_count_on(1), 2u);
    EXPECT_EQ(mapping.task_count_on(2), 2u);
}

TEST(MappingHelpers, SingleCorePutsEverythingOnCoreZero) {
    const TaskGraph graph = fig8_example_graph();
    const Mapping mapping = single_core_mapping(graph, 4);
    EXPECT_TRUE(mapping.complete());
    EXPECT_EQ(mapping.task_count_on(0), graph.task_count());
    EXPECT_EQ(mapping.used_core_count(), 1u);
}

} // namespace
} // namespace seamap
