// Kill-and-resume for the sharded fault-injection campaign: stop the
// engine between shards, resume from the snapshot at a different
// thread count, and the merged report must be byte-identical to the
// uninterrupted run — the exact-integer-moment merge discipline makes
// shard restoration order-invariant. Plus the rejection paths.
#include "seamap/seamap.h"

#include "sim/campaign_checkpoint.h"
#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <string>

namespace seamap {
namespace {

struct Design {
    Problem problem;
    DsePoint best;
    Schedule schedule;
};

Design make_design() {
    Problem problem = ProblemBuilder()
                          .graph(fig8_example_graph())
                          .architecture(3, VoltageScalingTable::arm7_three_level())
                          .deadline_seconds(0.5)
                          .build();
    ExploreOptions options;
    options.dse.search.max_iterations = 300;
    options.dse.search.seed = 7;
    const DseResult result = explore(problem, options);
    EXPECT_TRUE(result.best.has_value());
    const DsePoint best = *result.best;
    Schedule schedule = ListScheduler{}.schedule(problem.graph(), best.mapping,
                                                 problem.architecture(), best.levels);
    return {std::move(problem), best, std::move(schedule)};
}

CampaignConfig make_config(std::uint64_t shard_size, std::size_t threads) {
    CampaignConfig config;
    config.trials = 3'000;
    config.shard_size = shard_size;
    config.num_threads = threads;
    config.seed = 11;
    return config;
}

std::string report_bytes(const CampaignReport& report) { return to_json(report).dump(2); }

std::string ckpt_path(const std::string& tag) {
    return testing::TempDir() + "/campaign_ckpt_" + tag + ".ckpt";
}

std::uint64_t state_hash(const Design& design, const CampaignEngine& engine) {
    return campaign_state_hash(design.problem.graph(), design.best.mapping,
                               design.problem.architecture(), design.best.levels,
                               design.schedule, engine.ser_model(), engine.config());
}

CampaignReport run(const Design& design, const CampaignEngine& engine,
                   const CancellationToken* cancel, CampaignCheckpointer* ckpt) {
    return engine.run(design.problem.graph(), design.best.mapping,
                      design.problem.architecture(), design.best.levels, design.schedule,
                      cancel, ckpt);
}

/// Interrupt after `stop_after` recorded shards, resume at
/// `resume_threads`; returns the resumed report bytes.
std::string kill_and_resume(const Design& design, std::uint64_t shard_size,
                            std::size_t kill_threads, std::size_t resume_threads,
                            std::uint64_t stop_after, const std::string& path,
                            std::uint64_t* shards_resumed_out = nullptr) {
    remove_checkpoint(path);
    const SerModel& ser = design.problem.ser_model();
    {
        const CampaignEngine engine(ser, make_config(shard_size, kill_threads));
        CampaignCheckpointer ckpt(path, state_hash(design, engine));
        ckpt.set_cadence(1, 0.0);
        CancellationToken cancel;
        ckpt.on_shard_recorded = [&](std::uint64_t done) {
            if (done >= stop_after) cancel.request_stop();
        };
        const CampaignReport partial = run(design, engine, &cancel, &ckpt);
        EXPECT_LE(partial.shards_completed, partial.shards);
    }
    const CampaignEngine engine(ser, make_config(shard_size, resume_threads));
    CampaignCheckpointer ckpt(path, state_hash(design, engine));
    const auto info = ckpt.load();
    if (shards_resumed_out != nullptr && info) *shards_resumed_out += info->shards_completed;
    const CampaignReport resumed = run(design, engine, nullptr, &ckpt);
    EXPECT_EQ(resumed.shards_completed, resumed.shards);
    remove_checkpoint(path);
    return report_bytes(resumed);
}

TEST(CampaignCheckpoint, KillAndResumeMatrix) {
    const Design design = make_design();
    const CampaignEngine baseline_engine(design.problem.ser_model(), make_config(256, 1));
    const std::string baseline =
        report_bytes(run(design, baseline_engine, nullptr, nullptr));
    std::uint64_t shards_resumed = 0;
    for (const std::uint64_t stop_after :
         {std::uint64_t{1}, std::uint64_t{4}, std::uint64_t{9}}) {
        for (const std::size_t resume_threads :
             {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
            const std::string resumed =
                kill_and_resume(design, 256, 2, resume_threads, stop_after,
                                ckpt_path("matrix"), &shards_resumed);
            EXPECT_EQ(resumed, baseline)
                << "stop_after=" << stop_after << " resume_threads=" << resume_threads;
        }
    }
    EXPECT_GT(shards_resumed, 0u);
}

TEST(CampaignCheckpoint, ShardSizeVariantsEachMatchTheirOwnBaseline) {
    const Design design = make_design();
    for (const std::uint64_t shard_size : {std::uint64_t{128}, std::uint64_t{512}}) {
        const CampaignEngine engine(design.problem.ser_model(),
                                    make_config(shard_size, 1));
        const std::string baseline = report_bytes(run(design, engine, nullptr, nullptr));
        EXPECT_EQ(kill_and_resume(design, shard_size, 8, 1, 3, ckpt_path("shards")),
                  baseline)
            << "shard_size=" << shard_size;
    }
}

TEST(CampaignCheckpoint, InterruptedReportIsMarkedPartial) {
    const Design design = make_design();
    const std::string path = ckpt_path("partial");
    remove_checkpoint(path);
    const CampaignEngine engine(design.problem.ser_model(), make_config(256, 2));
    CampaignCheckpointer ckpt(path, state_hash(design, engine));
    CancellationToken cancel;
    ckpt.on_shard_recorded = [&](std::uint64_t done) {
        if (done >= 2) cancel.request_stop();
    };
    const CampaignReport partial = run(design, engine, &cancel, &ckpt);
    ASSERT_LT(partial.shards_completed, partial.shards);
    // The partial JSON document says so explicitly.
    const std::string json = report_bytes(partial);
    EXPECT_NE(json.find("\"shards_completed\""), std::string::npos);
    remove_checkpoint(path);
}

TEST(CampaignCheckpoint, DifferentSeedIsMismatch) {
    const Design design = make_design();
    const std::string path = ckpt_path("mismatch");
    remove_checkpoint(path);
    const SerModel& ser = design.problem.ser_model();
    {
        const CampaignEngine engine(ser, make_config(256, 1));
        CampaignCheckpointer ckpt(path, state_hash(design, engine));
        CancellationToken cancel;
        ckpt.on_shard_recorded = [&](std::uint64_t) { cancel.request_stop(); };
        (void)run(design, engine, &cancel, &ckpt);
    }
    CampaignConfig other = make_config(256, 1);
    other.seed = 999;
    const CampaignEngine engine(ser, other);
    CampaignCheckpointer ckpt(path, state_hash(design, engine));
    try {
        (void)ckpt.load();
        FAIL() << "expected checkpoint_mismatch";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::checkpoint_mismatch);
    }
    remove_checkpoint(path);
}

TEST(CampaignCheckpoint, CorruptSnapshotIsRejected) {
    const Design design = make_design();
    const std::string path = ckpt_path("corrupt");
    remove_checkpoint(path);
    {
        std::ofstream os(path);
        os << "seamap-checkpoint 1\nlibrary 0.0.0\n";
    }
    const CampaignEngine engine(design.problem.ser_model(), make_config(256, 1));
    CampaignCheckpointer ckpt(path, state_hash(design, engine));
    try {
        (void)ckpt.load();
        FAIL() << "expected checkpoint_corrupt";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::checkpoint_corrupt);
    }
    remove_checkpoint(path);
}

} // namespace
} // namespace seamap
