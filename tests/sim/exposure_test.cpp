#include "sim/exposure.h"

#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

struct Fixture {
    TaskGraph graph = fig8_example_graph();
    MpsocArchitecture arch{3, VoltageScalingTable::arm7_three_level()};
    ScalingVector levels = {1, 2, 2};
    Mapping mapping = round_robin_mapping(graph, 3);
    Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
};

TEST(Exposure, FullDurationOneIntervalPerUsedCore) {
    Fixture f;
    const auto profile =
        build_exposure_profile(f.graph, f.mapping, f.arch, f.schedule,
                               SimExposurePolicy::full_duration);
    ASSERT_EQ(profile.size(), 3u); // all three cores hold tasks
    for (const auto& interval : profile) {
        EXPECT_DOUBLE_EQ(interval.duration_seconds, f.schedule.total_time_seconds);
        EXPECT_FALSE(interval.live.empty());
    }
}

TEST(Exposure, UnusedCoreHasNoInterval) {
    Fixture f;
    const Mapping localized = single_core_mapping(f.graph, 3);
    const Schedule schedule =
        ListScheduler{}.schedule(f.graph, localized, f.arch, f.levels);
    const auto profile = build_exposure_profile(f.graph, localized, f.arch, schedule,
                                                SimExposurePolicy::full_duration);
    ASSERT_EQ(profile.size(), 1u);
    EXPECT_EQ(profile[0].core, 0u);
}

TEST(Exposure, BusyOnlyUsesBusySeconds) {
    Fixture f;
    const auto profile = build_exposure_profile(f.graph, f.mapping, f.arch, f.schedule,
                                                SimExposurePolicy::busy_only);
    ASSERT_EQ(profile.size(), 3u);
    for (const auto& interval : profile)
        EXPECT_DOUBLE_EQ(interval.duration_seconds,
                         f.schedule.core_busy_seconds[interval.core]);
}

TEST(Exposure, RunningTaskOneIntervalPerTask) {
    Fixture f;
    const auto profile = build_exposure_profile(f.graph, f.mapping, f.arch, f.schedule,
                                                SimExposurePolicy::running_task);
    ASSERT_EQ(profile.size(), f.graph.task_count());
    for (TaskId t = 0; t < f.graph.task_count(); ++t) {
        EXPECT_EQ(profile[t].live, f.graph.task(t).registers);
        const double exec = f.schedule.entries[t].finish_seconds -
                            f.schedule.entries[t].start_seconds;
        EXPECT_NEAR(profile[t].duration_seconds, exec, 1e-12); // batch = 1
    }
}

TEST(Exposure, RunningTaskScalesWithBatchCount) {
    TaskGraph graph = fig8_example_graph();
    graph.set_batch_count(10);
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels = {1, 2, 2};
    const Mapping mapping = round_robin_mapping(graph, 3);
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    const auto profile = build_exposure_profile(graph, mapping, arch, schedule,
                                                SimExposurePolicy::running_task);
    // Whole-run exposure of task 0: 10 iterations of its per-iteration time.
    const double per_iter =
        schedule.entries[0].finish_seconds - schedule.entries[0].start_seconds;
    EXPECT_NEAR(profile[0].duration_seconds, per_iter * 10.0, 1e-12);
}

TEST(Exposure, IncompleteMappingThrows) {
    Fixture f;
    Mapping incomplete(f.graph.task_count(), 3);
    incomplete.assign(0, 0);
    EXPECT_THROW((void)build_exposure_profile(f.graph, incomplete, f.arch, f.schedule,
                                              SimExposurePolicy::full_duration),
                 std::invalid_argument);
}

TEST(Exposure, ExpectedSeusMatchesAnalyticFullDuration) {
    Fixture f;
    const SerModel ser;
    const auto profile = build_exposure_profile(f.graph, f.mapping, f.arch, f.schedule,
                                                SimExposurePolicy::full_duration);
    const double from_profile = expected_seus(profile, f.graph, f.arch, f.levels, ser);
    const SeuEstimator estimator{ser, ExposurePolicy::full_duration};
    const double analytic =
        estimator.estimate(f.graph, f.mapping, f.arch, f.levels, f.schedule).total;
    EXPECT_NEAR(from_profile, analytic, analytic * 1e-12);
}

TEST(Exposure, ExpectedSeusMatchesAnalyticBusyOnly) {
    Fixture f;
    const SerModel ser;
    const auto profile = build_exposure_profile(f.graph, f.mapping, f.arch, f.schedule,
                                                SimExposurePolicy::busy_only);
    const double from_profile = expected_seus(profile, f.graph, f.arch, f.levels, ser);
    const SeuEstimator estimator{ser, ExposurePolicy::busy_only};
    const double analytic =
        estimator.estimate(f.graph, f.mapping, f.arch, f.levels, f.schedule).total;
    EXPECT_NEAR(from_profile, analytic, analytic * 1e-12);
}

TEST(Exposure, PolicyConversion) {
    EXPECT_EQ(to_sim_policy(ExposurePolicy::full_duration), SimExposurePolicy::full_duration);
    EXPECT_EQ(to_sim_policy(ExposurePolicy::busy_only), SimExposurePolicy::busy_only);
}

TEST(Exposure, Mpeg2BatchedFullDurationDominatesRunningTask) {
    // Union-over-the-whole-run exposure must upper-bound the per-task
    // exposure for the same design.
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels = {2, 2, 2, 2};
    const Mapping mapping = round_robin_mapping(graph, 4);
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    const SerModel ser;
    const auto full = build_exposure_profile(graph, mapping, arch, schedule,
                                             SimExposurePolicy::full_duration);
    const auto task = build_exposure_profile(graph, mapping, arch, schedule,
                                             SimExposurePolicy::running_task);
    EXPECT_GT(expected_seus(full, graph, arch, levels, ser),
              expected_seus(task, graph, arch, levels, ser));
}

} // namespace
} // namespace seamap
