#include "sim/fault_injection.h"

#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

#include <numeric>

namespace seamap {
namespace {

struct Fixture {
    TaskGraph graph = fig8_example_graph();
    MpsocArchitecture arch{3, VoltageScalingTable::arm7_three_level()};
    ScalingVector levels = {1, 2, 2};
    Mapping mapping = round_robin_mapping(graph, 3);
    Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    SerModel ser;
};

TEST(FaultInjector, DeterministicGivenSeed) {
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::full_duration);
    Rng rng_a(99), rng_b(99);
    const auto a = injector.inject(f.graph, f.mapping, f.arch, f.levels, f.schedule, rng_a);
    const auto b = injector.inject(f.graph, f.mapping, f.arch, f.levels, f.schedule, rng_b);
    EXPECT_EQ(a.total_seus, b.total_seus);
    EXPECT_EQ(a.per_core, b.per_core);
}

TEST(FaultInjector, PerCoreSumsToTotal) {
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::full_duration);
    Rng rng(7);
    const auto result = injector.inject(f.graph, f.mapping, f.arch, f.levels, f.schedule, rng);
    const std::uint64_t sum =
        std::accumulate(result.per_core.begin(), result.per_core.end(), std::uint64_t{0});
    EXPECT_EQ(sum, result.total_seus);
    EXPECT_TRUE(result.per_register.empty()); // locations off by default
}

TEST(FaultInjector, LocationSamplingSumsToTotal) {
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::full_duration,
                                 /*sample_locations=*/true);
    Rng rng(11);
    const auto result = injector.inject(f.graph, f.mapping, f.arch, f.levels, f.schedule, rng);
    ASSERT_EQ(result.per_register.size(), f.graph.register_file().size());
    const std::uint64_t sum = std::accumulate(result.per_register.begin(),
                                              result.per_register.end(), std::uint64_t{0});
    EXPECT_EQ(sum, result.total_seus);
}

TEST(FaultInjector, WiderRegistersCollectMoreHits) {
    // r4 (5120 bits) must accumulate more hits than r7 (2048 bits) over
    // many trials — both live on some core in the round-robin mapping.
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::full_duration, true);
    Rng rng(13);
    std::uint64_t wide = 0, narrow = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const auto result =
            injector.inject(f.graph, f.mapping, f.arch, f.levels, f.schedule, rng);
        wide += result.per_register[3];   // r4
        narrow += result.per_register[6]; // r7
    }
    EXPECT_GT(wide, narrow);
}

TEST(FaultInjector, ZeroSerProducesNoSeus) {
    Fixture f;
    SerParams params;
    params.ser_ref_per_bit_cycle = 0.0;
    const FaultInjector injector(SerModel{params}, SimExposurePolicy::full_duration);
    Rng rng(5);
    const auto result = injector.inject(f.graph, f.mapping, f.arch, f.levels, f.schedule, rng);
    EXPECT_EQ(result.total_seus, 0u);
}

TEST(FaultInjector, CampaignMeanMatchesAnalyticGamma) {
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::full_duration);
    const auto summary =
        injector.run_campaign(f.graph, f.mapping, f.arch, f.levels, f.schedule, 300, 12345);
    ASSERT_EQ(summary.trials, 300u);
    ASSERT_GT(summary.analytic_gamma, 10.0); // enough signal for the test
    // Poisson: stderr of the mean is sqrt(Gamma / trials).
    const double stderr_mean = std::sqrt(summary.analytic_gamma / 300.0);
    EXPECT_NEAR(summary.seu_stats.mean(), summary.analytic_gamma, 5.0 * stderr_mean);
    // Poisson variance equals the mean.
    EXPECT_NEAR(summary.seu_stats.variance(), summary.analytic_gamma,
                summary.analytic_gamma * 0.35);
}

TEST(FaultInjector, CampaignMatchesAnalyticUnderBusyOnlyPolicy) {
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::busy_only);
    const auto summary =
        injector.run_campaign(f.graph, f.mapping, f.arch, f.levels, f.schedule, 300, 777);
    const SeuEstimator estimator{f.ser, ExposurePolicy::busy_only};
    const double analytic =
        estimator.estimate(f.graph, f.mapping, f.arch, f.levels, f.schedule).total;
    EXPECT_NEAR(summary.analytic_gamma, analytic, analytic * 1e-12);
    const double stderr_mean = std::sqrt(analytic / 300.0);
    EXPECT_NEAR(summary.seu_stats.mean(), analytic, 5.0 * stderr_mean);
}

TEST(FaultInjector, CampaignIsDeterministicGivenSeed) {
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::full_duration);
    const auto a =
        injector.run_campaign(f.graph, f.mapping, f.arch, f.levels, f.schedule, 50, 42);
    const auto b =
        injector.run_campaign(f.graph, f.mapping, f.arch, f.levels, f.schedule, 50, 42);
    EXPECT_DOUBLE_EQ(a.seu_stats.mean(), b.seu_stats.mean());
    EXPECT_DOUBLE_EQ(a.seu_stats.variance(), b.seu_stats.variance());
}

TEST(FaultInjector, ZeroTrialCampaignThrows) {
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::full_duration);
    EXPECT_THROW(
        (void)injector.run_campaign(f.graph, f.mapping, f.arch, f.levels, f.schedule, 0, 1),
        std::invalid_argument);
}

TEST(FaultInjector, CampaignSummarySurfacesHeadlineStatistics) {
    // The summary must expose mean / stdev / 95% CI directly; the CI
    // half-width in particular used to be computed by the accumulator
    // but never surfaced.
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::full_duration);
    const auto summary =
        injector.run_campaign(f.graph, f.mapping, f.arch, f.levels, f.schedule, 120, 9);
    EXPECT_DOUBLE_EQ(summary.mean(), summary.seu_stats.mean());
    EXPECT_DOUBLE_EQ(summary.stdev(), summary.seu_stats.stdev());
    EXPECT_DOUBLE_EQ(summary.ci95_halfwidth(), summary.seu_stats.ci95_halfwidth());
    EXPECT_GT(summary.ci95_halfwidth(), 0.0);
    EXPECT_NEAR(summary.ci95_halfwidth(), 1.959964 * summary.seu_stats.stderr_mean(),
                1e-12);
}

TEST(FaultInjector, CampaignPinnedToForkAtReferenceLoop) {
    // Pins the two refactors bit-exactly: run_campaign must equal a
    // hand-rolled loop that (a) derives trial streams with the
    // order-invariant fork_at and (b) goes through the public
    // inject_profile path — so neither the rate-table hoist nor the
    // fork migration changed a single draw.
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::full_duration);
    const std::uint64_t trials = 80, seed = 314;
    const auto summary =
        injector.run_campaign(f.graph, f.mapping, f.arch, f.levels, f.schedule, trials, seed);

    const auto profile = build_exposure_profile(f.graph, f.mapping, f.arch, f.schedule,
                                                SimExposurePolicy::full_duration);
    RunningStats reference;
    const Rng root(seed);
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        Rng stream = root.fork_at(trial);
        reference.add(static_cast<double>(
            injector.inject_profile(profile, f.graph, f.arch, f.levels, stream).total_seus));
    }
    EXPECT_EQ(summary.seu_stats.count(), reference.count());
    EXPECT_DOUBLE_EQ(summary.seu_stats.mean(), reference.mean());
    EXPECT_DOUBLE_EQ(summary.seu_stats.variance(), reference.variance());
    EXPECT_DOUBLE_EQ(summary.seu_stats.min(), reference.min());
    EXPECT_DOUBLE_EQ(summary.seu_stats.max(), reference.max());
}

TEST(FaultInjector, RateTablePathMatchesInjectProfileExactly) {
    Fixture f;
    const FaultInjector injector(f.ser, SimExposurePolicy::full_duration);
    const auto profile = build_exposure_profile(f.graph, f.mapping, f.arch, f.schedule,
                                                SimExposurePolicy::full_duration);
    const auto rates = injector.core_rate_table(f.arch, f.levels);
    ASSERT_EQ(rates.size(), f.arch.core_count());
    Rng rng_a(404), rng_b(404);
    for (int trial = 0; trial < 20; ++trial) {
        const auto via_profile =
            injector.inject_profile(profile, f.graph, f.arch, f.levels, rng_a);
        const auto via_rates =
            injector.inject_profile_rates(profile, f.graph, f.arch, rates, rng_b);
        EXPECT_EQ(via_profile.total_seus, via_rates.total_seus);
        EXPECT_EQ(via_profile.per_core, via_rates.per_core);
    }
}

TEST(FaultInjector, LocationAndAggregateModesAgreeInExpectation) {
    Fixture f;
    const FaultInjector aggregate(f.ser, SimExposurePolicy::full_duration, false);
    const FaultInjector located(f.ser, SimExposurePolicy::full_duration, true);
    RunningStats agg_stats, loc_stats;
    Rng rng(31);
    for (int trial = 0; trial < 150; ++trial) {
        Rng agg_stream = rng.fork_at(2 * static_cast<std::uint64_t>(trial));
        Rng loc_stream = rng.fork_at(2 * static_cast<std::uint64_t>(trial) + 1);
        agg_stats.add(static_cast<double>(
            aggregate.inject(f.graph, f.mapping, f.arch, f.levels, f.schedule, agg_stream)
                .total_seus));
        loc_stats.add(static_cast<double>(
            located.inject(f.graph, f.mapping, f.arch, f.levels, f.schedule, loc_stream)
                .total_seus));
    }
    // Both sample the same Poisson total; means agree within joint CI.
    const double combined_sigma =
        std::sqrt(agg_stats.variance() / 150.0 + loc_stats.variance() / 150.0);
    EXPECT_NEAR(agg_stats.mean(), loc_stats.mean(), 5.0 * combined_sigma);
}

} // namespace
} // namespace seamap
