#include "sim/campaign.h"

#include "api/json.h"
#include "reliability/seu_estimator.h"
#include "sim/fault_injection.h"
#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace seamap {
namespace {

struct Scenario {
    std::string name;
    TaskGraph graph;
    MpsocArchitecture arch;
    ScalingVector levels;
    Mapping mapping;
    Schedule schedule;
};

Scenario make_scenario(const std::string& name, TaskGraph graph, std::size_t cores,
                       ScalingVector levels) {
    MpsocArchitecture arch(cores, VoltageScalingTable::arm7_three_level());
    Mapping mapping = round_robin_mapping(graph, cores);
    Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    return Scenario{name, std::move(graph), std::move(arch), std::move(levels),
                    std::move(mapping), std::move(schedule)};
}

Scenario fig8_scenario() {
    return make_scenario("fig8", fig8_example_graph(), 3, {1, 2, 2});
}

Scenario mpeg2_scenario() {
    return make_scenario("mpeg2", mpeg2_decoder_graph(), 4, {2, 2, 3, 2});
}

Scenario tgff_scenario() {
    TgffParams params;
    params.task_count = 24;
    return make_scenario("tgff", generate_tgff_graph(params, 42), 4, {1, 2, 3, 2});
}

std::vector<Scenario> all_scenarios() {
    std::vector<Scenario> out;
    out.push_back(fig8_scenario());
    out.push_back(mpeg2_scenario());
    out.push_back(tgff_scenario());
    return out;
}

CampaignReport run_with(const Scenario& s, CampaignConfig config) {
    const CampaignEngine engine(SerModel{}, config);
    return engine.run(s.graph, s.mapping, s.arch, s.levels, s.schedule);
}

/// The measurement half of the report rendered to bytes, with the
/// execution-shape accounting (shard size / shard count / threads are
/// not results) normalized away.
std::string measurement_bytes(const CampaignReport& report) {
    JsonValue doc = to_json(report);
    doc["shard_size"] = 0;
    doc["shards"] = 0;
    return doc.dump();
}

TEST(CampaignEngine, ReportAccountingAndAttributionAreConsistent) {
    const Scenario s = fig8_scenario();
    CampaignConfig config;
    config.trials = 400;
    config.shard_size = 64;
    config.seed = 5;
    const CampaignReport report = run_with(s, config);

    EXPECT_EQ(report.trials, 400u);
    EXPECT_EQ(report.shard_size, 64u);
    EXPECT_EQ(report.shards, 7u); // ceil(400 / 64)
    EXPECT_EQ(report.seed, 5u);
    EXPECT_EQ(report.total_stats.count(), 400u);
    for (const SiteReport& site : report.sites) EXPECT_EQ(site.stats.count(), 400u);

    // Per-site totals fold to the grand total.
    std::uint64_t site_sum = 0;
    for (const SiteReport& site : report.sites) site_sum += site.stats.sum();
    EXPECT_EQ(site_sum, report.total_stats.sum());

    // Per-core attribution covers every hit; per-task attribution
    // covers exactly the task-attributable sites.
    const std::uint64_t core_sum = std::accumulate(
        report.hits_per_core.begin(), report.hits_per_core.end(), std::uint64_t{0});
    EXPECT_EQ(core_sum, report.total_stats.sum());
    const std::uint64_t task_sum = std::accumulate(
        report.hits_per_task.begin(), report.hits_per_task.end(), std::uint64_t{0});
    EXPECT_EQ(task_sum, report.site(FaultSite::pipeline).stats.sum() +
                            report.site(FaultSite::memory).stats.sum());

    // Weighted per-site expectations fold to the grand expectation.
    double site_gamma = 0.0;
    for (const SiteReport& site : report.sites) site_gamma += site.analytic_gamma;
    EXPECT_NEAR(report.analytic_gamma, site_gamma, 1e-12 * report.analytic_gamma);
}

TEST(CampaignEngine, ByteIdenticalAcrossThreadCounts) {
    for (const Scenario& s : all_scenarios()) {
        CampaignConfig config;
        config.trials = 600;
        config.shard_size = 53; // deliberately not a divisor of trials
        config.seed = 11;
        config.num_threads = 1;
        const std::string serial = measurement_bytes(run_with(s, config));
        for (const std::size_t threads : {2u, 8u}) {
            config.num_threads = threads;
            EXPECT_EQ(measurement_bytes(run_with(s, config)), serial)
                << s.name << " with " << threads << " threads";
        }
    }
}

TEST(CampaignEngine, ByteIdenticalAcrossShardSizes) {
    const Scenario s = mpeg2_scenario();
    CampaignConfig config;
    config.trials = 500;
    config.seed = 21;
    config.num_threads = 2;
    config.shard_size = 1;
    const std::string reference = measurement_bytes(run_with(s, config));
    for (const std::uint64_t shard_size : {7ull, 64ull, 499ull, 500ull, 5000ull}) {
        config.shard_size = shard_size;
        EXPECT_EQ(measurement_bytes(run_with(s, config)), reference)
            << "shard size " << shard_size;
    }
}

TEST(CampaignEngine, RegisterFileSiteReplaysTheSerialCampaignExactly) {
    // With pipeline/memory weights at zero, the engine's per-trial draw
    // sequence is identical to FaultInjector::inject_profile on the
    // eq. (3) exposure profile with the same fork_at streams — pinning
    // both the rate-table hoist and the fork_at migration bit-exactly.
    const Scenario s = fig8_scenario();
    CampaignConfig config;
    config.trials = 250;
    config.shard_size = 32;
    config.seed = 77;
    config.weights.pipeline = 0.0;
    config.weights.memory = 0.0;
    const CampaignReport report = run_with(s, config);

    const FaultInjector injector(SerModel{}, SimExposurePolicy::full_duration);
    const auto profile =
        build_exposure_profile(s.graph, s.mapping, s.arch, s.schedule, config.policy);
    ExactMoments reference;
    const Rng root(config.seed);
    for (std::uint64_t trial = 0; trial < config.trials; ++trial) {
        Rng stream = root.fork_at(trial);
        reference.add(
            injector.inject_profile(profile, s.graph, s.arch, s.levels, stream).total_seus);
    }
    const ExactMoments& measured = report.site(FaultSite::register_file).stats;
    EXPECT_EQ(measured.count(), reference.count());
    EXPECT_EQ(measured.sum(), reference.sum());
    EXPECT_EQ(measured.min(), reference.min());
    EXPECT_EQ(measured.max(), reference.max());
    EXPECT_DOUBLE_EQ(measured.mean(), reference.mean());
    EXPECT_DOUBLE_EQ(measured.variance(), reference.variance());
    // And the zero-weight sites collected nothing.
    EXPECT_EQ(report.site(FaultSite::pipeline).stats.sum(), 0u);
    EXPECT_EQ(report.site(FaultSite::memory).stats.sum(), 0u);
    EXPECT_EQ(report.total_stats.sum(), measured.sum());

    // The legacy serial campaign now runs the same streams.
    const auto summary = injector.run_campaign(s.graph, s.mapping, s.arch, s.levels,
                                               s.schedule, config.trials, config.seed);
    EXPECT_EQ(static_cast<std::uint64_t>(summary.seu_stats.min()), measured.min());
    EXPECT_EQ(static_cast<std::uint64_t>(summary.seu_stats.max()), measured.max());
    EXPECT_NEAR(summary.mean(), measured.mean(), 1e-9 * measured.mean());
}

TEST(CampaignEngine, AnalyticGammaValidatedWithinCampaignCi) {
    // The campaign's validation surface: at register-file weight 1 the
    // site expectation is the analytic Γ of eq. (3) exactly, and the
    // measured mean agrees with SeuEstimator within the campaign's own
    // 95% confidence interval on every scenario.
    for (const Scenario& s : all_scenarios()) {
        CampaignConfig config;
        config.trials = 6'000;
        config.shard_size = 512;
        config.num_threads = 2;
        config.seed = 12345;
        const CampaignReport report = run_with(s, config);

        const SeuEstimator estimator{SerModel{}, ExposurePolicy::full_duration};
        const double analytic =
            estimator.estimate(s.graph, s.mapping, s.arch, s.levels, s.schedule).total;
        const SiteReport& site = report.site(FaultSite::register_file);
        ASSERT_GT(analytic, 1.0) << s.name;
        EXPECT_NEAR(site.analytic_gamma, analytic, 1e-12 * analytic) << s.name;
        EXPECT_LE(std::abs(site.stats.mean() - analytic), site.stats.ci95_halfwidth())
            << s.name << ": measured " << site.stats.mean() << " vs analytic "
            << analytic << " (CI +/- " << site.stats.ci95_halfwidth() << ")";
    }
}

TEST(CampaignEngine, BusyOnlyPolicyValidatesAgainstMatchingEstimator) {
    const Scenario s = mpeg2_scenario();
    CampaignConfig config;
    config.trials = 6'000;
    config.shard_size = 256;
    config.seed = 2024;
    config.policy = SimExposurePolicy::busy_only;
    const CampaignReport report = run_with(s, config);
    const SeuEstimator estimator{SerModel{}, ExposurePolicy::busy_only};
    const double analytic =
        estimator.estimate(s.graph, s.mapping, s.arch, s.levels, s.schedule).total;
    const SiteReport& site = report.site(FaultSite::register_file);
    EXPECT_NEAR(site.analytic_gamma, analytic, 1e-12 * analytic);
    EXPECT_LE(std::abs(site.stats.mean() - analytic), site.stats.ci95_halfwidth());
}

TEST(CampaignEngine, SourceTableCoversEverySiteWithPrecomputedMeans) {
    const Scenario s = fig8_scenario();
    const CampaignEngine engine(SerModel{}, CampaignConfig{});
    const auto sources =
        engine.build_sources(s.graph, s.mapping, s.arch, s.levels, s.schedule);
    std::size_t register_sources = 0, pipeline_sources = 0, memory_sources = 0;
    for (const FaultSource& source : sources) {
        EXPECT_GE(source.mean_seus, 0.0);
        EXPECT_LT(source.core, s.arch.core_count());
        switch (source.site) {
        case FaultSite::register_file:
            ++register_sources;
            EXPECT_EQ(source.task, k_no_task);
            break;
        case FaultSite::pipeline:
            ++pipeline_sources;
            EXPECT_LT(source.task, s.graph.task_count());
            break;
        case FaultSite::memory:
            ++memory_sources;
            EXPECT_LT(source.task, s.graph.task_count());
            break;
        }
    }
    EXPECT_GT(register_sources, 0u);
    EXPECT_EQ(pipeline_sources, s.graph.task_count());
    EXPECT_EQ(memory_sources, s.graph.task_count());
}

TEST(CampaignEngine, PipelineExpectationScalesWithLatchBits) {
    const Scenario s = fig8_scenario();
    CampaignConfig config;
    config.trials = 1;
    const CampaignEngine narrow(SerModel{}, config);
    config.pipeline_bits *= 2.0;
    const CampaignEngine wide(SerModel{}, config);
    const double narrow_gamma =
        narrow.run(s.graph, s.mapping, s.arch, s.levels, s.schedule)
            .site(FaultSite::pipeline)
            .analytic_gamma;
    const double wide_gamma =
        wide.run(s.graph, s.mapping, s.arch, s.levels, s.schedule)
            .site(FaultSite::pipeline)
            .analytic_gamma;
    EXPECT_GT(narrow_gamma, 0.0);
    EXPECT_NEAR(wide_gamma, 2.0 * narrow_gamma, 1e-12 * wide_gamma);
}

TEST(CampaignEngine, TaskAttributionComesOnlyFromTaskSites) {
    const Scenario s = fig8_scenario();
    CampaignConfig config;
    config.trials = 200;
    config.seed = 3;
    config.weights.register_file = 1.0;
    config.weights.pipeline = 0.0;
    config.weights.memory = 0.0;
    const CampaignReport register_only = run_with(s, config);
    const std::uint64_t task_sum =
        std::accumulate(register_only.hits_per_task.begin(),
                        register_only.hits_per_task.end(), std::uint64_t{0});
    EXPECT_EQ(task_sum, 0u); // union residency has no owning task
    EXPECT_GT(register_only.total_stats.sum(), 0u);
}

TEST(CampaignEngine, InvalidConfigurationsThrow) {
    CampaignConfig config;
    config.trials = 0;
    EXPECT_THROW((CampaignEngine{SerModel{}, config}), std::invalid_argument);
    config = CampaignConfig{};
    config.shard_size = 0;
    EXPECT_THROW((CampaignEngine{SerModel{}, config}), std::invalid_argument);
    config = CampaignConfig{};
    config.weights.memory = -0.5;
    EXPECT_THROW((CampaignEngine{SerModel{}, config}), std::invalid_argument);
    config = CampaignConfig{};
    config.pipeline_bits = -1.0;
    EXPECT_THROW((CampaignEngine{SerModel{}, config}), std::invalid_argument);
}

// tier1 smoke: a short multi-threaded campaign on every scenario; runs
// under the TSan CI job (ctest -L tier1) so the shard dispatch and the
// pre-assigned-slot merge get happens-before checking.
TEST(CampaignEngine, SmokeShardedCampaignAcrossScenarios) {
    for (const Scenario& s : all_scenarios()) {
        CampaignConfig config;
        config.trials = 300;
        config.shard_size = 25;
        config.num_threads = 4;
        config.seed = 9;
        const CampaignReport report = run_with(s, config);
        EXPECT_EQ(report.total_stats.count(), config.trials) << s.name;
        EXPECT_GT(report.analytic_gamma, 0.0) << s.name;
        EXPECT_GT(report.total_stats.sum(), 0u) << s.name;
    }
}

} // namespace
} // namespace seamap
