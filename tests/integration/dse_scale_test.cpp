// Giant-instance acceptance of the lazy bound-sorted enumeration
// (core/lazy_scaling_queue.h + core/dse.cpp), on the committed
// 20349-slot scenario of api/scenarios.h: with pruning on, explore()
// must EMIT (submit mapping searches for) fewer than half of the slots
// the materialized sweep would have walked, while `best` and
// `pareto_front` stay byte-identical JSON to the exhaustive no-prune
// reference at 1, 2 and 8 worker threads.
//
// These runs take minutes, not milliseconds, so the suite carries the
// `scale` ctest label instead of tier1 and every test additionally
// skips unless SEAMAP_SCALE_TESTS=1 — the nightly CI job runs
//   SEAMAP_SCALE_TESTS=1 ctest -L scale
// and a developer can do the same locally.
#include "seamap/seamap.h"

#include "api/scenarios.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace seamap {
namespace {

bool scale_tests_enabled() {
    const char* flag = std::getenv("SEAMAP_SCALE_TESTS");
    return flag != nullptr && std::string(flag) == "1";
}

#define SEAMAP_REQUIRE_SCALE()                                                    \
    do {                                                                          \
        if (!scale_tests_enabled())                                               \
            GTEST_SKIP() << "set SEAMAP_SCALE_TESTS=1 to run scale-label tests";  \
    } while (false)

std::string best_json(const DseResult& result) {
    return result.best ? to_json(*result.best).dump() : "null";
}

std::string front_json(const DseResult& result) {
    JsonValue front = JsonValue::array();
    for (const DsePoint& point : result.pareto_front) front.push_back(to_json(point));
    return front.dump();
}

ExploreOptions scale_options(bool prune, std::size_t threads) {
    ExploreOptions options;
    options.dse.prune = prune;
    options.dse.num_threads = threads;
    options.dse.search.max_iterations = 300;
    options.dse.search.restarts = 1;
    options.dse.search.seed = 1;
    return options;
}

TEST(DseScale, LazyEnumerationEmitsUnderHalfTheSlotsWithIdenticalOutputs) {
    SEAMAP_REQUIRE_SCALE();
    const Problem problem = scale_acceptance_problem();

    // Exhaustive no-prune reference: every gate passer is searched.
    const DseResult exhaustive = explore(problem, scale_options(false, 1));
    ASSERT_EQ(exhaustive.scalings_total, 20349u);
    ASSERT_EQ(exhaustive.scalings_enumerated, 20349u);
    EXPECT_EQ(exhaustive.scalings_pruned, 0u);
    EXPECT_EQ(exhaustive.scalings_emitted, exhaustive.scalings_searched);
    ASSERT_FALSE(exhaustive.pareto_front.empty());
    ASSERT_TRUE(exhaustive.best.has_value());

    const std::string reference_best = best_json(exhaustive);
    const std::string reference_front = front_json(exhaustive);

    std::vector<DseResult> pruned;
    for (const std::size_t threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        pruned.push_back(explore(problem, scale_options(true, threads)));
        const DseResult& result = pruned.back();

        // The acceptance bound: under half of the slots the
        // materialized sweep walks are ever submitted as searches.
        EXPECT_LT(result.scalings_emitted * 2, result.scalings_total);
        // The gate alone does not account for it — the bound-driven
        // disposal and prune must cut into the gate passers too.
        EXPECT_LT(result.scalings_emitted * 2,
                  exhaustive.scalings_emitted + result.scalings_pruned);
        EXPECT_GT(result.scalings_pruned, 0u);
        EXPECT_EQ(result.scalings_searched + result.scalings_pruned,
                  exhaustive.scalings_searched);
        EXPECT_EQ(result.scalings_skipped_infeasible,
                  exhaustive.scalings_skipped_infeasible);

        // The paper's outputs are byte-identical to the exhaustive
        // sweep at every thread count.
        EXPECT_EQ(best_json(result), reference_best);
        EXPECT_EQ(front_json(result), reference_front);
    }

    // The pruned run itself is deterministic across thread counts —
    // counters included.
    for (std::size_t i = 1; i < pruned.size(); ++i) {
        EXPECT_EQ(pruned[i].scalings_emitted, pruned[0].scalings_emitted);
        EXPECT_EQ(pruned[i].scalings_pruned, pruned[0].scalings_pruned);
        EXPECT_EQ(pruned[i].scalings_searched, pruned[0].scalings_searched);
        EXPECT_EQ(pruned[i].feasible_points.size(), pruned[0].feasible_points.size());
    }
}

TEST(DseScale, GiantTgffInstancesEvaluateUnderTheScaleFamily) {
    SEAMAP_REQUIRE_SCALE();
    // The ROADMAP --scale family at its smallest committed size: a
    // 1k-task TGFF graph on 16 cores. One pruned exploration with a
    // tiny per-slot budget — this pins that giant graphs go through
    // the whole lazy pipeline (gate, bounds, SoA eval, calendar-queue
    // scheduling) without blowing memory or determinism, not that the
    // search finds good designs.
    const Problem problem = scale_problem(1000, 16, 3, 1);
    ExploreOptions options;
    options.dse.search.max_iterations = 5;
    options.dse.search.restarts = 1;
    options.dse.num_threads = 2;
    const DseResult first = explore(problem, options);
    const DseResult second = explore(problem, options);
    EXPECT_EQ(first.scalings_total, second.scalings_total);
    EXPECT_EQ(first.scalings_emitted, second.scalings_emitted);
    EXPECT_EQ(first.scalings_searched, second.scalings_searched);
    EXPECT_EQ(best_json(first), best_json(second));
    EXPECT_EQ(front_json(first), front_json(second));
}

} // namespace
} // namespace seamap
