// Property-based invariants of the list scheduler, swept over random
// TGFF graphs, core counts, scalings and mappings. These pin the
// execution model against structural bugs: dependency ordering, core
// exclusivity, busy-time accounting and the lower bound.
#include "sched/list_scheduler.h"
#include "tgff/random_graph.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <tuple>

namespace seamap {
namespace {

Mapping random_mapping(const TaskGraph& graph, std::size_t cores, Rng& rng) {
    Mapping mapping(graph.task_count(), cores);
    for (TaskId t = 0; t < graph.task_count(); ++t)
        mapping.assign(t, static_cast<CoreId>(
                              rng.uniform_int(0, static_cast<std::int64_t>(cores) - 1)));
    return mapping;
}

class ScheduleProperties
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(ScheduleProperties, InvariantsHoldForRandomMappings) {
    const auto [task_count, core_count, seed] = GetParam();
    TgffParams params;
    params.task_count = task_count;
    const TaskGraph graph = generate_tgff_graph(params, seed);
    const MpsocArchitecture arch(core_count, VoltageScalingTable::arm7_three_level());
    Rng rng(seed * 1000 + 17);

    for (int trial = 0; trial < 5; ++trial) {
        const Mapping mapping = random_mapping(graph, core_count, rng);
        ScalingVector levels(core_count);
        for (auto& level : levels)
            level = static_cast<ScalingLevel>(rng.uniform_int(1, 3));
        // The enumerated sequence is non-increasing; random vectors are
        // fine for the scheduler itself.
        const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);

        // (1) Dependencies: consumer starts after producer finishes
        // (plus comm when cross-core).
        for (const Edge& e : graph.edges()) {
            const auto& src = schedule.entries[e.src];
            const auto& dst = schedule.entries[e.dst];
            double arrival = src.finish_seconds;
            if (mapping.core_of(e.src) != mapping.core_of(e.dst))
                arrival += static_cast<double>(e.comm_cycles) /
                           arch.frequency_hz(levels[mapping.core_of(e.src)]);
            EXPECT_GE(dst.start_seconds, arrival - 1e-9)
                << "edge " << e.src << "->" << e.dst;
        }

        // (2) Core exclusivity: tasks on one core never overlap.
        for (std::size_t c = 0; c < core_count; ++c) {
            std::vector<const ScheduledTask*> on_core;
            for (const auto& entry : schedule.entries)
                if (entry.core == c) on_core.push_back(&entry);
            std::sort(on_core.begin(), on_core.end(),
                      [](const ScheduledTask* a, const ScheduledTask* b) {
                          return a->start_seconds < b->start_seconds;
                      });
            for (std::size_t i = 1; i < on_core.size(); ++i)
                EXPECT_GE(on_core[i]->start_seconds,
                          on_core[i - 1]->finish_seconds - 1e-9);
        }

        // (3) Latency is the max finish time.
        double max_finish = 0.0;
        for (const auto& entry : schedule.entries)
            max_finish = std::max(max_finish, entry.finish_seconds);
        EXPECT_NEAR(schedule.latency_seconds, max_finish, 1e-9);

        // (4) Busy accounting: busy cycles equal exec + outbound
        // cross-core comm, and utilization is in [0, 1].
        std::vector<std::uint64_t> expected_busy(core_count, 0);
        for (TaskId t = 0; t < graph.task_count(); ++t) {
            expected_busy[mapping.core_of(t)] += graph.task(t).exec_cycles;
            for (std::size_t idx : graph.out_edge_indices(t)) {
                const Edge& e = graph.edge(idx);
                if (mapping.core_of(e.dst) != mapping.core_of(t))
                    expected_busy[mapping.core_of(t)] += e.comm_cycles;
            }
        }
        for (std::size_t c = 0; c < core_count; ++c) {
            EXPECT_EQ(schedule.core_busy_cycles[c], expected_busy[c]);
            EXPECT_GE(schedule.utilization[c], 0.0);
            EXPECT_LE(schedule.utilization[c], 1.0);
        }

        // (5) The mapping-independent lower bound really is one.
        EXPECT_LE(tm_lower_bound_seconds(graph, arch, levels),
                  schedule.total_time_seconds * (1.0 + 1e-9));

        // (6) T_M composition: latency + (B-1) * II.
        EXPECT_NEAR(schedule.total_time_seconds,
                    schedule.latency_seconds +
                        (static_cast<double>(graph.batch_count()) - 1.0) *
                            schedule.initiation_interval_seconds,
                    1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, ScheduleProperties,
    testing::Combine(testing::Values<std::size_t>(8, 20, 50), testing::Values<std::size_t>(2, 4),
                     testing::Values<std::uint64_t>(11, 22, 33)),
    [](const testing::TestParamInfo<ScheduleProperties::ParamType>& param_info) {
        std::string label; label += "n"; label += std::to_string(std::get<0>(param_info.param)); label += "_c"; label += std::to_string(std::get<1>(param_info.param)); label += "_s"; label += std::to_string(std::get<2>(param_info.param)); return label;
    });

TEST(SchedulePropertiesBatched, PipelinedTotalTimeScalesWithBatches) {
    TgffParams params;
    params.task_count = 15;
    for (const std::uint64_t batches : {1ULL, 10ULL, 100ULL}) {
        params.batch_count = batches;
        const TaskGraph graph = generate_tgff_graph(params, 5);
        const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
        const Mapping mapping = round_robin_mapping(graph, 3);
        const Schedule schedule =
            ListScheduler{}.schedule(graph, mapping, arch, {1, 1, 1});
        // Same whole-run work regardless of batching.
        EXPECT_EQ(schedule.core_busy_cycles[0],
                  per_core_busy_cycles(graph, mapping, 3)[0]);
        // Deeper batching pipelines better: total time shrinks toward
        // the bottleneck bound as B grows.
        EXPECT_GE(schedule.total_time_seconds,
                  *std::max_element(schedule.core_busy_seconds.begin(),
                                    schedule.core_busy_seconds.end()) -
                      1e-9);
    }
}

} // namespace
} // namespace seamap
