// Full-pipeline integration over the structured workloads (FFT,
// Gaussian elimination, pipeline): the DSE must produce coherent
// designs across topology extremes, and loosening the constraint can
// only ever help.
#include "core/dse.h"
#include "sim/fault_injection.h"
#include "taskgraph/standard_graphs.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

DseParams quick_params(std::uint64_t iterations = 1'200) {
    DseParams params;
    params.search.max_iterations = iterations;
    params.search.seed = 21;
    return params;
}

double two_core_bound(const TaskGraph& graph) {
    const MpsocArchitecture two(2, VoltageScalingTable::arm7_three_level());
    return tm_lower_bound_seconds(graph, two, {1, 1});
}

TEST(StructuredWorkloads, DsePicksFeasibleDesignsOnAllTopologies) {
    const TaskGraph workloads[] = {fft_task_graph(4), gaussian_elimination_task_graph(6),
                                   pipeline_task_graph(5, 2)};
    const DesignSpaceExplorer explorer{SerModel{}};
    for (const TaskGraph& graph : workloads) {
        const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
        const DseResult result =
            explorer.explore(graph, arch, 1.4 * two_core_bound(graph), quick_params());
        ASSERT_TRUE(result.best.has_value()) << graph.name();
        EXPECT_TRUE(result.best->metrics.feasible) << graph.name();
        EXPECT_GT(result.best->metrics.gamma, 0.0) << graph.name();
        // The Pareto front never contains an infeasible point.
        for (const DsePoint& point : result.pareto_front)
            EXPECT_TRUE(point.metrics.feasible) << graph.name();
    }
}

TEST(StructuredWorkloads, LooseningTheDeadlineNeverCostsPower) {
    // Monotonicity: a superset of feasible designs cannot have a more
    // expensive minimum. (Search budgets are deterministic and shared,
    // and the scaling pre-filter only widens with the deadline.)
    const TaskGraph graph = fft_task_graph(4);
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const DesignSpaceExplorer explorer{SerModel{}};
    const double base = two_core_bound(graph);
    double previous_power = 1e300;
    for (const double factor : {1.3, 1.8, 3.0, 10.0}) {
        const DseResult result =
            explorer.explore(graph, arch, factor * base, quick_params(800));
        ASSERT_TRUE(result.best.has_value()) << "factor " << factor;
        // Tolerate small search noise: the minimum must not rise by
        // more than 10% as the constraint relaxes.
        EXPECT_LE(result.best->metrics.power_mw, previous_power * 1.10)
            << "factor " << factor;
        previous_power = std::min(previous_power, result.best->metrics.power_mw);
    }
}

TEST(StructuredWorkloads, WideFftToleratesDeeperScalingThanSerialGaussian) {
    // The FFT's width lets a 4-core platform hide slow clocks; the
    // triangular Gaussian DAG cannot. At the same relative deadline the
    // FFT design must run at an (aggregate) deeper scaling.
    const DesignSpaceExplorer explorer{SerModel{}};
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    auto mean_level = [&](const TaskGraph& graph) {
        const DseResult result =
            explorer.explore(graph, arch, 1.5 * two_core_bound(graph), quick_params());
        if (!result.best) return 0.0;
        double sum = 0.0;
        for (ScalingLevel level : result.best->levels) sum += level;
        return sum / static_cast<double>(result.best->levels.size());
    };
    const double fft_level = mean_level(fft_task_graph(4));
    const double gauss_level = mean_level(gaussian_elimination_task_graph(6));
    ASSERT_GT(fft_level, 0.0);
    ASSERT_GT(gauss_level, 0.0);
    EXPECT_GE(fft_level, gauss_level);
}

TEST(StructuredWorkloads, InjectionTracksAnalyticOnPipelinedWorkload) {
    StandardGraphParams params;
    params.batch_count = 40;
    const TaskGraph graph = pipeline_task_graph(4, 2, params);
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels = {1, 2, 2, 3};
    const Mapping mapping = round_robin_mapping(graph, 4);
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    const FaultInjector injector(SerModel{}, SimExposurePolicy::full_duration);
    const auto campaign =
        injector.run_campaign(graph, mapping, arch, levels, schedule, 200, 99);
    const double stderr_mean = std::sqrt(campaign.analytic_gamma / 200.0);
    EXPECT_NEAR(campaign.seu_stats.mean(), campaign.analytic_gamma, 5.0 * stderr_mean);
}

} // namespace
} // namespace seamap
