// End-to-end run of the full paper pipeline on the MPEG-2 decoder
// through the public API: Problem -> explore (Fig. 4) -> best design ->
// fault-injection measurement, checking the headline qualitative
// claims of Section V on our substrate.
#include "seamap/seamap.h"

#include "core/initial_mapping.h"
#include "sim/fault_injection.h"
#include "taskgraph/mpeg2.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

Problem mpeg2_problem(std::size_t cores, double deadline) {
    return ProblemBuilder()
        .graph(mpeg2_decoder_graph())
        .architecture(cores, VoltageScalingTable::arm7_three_level())
        .deadline_seconds(deadline)
        .build();
}

ExploreOptions pipeline_options() {
    ExploreOptions options;
    options.dse.search.max_iterations = 1'500;
    options.dse.search.seed = 2024;
    return options;
}

TEST(Mpeg2Pipeline, DseFindsAScaledDownFeasibleDesign) {
    const Problem problem = mpeg2_problem(4, mpeg2_deadline_seconds());
    const DseResult result = explore(problem, pipeline_options());
    ASSERT_TRUE(result.best.has_value());
    EXPECT_TRUE(result.best->metrics.feasible);

    // DVS must have kicked in: the chosen design is cheaper than the
    // same mapping at all-nominal speed.
    const EvaluationContext nominal =
        problem.evaluation_context(problem.architecture().nominal_scaling());
    const DesignMetrics nominal_metrics = evaluate_design(nominal, result.best->mapping);
    EXPECT_LT(result.best->metrics.power_mw, nominal_metrics.power_mw);
    // And at least one core actually runs below nominal.
    bool any_scaled = false;
    for (ScalingLevel level : result.best->levels) any_scaled |= level > 1;
    EXPECT_TRUE(any_scaled);
}

TEST(Mpeg2Pipeline, AnnealingStrategyAlsoClosesTheLoop) {
    // The SA baseline behind the same SearchStrategy contract must
    // drive the full DSE to a feasible, voltage-scaled design too.
    ExploreOptions options = pipeline_options();
    options.strategy = "annealing";
    const Problem problem = mpeg2_problem(4, mpeg2_deadline_seconds());
    const DseResult result = explore(problem, options);
    ASSERT_TRUE(result.best.has_value());
    EXPECT_TRUE(result.best->metrics.feasible);
    bool any_scaled = false;
    for (ScalingLevel level : result.best->levels) any_scaled |= level > 1;
    EXPECT_TRUE(any_scaled);
}

TEST(Mpeg2Pipeline, ProposedMapperBeatsParallelismBaselineOnGamma) {
    // The Fig. 9 headline: at the same voltage scaling, the soft
    // error-aware mapping experiences fewer SEUs than the
    // parallelism-optimized (Exp:2) baseline mapping. The proposed
    // side runs through the public strategy interface; the baseline
    // anneals on makespan (Exp:2), which the registry's Gamma-annealing
    // entry deliberately does not model, so it is driven directly.
    const Problem problem = mpeg2_problem(4, mpeg2_deadline_seconds());
    const TaskGraph& graph = problem.graph();
    const ScalingVector levels = {2, 2, 3, 2}; // Table II's chosen scaling
    const EvaluationContext ctx = problem.evaluation_context(levels);

    const auto proposed_strategy =
        make_search_strategy("optimized", {.max_iterations = 6'000});
    const LocalSearchResult proposed =
        proposed_strategy->search(ctx, initial_sea_mapping(ctx), 99);
    ASSERT_TRUE(proposed.found_feasible);

    SaParams sa;
    sa.iterations = 6'000;
    sa.seed = 99;
    const AnnealingStrategy parallelism_strategy(sa, MappingObjective::makespan);
    const LocalSearchResult parallelism =
        parallelism_strategy.search(ctx, round_robin_mapping(graph, 4), 99);
    ASSERT_TRUE(parallelism.found_feasible);

    EXPECT_LT(proposed.best_metrics.gamma, parallelism.best_metrics.gamma);
}

TEST(Mpeg2Pipeline, FaultInjectionConfirmsAnalyticRanking) {
    // Measure two designs with the Poisson injector and check the
    // *measured* ordering matches the analytic Gamma ordering — the
    // paper's optimization-vs-measurement loop.
    const Problem problem = mpeg2_problem(4, mpeg2_deadline_seconds());
    const TaskGraph& graph = problem.graph();
    const MpsocArchitecture& arch = problem.architecture();
    const ScalingVector levels = {2, 2, 3, 2};
    const EvaluationContext ctx = problem.evaluation_context(levels);

    const auto strategy = make_search_strategy("optimized", {.max_iterations = 4'000});
    const LocalSearchResult good = strategy->search(ctx, initial_sea_mapping(ctx), 7);
    ASSERT_TRUE(good.found_feasible);
    const Mapping bad = round_robin_mapping(graph, 4);
    const DesignMetrics bad_metrics = evaluate_design(ctx, bad);
    ASSERT_LT(good.best_metrics.gamma, bad_metrics.gamma);

    const FaultInjector injector(problem.ser_model(), SimExposurePolicy::full_duration);
    const Schedule good_schedule =
        ListScheduler{}.schedule(graph, good.best_mapping, arch, levels);
    const Schedule bad_schedule = ListScheduler{}.schedule(graph, bad, arch, levels);
    const auto good_campaign = injector.run_campaign(graph, good.best_mapping, arch, levels,
                                                     good_schedule, 60, 314);
    const auto bad_campaign =
        injector.run_campaign(graph, bad, arch, levels, bad_schedule, 60, 314);
    EXPECT_LT(good_campaign.seu_stats.mean(), bad_campaign.seu_stats.mean());
    // Measured means track their analytic predictions.
    EXPECT_NEAR(good_campaign.seu_stats.mean(), good_campaign.analytic_gamma,
                5.0 * std::sqrt(good_campaign.analytic_gamma / 60.0));
}

TEST(Mpeg2Pipeline, MoreCoresMeansMoreSeusAtTheChosenDesign) {
    // Table III's second observation: with more cores the DSE scales
    // voltages deeper and duplicates more registers, so the chosen
    // design experiences more SEUs. The deadline must *bind* for the
    // effect to appear (see EXPERIMENTS.md deadline normalization):
    // 1.25x the two-core nominal-speed capacity forces 2 cores to run
    // near nominal voltage while 6 cores reach the slowest level.
    const TaskGraph graph = mpeg2_decoder_graph();
    const double deadline =
        1.25 * static_cast<double>(graph.total_exec_cycles()) / (2.0 * 200e6);
    double previous_gamma = 0.0;
    for (const std::size_t cores : {2u, 6u}) {
        const DseResult result = explore(mpeg2_problem(cores, deadline), pipeline_options());
        ASSERT_TRUE(result.best.has_value()) << cores << " cores";
        if (previous_gamma > 0.0) { EXPECT_GT(result.best->metrics.gamma, previous_gamma); }
        previous_gamma = result.best->metrics.gamma;
    }
}

} // namespace
} // namespace seamap
