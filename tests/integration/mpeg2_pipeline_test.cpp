// End-to-end run of the full paper pipeline on the MPEG-2 decoder:
// DSE (Fig. 4) -> best design -> fault-injection measurement, checking
// the headline qualitative claims of Section V on our substrate.
#include "baseline/simulated_annealing.h"
#include "core/dse.h"
#include "core/initial_mapping.h"
#include "core/optimized_mapping.h"
#include "sim/fault_injection.h"
#include "taskgraph/mpeg2.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

DseParams pipeline_dse() {
    DseParams params;
    params.search.max_iterations = 1'500;
    params.search.seed = 2024;
    return params;
}

TEST(Mpeg2Pipeline, DseFindsAScaledDownFeasibleDesign) {
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const DesignSpaceExplorer explorer{SerModel{}};
    const DseResult result =
        explorer.explore(graph, arch, mpeg2_deadline_seconds(), pipeline_dse());
    ASSERT_TRUE(result.best.has_value());
    EXPECT_TRUE(result.best->metrics.feasible);

    // DVS must have kicked in: the chosen design is cheaper than the
    // same mapping at all-nominal speed.
    const EvaluationContext nominal{graph, arch, arch.nominal_scaling(),
                                    SeuEstimator{SerModel{}}, mpeg2_deadline_seconds()};
    const DesignMetrics nominal_metrics = evaluate_design(nominal, result.best->mapping);
    EXPECT_LT(result.best->metrics.power_mw, nominal_metrics.power_mw);
    // And at least one core actually runs below nominal.
    bool any_scaled = false;
    for (ScalingLevel level : result.best->levels) any_scaled |= level > 1;
    EXPECT_TRUE(any_scaled);
}

TEST(Mpeg2Pipeline, ProposedMapperBeatsParallelismBaselineOnGamma) {
    // The Fig. 9 headline: at the same voltage scaling, the soft
    // error-aware mapping experiences fewer SEUs than the
    // parallelism-optimized (Exp:2) baseline mapping.
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels = {2, 2, 3, 2}; // Table II's chosen scaling
    const EvaluationContext ctx{graph, arch, levels, SeuEstimator{SerModel{}},
                                mpeg2_deadline_seconds()};

    LocalSearchParams search;
    search.max_iterations = 6'000;
    search.seed = 99;
    const LocalSearchResult proposed =
        OptimizedMapping(search).optimize(ctx, initial_sea_mapping(ctx));
    ASSERT_TRUE(proposed.found_feasible);

    SaParams sa;
    sa.iterations = 6'000;
    sa.seed = 99;
    const SaResult parallelism = SimulatedAnnealingMapper(sa).optimize(
        ctx, MappingObjective::makespan, round_robin_mapping(graph, 4));
    ASSERT_TRUE(parallelism.found_feasible);

    EXPECT_LT(proposed.best_metrics.gamma, parallelism.best_metrics.gamma);
}

TEST(Mpeg2Pipeline, FaultInjectionConfirmsAnalyticRanking) {
    // Measure two designs with the Poisson injector and check the
    // *measured* ordering matches the analytic Gamma ordering — the
    // paper's optimization-vs-measurement loop.
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels = {2, 2, 3, 2};
    const EvaluationContext ctx{graph, arch, levels, SeuEstimator{SerModel{}},
                                mpeg2_deadline_seconds()};

    LocalSearchParams search;
    search.max_iterations = 4'000;
    search.seed = 7;
    const LocalSearchResult good =
        OptimizedMapping(search).optimize(ctx, initial_sea_mapping(ctx));
    ASSERT_TRUE(good.found_feasible);
    const Mapping bad = round_robin_mapping(graph, 4);
    const DesignMetrics bad_metrics = evaluate_design(ctx, bad);
    ASSERT_LT(good.best_metrics.gamma, bad_metrics.gamma);

    const FaultInjector injector(SerModel{}, SimExposurePolicy::full_duration);
    const Schedule good_schedule =
        ListScheduler{}.schedule(graph, good.best_mapping, arch, levels);
    const Schedule bad_schedule = ListScheduler{}.schedule(graph, bad, arch, levels);
    const auto good_campaign = injector.run_campaign(graph, good.best_mapping, arch, levels,
                                                     good_schedule, 60, 314);
    const auto bad_campaign =
        injector.run_campaign(graph, bad, arch, levels, bad_schedule, 60, 314);
    EXPECT_LT(good_campaign.seu_stats.mean(), bad_campaign.seu_stats.mean());
    // Measured means track their analytic predictions.
    EXPECT_NEAR(good_campaign.seu_stats.mean(), good_campaign.analytic_gamma,
                5.0 * std::sqrt(good_campaign.analytic_gamma / 60.0));
}

TEST(Mpeg2Pipeline, MoreCoresMeansMoreSeusAtTheChosenDesign) {
    // Table III's second observation: with more cores the DSE scales
    // voltages deeper and duplicates more registers, so the chosen
    // design experiences more SEUs. The deadline must *bind* for the
    // effect to appear (see EXPERIMENTS.md deadline normalization):
    // 1.25x the two-core nominal-speed capacity forces 2 cores to run
    // near nominal voltage while 6 cores reach the slowest level.
    const TaskGraph graph = mpeg2_decoder_graph();
    const double deadline =
        1.25 * static_cast<double>(graph.total_exec_cycles()) / (2.0 * 200e6);
    const DesignSpaceExplorer explorer{SerModel{}};
    double previous_gamma = 0.0;
    for (const std::size_t cores : {2u, 6u}) {
        const MpsocArchitecture arch(cores, VoltageScalingTable::arm7_three_level());
        const DseResult result = explorer.explore(graph, arch, deadline, pipeline_dse());
        ASSERT_TRUE(result.best.has_value()) << cores << " cores";
        if (previous_gamma > 0.0) { EXPECT_GT(result.best->metrics.gamma, previous_gamma); }
        previous_gamma = result.best->metrics.gamma;
    }
}

} // namespace
} // namespace seamap
