// Physics sanity properties of the analytic models, swept over the
// operating-point and parameter ranges the experiments use. These pin
// the *directions* every paper trend relies on: power falls
// superlinearly with scaling, SER rises as voltage falls, Gamma scales
// linearly in SER and exposure.
#include "arch/power_model.h"
#include "reliability/design_eval.h"
#include "sched/list_scheduler.h"
#include "taskgraph/mpeg2.h"

#include <gtest/gtest.h>

#include <tuple>

namespace seamap {
namespace {

class OperatingPointSweep : public testing::TestWithParam<ScalingLevel> {};

TEST_P(OperatingPointSweep, DeeperScalingTradesPowerForReliability) {
    const ScalingLevel level = GetParam();
    const auto table = VoltageScalingTable::arm7_four_level();
    if (static_cast<std::size_t>(level) + 1 > table.level_count()) GTEST_SKIP();
    const PowerModel power(table, PowerParams{});
    const SerModel ser;
    // One level deeper: strictly less power (f*V^2 both shrink)...
    EXPECT_LT(power.core_active_power_mw(static_cast<ScalingLevel>(level + 1)),
              power.core_active_power_mw(level));
    // ...and a strictly higher per-cycle upset rate.
    EXPECT_GT(ser.lambda_per_bit_cycle(table.at_level(static_cast<ScalingLevel>(level + 1))),
              ser.lambda_per_bit_cycle(table.at_level(level)));
}

INSTANTIATE_TEST_SUITE_P(AllLevels, OperatingPointSweep,
                         testing::Values<ScalingLevel>(1, 2, 3),
                         [](const testing::TestParamInfo<ScalingLevel>& param_info) {
                             std::string label = "level";
                             label += std::to_string(param_info.param);
                             return label;
                         });

TEST(ModelLinearity, GammaIsLinearInSerReference) {
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 4);
    const ScalingVector levels = {2, 2, 2, 2};
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    SerParams params;
    params.ser_ref_per_bit_cycle = 1e-9;
    const double base = SeuEstimator{SerModel{params}}
                            .estimate(graph, mapping, arch, levels, schedule)
                            .total;
    params.ser_ref_per_bit_cycle = 3e-9;
    const double tripled = SeuEstimator{SerModel{params}}
                               .estimate(graph, mapping, arch, levels, schedule)
                               .total;
    EXPECT_NEAR(tripled, 3.0 * base, 3.0 * base * 1e-12);
}

TEST(ModelLinearity, GammaIsLinearInBatchDurationAtFixedMapping) {
    // Doubling the stream length (batch count at equal per-iteration
    // cost means double the cycles) doubles full-duration exposure and
    // hence Gamma, asymptotically (pipeline fill is amortized).
    TaskGraph short_run = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(short_run, 4);
    const ScalingVector levels = {1, 1, 1, 1};
    const SeuEstimator estimator{SerModel{}};
    const Schedule s1 = ListScheduler{}.schedule(short_run, mapping, arch, levels);
    const double g1 = estimator.estimate(short_run, mapping, arch, levels, s1).total;

    // Same graph with double the whole-run cycles (double batches of
    // the same per-frame work): scale every cost by 2 and double B.
    RegisterFile regs_copy;
    for (RegisterId r = 0; r < short_run.register_file().size(); ++r)
        regs_copy.add_register(short_run.register_file().name(r),
                               short_run.register_file().bits(r));
    TaskGraph long_run("mpeg2_double", std::move(regs_copy));
    long_run.set_batch_count(short_run.batch_count() * 2);
    for (TaskId t = 0; t < short_run.task_count(); ++t) {
        std::vector<RegisterId> regs;
        short_run.task(t).registers.for_each([&](RegisterId r) { regs.push_back(r); });
        long_run.add_task(short_run.task(t).name, short_run.task(t).exec_cycles * 2, regs);
    }
    for (const Edge& e : short_run.edges())
        long_run.add_edge(e.src, e.dst, e.comm_cycles * 2);
    const Schedule s2 = ListScheduler{}.schedule(long_run, mapping, arch, levels);
    const double g2 = estimator.estimate(long_run, mapping, arch, levels, s2).total;
    EXPECT_NEAR(g2 / g1, 2.0, 0.01);
}

TEST(ModelMonotonicity, PowerOrdersScalingVectorsByAggregateSpeed) {
    // For a fixed mapping, pointwise-faster scaling vectors cost more.
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 4);
    const ScalingVector slower = {3, 3, 2, 2};
    const ScalingVector faster = {2, 2, 1, 1};
    const EvaluationContext slow_ctx{graph, arch, slower, SeuEstimator{SerModel{}}, 1e9};
    const EvaluationContext fast_ctx{graph, arch, faster, SeuEstimator{SerModel{}}, 1e9};
    EXPECT_GT(evaluate_design(fast_ctx, mapping).power_mw,
              evaluate_design(slow_ctx, mapping).power_mw);
}

} // namespace
} // namespace seamap
