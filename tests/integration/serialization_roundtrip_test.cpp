// Property test: the text (de)serializer is the identity over the
// whole workload family this repository can produce — random TGFF
// graphs across sizes/seeds and the structured builders — and the
// reloaded graph is *behaviourally* identical, not just structurally:
// same schedule, same Gamma, same power for the same design.
#include "reliability/design_eval.h"
#include "taskgraph/serialization.h"
#include "taskgraph/standard_graphs.h"
#include "tgff/random_graph.h"

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

namespace seamap {
namespace {

void expect_behaviourally_equal(const TaskGraph& a, const TaskGraph& b) {
    ASSERT_EQ(a.task_count(), b.task_count());
    const std::size_t cores = 3;
    const MpsocArchitecture arch(cores, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels = {1, 2, 3};
    const Mapping mapping = round_robin_mapping(a, cores);
    const EvaluationContext ctx_a{a, arch, levels, SeuEstimator{SerModel{}}, 1e9};
    const EvaluationContext ctx_b{b, arch, levels, SeuEstimator{SerModel{}}, 1e9};
    const DesignMetrics ma = evaluate_design(ctx_a, mapping);
    const DesignMetrics mb = evaluate_design(ctx_b, mapping);
    EXPECT_DOUBLE_EQ(ma.tm_seconds, mb.tm_seconds);
    EXPECT_EQ(ma.register_bits, mb.register_bits);
    EXPECT_DOUBLE_EQ(ma.gamma, mb.gamma);
    EXPECT_DOUBLE_EQ(ma.power_mw, mb.power_mw);
}

class TgffRoundTrip
    : public testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(TgffRoundTrip, ReloadedGraphBehavesIdentically) {
    const auto [task_count, seed] = GetParam();
    TgffParams params;
    params.task_count = task_count;
    params.batch_count = 1 + seed % 7;
    const TaskGraph original = generate_tgff_graph(params, seed);
    std::stringstream buffer;
    write_task_graph(buffer, original);
    const TaskGraph reloaded = read_task_graph(buffer);
    EXPECT_EQ(reloaded.batch_count(), original.batch_count());
    expect_behaviourally_equal(original, reloaded);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, TgffRoundTrip,
    testing::Combine(testing::Values<std::size_t>(3, 12, 45, 90),
                     testing::Values<std::uint64_t>(1, 17, 5150)),
    [](const testing::TestParamInfo<TgffRoundTrip::ParamType>& param_info) {
        std::string label;
        label += "n";
        label += std::to_string(std::get<0>(param_info.param));
        label += "_s";
        label += std::to_string(std::get<1>(param_info.param));
        return label;
    });

TEST(StructuredRoundTrip, AllBuildersSurviveSerialization) {
    for (const TaskGraph& original :
         {fft_task_graph(3), gaussian_elimination_task_graph(5), pipeline_task_graph(4, 3)}) {
        std::stringstream buffer;
        write_task_graph(buffer, original);
        const TaskGraph reloaded = read_task_graph(buffer);
        EXPECT_EQ(reloaded.name(), original.name());
        expect_behaviourally_equal(original, reloaded);
    }
}

TEST(StructuredRoundTrip, DoubleRoundTripIsStable) {
    // write(read(write(g))) == write(g): the format has one canonical
    // rendering per graph.
    const TaskGraph graph = gaussian_elimination_task_graph(4);
    std::stringstream first;
    write_task_graph(first, graph);
    const std::string once = first.str();
    std::stringstream input(once);
    const TaskGraph reloaded = read_task_graph(input);
    std::stringstream second;
    write_task_graph(second, reloaded);
    EXPECT_EQ(once, second.str());
}

} // namespace
} // namespace seamap
