// Property-based invariants of the evaluation pipeline, in the spirit
// of analysis-level reliability checks (BEC; soft-error tolerance
// analysis): whatever the graph, mapping and scaling, a schedule's
// makespan can never beat the critical path, SEU estimates are
// non-negative and monotone in exposure, and the Pareto front is
// invariant under the order candidates were evaluated in.
#include "seamap/seamap.h"

#include "taskgraph/fig8.h"
#include "tgff/random_graph.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace seamap {
namespace {

Mapping random_mapping(const TaskGraph& graph, std::size_t cores, Rng& rng) {
    Mapping mapping(graph.task_count(), cores);
    for (TaskId t = 0; t < graph.task_count(); ++t)
        mapping.assign(t, static_cast<CoreId>(rng.uniform_int(
                              0, static_cast<std::int64_t>(cores) - 1)));
    return mapping;
}

ScalingVector random_scaling(std::size_t cores, std::size_t levels, Rng& rng) {
    ScalingVector scaling(cores);
    for (std::size_t c = 0; c < cores; ++c)
        scaling[c] = static_cast<ScalingLevel>(
            rng.uniform_int(1, static_cast<std::int64_t>(levels)));
    return scaling;
}

TEST(EvalInvariants, MakespanNeverBelowCriticalPathOrLowerBound) {
    Rng rng(101);
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        TgffParams params;
        params.task_count = 24;
        const TaskGraph graph = generate_tgff_graph(params, seed);
        const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
        const ListScheduler scheduler;
        for (int trial = 0; trial < 12; ++trial) {
            const ScalingVector levels = random_scaling(4, 3, rng);
            const Mapping mapping = random_mapping(graph, 4, rng);
            const Schedule schedule = scheduler.schedule(graph, mapping, arch, levels);

            double fastest = 0.0;
            for (std::size_t c = 0; c < 4; ++c)
                fastest = std::max(fastest, arch.frequency_hz(levels[c]));
            const double batches = static_cast<double>(graph.batch_count());
            const double critical_path_seconds =
                static_cast<double>(graph.critical_path_cycles(false)) / batches / fastest;
            EXPECT_GE(schedule.latency_seconds * (1.0 + 1e-9), critical_path_seconds);
            // T_M of any concrete design is bounded below by the
            // mapping-independent lower bound the DSE gate uses.
            EXPECT_GE(schedule.total_time_seconds * (1.0 + 1e-9),
                      tm_lower_bound_seconds(graph, arch, levels));
            // ... and the pipelined completion time is never shorter
            // than the single-iteration latency.
            EXPECT_GE(schedule.total_time_seconds * (1.0 + 1e-9), schedule.latency_seconds);
        }
    }
}

TEST(EvalInvariants, SeuRateNonNegativeAndMonotoneInExposure) {
    Rng rng(202);
    TgffParams params;
    params.task_count = 20;
    const TaskGraph graph = generate_tgff_graph(params, 5);
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const SeuEstimator estimator{SerModel{}};
    const SeuEstimator busy_estimator{SerModel{}, ExposurePolicy::busy_only};
    const ListScheduler scheduler;
    for (int trial = 0; trial < 10; ++trial) {
        const ScalingVector levels = random_scaling(4, 3, rng);
        const Mapping mapping = random_mapping(graph, 4, rng);
        const Schedule schedule = scheduler.schedule(graph, mapping, arch, levels);

        const SeuBreakdown full = estimator.estimate(graph, mapping, arch, levels, schedule);
        const SeuBreakdown busy =
            busy_estimator.estimate(graph, mapping, arch, levels, schedule);
        EXPECT_GE(full.total, 0.0);
        EXPECT_GE(busy.total, 0.0);
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_GE(full.per_core[c], 0.0);
            // A core is never exposed longer than the whole run, so
            // busy-only exposure can only lower its Gamma.
            EXPECT_LE(busy.per_core[c], full.per_core[c] * (1.0 + 1e-9));
        }
        // core_gamma is monotone in exposure for any state size/Vdd.
        const double vdd = arch.scaling_table().vdd(levels[0]);
        double previous = -1.0;
        for (double exposure : {0.0, 1e-6, 1e-3, 1.0, 10.0}) {
            const double gamma = estimator.core_gamma(1000, exposure, vdd);
            EXPECT_GE(gamma, 0.0);
            EXPECT_GE(gamma, previous);
            previous = gamma;
        }
    }
}

TEST(EvalInvariants, ParetoFrontInvariantUnderEvaluationOrderShuffles) {
    // Real feasible points from a small exploration ...
    const Problem problem = ProblemBuilder()
                                .graph(fig8_example_graph())
                                .architecture(3, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(k_fig8_deadline_seconds)
                                .build();
    ExploreOptions options;
    options.dse.search.max_iterations = 300;
    const DseResult result = explore(problem, options);
    ASSERT_GT(result.feasible_points.size(), 2u);

    std::vector<DsePoint> points = result.feasible_points;
    const std::vector<DsePoint> reference = pareto_front_of(points);
    Rng rng(303);
    for (int shuffle = 0; shuffle < 8; ++shuffle) {
        for (std::size_t i = points.size(); i > 1; --i)
            std::swap(points[i - 1],
                      points[static_cast<std::size_t>(
                          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
        const std::vector<DsePoint> front = pareto_front_of(points);
        ASSERT_EQ(front.size(), reference.size());
        for (std::size_t i = 0; i < front.size(); ++i) {
            EXPECT_EQ(front[i].metrics.power_mw, reference[i].metrics.power_mw);
            EXPECT_EQ(front[i].metrics.gamma, reference[i].metrics.gamma);
            EXPECT_EQ(front[i].levels, reference[i].levels);
            EXPECT_EQ(front[i].mapping, reference[i].mapping);
        }
    }
}

} // namespace
} // namespace seamap
