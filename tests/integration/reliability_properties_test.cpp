// Property-based invariants tying the reliability stack together:
// analytic Gamma (eq. 3) == expected value of the Poisson injector,
// register-usage monotonicity, and the Section III trade-off existing
// on real workloads.
#include "core/initial_mapping.h"
#include "reliability/design_eval.h"
#include "reliability/register_usage.h"
#include "sim/fault_injection.h"
#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <tuple>

namespace seamap {
namespace {

Mapping random_mapping(const TaskGraph& graph, std::size_t cores, Rng& rng) {
    Mapping mapping(graph.task_count(), cores);
    for (TaskId t = 0; t < graph.task_count(); ++t)
        mapping.assign(t, static_cast<CoreId>(
                              rng.uniform_int(0, static_cast<std::int64_t>(cores) - 1)));
    return mapping;
}

class ReliabilityProperties
    : public testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(ReliabilityProperties, AnalyticGammaEqualsInjectorExpectation) {
    const auto [task_count, seed] = GetParam();
    TgffParams params;
    params.task_count = task_count;
    const TaskGraph graph = generate_tgff_graph(params, seed);
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    Rng rng(seed + 5);
    const Mapping mapping = random_mapping(graph, 3, rng);
    const ScalingVector levels = {1, 2, 3};
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);

    for (const auto policy : {ExposurePolicy::full_duration, ExposurePolicy::busy_only}) {
        const SeuEstimator estimator{SerModel{}, policy};
        const double analytic =
            estimator.estimate(graph, mapping, arch, levels, schedule).total;
        const FaultInjector injector(SerModel{}, to_sim_policy(policy));
        const auto campaign =
            injector.run_campaign(graph, mapping, arch, levels, schedule, 1, seed);
        // The campaign's analytic reference must equal the estimator's
        // value bit-for-bit in double precision terms.
        EXPECT_NEAR(campaign.analytic_gamma, analytic, analytic * 1e-9);
    }
}

TEST_P(ReliabilityProperties, SpreadingNeverReducesTotalRegisterBits) {
    const auto [task_count, seed] = GetParam();
    TgffParams params;
    params.task_count = task_count;
    const TaskGraph graph = generate_tgff_graph(params, seed);
    Rng rng(seed + 99);
    // Take a random mapping and split one multi-task core in two; the
    // total register usage must not shrink (eq. 8 union semantics).
    const std::size_t cores = 4;
    Mapping mapping = random_mapping(graph, cores, rng);
    const std::uint64_t before = total_register_bits(graph, mapping, cores);

    // Move every other task of core 0 to core 3's tail.
    const auto tasks = mapping.tasks_on(0);
    for (std::size_t i = 0; i < tasks.size(); i += 2) mapping.assign(tasks[i], 3);
    Mapping merged = mapping;
    for (TaskId t = 0; t < graph.task_count(); ++t)
        if (merged.core_of(t) == 3) merged.assign(t, 0);
    // merged co-locates everything from cores 0 and 3 again.
    EXPECT_LE(total_register_bits(graph, merged, cores),
              total_register_bits(graph, mapping, cores) + 0u);
    (void)before;
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, ReliabilityProperties,
    testing::Combine(testing::Values<std::size_t>(10, 25, 60),
                     testing::Values<std::uint64_t>(3, 8, 21)),
    [](const testing::TestParamInfo<ReliabilityProperties::ParamType>& param_info) {
        std::string label; label += "n"; label += std::to_string(std::get<0>(param_info.param)); label += "_s"; label += std::to_string(std::get<1>(param_info.param)); return label;
    });

TEST(ReliabilityTradeoff, Mpeg2LocalizeVsDistributeTension) {
    // Section III, Observation 1: the localized mapping minimizes R but
    // maximizes T_M; the distributed mapping does the reverse.
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels = {1, 1, 1, 1};

    const Mapping localized = single_core_mapping(graph, 4);
    const Mapping distributed = round_robin_mapping(graph, 4);
    const Schedule s_loc = ListScheduler{}.schedule(graph, localized, arch, levels);
    const Schedule s_dist = ListScheduler{}.schedule(graph, distributed, arch, levels);

    EXPECT_LT(total_register_bits(graph, localized, 4),
              total_register_bits(graph, distributed, 4));
    EXPECT_GT(s_loc.total_time_seconds, s_dist.total_time_seconds);
}

TEST(ReliabilityTradeoff, GammaIsNotMinimizedAtEitherExtreme) {
    // Section III, Observation 2: the minimum-Gamma mapping lies
    // strictly between full localization and full distribution. We
    // check that the greedy stage-1 mapping (a middle-ground design)
    // beats at least one of the two extremes, and that the extremes
    // do not jointly dominate.
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels = {1, 1, 1, 1};
    const EvaluationContext ctx{graph, arch, levels, SeuEstimator{SerModel{}},
                                mpeg2_deadline_seconds()};

    const double gamma_localized =
        evaluate_design(ctx, single_core_mapping(graph, 4)).gamma;
    const double gamma_distributed =
        evaluate_design(ctx, round_robin_mapping(graph, 4)).gamma;
    const double gamma_greedy = evaluate_design(ctx, initial_sea_mapping(ctx)).gamma;

    EXPECT_LT(gamma_greedy, std::max(gamma_localized, gamma_distributed));
}

TEST(ReliabilityTradeoff, VoltageScalingRaisesGammaForFixedMapping) {
    // Fig. 3(b) vs (c): scaling the same design down raises Gamma.
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 4);
    const SeuEstimator estimator{SerModel{}};
    double previous = 0.0;
    for (const ScalingLevel level : {ScalingLevel{1}, ScalingLevel{2}, ScalingLevel{3}}) {
        const ScalingVector levels(4, level);
        const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
        const double gamma =
            estimator.estimate(graph, mapping, arch, levels, schedule).total;
        EXPECT_GT(gamma, previous);
        previous = gamma;
    }
}

} // namespace
} // namespace seamap
