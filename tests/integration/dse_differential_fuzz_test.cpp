// Randomized differential harness for the explorer: every seed builds
// a small random Problem and pins the lazy bound-sorted enumeration
// against its naive references —
//   - prune on vs off: `best` / `pareto_front` byte-identical JSON,
//   - 1 vs 2 vs 8 worker threads: the ENTIRE result bit-identical
//     within each mode,
//   - SoA fast eval vs the naive_reference eval path: the entire
//     exhaustive result bit-identical,
//   - counter algebra: searched + pruned == exhaustive searched,
//     searched <= emitted <= searched + pruned.
// The failing seed is printed via SCOPED_TRACE so any report is
// immediately replayable; seeds that ever exposed a defect (or cover
// degenerate shapes randomness rarely hits) live in the pinned
// regression corpus below, replayed before the random sweep.
#include "seamap/seamap.h"

#include "sched/list_scheduler.h"
#include "tgff/random_graph.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace seamap {
namespace {

/// Degenerate or once-troublesome shapes, replayed first on every run.
/// Append the seed whenever a fuzz failure is fixed so it can never
/// regress silently.
constexpr std::uint64_t k_regression_seeds[] = {
    0,   // smallest everything the generator can produce
    1,   // single-batch, near-square graph
    42,  // deep ladder + tight deadline
    977, // heavy communication relative to computation
};

constexpr int k_random_seeds = 200;

std::string best_json(const DseResult& result) {
    return result.best ? to_json(*result.best).dump() : "null";
}

std::string front_json(const DseResult& result) {
    JsonValue front = JsonValue::array();
    for (const DsePoint& point : result.pareto_front) front.push_back(to_json(point));
    return front.dump();
}

void expect_point_identical(const DsePoint& a, const DsePoint& b) {
    EXPECT_EQ(a.levels, b.levels);
    EXPECT_EQ(a.mapping, b.mapping);
    EXPECT_EQ(a.metrics.tm_seconds, b.metrics.tm_seconds);
    EXPECT_EQ(a.metrics.gamma, b.metrics.gamma);
    EXPECT_EQ(a.metrics.power_mw, b.metrics.power_mw);
}

void expect_result_identical(const DseResult& a, const DseResult& b) {
    EXPECT_EQ(a.scalings_total, b.scalings_total);
    EXPECT_EQ(a.scalings_enumerated, b.scalings_enumerated);
    EXPECT_EQ(a.scalings_skipped_infeasible, b.scalings_skipped_infeasible);
    EXPECT_EQ(a.scalings_emitted, b.scalings_emitted);
    EXPECT_EQ(a.scalings_pruned, b.scalings_pruned);
    EXPECT_EQ(a.scalings_searched, b.scalings_searched);
    ASSERT_EQ(a.feasible_points.size(), b.feasible_points.size());
    for (std::size_t i = 0; i < a.feasible_points.size(); ++i)
        expect_point_identical(a.feasible_points[i], b.feasible_points[i]);
    ASSERT_EQ(a.pareto_front.size(), b.pareto_front.size());
    for (std::size_t i = 0; i < a.pareto_front.size(); ++i)
        expect_point_identical(a.pareto_front[i], b.pareto_front[i]);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) expect_point_identical(*a.best, *b.best);
}

/// Seed -> small random Problem covering the generator's whole knob
/// space: graph shape, communication weight, register sharing,
/// batching, DVS ladder depth/steepness, power/SER regime, deadline
/// slack. Pure function of the seed.
Problem random_problem(std::uint64_t seed) {
    Rng rng(splitmix64(seed ^ 0x5eedf00dULL));
    TgffParams tgff;
    tgff.task_count = 6 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    tgff.comm_cost_max = 1 + static_cast<std::uint32_t>(rng.uniform_int(0, 5));
    tgff.output_buffer_fraction = 0.25 * static_cast<double>(rng.uniform_int(0, 3));
    tgff.batch_count = std::uint64_t{1} << (4 * rng.uniform_int(0, 2)); // 1 / 16 / 256
    tgff.name = "fuzz_" + std::to_string(seed);
    TaskGraph graph = generate_tgff_graph(tgff, splitmix64(seed));

    const std::size_t cores = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const std::size_t levels = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    std::vector<double> f_mhz;
    double f = 200.0;
    for (std::size_t i = 0; i < levels; ++i, f *= rng.uniform(0.4, 0.8)) f_mhz.push_back(f);

    PowerParams power;
    power.idle_activity = rng.uniform(0.1, 0.9);
    SerParams ser;
    ser.voltage_exponent_k = rng.uniform(0.1, 3.0);
    MpsocArchitecture arch(cores, VoltageScalingTable::from_frequencies(f_mhz), power);
    const double deadline = rng.uniform(1.1, 2.5) *
                            tm_lower_bound_seconds(graph, arch, ScalingVector(cores, 1));
    return ProblemBuilder()
        .graph(std::move(graph))
        .architecture(std::move(arch))
        .deadline_seconds(deadline)
        .ser_model(SerModel{ser})
        .build();
}

DseResult run(const Problem& problem, bool prune, std::size_t threads, bool naive,
              std::uint64_t seed) {
    ExploreOptions options;
    options.dse.prune = prune;
    options.dse.num_threads = threads;
    options.dse.search.max_iterations = 40;
    options.dse.search.seed = splitmix64(seed + 0x9e37ULL);
    options.dse.eval.naive_reference = naive;
    return explore(problem, options);
}

/// The full differential contract for one seed.
void check_seed(std::uint64_t seed) {
    SCOPED_TRACE("fuzz seed=" + std::to_string(seed) +
                 " (replay: random_problem(" + std::to_string(seed) + "))");
    const Problem problem = random_problem(seed);

    const DseResult exhaustive = run(problem, false, 1, false, seed);
    const DseResult pruned = run(problem, true, 1, false, seed);

    // Lazy enumeration + pruning never change the paper's outputs.
    EXPECT_EQ(best_json(pruned), best_json(exhaustive));
    EXPECT_EQ(front_json(pruned), front_json(exhaustive));

    // Counter algebra of the lazy queue's disposal + worker pruning.
    EXPECT_EQ(exhaustive.scalings_pruned, 0u);
    EXPECT_EQ(exhaustive.scalings_emitted, exhaustive.scalings_searched);
    EXPECT_EQ(pruned.scalings_searched + pruned.scalings_pruned,
              exhaustive.scalings_searched);
    EXPECT_LE(pruned.scalings_searched, pruned.scalings_emitted);
    EXPECT_LE(pruned.scalings_emitted, pruned.scalings_searched + pruned.scalings_pruned);
    EXPECT_EQ(pruned.scalings_skipped_infeasible, exhaustive.scalings_skipped_infeasible);

    // Thread-count invariance is bit-exact for the whole result, in
    // both modes.
    for (const std::size_t threads : {2, 8}) {
        expect_result_identical(exhaustive, run(problem, false, threads, false, seed));
        expect_result_identical(pruned, run(problem, true, threads, false, seed));
    }

    // The SoA fast eval path and the naive reference must agree on the
    // whole exhaustive result, bit for bit.
    expect_result_identical(exhaustive, run(problem, false, 1, true, seed));
}

TEST(DseDifferentialFuzz, RegressionCorpusReplays) {
    for (const std::uint64_t seed : k_regression_seeds) check_seed(seed);
}

TEST(DseDifferentialFuzz, RandomProblemsAgreeAcrossModesThreadsAndEvalPaths) {
    for (int i = 0; i < k_random_seeds; ++i) check_seed(1000 + static_cast<std::uint64_t>(i));
}

} // namespace
} // namespace seamap
