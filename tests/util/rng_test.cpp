#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

// fork() is deprecated in favour of fork_at(), but its historical
// stream contract must keep holding for as long as the function
// exists — these are the only call sites allowed to exercise it.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace seamap {
namespace {

TEST(Splitmix64, MatchesReferenceVectors) {
    // First output of the public-domain splitmix64 reference stream
    // when seeded with 0 and 1 respectively.
    EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
    // Regression pin for seed 2 (computed with this implementation,
    // which the two reference vectors above validate).
    EXPECT_EQ(splitmix64(2), 0x975835de1c9756ceULL);
}

TEST(Rng, SameSeedSameSequence) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, ConsecutiveSmallSeedsDecorrelated) {
    // Seeds 0 and 1 must not produce near-identical streams (seed mixing).
    Rng a(0), b(1);
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const double x = rng.uniform();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformRangeRespected) {
    Rng rng(7);
    for (int i = 0; i < 1'000; ++i) {
        const double x = rng.uniform(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformInvalidRangeThrows) {
    Rng rng(7);
    EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIntCoversClosedRange) {
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2'000; ++i) {
        const std::int64_t x = rng.uniform_int(1, 6);
        EXPECT_GE(x, 1);
        EXPECT_LE(x, 6);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 6u); // all faces of the die appear
}

TEST(Rng, UniformIntDegenerateRange) {
    Rng rng(3);
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialMeanApproximate) {
    Rng rng(13);
    double sum = 0.0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialRequiresPositiveMean) {
    Rng rng(13);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
    EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, PoissonZeroMeanIsZero) {
    Rng rng(17);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonRejectsBadMean) {
    Rng rng(17);
    EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
    EXPECT_THROW(rng.poisson(std::numeric_limits<double>::infinity()), std::invalid_argument);
}

TEST(Rng, PoissonMeanAndVarianceApproximate) {
    Rng rng(19);
    const double mean = 100.0;
    const int n = 20'000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = static_cast<double>(rng.poisson(mean));
        sum += x;
        sum_sq += x * x;
    }
    const double sample_mean = sum / n;
    const double sample_var = sum_sq / n - sample_mean * sample_mean;
    EXPECT_NEAR(sample_mean, mean, 0.5);      // ~7 sigma of the mean estimator
    EXPECT_NEAR(sample_var, mean, mean * 0.1);
}

TEST(Rng, PoissonHugeMeanUsesNormalApproximation) {
    Rng rng(23);
    const double mean = 1e12;
    const double draw = static_cast<double>(rng.poisson(mean));
    // Within 10 standard deviations (sigma = 1e6).
    EXPECT_NEAR(draw, mean, 1e7);
}

TEST(Rng, NormalMomentsApproximate) {
    Rng rng(29);
    const int n = 50'000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ForkedStreamsAreIndependent) {
    Rng parent(101);
    Rng child_a = parent.fork(0);
    Rng child_b = parent.fork(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (child_a.next_u64() == child_b.next_u64()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministicGivenParentState) {
    Rng parent_a(55), parent_b(55);
    Rng child_a = parent_a.fork(7);
    Rng child_b = parent_b.fork(7);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(Rng, SeedAccessorReturnsOriginalSeed) {
    Rng rng(12345);
    EXPECT_EQ(rng.seed(), 12345u);
}

TEST(Rng, ForkAtIsOrderInvariant) {
    // fork() depends on the parent's draw position; fork_at() must not.
    // A fresh parent and one that has drawn, forked, and forked_at in
    // arbitrary order must hand out identical fork_at children.
    Rng pristine(101);
    Rng busy(101);
    for (int i = 0; i < 37; ++i) busy.next_u64();
    (void)busy.fork(3);
    (void)busy.fork_at(9);
    (void)busy.poisson(42.0);
    Rng child_a = pristine.fork_at(7);
    Rng child_b = busy.fork_at(7);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(Rng, ForkAtIsConstAndRepeatable) {
    const Rng parent(55);
    Rng first = parent.fork_at(4);
    Rng second = parent.fork_at(4);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(first.next_u64(), second.next_u64());
}

TEST(Rng, ForkAtChildrenAreIndependent) {
    const Rng parent(202);
    Rng child_a = parent.fork_at(0);
    Rng child_b = parent.fork_at(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (child_a.next_u64() == child_b.next_u64()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, ForkAtDistinctFromParentAndFork) {
    Rng parent(303);
    Rng via_fork_at = parent.fork_at(0);
    Rng via_fork = parent.fork(0);
    Rng same_seed(303);
    EXPECT_NE(via_fork_at.next_u64(), via_fork.next_u64());
    Rng again = same_seed.fork_at(0);
    EXPECT_NE(again.next_u64(), same_seed.next_u64());
}

TEST(Rng, ForkAtDiffersAcrossSeeds) {
    const Rng a(1), b(2);
    Rng child_a = a.fork_at(5);
    Rng child_b = b.fork_at(5);
    EXPECT_NE(child_a.next_u64(), child_b.next_u64());
}

// --- Poisson behaviour at the 2^31 normal-approximation cutover ---

constexpr double k_poisson_cutover = static_cast<double>(1LL << 31);

TEST(Rng, PoissonDeterministicOnBothSidesOfCutover) {
    const double below = k_poisson_cutover * 0.5;
    const double above = k_poisson_cutover * 2.0;
    Rng a(404), b(404);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(a.poisson(below), b.poisson(below));
    for (int i = 0; i < 8; ++i) EXPECT_EQ(a.poisson(above), b.poisson(above));
}

TEST(Rng, PoissonMeanContinuousAcrossCutover) {
    // The exact branch just below the cutover and the normal branch just
    // at it target means one count apart; the sample means must agree
    // within the joint sampling error (sigma ~ sqrt(mean) ~ 46341, so
    // stderr with n=400 is ~2.3e3 per side; allow 5 joint sigma).
    const double below = k_poisson_cutover - 1.0;
    const double above = k_poisson_cutover;
    const int n = 400;
    Rng rng(505);
    double sum_below = 0.0, sum_above = 0.0;
    for (int i = 0; i < n; ++i) sum_below += static_cast<double>(rng.poisson(below));
    for (int i = 0; i < n; ++i) sum_above += static_cast<double>(rng.poisson(above));
    const double mean_below = sum_below / n;
    const double mean_above = sum_above / n;
    const double joint_sigma = std::sqrt(2.0 * k_poisson_cutover / n);
    EXPECT_NEAR(mean_above - mean_below, 1.0, 5.0 * joint_sigma);
    // And each side is individually where it should be.
    EXPECT_NEAR(mean_below, below, 5.0 * std::sqrt(below / n));
    EXPECT_NEAR(mean_above, above, 5.0 * std::sqrt(above / n));
}

TEST(Rng, PoissonDrawsStayNearMeanAtCutover) {
    Rng rng(606);
    for (const double mean : {k_poisson_cutover - 1.0, k_poisson_cutover}) {
        for (int i = 0; i < 16; ++i) {
            const double draw = static_cast<double>(rng.poisson(mean));
            EXPECT_NEAR(draw, mean, 10.0 * std::sqrt(mean));
        }
    }
}

TEST(PoissonFromNormal, ClampsNegativeDrawsToZero) {
    // A z of -10^5 sigma drags the draw far below zero for any huge
    // mean; the mapping must clamp instead of wrapping through the
    // signed->unsigned cast.
    EXPECT_EQ(poisson_from_normal(4.0, -1e5), 0u);
    EXPECT_EQ(poisson_from_normal(k_poisson_cutover, -1e9), 0u);
    EXPECT_EQ(poisson_from_normal(0.0, -1.0), 0u);
}

TEST(PoissonFromNormal, RoundsToNearestCount) {
    EXPECT_EQ(poisson_from_normal(100.0, 0.0), 100u);
    // 100 + 10 * 0.04 = 100.4 -> 100; 100 + 10 * 0.06 = 100.6 -> 101.
    EXPECT_EQ(poisson_from_normal(100.0, 0.04), 100u);
    EXPECT_EQ(poisson_from_normal(100.0, 0.06), 101u);
}

TEST(PoissonFromNormal, MatchesEngineAboveCutover) {
    // Above the cutover, poisson() must be exactly poisson_from_normal
    // over the engine's next standard-normal draw.
    const double mean = k_poisson_cutover * 4.0;
    Rng a(707), b(707);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(a.poisson(mean), poisson_from_normal(mean, b.normal()));
}

} // namespace
} // namespace seamap
