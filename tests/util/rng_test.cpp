#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace seamap {
namespace {

TEST(Splitmix64, MatchesReferenceVectors) {
    // First output of the public-domain splitmix64 reference stream
    // when seeded with 0 and 1 respectively.
    EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
    // Regression pin for seed 2 (computed with this implementation,
    // which the two reference vectors above validate).
    EXPECT_EQ(splitmix64(2), 0x975835de1c9756ceULL);
}

TEST(Rng, SameSeedSameSequence) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, ConsecutiveSmallSeedsDecorrelated) {
    // Seeds 0 and 1 must not produce near-identical streams (seed mixing).
    Rng a(0), b(1);
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const double x = rng.uniform();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformRangeRespected) {
    Rng rng(7);
    for (int i = 0; i < 1'000; ++i) {
        const double x = rng.uniform(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformInvalidRangeThrows) {
    Rng rng(7);
    EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIntCoversClosedRange) {
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2'000; ++i) {
        const std::int64_t x = rng.uniform_int(1, 6);
        EXPECT_GE(x, 1);
        EXPECT_LE(x, 6);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 6u); // all faces of the die appear
}

TEST(Rng, UniformIntDegenerateRange) {
    Rng rng(3);
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialMeanApproximate) {
    Rng rng(13);
    double sum = 0.0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialRequiresPositiveMean) {
    Rng rng(13);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
    EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, PoissonZeroMeanIsZero) {
    Rng rng(17);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonRejectsBadMean) {
    Rng rng(17);
    EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
    EXPECT_THROW(rng.poisson(std::numeric_limits<double>::infinity()), std::invalid_argument);
}

TEST(Rng, PoissonMeanAndVarianceApproximate) {
    Rng rng(19);
    const double mean = 100.0;
    const int n = 20'000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = static_cast<double>(rng.poisson(mean));
        sum += x;
        sum_sq += x * x;
    }
    const double sample_mean = sum / n;
    const double sample_var = sum_sq / n - sample_mean * sample_mean;
    EXPECT_NEAR(sample_mean, mean, 0.5);      // ~7 sigma of the mean estimator
    EXPECT_NEAR(sample_var, mean, mean * 0.1);
}

TEST(Rng, PoissonHugeMeanUsesNormalApproximation) {
    Rng rng(23);
    const double mean = 1e12;
    const double draw = static_cast<double>(rng.poisson(mean));
    // Within 10 standard deviations (sigma = 1e6).
    EXPECT_NEAR(draw, mean, 1e7);
}

TEST(Rng, NormalMomentsApproximate) {
    Rng rng(29);
    const int n = 50'000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ForkedStreamsAreIndependent) {
    Rng parent(101);
    Rng child_a = parent.fork(0);
    Rng child_b = parent.fork(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (child_a.next_u64() == child_b.next_u64()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministicGivenParentState) {
    Rng parent_a(55), parent_b(55);
    Rng child_a = parent_a.fork(7);
    Rng child_b = parent_b.fork(7);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(Rng, SeedAccessorReturnsOriginalSeed) {
    Rng rng(12345);
    EXPECT_EQ(rng.seed(), 12345u);
}

} // namespace
} // namespace seamap
