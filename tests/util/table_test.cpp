#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace seamap {
namespace {

TEST(Format, FmtDouble) {
    EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
    EXPECT_EQ(fmt_double(2.0, 0), "2");
    EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

TEST(Format, FmtSci) {
    EXPECT_EQ(fmt_sci(123456.0, 2), "1.23e+05");
    EXPECT_EQ(fmt_sci(0.00123, 1), "1.2e-03");
}

TEST(Format, FmtPercent) {
    EXPECT_EQ(fmt_percent(12.34, 1), "+12.3%");
    EXPECT_EQ(fmt_percent(-5.0, 1), "-5.0%");
}

TEST(Format, FmtGrouped) {
    EXPECT_EQ(fmt_grouped(0), "0");
    EXPECT_EQ(fmt_grouped(999), "999");
    EXPECT_EQ(fmt_grouped(1000), "1,000");
    EXPECT_EQ(fmt_grouped(1234567), "1,234,567");
    EXPECT_EQ(fmt_grouped(12345678901ULL), "12,345,678,901");
}

TEST(TableWriter, RejectsEmptyHeaderAndBadRows) {
    EXPECT_THROW(TableWriter({}), std::invalid_argument);
    TableWriter table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TableWriter, TextAlignsColumns) {
    TableWriter table({"core", "power"});
    table.add_row({"0", "12.5"});
    table.add_row({"11", "3"});
    std::ostringstream os;
    table.print_text(os);
    const std::string out = os.str();
    // Header, underline and two data rows.
    EXPECT_NE(out.find("core  power"), std::string::npos);
    EXPECT_NE(out.find("----  -----"), std::string::npos);
    EXPECT_NE(out.find("0     12.5"), std::string::npos);
    EXPECT_NE(out.find("11    3"), std::string::npos);
}

TEST(TableWriter, CsvEscapesSpecials) {
    TableWriter table({"name", "note"});
    table.add_row({"plain", "a,b"});
    table.add_row({"quoted", "say \"hi\""});
    std::ostringstream os;
    table.print_csv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("plain,\"a,b\""), std::string::npos);
    EXPECT_NE(out.find("quoted,\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableWriter, MarkdownShape) {
    TableWriter table({"x", "y"});
    table.add_row({"1", "2"});
    std::ostringstream os;
    table.print_markdown(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| x | y |"), std::string::npos);
    EXPECT_NE(out.find("|---|---|"), std::string::npos);
    EXPECT_NE(out.find("| 1 | 2 |"), std::string::npos);
}

TEST(TableWriter, Counts) {
    TableWriter table({"a", "b", "c"});
    EXPECT_EQ(table.column_count(), 3u);
    EXPECT_EQ(table.row_count(), 0u);
    table.add_row({"1", "2", "3"});
    EXPECT_EQ(table.row_count(), 1u);
}

} // namespace
} // namespace seamap
