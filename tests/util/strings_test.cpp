#include "util/strings.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

TEST(Split, Basic) {
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, ConsecutiveDelimitersYieldEmptyFields) {
    const auto parts = split("a,,c,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiter) {
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, StripsWhitespace) {
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("\t\nxy\r "), "xy");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("a"), "a");
}

TEST(Join, Basic) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(ParseU64, ValidInputs) {
    EXPECT_EQ(parse_u64("0"), 0u);
    EXPECT_EQ(parse_u64("1234567890123"), 1234567890123ULL);
    EXPECT_EQ(parse_u64("  42  "), 42u);
}

TEST(ParseU64, RejectsJunk) {
    EXPECT_THROW(parse_u64(""), std::invalid_argument);
    EXPECT_THROW(parse_u64("abc"), std::invalid_argument);
    EXPECT_THROW(parse_u64("12x"), std::invalid_argument);
    EXPECT_THROW(parse_u64("-5"), std::invalid_argument);
    EXPECT_THROW(parse_u64("1.5"), std::invalid_argument);
}

TEST(ParseDouble, ValidInputs) {
    EXPECT_DOUBLE_EQ(parse_double("3.14"), 3.14);
    EXPECT_DOUBLE_EQ(parse_double("-2e3"), -2000.0);
    EXPECT_DOUBLE_EQ(parse_double(" 1 "), 1.0);
}

TEST(ParseDouble, RejectsJunk) {
    EXPECT_THROW(parse_double(""), std::invalid_argument);
    EXPECT_THROW(parse_double("zz"), std::invalid_argument);
    EXPECT_THROW(parse_double("1.5abc"), std::invalid_argument);
}

} // namespace
} // namespace seamap
