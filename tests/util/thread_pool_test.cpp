// ThreadPool contract beyond the parallel_for coverage in
// tests/core/dse_parallel_test.cpp: the future-returning submit_task
// surfaces results *and exceptions* through the future — a throwing
// task must neither wedge wait_idle() nor kill its worker thread — and
// the "0 means hardware" thread-count rule is resolved in one place.
#include "util/thread_pool.h"

#include <atomic>
#include <future>
#include <gtest/gtest.h>
#include <stdexcept>
#include <vector>

namespace seamap {
namespace {

TEST(ThreadPool, SubmitTaskDeliversTheResult) {
    ThreadPool pool(2);
    std::future<int> sum = pool.submit_task([] { return 19 + 23; });
    EXPECT_EQ(sum.get(), 42);
    std::future<void> side_effect = pool.submit_task([] {});
    EXPECT_NO_THROW(side_effect.get());
}

TEST(ThreadPool, ThrowingTaskSurfacesViaTheFuture) {
    ThreadPool pool(2);
    std::future<int> doomed =
        pool.submit_task([]() -> int { throw std::runtime_error("boom"); });
    try {
        (void)doomed.get();
        FAIL() << "the task's exception should have come through the future";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

TEST(ThreadPool, ThrowingTaskDoesNotWedgeOrKillWorkers) {
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    futures.push_back(
        pool.submit_task([]() -> int { throw std::runtime_error("first"); }));
    // Work submitted *after* the throwing task still runs to completion
    // on the same workers...
    std::atomic<int> executed{0};
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit_task([i, &executed]() -> int {
            ++executed;
            return i;
        }));
    // ...and wait_idle() returns normally: the exception was consumed
    // by the packaged task, not left for the pool to rethrow.
    EXPECT_NO_THROW(pool.wait_idle());
    EXPECT_EQ(executed.load(), 64);
    EXPECT_THROW((void)futures[0].get(), std::runtime_error);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i) + 1].get(), i);
}

TEST(ThreadPool, PlainSubmitStillReportsThroughWaitIdle) {
    // The non-future path keeps its old contract: wait_idle() rethrows
    // the first captured exception.
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("plain"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // The pool remains usable after the rethrow.
    std::future<int> after = pool.submit_task([] { return 7; });
    EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPool, PrioritySubmissionRunsLowestValueFirst) {
    // One worker, blocked on a gate job while jobs with shuffled
    // priorities queue up; after the gate opens they must run in
    // ascending priority order (FIFO among equal priorities).
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    pool.submit(0, [opened] { opened.wait(); });
    std::mutex order_mutex;
    std::vector<int> order;
    for (const int priority : {5, 3, 9, 1, 3}) {
        pool.submit(static_cast<std::uint64_t>(priority), [priority, &order, &order_mutex] {
            std::lock_guard lock(order_mutex);
            order.push_back(priority);
        });
    }
    gate.set_value();
    pool.wait_idle();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 3, 5, 9}));
}

TEST(ThreadPool, PlainSubmitKeepsFifoOrder) {
    // Default-priority jobs behave like the historical FIFO queue.
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    pool.submit([opened] { opened.wait(); });
    std::mutex order_mutex;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        pool.submit([i, &order, &order_mutex] {
            std::lock_guard lock(order_mutex);
            order.push_back(i);
        });
    gate.set_value();
    pool.wait_idle();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ThreadPool, ZeroResolvesToHardwareConcurrencyInOnePlace) {
    EXPECT_EQ(ThreadPool::resolve_thread_count(0), ThreadPool::hardware_threads());
    EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1u);
    EXPECT_EQ(ThreadPool::resolve_thread_count(5), 5u);
    EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

} // namespace
} // namespace seamap
