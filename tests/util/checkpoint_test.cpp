// The generic snapshot layer: atomic writes, the ".prev" rotation,
// tolerant loads over a corpus of damaged files, and strict identity
// checks. Everything here runs against real files in the test temp
// directory.
#include "util/checkpoint.h"

#include "util/error.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

namespace seamap {
namespace {

class CheckpointTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::path(testing::TempDir()) /
               ("checkpoint_test_" +
                std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        path_ = (dir_ / "snap.ckpt").string();
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    CheckpointData sample(std::uint64_t hash, const std::string& marker) const {
        CheckpointData data;
        data.kind = "dse";
        data.state_hash = hash;
        data.lines = {"alpha " + marker, "beta", "gamma 3"};
        return data;
    }

    std::string read_file() const {
        std::ifstream is(path_);
        return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
    }

    void write_file(const std::string& text) const {
        std::ofstream os(path_);
        os << text;
    }

    std::filesystem::path dir_;
    std::string path_;
};

TEST_F(CheckpointTest, RoundTrip) {
    save_checkpoint(path_, sample(0x1234, "one"));
    const auto loaded = load_checkpoint(path_, "dse", 0x1234);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_FALSE(loaded->from_fallback);
    EXPECT_EQ(loaded->data.kind, "dse");
    EXPECT_EQ(loaded->data.state_hash, 0x1234u);
    ASSERT_EQ(loaded->data.lines.size(), 3u);
    EXPECT_EQ(loaded->data.lines[0], "alpha one");
    EXPECT_EQ(loaded->data.lines[2], "gamma 3");
}

TEST_F(CheckpointTest, MissingFileIsNullopt) {
    EXPECT_FALSE(load_checkpoint(path_, "dse", 1).has_value());
}

TEST_F(CheckpointTest, NoStaleTmpAfterSave) {
    save_checkpoint(path_, sample(1, "x"));
    EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(CheckpointTest, SecondSaveRotatesPrev) {
    save_checkpoint(path_, sample(1, "first"));
    save_checkpoint(path_, sample(1, "second"));
    EXPECT_TRUE(std::filesystem::exists(path_ + ".prev"));
    const auto loaded = load_checkpoint(path_, "dse", 1);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->data.lines[0], "alpha second");
}

TEST_F(CheckpointTest, TruncatedPrimaryFallsBackToPrev) {
    save_checkpoint(path_, sample(1, "good"));
    save_checkpoint(path_, sample(1, "newer"));
    const std::string full = read_file();
    for (const std::size_t keep : {std::size_t{0}, std::size_t{10}, full.size() / 2,
                                   full.size() - 1}) {
        write_file(full.substr(0, keep));
        const auto loaded = load_checkpoint(path_, "dse", 1);
        ASSERT_TRUE(loaded.has_value()) << "keep=" << keep;
        EXPECT_TRUE(loaded->from_fallback) << "keep=" << keep;
        EXPECT_EQ(loaded->data.lines[0], "alpha good") << "keep=" << keep;
    }
}

TEST_F(CheckpointTest, BitFlipFailsChecksumAndFallsBack) {
    save_checkpoint(path_, sample(1, "good"));
    save_checkpoint(path_, sample(1, "newer"));
    std::string full = read_file();
    // Flip one payload byte; the envelope still parses, the checksum must not.
    const std::size_t pos = full.find("beta");
    ASSERT_NE(pos, std::string::npos);
    full[pos] = 'B';
    write_file(full);
    const auto loaded = load_checkpoint(path_, "dse", 1);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->from_fallback);
    EXPECT_EQ(loaded->data.lines[0], "alpha good");
}

TEST_F(CheckpointTest, BothCorruptRaisesCheckpointCorrupt) {
    save_checkpoint(path_, sample(1, "good"));
    save_checkpoint(path_, sample(1, "newer"));
    write_file("garbage\n");
    {
        std::ofstream os(path_ + ".prev");
        os << "more garbage\n";
    }
    try {
        (void)load_checkpoint(path_, "dse", 1);
        FAIL() << "expected checkpoint_corrupt";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::checkpoint_corrupt);
    }
}

TEST_F(CheckpointTest, EmptyFileWithoutPrevRaisesCorrupt) {
    write_file("");
    try {
        (void)load_checkpoint(path_, "dse", 1);
        FAIL() << "expected checkpoint_corrupt";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::checkpoint_corrupt);
    }
}

TEST_F(CheckpointTest, WrongHashIsMismatchNamingBothSides) {
    save_checkpoint(path_, sample(0xabcd, "x"));
    try {
        (void)load_checkpoint(path_, "dse", 0x9999);
        FAIL() << "expected checkpoint_mismatch";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::checkpoint_mismatch);
        const std::string what = e.what();
        EXPECT_NE(what.find(hex_of_u64(0xabcd)), std::string::npos) << what;
        EXPECT_NE(what.find(hex_of_u64(0x9999)), std::string::npos) << what;
    }
}

TEST_F(CheckpointTest, WrongKindIsMismatch) {
    save_checkpoint(path_, sample(1, "x"));
    try {
        (void)load_checkpoint(path_, "campaign", 1);
        FAIL() << "expected checkpoint_mismatch";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::checkpoint_mismatch);
    }
}

TEST_F(CheckpointTest, RemoveDeletesEverything) {
    save_checkpoint(path_, sample(1, "a"));
    save_checkpoint(path_, sample(1, "b"));
    remove_checkpoint(path_);
    EXPECT_FALSE(std::filesystem::exists(path_));
    EXPECT_FALSE(std::filesystem::exists(path_ + ".prev"));
    EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
    remove_checkpoint(path_); // idempotent
}

TEST(CheckpointHex, DoubleRoundTripIsBitExact) {
    for (const double x : {0.0, -0.0, 1.0, -1.5, 3.141592653589793, 1e-300, 1e300,
                           0.1, 2.2250738585072014e-308}) {
        const std::string hex = hex_of_double(x);
        EXPECT_EQ(hex.size(), 16u);
        const double back = double_of_hex(hex);
        EXPECT_EQ(std::memcmp(&back, &x, sizeof x), 0) << x;
    }
}

TEST(CheckpointHex, U64RoundTrip) {
    for (const std::uint64_t x :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xdeadbeefcafebabeULL},
          ~std::uint64_t{0}}) {
        EXPECT_EQ(u64_of_hex(hex_of_u64(x)), x);
    }
}

TEST(CheckpointHex, BadHexIsParseError) {
    EXPECT_THROW((void)u64_of_hex("not-hex-at-all!!"), Error);
    EXPECT_THROW((void)u64_of_hex(""), Error);
    EXPECT_THROW((void)u64_of_hex("0123456789abcdef0"), Error); // 17 digits
    EXPECT_THROW((void)double_of_hex("12x4"), Error);
}

TEST(CheckpointHash, StreamIsOrderSensitive) {
    HashStream a, b;
    a.mix(1);
    a.mix(2);
    b.mix(2);
    b.mix(1);
    EXPECT_NE(a.value(), b.value());
    HashStream c, d;
    c.mix("xy");
    c.mix("z");
    d.mix("x");
    d.mix("yz");
    EXPECT_NE(c.value(), d.value());
}

} // namespace
} // namespace seamap
