// Concurrency stress for ThreadPool, written to run under
// ThreadSanitizer (the tsan CMake preset / CI job): concurrent
// priority submission from many threads, priority/FIFO ordering
// under contention, exception capture through wait_idle() and
// submit_task() futures, and the parallel_for_index work-stealing
// counter. The assertions also hold un-sanitized; TSan adds the
// happens-before checking.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace seamap {
namespace {

TEST(ThreadPoolStress, ConcurrentPrioritySubmitStorm) {
    constexpr std::size_t submitters = 8;
    constexpr std::size_t jobs_per_submitter = 250;
    ThreadPool pool(4);
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> priority_sum{0};

    std::vector<std::thread> threads;
    threads.reserve(submitters);
    for (std::size_t s = 0; s < submitters; ++s) {
        threads.emplace_back([&pool, &executed, &priority_sum, s] {
            for (std::size_t j = 0; j < jobs_per_submitter; ++j) {
                const std::uint64_t priority = (s * 31 + j * 17) % 97;
                pool.submit(priority, [&executed, &priority_sum, priority] {
                    executed.fetch_add(1, std::memory_order_relaxed);
                    priority_sum.fetch_add(priority, std::memory_order_relaxed);
                });
            }
        });
    }
    for (std::thread& t : threads) t.join();
    pool.wait_idle();
    EXPECT_EQ(executed.load(), submitters * jobs_per_submitter);
    // Every submitted priority value was seen exactly once.
    std::uint64_t expected_sum = 0;
    for (std::size_t s = 0; s < submitters; ++s)
        for (std::size_t j = 0; j < jobs_per_submitter; ++j)
            expected_sum += (s * 31 + j * 17) % 97;
    EXPECT_EQ(priority_sum.load(), expected_sum);
}

TEST(ThreadPoolStress, PriorityOrderHonoredUnderBackpressure) {
    // One worker, blocked by a gate job while jobs with scrambled
    // priorities pile up — the drain order must be (priority, FIFO).
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    pool.submit(0, [opened] { opened.wait(); });

    std::mutex order_mutex;
    std::vector<std::uint64_t> order;
    const std::uint64_t scrambled[] = {5, 1, 9, 1, 3, 7, 0, 5, 2, 8};
    for (std::uint64_t p : scrambled)
        pool.submit(p, [&order_mutex, &order, p] {
            std::lock_guard lock(order_mutex);
            order.push_back(p);
        });
    gate.set_value();
    pool.wait_idle();

    std::vector<std::uint64_t> sorted(std::begin(scrambled), std::end(scrambled));
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(order, sorted); // stable: equal priorities keep FIFO, so
                              // sorted order is the unique legal drain
}

TEST(ThreadPoolStress, FirstExceptionSurfacesThroughWaitIdleAndPoolStaysUsable) {
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i) {
        pool.submit([&ran, i] {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i % 8 == 3) throw std::runtime_error("job failed");
        });
    }
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    EXPECT_EQ(ran.load(), 32) << "a throwing job must not kill its worker";

    // The error was consumed; the pool keeps working.
    std::atomic<bool> after{false};
    pool.submit([&after] { after.store(true, std::memory_order_relaxed); });
    EXPECT_NO_THROW(pool.wait_idle());
    EXPECT_TRUE(after.load());
}

TEST(ThreadPoolStress, SubmitTaskExceptionGoesToFutureNotWaitIdle) {
    ThreadPool pool(2);
    auto future = pool.submit_task([]() -> int { throw std::logic_error("task"); });
    EXPECT_THROW((void)future.get(), std::logic_error);
    EXPECT_NO_THROW(pool.wait_idle());

    auto ok = pool.submit_task([] { return 41 + 1; });
    EXPECT_EQ(ok.get(), 42);
}

TEST(ThreadPoolStress, ParallelForIndexCoversEveryIndexExactlyOnce) {
    constexpr std::size_t count = 10000;
    std::vector<std::atomic<int>> hits(count);
    parallel_for_index(count, 8, [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolStress, ParallelForIndexRethrowsOnCaller) {
    EXPECT_THROW(parallel_for_index(64, 4,
                                    [](std::size_t i) {
                                        if (i == 13) throw std::runtime_error("boom");
                                    }),
                 std::runtime_error);
}

} // namespace
} // namespace seamap
