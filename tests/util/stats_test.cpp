#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace seamap {
namespace {

TEST(RunningStats, EmptyIsAllZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stdev(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleValue) {
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownDataset) {
    // {2,4,4,4,5,5,7,9}: mean 5, sample variance 32/7.
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stdev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NumericallyStableWithLargeOffset) {
    // Welford must not cancel catastrophically around a huge mean.
    RunningStats s;
    const double offset = 1e12;
    for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
    EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
    EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStats, StderrAndCi95) {
    RunningStats s;
    for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
    const double expected_stderr = s.stdev() / 10.0;
    EXPECT_NEAR(s.stderr_mean(), expected_stderr, 1e-12);
    EXPECT_NEAR(s.ci95_halfwidth(), 1.959964 * expected_stderr, 1e-9);
}

TEST(RunningStats, MergeMatchesSequential) {
    RunningStats whole, left, right;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(static_cast<double>(i)) * 10.0;
        whole.add(x);
        (i < 20 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b); // empty rhs: unchanged
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a); // empty lhs: becomes rhs
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SpanStats, MeanAndStdev) {
    const std::array<double, 4> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
    EXPECT_NEAR(stdev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_EQ(mean_of(std::span<const double>{}), 0.0);
    EXPECT_EQ(stdev_of(std::span<const double>{}), 0.0);
}

TEST(PercentChange, BasicAndThrows) {
    EXPECT_DOUBLE_EQ(percent_change(110.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(percent_change(62.0, 100.0), -38.0);
    EXPECT_THROW(percent_change(1.0, 0.0), std::invalid_argument);
}

TEST(ExactMoments, EmptyIsAllZero) {
    ExactMoments m;
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.sum(), 0u);
    EXPECT_EQ(m.mean(), 0.0);
    EXPECT_EQ(m.variance(), 0.0);
    EXPECT_EQ(m.stdev(), 0.0);
    EXPECT_EQ(m.stderr_mean(), 0.0);
    EXPECT_EQ(m.ci95_halfwidth(), 0.0);
}

TEST(ExactMoments, SingleValue) {
    ExactMoments m;
    m.add(7);
    EXPECT_EQ(m.count(), 1u);
    EXPECT_EQ(m.sum(), 7u);
    EXPECT_EQ(m.min(), 7u);
    EXPECT_EQ(m.max(), 7u);
    EXPECT_DOUBLE_EQ(m.mean(), 7.0);
    EXPECT_EQ(m.variance(), 0.0);
}

TEST(ExactMoments, KnownDataset) {
    // {2,4,4,4,5,5,7,9}: mean 5, sample variance 32/7.
    ExactMoments m;
    for (const std::uint64_t x : {2u, 4u, 4u, 4u, 5u, 5u, 7u, 9u}) m.add(x);
    EXPECT_EQ(m.count(), 8u);
    EXPECT_EQ(m.sum(), 40u);
    EXPECT_EQ(m.min(), 2u);
    EXPECT_EQ(m.max(), 9u);
    EXPECT_DOUBLE_EQ(m.mean(), 5.0);
    EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(m.stdev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_NEAR(m.ci95_halfwidth(), 1.959964 * m.stderr_mean(), 1e-12);
}

TEST(ExactMoments, AgreesWithRunningStatsOnIntegerData) {
    ExactMoments exact;
    RunningStats welford;
    std::uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 500; ++i) {
        x ^= x << 13, x ^= x >> 7, x ^= x << 17; // xorshift64
        const std::uint64_t sample = x % 1000;
        exact.add(sample);
        welford.add(static_cast<double>(sample));
    }
    EXPECT_EQ(exact.count(), welford.count());
    EXPECT_NEAR(exact.mean(), welford.mean(), 1e-9);
    EXPECT_NEAR(exact.variance(), welford.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(static_cast<double>(exact.min()), welford.min());
    EXPECT_DOUBLE_EQ(static_cast<double>(exact.max()), welford.max());
}

TEST(ExactMoments, MergeIsExactForAnyPartitionAndOrder) {
    // The property the sharded campaign stands on: integer state makes
    // add/merge associative AND commutative, so any shard partition in
    // any merge order reproduces the sequential accumulator exactly —
    // derived doubles included (they are pure functions of the state).
    std::vector<std::uint64_t> samples;
    std::uint64_t x = 1442695040888963407ull;
    for (int i = 0; i < 333; ++i) {
        x ^= x << 13, x ^= x >> 7, x ^= x << 17;
        samples.push_back(x % 5000);
    }
    ExactMoments sequential;
    for (const std::uint64_t s : samples) sequential.add(s);

    for (const std::size_t block : {1u, 7u, 64u, 333u, 1000u}) {
        std::vector<ExactMoments> shards;
        for (std::size_t lo = 0; lo < samples.size(); lo += block) {
            ExactMoments shard;
            for (std::size_t i = lo; i < std::min(lo + block, samples.size()); ++i)
                shard.add(samples[i]);
            shards.push_back(shard);
        }
        // Forward merge order...
        ExactMoments forward;
        for (const ExactMoments& shard : shards) forward.merge(shard);
        // ...and reverse merge order must both match exactly.
        ExactMoments reverse;
        for (auto it = shards.rbegin(); it != shards.rend(); ++it) reverse.merge(*it);
        for (const ExactMoments* merged : {&forward, &reverse}) {
            EXPECT_EQ(merged->count(), sequential.count()) << "block " << block;
            EXPECT_EQ(merged->sum(), sequential.sum()) << "block " << block;
            EXPECT_EQ(merged->min(), sequential.min()) << "block " << block;
            EXPECT_EQ(merged->max(), sequential.max()) << "block " << block;
            EXPECT_DOUBLE_EQ(merged->mean(), sequential.mean()) << "block " << block;
            EXPECT_DOUBLE_EQ(merged->variance(), sequential.variance())
                << "block " << block;
            EXPECT_DOUBLE_EQ(merged->ci95_halfwidth(), sequential.ci95_halfwidth())
                << "block " << block;
        }
    }
}

TEST(ExactMoments, MergeWithEmptySides) {
    ExactMoments a, b;
    a.add(1);
    a.add(3);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.min(), 1u);
    EXPECT_EQ(b.max(), 3u);
}

} // namespace
} // namespace seamap
