// End-to-end regression matrix for the seamap_cli failure surface:
// every error path must exit with the documented code (0 ok, 1 no
// feasible design, 2 failure, 3 interrupted), print exactly one
// `error:` line on stderr, and — under --json — emit the structured
// {"error": {"code", "message", ...}} object on stdout. Drives the
// real binary (SEAMAP_CLI_PATH, injected by CMake) through a shell.
#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"
#include "taskgraph/serialization.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>

namespace seamap {
namespace {

struct RunResult {
    int status = -1; ///< exit code, or -1 when the process died abnormally
    std::string out;
    std::string err;
};

class CliErrorsTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::path(testing::TempDir()) /
               ("cli_errors_" +
                std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path_of(const std::string& name) const { return (dir_ / name).string(); }

    std::string fig8_path() {
        const std::string path = path_of("fig8.tg");
        save_task_graph(path, fig8_example_graph());
        return path;
    }

    std::string slurp(const std::string& path) const {
        std::ifstream is(path);
        return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
    }

    /// Run `<prefix> seamap_cli <args>` with stdout/stderr captured.
    RunResult run(const std::string& args, const std::string& prefix = "") const {
        const std::string out_path = path_of("stdout.txt");
        const std::string err_path = path_of("stderr.txt");
        const std::string command = prefix + std::string(SEAMAP_CLI_PATH) + " " + args +
                                    " > " + out_path + " 2> " + err_path;
        const int raw = std::system(command.c_str());
        RunResult result;
        if (raw != -1 && WIFEXITED(raw)) result.status = WEXITSTATUS(raw);
        result.out = slurp(out_path);
        result.err = slurp(err_path);
        return result;
    }

    std::filesystem::path dir_;
};

void expect_contains(const std::string& haystack, const std::string& needle) {
    EXPECT_NE(haystack.find(needle), std::string::npos)
        << "expected to find '" << needle << "' in:\n"
        << haystack;
}

TEST_F(CliErrorsTest, VersionExitsZero) {
    const RunResult r = run("version");
    EXPECT_EQ(r.status, 0);
    expect_contains(r.out, "seamap ");
}

TEST_F(CliErrorsTest, NoArgumentsIsUsageFailure) {
    const RunResult r = run("");
    EXPECT_EQ(r.status, 2);
    expect_contains(r.err, "subcommands:");
}

TEST_F(CliErrorsTest, UnknownSubcommandIsUsageFailure) {
    const RunResult r = run("frobnicate");
    EXPECT_EQ(r.status, 2);
    expect_contains(r.err, "unknown subcommand 'frobnicate'");
}

TEST_F(CliErrorsTest, HelpExitsZero) {
    const RunResult r = run("help");
    EXPECT_EQ(r.status, 0);
    expect_contains(r.out, "subcommands:");
}

TEST_F(CliErrorsTest, MissingGraphFileIsIoError) {
    const std::string missing = path_of("nope.tg");
    const RunResult text = run("info " + missing);
    EXPECT_EQ(text.status, 2);
    expect_contains(text.err, "error: ");
    expect_contains(text.err, missing);

    const RunResult json = run("info " + missing + " --json");
    EXPECT_EQ(json.status, 2);
    expect_contains(json.out, "\"error\"");
    expect_contains(json.out, "\"code\": \"io_error\"");
    expect_contains(json.out, "\"context\"");
}

TEST_F(CliErrorsTest, MalformedGraphIsParseErrorWithLine) {
    const std::string bad = path_of("bad.tg");
    {
        std::ofstream os(bad);
        os << "graph g\nbatches soon\n";
    }
    const RunResult text = run("info " + bad);
    EXPECT_EQ(text.status, 2);
    expect_contains(text.err, "error: ");
    expect_contains(text.err, "line 2");

    const RunResult json = run("optimize " + bad + " --cores 2 --json");
    EXPECT_EQ(json.status, 2);
    expect_contains(json.out, "\"code\": \"parse_error\"");
}

TEST_F(CliErrorsTest, BadOptionValueIsInvalidArgument) {
    const RunResult r =
        run("optimize " + fig8_path() + " --cores 2 --levels 7 --json");
    EXPECT_EQ(r.status, 2);
    expect_contains(r.out, "\"code\": \"invalid_argument\"");
    expect_contains(r.err, "--levels must be 2, 3 or 4");
}

TEST_F(CliErrorsTest, NoFeasibleDesignExitsOne) {
    // A deadline no scaling can meet: completed cleanly, found nothing.
    const std::string graph = fig8_path();
    const RunResult text = run("optimize " + graph + " --cores 2 --deadline 1e-9");
    EXPECT_EQ(text.status, 1);
    expect_contains(text.err, "no feasible design");

    const RunResult json =
        run("optimize " + graph + " --cores 2 --deadline 1e-9 --json");
    EXPECT_EQ(json.status, 1);
    expect_contains(json.out, "\"best\": null");
}

TEST_F(CliErrorsTest, ResumeWithoutCheckpointIsUsageError) {
    const RunResult r = run("optimize " + fig8_path() + " --cores 2 --resume --json");
    EXPECT_EQ(r.status, 2);
    expect_contains(r.out, "\"code\": \"usage\"");
    expect_contains(r.err, "--resume requires --checkpoint");
}

TEST_F(CliErrorsTest, ResumeWithoutSnapshotStartsFresh) {
    const RunResult r = run("optimize " + fig8_path() + " --cores 2 --checkpoint " +
                            path_of("fresh.ckpt") + " --resume");
    EXPECT_EQ(r.status, 0);
    expect_contains(r.err, "starting fresh");
}

TEST_F(CliErrorsTest, CorruptCheckpointIsRejected) {
    const std::string ckpt = path_of("broken.ckpt");
    {
        std::ofstream os(ckpt);
        os << "seamap-checkpoint 1\nnot a real snapshot\n";
    }
    const RunResult r = run("optimize " + fig8_path() + " --cores 2 --checkpoint " +
                            ckpt + " --resume --json");
    EXPECT_EQ(r.status, 2);
    expect_contains(r.out, "\"code\": \"checkpoint_corrupt\"");
    expect_contains(r.err, "error: ");
}

TEST_F(CliErrorsTest, MismatchedCheckpointIsRejected) {
    const std::string graph = fig8_path();
    const std::string ckpt = path_of("mismatch.ckpt");
    const RunResult first =
        run("optimize " + graph + " --cores 2 --checkpoint " + ckpt);
    ASSERT_EQ(first.status, 0);
    // Same snapshot, different problem: the state hash must not match.
    const RunResult second = run("optimize " + graph +
                                 " --cores 2 --deadline 0.4 --checkpoint " + ckpt +
                                 " --resume --json");
    EXPECT_EQ(second.status, 2);
    expect_contains(second.out, "\"code\": \"checkpoint_mismatch\"");
    expect_contains(second.err, "state hash");
}

TEST_F(CliErrorsTest, SigintExitsThreeAndResumeReproducesBaseline) {
    if (std::system("command -v timeout > /dev/null 2> /dev/null") != 0)
        GTEST_SKIP() << "no timeout(1) on this system";
    const std::string graph = path_of("mpeg2.tg");
    save_task_graph(graph, mpeg2_decoder_graph());
    const std::string ckpt = path_of("sigint.ckpt");
    const std::string opts =
        " --cores 4 --iterations 60000 --threads 2 --seed 3 --json";
    const RunResult baseline = run("optimize " + graph + opts);
    ASSERT_EQ(baseline.status, 0);

    const RunResult interrupted =
        run("optimize " + graph + opts + " --checkpoint " + ckpt +
                " --checkpoint-every 1",
            "timeout --preserve-status -s INT 0.2 ");
    if (interrupted.status == 3) {
        expect_contains(interrupted.err, "interrupted; checkpoint saved");
        expect_contains(interrupted.out, "\"code\": \"canceled\"");
        const RunResult resumed = run("optimize " + graph + opts + " --checkpoint " +
                                      ckpt + " --resume");
        EXPECT_EQ(resumed.status, 0);
        EXPECT_EQ(resumed.out, baseline.out);
    } else {
        // The box outran the signal: the run completed before SIGINT
        // landed — still a valid end-to-end pass, assert it was clean.
        EXPECT_EQ(interrupted.status, 0) << interrupted.err;
        EXPECT_EQ(interrupted.out, baseline.out);
    }
}

} // namespace
} // namespace seamap
