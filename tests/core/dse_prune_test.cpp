// The branch-and-bound explorer's contract (core/dse.h): pruning may
// drop provably dominated scalings from the searched set, but `best`
// and `pareto_front` stay BYTE-IDENTICAL to the exhaustive sweep at
// every thread count, and with pruning on the whole result (counters,
// feasible points, prune decisions) is a pure function of the problem
// — identical at every thread count. Randomized across the repo's
// three workload families plus a deliberately prunable scenario where
// the bound-driven skips must actually fire.
#include "seamap/seamap.h"

#include "api/scenarios.h"
#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"

#include <gtest/gtest.h>
#include <string>
#include <vector>

namespace seamap {
namespace {

std::string best_json(const DseResult& result) {
    return result.best ? to_json(*result.best).dump() : "null";
}

std::string front_json(const DseResult& result) {
    JsonValue front = JsonValue::array();
    for (const DsePoint& point : result.pareto_front) front.push_back(to_json(point));
    return front.dump();
}

void expect_point_identical(const DsePoint& a, const DsePoint& b) {
    EXPECT_EQ(a.levels, b.levels);
    EXPECT_EQ(a.mapping, b.mapping);
    EXPECT_EQ(a.metrics.tm_seconds, b.metrics.tm_seconds);
    EXPECT_EQ(a.metrics.gamma, b.metrics.gamma);
    EXPECT_EQ(a.metrics.power_mw, b.metrics.power_mw);
}

void expect_result_identical(const DseResult& a, const DseResult& b) {
    EXPECT_EQ(a.scalings_total, b.scalings_total);
    EXPECT_EQ(a.scalings_enumerated, b.scalings_enumerated);
    EXPECT_EQ(a.scalings_skipped_infeasible, b.scalings_skipped_infeasible);
    EXPECT_EQ(a.scalings_emitted, b.scalings_emitted);
    EXPECT_EQ(a.scalings_pruned, b.scalings_pruned);
    EXPECT_EQ(a.scalings_searched, b.scalings_searched);
    ASSERT_EQ(a.feasible_points.size(), b.feasible_points.size());
    for (std::size_t i = 0; i < a.feasible_points.size(); ++i)
        expect_point_identical(a.feasible_points[i], b.feasible_points[i]);
    ASSERT_EQ(a.pareto_front.size(), b.pareto_front.size());
    for (std::size_t i = 0; i < a.pareto_front.size(); ++i)
        expect_point_identical(a.pareto_front[i], b.pareto_front[i]);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) expect_point_identical(*a.best, *b.best);
}

/// Runs one problem in both modes across thread counts and pins the
/// whole contract.
void check_prune_contract(const Problem& problem, ExploreOptions options) {
    const std::vector<std::size_t> thread_counts{1, 2, 8};

    options.dse.prune = false;
    std::vector<DseResult> exhaustive;
    for (const std::size_t threads : thread_counts) {
        options.dse.num_threads = threads;
        exhaustive.push_back(explore(problem, options));
    }
    options.dse.prune = true;
    std::vector<DseResult> pruned;
    for (const std::size_t threads : thread_counts) {
        options.dse.num_threads = threads;
        pruned.push_back(explore(problem, options));
    }

    // Each mode is bit-identical across thread counts, in full.
    for (std::size_t i = 1; i < thread_counts.size(); ++i) {
        expect_result_identical(exhaustive[0], exhaustive[i]);
        expect_result_identical(pruned[0], pruned[i]);
    }
    // Across modes, the paper's outputs are byte-identical JSON...
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
        EXPECT_EQ(best_json(pruned[i]), best_json(exhaustive[0]));
        EXPECT_EQ(front_json(pruned[i]), front_json(exhaustive[0]));
    }
    // ...while pruning only ever removes work.
    EXPECT_EQ(pruned[0].scalings_enumerated, exhaustive[0].scalings_enumerated);
    EXPECT_EQ(pruned[0].scalings_skipped_infeasible,
              exhaustive[0].scalings_skipped_infeasible);
    EXPECT_EQ(exhaustive[0].scalings_pruned, 0u);
    EXPECT_EQ(pruned[0].scalings_searched + pruned[0].scalings_pruned,
              exhaustive[0].scalings_searched);
    // Without pruning every gate passer is emitted; with it the lazy
    // queue's pop-time disposal emits only the undominated band:
    // searched <= emitted <= searched + pruned.
    EXPECT_EQ(exhaustive[0].scalings_emitted, exhaustive[0].scalings_searched);
    EXPECT_LE(pruned[0].scalings_searched, pruned[0].scalings_emitted);
    EXPECT_LE(pruned[0].scalings_emitted,
              pruned[0].scalings_searched + pruned[0].scalings_pruned);
    EXPECT_LE(pruned[0].feasible_points.size(), exhaustive[0].feasible_points.size());
}

ExploreOptions quick_options(std::uint64_t iterations, std::uint64_t seed) {
    ExploreOptions options;
    options.dse.search.max_iterations = iterations;
    options.dse.search.seed = seed;
    return options;
}

TEST(DsePrune, Fig8ContractAcrossDeadlines) {
    const TaskGraph graph = fig8_example_graph();
    for (const double deadline : {0.5, 0.2, 0.1}) {
        const Problem problem = ProblemBuilder()
                                    .graph(graph)
                                    .architecture(3, VoltageScalingTable::arm7_three_level())
                                    .deadline_seconds(deadline)
                                    .build();
        check_prune_contract(problem, quick_options(500, 7));
    }
}

TEST(DsePrune, Mpeg2Contract) {
    const Problem problem = ProblemBuilder()
                                .graph(mpeg2_decoder_graph())
                                .architecture(4, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(mpeg2_deadline_seconds())
                                .build();
    check_prune_contract(problem, quick_options(400, 3));
}

TEST(DsePrune, RandomTgffContract) {
    for (const std::uint64_t seed : {1ull, 5ull, 9ull}) {
        TgffParams params;
        params.task_count = 16;
        const TaskGraph graph = generate_tgff_graph(params, seed);
        const MpsocArchitecture probe(4, VoltageScalingTable::arm7_three_level());
        const double deadline = 1.4 * tm_lower_bound_seconds(graph, probe, {1, 1, 1, 1});
        const Problem problem = ProblemBuilder()
                                    .graph(graph)
                                    .architecture(4, VoltageScalingTable::arm7_three_level())
                                    .deadline_seconds(deadline)
                                    .build();
        check_prune_contract(problem, quick_options(400, seed));
    }
}

TEST(DsePrune, PruningFiresOnThePrunableScenario) {
    // The shared api/scenarios.h Problem bm_explore_prunable measures,
    // at a test-sized 6 cores x 6x6 tasks.
    const Problem problem = prunable_pipeline_problem(6, 6, 6);
    ExploreOptions options = quick_options(600, 1);

    options.dse.prune = true;
    options.dse.num_threads = 2;
    const DseResult pruned = explore(problem, options);
    options.dse.prune = false;
    const DseResult exhaustive = explore(problem, options);

    // The scenario exists to make the bounds bite: a healthy fraction
    // of the gate-passing combinations must be skipped outright.
    EXPECT_GT(pruned.scalings_pruned, 0u);
    EXPECT_LT(pruned.scalings_searched, exhaustive.scalings_searched);
    EXPECT_EQ(best_json(pruned), best_json(exhaustive));
    EXPECT_EQ(front_json(pruned), front_json(exhaustive));
    check_prune_contract(problem, quick_options(600, 1));
}

TEST(DsePrune, MultiStartIsDeterministicAndNoWorsePerScaling) {
    const TaskGraph graph = fig8_example_graph();
    const Problem problem = ProblemBuilder()
                                .graph(graph)
                                .architecture(3, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(0.2)
                                .build();
    ExploreOptions options = quick_options(500, 7);
    options.dse.multi_start = 3;

    options.dse.num_threads = 1;
    const DseResult serial = explore(problem, options);
    options.dse.num_threads = 8;
    const DseResult parallel = explore(problem, options);
    expect_result_identical(serial, parallel);

    options.dse.multi_start = 1;
    const DseResult single = explore(problem, options);
    // Start 0 reuses the single-start walk, so the best-of-K fold can
    // only improve each scaling's expected SEUs.
    for (const DsePoint& folded : serial.feasible_points)
        for (const DsePoint& alone : single.feasible_points)
            if (folded.levels == alone.levels) {
                EXPECT_LE(folded.metrics.gamma, alone.metrics.gamma);
            }
    EXPECT_GE(serial.feasible_points.size(), single.feasible_points.size());
}

} // namespace
} // namespace seamap
