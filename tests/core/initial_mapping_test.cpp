#include "core/initial_mapping.h"
#include "reliability/register_usage.h"

#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"

#include <gtest/gtest.h>

#include <tuple>

namespace seamap {
namespace {

EvaluationContext make_ctx(const TaskGraph& graph, const MpsocArchitecture& arch,
                           ScalingVector levels, double deadline) {
    return EvaluationContext{graph, arch, std::move(levels), SeuEstimator{SerModel{}}, deadline};
}

TEST(InitialSeaMapping, AlwaysCompleteOnMpeg2) {
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const auto ctx = make_ctx(graph, arch, {2, 2, 3, 2}, mpeg2_deadline_seconds());
    const Mapping mapping = initial_sea_mapping(ctx);
    EXPECT_TRUE(mapping.complete());
}

TEST(InitialSeaMapping, SingleCoreMapsEverythingToCoreZero) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(1, VoltageScalingTable::arm7_three_level());
    const auto ctx = make_ctx(graph, arch, {1}, 1.0);
    const Mapping mapping = initial_sea_mapping(ctx);
    EXPECT_TRUE(mapping.complete());
    EXPECT_EQ(mapping.task_count_on(0), graph.task_count());
}

TEST(InitialSeaMapping, EveryCorePopulatedWhenTasksSuffice) {
    const TaskGraph graph = mpeg2_decoder_graph(); // 11 tasks
    for (std::size_t cores = 2; cores <= 6; ++cores) {
        const MpsocArchitecture arch(cores, VoltageScalingTable::arm7_three_level());
        const auto ctx =
            make_ctx(graph, arch, ScalingVector(cores, 2), mpeg2_deadline_seconds());
        const Mapping mapping = initial_sea_mapping(ctx);
        EXPECT_TRUE(mapping.complete());
        EXPECT_EQ(mapping.used_core_count(), cores) << cores << " cores";
    }
}

TEST(InitialSeaMapping, LocalizesSharersBetterThanRoundRobin) {
    // The greedy follows dependency edges by minimum-SEU increment, so
    // on the MPEG-2 decoder it must localize shared registers at least
    // as well as blind round-robin dealing.
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const auto ctx = make_ctx(graph, arch, {2, 2, 2, 2}, mpeg2_deadline_seconds());
    const Mapping greedy = initial_sea_mapping(ctx);
    const Mapping rr = round_robin_mapping(graph, 4);
    EXPECT_LE(total_register_bits(graph, greedy, 4), total_register_bits(graph, rr, 4));
}

TEST(InitialSeaMapping, RespectsPerCoreTimeBudget) {
    // With a deadline close to the balanced share of work, no core
    // except the overflow (last) core may blow the budget at mapping
    // time.
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels = {1, 1, 1, 1};
    const double total_seconds = static_cast<double>(graph.total_exec_cycles()) / 200e6;
    const double budget = total_seconds / 3.0;
    const auto ctx = make_ctx(graph, arch, levels, budget);
    const Mapping mapping = initial_sea_mapping(ctx);
    ASSERT_TRUE(mapping.complete());
    const auto busy = per_core_busy_cycles(graph, mapping, 4);
    for (std::size_t c = 0; c + 1 < 4; ++c) {
        // The budget check fires *before* each addition, so one task of
        // overshoot is permissible; two is a bug.
        const double busy_seconds = static_cast<double>(busy[c]) / 200e6;
        EXPECT_LT(busy_seconds, budget + 2.0 * total_seconds / 11.0) << "core " << c;
    }
}

TEST(InitialSeaMapping, Fig8ExampleFillsThreeCores) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const auto ctx = make_ctx(graph, arch, {1, 2, 2}, k_fig8_deadline_seconds);
    const Mapping mapping = initial_sea_mapping(ctx);
    ASSERT_TRUE(mapping.complete());
    EXPECT_EQ(mapping.used_core_count(), 3u);
    // The source task seeds core 0 (the paper's walkthrough).
    EXPECT_EQ(mapping.core_of(0), 0u);
}

/// Property sweep over random graphs and core counts: the greedy must
/// always return a complete mapping that uses every core when N >= C.
class InitialMappingProperty
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(InitialMappingProperty, CompleteAndAllCoresUsed) {
    const auto [task_count, core_count, seed] = GetParam();
    TgffParams params;
    params.task_count = task_count;
    const TaskGraph graph = generate_tgff_graph(params, seed);
    const MpsocArchitecture arch(core_count, VoltageScalingTable::arm7_three_level());
    const auto ctx = make_ctx(graph, arch, ScalingVector(core_count, 2),
                              paper_tgff_deadline_seconds(task_count));
    const Mapping mapping = initial_sea_mapping(ctx);
    EXPECT_TRUE(mapping.complete());
    if (task_count >= core_count) { EXPECT_EQ(mapping.used_core_count(), core_count); }
}

INSTANTIATE_TEST_SUITE_P(
    GraphGrid, InitialMappingProperty,
    testing::Combine(testing::Values<std::size_t>(6, 20, 40), testing::Values<std::size_t>(2, 4, 6),
                     testing::Values<std::uint64_t>(1, 2, 3)),
    [](const testing::TestParamInfo<InitialMappingProperty::ParamType>& param_info) {
        std::string label; label += "n"; label += std::to_string(std::get<0>(param_info.param)); label += "_c"; label += std::to_string(std::get<1>(param_info.param)); label += "_s"; label += std::to_string(std::get<2>(param_info.param)); return label;
    });

} // namespace
} // namespace seamap
