// Concurrent-cancellation stress for the explorer (designed to run
// under the tsan preset as well as un-sanitized): cancellation arrives
// mid-exploration from another thread — at seeded points relative to
// observer progress — while observers stream callbacks from worker
// threads. After every cancelled run the partial DseResult must still
// be internally consistent: counters add up, every feasible point is a
// complete mapping with feasible metrics, the Pareto front is exactly
// the front of the reported feasible set, and `best` obeys the paper's
// minimum-power/Gamma-tie-break rule over that front.
#include "seamap/seamap.h"

#include "taskgraph/mpeg2.h"
#include "util/float_compare.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace seamap {
namespace {

Problem mpeg2_problem() {
    return ProblemBuilder()
        .graph(mpeg2_decoder_graph())
        .architecture(4, VoltageScalingTable::arm7_three_level())
        .deadline_seconds(mpeg2_deadline_seconds())
        .build();
}

ExploreOptions stress_options(std::size_t threads) {
    ExploreOptions options;
    options.dse.search.max_iterations = 150;
    options.dse.num_threads = threads;
    return options;
}

/// Streams progress; after `cancel_after` scalings complete it trips
/// the token and wakes anyone waiting on that event.
class CancellingObserver final : public ProgressObserver {
public:
    CancellingObserver(CancellationToken& token, std::size_t cancel_after)
        : token_(token), cancel_after_(cancel_after) {}

    void on_explore_begin(std::size_t total_scalings) override { total_ = total_scalings; }

    void on_scaling_done(const ScalingProgress& progress) override {
        EXPECT_LT(progress.index, total_);
        EXPECT_EQ(progress.total, total_);
        const std::size_t done = ++scalings_done_;
        if (done == cancel_after_) {
            token_.request_stop();
            std::lock_guard lock(mutex_);
            cancelled_ = true;
            cancelled_cv_.notify_all();
        }
    }

    void on_incumbent(const DsePoint& incumbent) override {
        // Incumbents only improve under the paper's selection rule.
        if (have_incumbent_) {
            EXPECT_LE(incumbent.metrics.power_mw,
                      last_incumbent_.power_mw * (1.0 + 1e-12));
        }
        last_incumbent_ = incumbent.metrics;
        have_incumbent_ = true;
        ++incumbents_;
    }

    void on_explore_end(const DseResult&) override { ended_ = true; }

    std::size_t scalings_done() const { return scalings_done_.load(); }
    std::size_t incumbents() const { return incumbents_.load(); }
    bool ended() const { return ended_.load(); }

private:
    CancellationToken& token_;
    std::size_t cancel_after_;
    std::size_t total_ = 0;
    std::atomic<std::size_t> scalings_done_{0};
    std::atomic<std::size_t> incumbents_{0};
    std::atomic<bool> ended_{false};
    // on_incumbent is serialized by the explorer, so these need no lock.
    bool have_incumbent_ = false;
    DesignMetrics last_incumbent_;
    std::mutex mutex_;
    std::condition_variable cancelled_cv_;
    bool cancelled_ = false;
};

void expect_partial_result_valid(const DseResult& result, const Problem& problem) {
    EXPECT_LE(result.scalings_enumerated, result.scalings_total);
    EXPECT_EQ(result.scalings_skipped_infeasible + result.scalings_pruned +
                  result.scalings_searched,
              result.scalings_enumerated);
    for (const DsePoint& point : result.feasible_points) {
        EXPECT_TRUE(point.mapping.complete());
        EXPECT_EQ(point.mapping.task_count(), problem.graph().task_count());
        EXPECT_TRUE(point.metrics.feasible);
        EXPECT_GT(point.metrics.power_mw, 0.0);
        EXPECT_GT(point.metrics.gamma, 0.0);
    }
    // The reported front must be exactly the front of the reported
    // feasible set (bit-identical metrics).
    const std::vector<DsePoint> recomputed = pareto_front_of(result.feasible_points);
    ASSERT_EQ(result.pareto_front.size(), recomputed.size());
    for (std::size_t i = 0; i < recomputed.size(); ++i) {
        EXPECT_TRUE(exactly_equal(result.pareto_front[i].metrics.power_mw,
                                  recomputed[i].metrics.power_mw));
        EXPECT_TRUE(exactly_equal(result.pareto_front[i].metrics.gamma,
                                  recomputed[i].metrics.gamma));
    }
    if (result.feasible_points.empty()) {
        EXPECT_FALSE(result.best.has_value());
        EXPECT_TRUE(result.pareto_front.empty());
        return;
    }
    ASSERT_TRUE(result.best.has_value());
    // Paper's pick: no feasible design strictly beats best on power.
    for (const DsePoint& point : result.feasible_points)
        EXPECT_GE(point.metrics.power_mw, result.best->metrics.power_mw * (1.0 - 1e-12));
}

TEST(DseCancelStress, CancelFromObserverAtSeededPointsLeavesValidPartialResults) {
    const Problem problem = mpeg2_problem();
    // Cancel after the 1st, 3rd, 10th, ... completed scaling: early,
    // mid-flight and near-the-end shutdowns, all with 4 workers racing.
    for (const std::size_t cancel_after : {std::size_t{1}, std::size_t{3}, std::size_t{10},
                                           std::size_t{25}, std::size_t{60}}) {
        CancellationToken token;
        CancellingObserver observer(token, cancel_after);
        const DseResult result =
            explore(problem, stress_options(4), &observer, &token);
        EXPECT_TRUE(observer.ended()) << "on_explore_end must fire even when cancelled";
        expect_partial_result_valid(result, problem);
        if (cancel_after <= observer.scalings_done()) {
            // The run was actually cut short (unless it finished first).
            EXPECT_LE(result.scalings_enumerated, result.scalings_total);
        }
    }
}

TEST(DseCancelStress, ExternalThreadsRacingRequestStopShutDownCleanly) {
    const Problem problem = mpeg2_problem();
    for (int round = 0; round < 4; ++round) {
        CancellationToken parent;
        CancellationToken token(&parent); // explorer watches the child
        std::atomic<bool> exploring{true};
        // Three cancellers race: two on the child, one via the parent
        // chain, each after a different (round-seeded) busy wait.
        std::vector<std::thread> cancellers;
        for (int c = 0; c < 3; ++c) {
            cancellers.emplace_back([&, c] {
                std::atomic<int> spin{0};
                while (spin.fetch_add(1, std::memory_order_relaxed) <
                       (round * 3 + c) * 20000) {
                }
                if (c == 2)
                    parent.request_stop();
                else
                    token.request_stop();
                while (exploring.load(std::memory_order_acquire))
                    std::this_thread::yield();
            });
        }
        const DseResult result = explore(problem, stress_options(4), nullptr, &token);
        exploring.store(false, std::memory_order_release);
        for (std::thread& t : cancellers) t.join();
        EXPECT_TRUE(token.cancel_requested());
        expect_partial_result_valid(result, problem);
    }
}

TEST(DseCancelStress, PreCancelledTokenYieldsEmptyButWellFormedResult) {
    const Problem problem = mpeg2_problem();
    CancellationToken token;
    token.request_stop();
    CancellingObserver observer(token, std::size_t(-1));
    const DseResult result = explore(problem, stress_options(4), &observer, &token);
    EXPECT_TRUE(observer.ended());
    expect_partial_result_valid(result, problem);
    EXPECT_EQ(result.scalings_searched, 0u);
}

TEST(DseCancelStress, UncancelledRunMatchesSerialReferenceUnderObserverLoad) {
    // Observer streaming from 4 worker threads must not perturb the
    // deterministic result: bit-identical to the quiet serial run.
    const Problem problem = mpeg2_problem();
    const DseResult reference = explore(problem, stress_options(1));
    CancellationToken token; // never tripped
    CancellingObserver observer(token, std::size_t(-1));
    const DseResult loud = explore(problem, stress_options(4), &observer, &token);
    EXPECT_EQ(observer.scalings_done(), reference.scalings_total);
    ASSERT_EQ(loud.feasible_points.size(), reference.feasible_points.size());
    ASSERT_TRUE(loud.best.has_value());
    ASSERT_TRUE(reference.best.has_value());
    EXPECT_TRUE(exactly_equal(loud.best->metrics.power_mw, reference.best->metrics.power_mw));
    EXPECT_TRUE(exactly_equal(loud.best->metrics.gamma, reference.best->metrics.gamma));
    EXPECT_EQ(loud.best->mapping, reference.best->mapping);
    EXPECT_GT(observer.incumbents(), 0u);
}

} // namespace
} // namespace seamap
