// The PR 3 "zero steady-state allocation" claim as a hard test: once an
// EvalContext is warmed up, full evaluation, suffix-only incremental
// re-evaluation (move/swap), memo hits, and rebase() must perform ZERO
// heap allocations — counted by the operator-new replacements in
// tests/support/alloc_guard.cpp, not asserted by comment. The static
// side of the same contract is seamap_lint's hot-path-alloc rule over
// src/core/eval_context.cpp.
#include "seamap/seamap.h"

#include "support/alloc_guard.h"
#include "taskgraph/fig8.h"
#include "tgff/random_graph.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace seamap {
namespace {

using seamap::testing::AllocationGuard;

// In plain builds a missing guard is a hard failure (a silent
// link-order regression would make every budget below pass vacuously);
// under sanitizers the runtime owns operator new and the budget tests
// skip instead.
#define SEAMAP_REQUIRE_ALLOC_GUARD()                                                     \
    do {                                                                                 \
        if (!seamap::testing::counting_allocator_active()) {                             \
            ASSERT_FALSE(SEAMAP_ALLOC_GUARD_EXPECTED_ACTIVE)                             \
                << "counting allocator not linked in a non-sanitized build";             \
            GTEST_SKIP() << "allocation guard inactive under sanitizers";                \
        }                                                                                \
    } while (false)

struct Workload {
    std::string label;
    TaskGraph graph;
    std::size_t cores;
    double deadline_seconds;
};

std::vector<Workload> workloads() {
    std::vector<Workload> out;
    out.push_back({"fig8", fig8_example_graph(), 3, k_fig8_deadline_seconds});
    TgffParams params;
    params.task_count = 24;
    out.push_back({"tgff24", generate_tgff_graph(params, 5), 4,
                   paper_tgff_deadline_seconds(24)});
    return out;
}

Mapping random_mapping(const TaskGraph& graph, std::size_t cores, Rng& rng) {
    Mapping mapping(graph.task_count(), cores);
    for (TaskId t = 0; t < graph.task_count(); ++t)
        mapping.assign(t, static_cast<CoreId>(rng.uniform_int(
                              0, static_cast<std::int64_t>(cores) - 1)));
    return mapping;
}

TEST(AllocGuard, CountingAllocatorIsLinkedIn) { SEAMAP_REQUIRE_ALLOC_GUARD(); }

TEST(AllocGuard, ObservesVectorGrowth) {
    SEAMAP_REQUIRE_ALLOC_GUARD();
    AllocationGuard guard;
    std::vector<int> v;
    v.reserve(64);
    EXPECT_GE(guard.allocations(), 1u);
}

TEST(EvalContextAlloc, SteadyStateFullEvaluationIsAllocationFree) {
    SEAMAP_REQUIRE_ALLOC_GUARD();
    for (const Workload& w : workloads()) {
        const MpsocArchitecture arch(w.cores, VoltageScalingTable::arm7_three_level());
        const ScalingVector levels(w.cores, ScalingLevel{1});
        const EvaluationContext ctx{w.graph, arch, levels, SeuEstimator{SerModel{}},
                                    w.deadline_seconds};
        EvalContext eval(ctx);
        Rng rng(21);
        std::vector<Mapping> mappings;
        for (int i = 0; i < 8; ++i) mappings.push_back(random_mapping(w.graph, w.cores, rng));
        (void)eval.evaluate(mappings.front()); // warm-up: first-call growth

        AllocationGuard guard;
        double sink = 0.0;
        for (const Mapping& mapping : mappings) sink += eval.evaluate(mapping).gamma;
        EXPECT_EQ(guard.allocations(), 0u)
            << "steady-state evaluate() allocated on " << w.label;
        EXPECT_GT(sink, 0.0);
    }
}

TEST(EvalContextAlloc, SuffixReschedulingIsAllocationFree) {
    SEAMAP_REQUIRE_ALLOC_GUARD();
    for (const Workload& w : workloads()) {
        const MpsocArchitecture arch(w.cores, VoltageScalingTable::arm7_three_level());
        const ScalingVector levels(w.cores, ScalingLevel{1});
        const EvaluationContext ctx{w.graph, arch, levels, SeuEstimator{SerModel{}},
                                    w.deadline_seconds};
        EvalOptions options;
        options.memoize = false; // isolate the incremental path: memo
                                 // growth is the one documented exception
        options.incremental = true;
        EvalContext eval(ctx, options);
        Rng rng(22);
        Mapping base = random_mapping(w.graph, w.cores, rng);
        (void)eval.rebase(base);
        Mapping neighbor = base; // scratch hoisted: copy-assign below reuses capacity

        AllocationGuard guard;
        double sink = 0.0;
        for (int i = 0; i < 64; ++i) {
            neighbor = base;
            const NeighborOp op = random_neighbor_op(neighbor, rng, 0.4, false);
            sink += eval.evaluate_neighbor(op).gamma;
        }
        EXPECT_EQ(guard.allocations(), 0u)
            << "suffix rescheduling allocated on " << w.label;
        EXPECT_GT(sink, 0.0);
    }
}

TEST(EvalContextAlloc, SteadyStateRebaseIsAllocationFree) {
    SEAMAP_REQUIRE_ALLOC_GUARD();
    const Workload w = workloads().back(); // the 24-task TGFF graph
    const MpsocArchitecture arch(w.cores, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels(w.cores, ScalingLevel{1});
    const EvaluationContext ctx{w.graph, arch, levels, SeuEstimator{SerModel{}},
                                w.deadline_seconds};
    EvalOptions options;
    options.memoize = false;
    EvalContext eval(ctx, options);
    Rng rng(23);
    std::vector<Mapping> bases;
    for (int i = 0; i < 16; ++i) bases.push_back(random_mapping(w.graph, w.cores, rng));
    // Warm-up pass: the per-core task lists grow (amortized, allowed)
    // until each core has seen its high-water mark across these bases.
    // The guarded replay of the same bases is the steady state.
    for (const Mapping& base : bases) (void)eval.rebase(base);

    AllocationGuard guard;
    double sink = 0.0;
    for (const Mapping& base : bases) sink += eval.rebase(base).gamma;
    EXPECT_EQ(guard.allocations(), 0u) << "rebase() allocated in steady state";
    EXPECT_GT(sink, 0.0);
}

TEST(EvalContextAlloc, MemoHitsAreAllocationFree) {
    SEAMAP_REQUIRE_ALLOC_GUARD();
    const Workload w = workloads().front(); // fig8
    const MpsocArchitecture arch(w.cores, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels(w.cores, ScalingLevel{1});
    const EvaluationContext ctx{w.graph, arch, levels, SeuEstimator{SerModel{}},
                                w.deadline_seconds};
    EvalContext eval(ctx); // defaults: memoize + incremental on
    Rng rng(24);
    Mapping base = random_mapping(w.graph, w.cores, rng);
    (void)eval.rebase(base);
    // First pass inserts into the memo (allowed to allocate)...
    std::vector<NeighborOp> ops;
    Mapping neighbor = base;
    for (int i = 0; i < 32; ++i) {
        neighbor = base;
        ops.push_back(random_neighbor_op(neighbor, rng, 0.4, false));
        (void)eval.evaluate_neighbor(ops.back());
    }
    const std::uint64_t hits_before = eval.stats().memo_hits;

    // ...the replay of the identical neighbourhood must be pure lookups.
    AllocationGuard guard;
    double sink = 0.0;
    for (const NeighborOp& op : ops) sink += eval.evaluate_neighbor(op).gamma;
    EXPECT_EQ(guard.allocations(), 0u) << "memo hit path allocated";
    EXPECT_GT(eval.stats().memo_hits, hits_before) << "replay did not hit the memo";
    EXPECT_GT(sink, 0.0);
}

TEST(EvalContextAlloc, MemoizedLookupOfKnownMappingIsAllocationFree) {
    SEAMAP_REQUIRE_ALLOC_GUARD();
    const Workload w = workloads().front(); // fig8
    const MpsocArchitecture arch(w.cores, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels(w.cores, ScalingLevel{1});
    const EvaluationContext ctx{w.graph, arch, levels, SeuEstimator{SerModel{}},
                                w.deadline_seconds};
    EvalContext eval(ctx);
    Rng rng(25);
    std::vector<Mapping> mappings;
    for (int i = 0; i < 8; ++i) mappings.push_back(random_mapping(w.graph, w.cores, rng));
    for (const Mapping& mapping : mappings) (void)eval.evaluate_memoized(mapping);

    AllocationGuard guard;
    double sink = 0.0;
    for (const Mapping& mapping : mappings) sink += eval.evaluate_memoized(mapping).gamma;
    EXPECT_EQ(guard.allocations(), 0u) << "memoized lookup of a known mapping allocated";
    EXPECT_GT(sink, 0.0);
}

} // namespace
} // namespace seamap
