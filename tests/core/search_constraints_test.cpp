// Tests for the search-policy knobs added on top of the paper's plain
// Fig. 7 loop: the all-cores-populated constraint (paper Tables II/III
// keep every core busy) and multi-restart budgeting.
#include "baseline/simulated_annealing.h"
#include "core/initial_mapping.h"
#include "core/optimized_mapping.h"

#include "taskgraph/mpeg2.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

struct Fixture {
    TaskGraph graph = mpeg2_decoder_graph();
    MpsocArchitecture arch{4, VoltageScalingTable::arm7_three_level()};
    ScalingVector levels = {2, 2, 2, 2};
    EvaluationContext ctx{graph, arch, levels, SeuEstimator{SerModel{}},
                          mpeg2_deadline_seconds()};
};

TEST(RequireAllCores, LocalSearchKeepsEveryCorePopulated) {
    Fixture f;
    LocalSearchParams params;
    params.max_iterations = 3'000;
    params.require_all_cores = true;
    params.seed = 4;
    const LocalSearchResult result =
        OptimizedMapping(params).optimize(f.ctx, initial_sea_mapping(f.ctx));
    ASSERT_TRUE(result.found_feasible);
    EXPECT_EQ(result.best_mapping.used_core_count(), 4u);
}

TEST(RequireAllCores, SimulatedAnnealingKeepsEveryCorePopulated) {
    Fixture f;
    SaParams params;
    params.iterations = 3'000;
    params.require_all_cores = true;
    params.seed = 4;
    const SaResult result = SimulatedAnnealingMapper(params).optimize(
        f.ctx, MappingObjective::seu_count, round_robin_mapping(f.graph, 4));
    ASSERT_TRUE(result.found_feasible);
    EXPECT_EQ(result.best_mapping.used_core_count(), 4u);
}

TEST(RequireAllCores, OffAllowsCoreShutdown) {
    // Without the constraint the Gamma-minimizing search is free to
    // consolidate tasks; on the MPEG-2 decoder at a loose deadline the
    // best designs leave at least one core empty on some seeds. We only
    // assert the knob is permissive, not that shutdown always happens.
    Fixture f;
    LocalSearchParams params;
    params.max_iterations = 3'000;
    params.require_all_cores = false;
    params.seed = 4;
    const LocalSearchResult result =
        OptimizedMapping(params).optimize(f.ctx, initial_sea_mapping(f.ctx));
    ASSERT_TRUE(result.found_feasible);
    EXPECT_LE(result.best_mapping.used_core_count(), 4u);
}

TEST(RequireAllCores, PopulationPreservedFromAllCoreStart) {
    // From a start that uses every core, a long constrained walk must
    // never pass through (and so never return) a mapping with an empty
    // core, across several seeds.
    Fixture f;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        LocalSearchParams params;
        params.max_iterations = 1'000;
        params.require_all_cores = true;
        params.seed = seed;
        const LocalSearchResult result =
            OptimizedMapping(params).optimize(f.ctx, round_robin_mapping(f.graph, 4));
        EXPECT_EQ(result.best_mapping.used_core_count(), 4u) << "seed " << seed;
    }
}

TEST(Restarts, SingleRestartIsPlainWalk) {
    Fixture f;
    LocalSearchParams params;
    params.max_iterations = 2'000;
    params.restarts = 1;
    params.seed = 9;
    const LocalSearchResult result =
        OptimizedMapping(params).optimize(f.ctx, initial_sea_mapping(f.ctx));
    EXPECT_TRUE(result.found_feasible);
    EXPECT_EQ(result.iterations_run, 2'000u);
}

TEST(Restarts, ManyRestartsStillRespectBudgetAndFindFeasible) {
    Fixture f;
    LocalSearchParams params;
    params.max_iterations = 2'000;
    params.restarts = 8;
    params.seed = 9;
    const LocalSearchResult result =
        OptimizedMapping(params).optimize(f.ctx, initial_sea_mapping(f.ctx));
    EXPECT_TRUE(result.found_feasible);
    EXPECT_EQ(result.iterations_run, 2'000u);
}

TEST(Restarts, NeverWorseThanInitialDesign) {
    // Start from round-robin: balanced, hence feasible at this loose
    // deadline (the greedy initial intentionally packs core 0 up to the
    // budget and may overshoot — that is stage 2's job to fix).
    Fixture f;
    const Mapping initial = round_robin_mapping(f.graph, 4);
    const DesignMetrics initial_metrics = evaluate_design(f.ctx, initial);
    ASSERT_TRUE(initial_metrics.feasible);
    for (const std::uint64_t restarts : {1ULL, 3ULL, 6ULL}) {
        LocalSearchParams params;
        params.max_iterations = 1'500;
        params.restarts = restarts;
        params.seed = 11;
        const LocalSearchResult result = OptimizedMapping(params).optimize(f.ctx, initial);
        ASSERT_TRUE(result.found_feasible) << restarts << " restarts";
        EXPECT_LE(result.best_metrics.gamma, initial_metrics.gamma) << restarts << " restarts";
    }
}

} // namespace
} // namespace seamap
