// The headline crash-safety invariant: kill an exploration at any
// point, resume it from the checkpoint — at ANY thread count — and the
// final report is byte-identical to the uninterrupted run. Exercised
// over three workloads (fig8, MPEG-2, a TGFF random graph), three
// interruption points, three resume thread counts and three flush
// cadences, plus the rejection paths (corrupt file, mismatched
// problem).
#include "seamap/seamap.h"

#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace seamap {
namespace {

/// Cooperative "kill": request a stop after the Nth completed scaling,
/// like a SIGINT landing mid-run (the CLI path flips the same token).
class StopAfter : public ProgressObserver {
public:
    StopAfter(CancellationToken& cancel, std::size_t after)
        : cancel_(cancel), after_(after) {}

    void on_scaling_done(const ScalingProgress&) override {
        if (++seen_ >= after_) cancel_.request_stop();
    }

private:
    CancellationToken& cancel_;
    std::size_t after_;
    std::size_t seen_ = 0;
};

struct Scenario {
    TaskGraph graph;
    std::size_t cores;
    double deadline;
};

Scenario fig8_scenario() { return {fig8_example_graph(), 3, 0.5}; }

Scenario mpeg2_scenario() {
    TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture two(2, VoltageScalingTable::arm7_three_level());
    const double deadline = 1.3 * tm_lower_bound_seconds(graph, two, {1, 1});
    return {std::move(graph), 4, deadline};
}

Scenario tgff_scenario() {
    TgffParams params;
    params.task_count = 12;
    TaskGraph graph = generate_tgff_graph(params, 42);
    const MpsocArchitecture two(2, VoltageScalingTable::arm7_three_level());
    const double deadline = 1.35 * tm_lower_bound_seconds(graph, two, {1, 1});
    return {std::move(graph), 3, deadline};
}

Problem make_problem(const Scenario& scenario) {
    return ProblemBuilder()
        .graph(scenario.graph)
        .architecture(scenario.cores, VoltageScalingTable::arm7_three_level())
        .deadline_seconds(scenario.deadline)
        .build();
}

ExploreOptions make_options(std::size_t threads, bool track_min_power = false) {
    ExploreOptions options;
    options.dse.search.max_iterations = 400;
    options.dse.search.seed = 7;
    options.dse.search.track_min_power = track_min_power;
    options.dse.num_threads = threads;
    return options;
}

std::string report_bytes(const Problem& problem, const ExploreOptions& options,
                         const DseResult& result) {
    return optimize_report_json(problem, options.strategy, result).dump(2);
}

std::string ckpt_path(const std::string& tag) {
    return testing::TempDir() + "/dse_ckpt_" + tag + ".ckpt";
}

/// Interrupt after `stop_after` completed scalings at `kill_threads`,
/// then resume at `resume_threads`; returns the resumed report bytes.
/// `slots_resumed_out`, when given, accumulates how many decided slots
/// the resumed run actually restored (a stop can land before the first
/// slot is decided, in which case resume degenerates to a fresh run —
/// still correct, but callers should assert real resumes happen too).
std::string kill_and_resume(const Scenario& scenario, const ExploreOptions& base,
                            const std::string& path, std::size_t stop_after,
                            std::size_t kill_threads, std::size_t resume_threads,
                            std::uint64_t cadence_every,
                            std::uint64_t* slots_resumed_out = nullptr) {
    const Problem problem = make_problem(scenario);
    remove_checkpoint(path);
    {
        ExploreOptions options = base;
        options.dse.num_threads = kill_threads;
        DseCheckpointer checkpointer(path, explore_state_hash(problem, options));
        checkpointer.set_cadence(cadence_every, 0.0);
        CancellationToken cancel;
        StopAfter observer(cancel, stop_after);
        (void)explore(problem, options, &observer, &cancel, &checkpointer);
    }
    ExploreOptions options = base;
    options.dse.num_threads = resume_threads;
    DseCheckpointer checkpointer(path, explore_state_hash(problem, options));
    const auto info =
        checkpointer.load(problem.graph().task_count(), problem.architecture().core_count());
    if (slots_resumed_out != nullptr && info) *slots_resumed_out += info->slots_decided;
    const DseResult resumed = explore(problem, options, nullptr, nullptr, &checkpointer);
    remove_checkpoint(path);
    return report_bytes(problem, options, resumed);
}

TEST(DseCheckpoint, Fig8KillAndResumeMatrix) {
    const Scenario scenario = fig8_scenario();
    const ExploreOptions base = make_options(1, /*track_min_power=*/true);
    const Problem problem = make_problem(scenario);
    const std::string baseline =
        report_bytes(problem, base, explore(problem, base));
    std::uint64_t slots_resumed = 0;
    for (const std::size_t stop_after : {std::size_t{1}, std::size_t{3}, std::size_t{6}}) {
        for (const std::size_t resume_threads :
             {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
            const std::string resumed = kill_and_resume(
                scenario, base, ckpt_path("fig8"), stop_after, 2, resume_threads,
                /*cadence_every=*/1, &slots_resumed);
            EXPECT_EQ(resumed, baseline)
                << "stop_after=" << stop_after << " resume_threads=" << resume_threads;
        }
    }
    // The matrix must exercise real resumes, not nine fresh restarts.
    EXPECT_GT(slots_resumed, 0u);
}

TEST(DseCheckpoint, Fig8CadenceNeverChangesBytes) {
    // Flush cadences only change WHEN snapshots hit the disk, never what
    // a resumed run computes: count-of-1, count-of-4 and stop-only (the
    // final flush on cancellation) must all reproduce the baseline.
    const Scenario scenario = fig8_scenario();
    const ExploreOptions base = make_options(1);
    const Problem problem = make_problem(scenario);
    const std::string baseline =
        report_bytes(problem, base, explore(problem, base));
    for (const std::uint64_t cadence : {std::uint64_t{1}, std::uint64_t{4}, std::uint64_t{0}}) {
        const std::string resumed = kill_and_resume(scenario, base, ckpt_path("fig8_cad"),
                                                    /*stop_after=*/4, 2, 2, cadence);
        EXPECT_EQ(resumed, baseline) << "cadence_every=" << cadence;
    }
}

TEST(DseCheckpoint, Mpeg2KillAndResumeAcrossThreadCounts) {
    const Scenario scenario = mpeg2_scenario();
    const ExploreOptions base = make_options(1);
    const Problem problem = make_problem(scenario);
    const std::string baseline =
        report_bytes(problem, base, explore(problem, base));
    EXPECT_EQ(kill_and_resume(scenario, base, ckpt_path("mpeg2_a"), 5, 8, 1, 1), baseline);
    EXPECT_EQ(kill_and_resume(scenario, base, ckpt_path("mpeg2_b"), 9, 1, 8, 2), baseline);
}

TEST(DseCheckpoint, TgffKillAndResume) {
    const Scenario scenario = tgff_scenario();
    const ExploreOptions base = make_options(1);
    const Problem problem = make_problem(scenario);
    const std::string baseline =
        report_bytes(problem, base, explore(problem, base));
    EXPECT_EQ(kill_and_resume(scenario, base, ckpt_path("tgff"), 3, 2, 8, 1), baseline);
}

TEST(DseCheckpoint, CompletedSnapshotIsMemoizedExplore) {
    const Scenario scenario = fig8_scenario();
    const ExploreOptions options = make_options(2);
    const Problem problem = make_problem(scenario);
    const std::string path = ckpt_path("memo");
    remove_checkpoint(path);
    std::string first;
    {
        DseCheckpointer checkpointer(path, explore_state_hash(problem, options));
        first = report_bytes(problem, options,
                             explore(problem, options, nullptr, nullptr, &checkpointer));
    }
    DseCheckpointer checkpointer(path, explore_state_hash(problem, options));
    const auto info =
        checkpointer.load(problem.graph().task_count(), problem.architecture().core_count());
    ASSERT_TRUE(info.has_value());
    EXPECT_GT(info->slots_decided, 0u);
    const DseResult replayed = explore(problem, options, nullptr, nullptr, &checkpointer);
    EXPECT_EQ(report_bytes(problem, options, replayed), first);
    remove_checkpoint(path);
}

TEST(DseCheckpoint, MismatchedProblemIsRejectedWithDiagnostic) {
    const Scenario scenario = fig8_scenario();
    const ExploreOptions options = make_options(1);
    const Problem problem = make_problem(scenario);
    const std::string path = ckpt_path("mismatch");
    remove_checkpoint(path);
    {
        DseCheckpointer checkpointer(path, explore_state_hash(problem, options));
        (void)explore(problem, options, nullptr, nullptr, &checkpointer);
    }
    // Same file, different problem (tighter deadline) — a different
    // state hash, so resuming must fail loudly, naming both hashes.
    Scenario other = fig8_scenario();
    other.deadline = 0.4;
    const Problem other_problem = make_problem(other);
    DseCheckpointer checkpointer(path, explore_state_hash(other_problem, options));
    try {
        (void)checkpointer.load(other_problem.graph().task_count(),
                                other_problem.architecture().core_count());
        FAIL() << "expected checkpoint_mismatch";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::checkpoint_mismatch);
        EXPECT_NE(std::string(e.what()).find("state hash"), std::string::npos);
    }
    remove_checkpoint(path);
}

TEST(DseCheckpoint, CorruptSnapshotWithoutFallbackIsRejected) {
    const Scenario scenario = fig8_scenario();
    const ExploreOptions options = make_options(1);
    const Problem problem = make_problem(scenario);
    const std::string path = ckpt_path("corrupt");
    remove_checkpoint(path);
    {
        std::ofstream os(path);
        os << "seamap-checkpoint 1\nnot really\n";
    }
    DseCheckpointer checkpointer(path, explore_state_hash(problem, options));
    try {
        (void)checkpointer.load(problem.graph().task_count(),
                                problem.architecture().core_count());
        FAIL() << "expected checkpoint_corrupt";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::checkpoint_corrupt);
    }
    remove_checkpoint(path);
}

TEST(DseCheckpoint, TruncatedSnapshotFallsBackToPrev) {
    // Kill-during-write simulation: the primary is torn mid-byte, the
    // rotated .prev must transparently supply the last good prefix.
    const Scenario scenario = fig8_scenario();
    const ExploreOptions base = make_options(2);
    const Problem problem = make_problem(scenario);
    const std::string path = ckpt_path("torn");
    remove_checkpoint(path);
    {
        DseCheckpointer checkpointer(path, explore_state_hash(problem, base));
        checkpointer.set_cadence(1, 0.0); // >= 2 flushes, so .prev exists
        CancellationToken cancel;
        StopAfter observer(cancel, 5);
        (void)explore(problem, base, &observer, &cancel, &checkpointer);
    }
    ASSERT_TRUE(std::filesystem::exists(path + ".prev"));
    {
        std::ifstream is(path);
        std::string text{std::istreambuf_iterator<char>(is),
                         std::istreambuf_iterator<char>()};
        std::ofstream os(path, std::ios::trunc);
        os << text.substr(0, text.size() / 2);
    }
    DseCheckpointer checkpointer(path, explore_state_hash(problem, base));
    const auto info =
        checkpointer.load(problem.graph().task_count(), problem.architecture().core_count());
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->from_fallback);
    const std::string baseline = report_bytes(problem, base, explore(problem, base));
    const DseResult resumed = explore(problem, base, nullptr, nullptr, &checkpointer);
    EXPECT_EQ(report_bytes(problem, base, resumed), baseline);
    remove_checkpoint(path);
}

} // namespace
} // namespace seamap
