// Integration test replaying the paper's Section IV-B worked example
// (Fig. 8): six tasks, three cores at scalings (1, 2, 2), deadline
// 75 ms. The published narrative:
//   1. InitialSEAMapping seeds core 1 with the source task and grows it
//      along minimum-SEU dependents, spilling the remainder over
//      cores 2 and 3;
//   2. the initial mapping misses the 75 ms deadline;
//   3. OptimizedMapping's task movements repair it while minimizing the
//      SEUs experienced.
// The figure scan garbles the exact edge list, so we assert the
// *narrative invariants* rather than the exact per-panel placements.
#include "core/initial_mapping.h"
#include "core/optimized_mapping.h"
#include "reliability/register_usage.h"

#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

struct Walkthrough {
    TaskGraph graph = fig8_example_graph();
    MpsocArchitecture arch{3, VoltageScalingTable::arm7_three_level()};
    ScalingVector levels = {1, 2, 2}; // s1=1, s2=2, s3=2 as in the example
    EvaluationContext ctx{graph, arch, levels, SeuEstimator{SerModel{}},
                          k_fig8_deadline_seconds};
};

TEST(Fig8Walkthrough, Stage1SeedsFastCoreWithSourceTask) {
    Walkthrough w;
    const Mapping initial = initial_sea_mapping(w.ctx);
    ASSERT_TRUE(initial.complete());
    EXPECT_EQ(initial.core_of(0), 0u); // t1 on core 1
    EXPECT_EQ(initial.used_core_count(), 3u);
}

TEST(Fig8Walkthrough, Stage1KeepsRegisterSharersTogether) {
    // The greedy's whole point: the mapping it builds must duplicate
    // fewer register bits than dealing tasks round-robin.
    Walkthrough w;
    const Mapping initial = initial_sea_mapping(w.ctx);
    const Mapping rr = round_robin_mapping(w.graph, 3);
    EXPECT_LE(total_register_bits(w.graph, initial, 3),
              total_register_bits(w.graph, rr, 3));
}

TEST(Fig8Walkthrough, Stage2MeetsThe75msDeadline) {
    Walkthrough w;
    const Mapping initial = initial_sea_mapping(w.ctx);
    LocalSearchParams params;
    params.max_iterations = 3'000;
    params.seed = 8;
    const OptimizedMapping searcher(params);
    const LocalSearchResult result = searcher.optimize(w.ctx, initial);
    ASSERT_TRUE(result.found_feasible) << "a feasible mapping exists for this example";
    EXPECT_LE(result.best_metrics.tm_seconds, k_fig8_deadline_seconds * (1.0 + 1e-9));
}

TEST(Fig8Walkthrough, Stage2NeverIncreasesGammaOfAFeasibleStart) {
    Walkthrough w;
    const Mapping initial = initial_sea_mapping(w.ctx);
    const DesignMetrics initial_metrics = evaluate_design(w.ctx, initial);
    LocalSearchParams params;
    params.max_iterations = 3'000;
    params.seed = 8;
    const LocalSearchResult result = OptimizedMapping(params).optimize(w.ctx, initial);
    ASSERT_TRUE(result.found_feasible);
    if (initial_metrics.feasible) {
        EXPECT_LE(result.best_metrics.gamma, initial_metrics.gamma);
    }
}

TEST(Fig8Walkthrough, OptimizedBeatsEveryNaiveMapping) {
    // The searched design must be no worse (in Gamma, among feasible
    // designs) than the obvious hand mappings: all-on-core-0 and
    // round-robin.
    Walkthrough w;
    LocalSearchParams params;
    params.max_iterations = 4'000;
    params.seed = 8;
    const LocalSearchResult result =
        OptimizedMapping(params).optimize(w.ctx, initial_sea_mapping(w.ctx));
    ASSERT_TRUE(result.found_feasible);
    for (const Mapping& naive :
         {single_core_mapping(w.graph, 3), round_robin_mapping(w.graph, 3)}) {
        const DesignMetrics metrics = evaluate_design(w.ctx, naive);
        if (metrics.feasible) { EXPECT_LE(result.best_metrics.gamma, metrics.gamma); }
    }
}

TEST(Fig8Walkthrough, FasterCoreCarriesMoreWork) {
    // Core 1 runs at 200 MHz vs 100 MHz for cores 2-3; the optimized
    // design should load it with at least as many busy cycles as the
    // average slow core.
    Walkthrough w;
    LocalSearchParams params;
    params.max_iterations = 4'000;
    params.seed = 8;
    const LocalSearchResult result =
        OptimizedMapping(params).optimize(w.ctx, initial_sea_mapping(w.ctx));
    ASSERT_TRUE(result.found_feasible);
    const auto busy = per_core_busy_cycles(w.graph, result.best_mapping, 3);
    EXPECT_GE(busy[0], (busy[1] + busy[2]) / 2);
}

} // namespace
} // namespace seamap
